#!/usr/bin/env python
"""Runner smoke: kill a journaled run mid-flight, resume, diff vs clean.

A tiny synthetic workload (no datasets, no cache) driven through the full
``Runner``/``Ledger``/``FaultInjector`` stack:

1. run the plan cleanly into one ledger;
2. run it again into a second ledger with an injected hard crash at a
   mid-plan unit boundary;
3. resume the crashed ledger — only the unfinished units may execute;
4. diff the two result sets: they must match exactly.

Exercises the same machinery as ``python -m repro run --resume`` in well
under a second, so CI can gate on it.  Exit status 0 = all checks passed.
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.runner import (  # noqa: E402
    FailurePolicy,
    Fault,
    FaultInjector,
    FaultPlan,
    Runner,
    SimulatedCrash,
    WorkUnit,
)

NUM_UNITS = 9
CRASH_AT = 5


def build_units(calls):
    def make(i):
        def fn():
            calls.append(i)
            if i == 3 and calls.count(3) < 2:
                raise RuntimeError("transient failure (retried)")
            return {"value": i * i}

        return WorkUnit(experiment="smoke", attack=f"u{i}", fn=fn)

    return [make(i) for i in range(NUM_UNITS)]


def payloads(result):
    return {key: rec["payload"] for key, rec in sorted(result.records.items())}


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="runner-smoke-"))
    policy = FailurePolicy(max_attempts=3)

    clean_calls = []
    clean = Runner(ledger=tmp / "clean.jsonl", policy=policy).run(build_units(clean_calls))
    assert clean.ok, f"clean run failed: {clean.failed}"
    assert len(clean.executed) == NUM_UNITS

    crash_calls = []
    plan = FaultPlan(faults=(Fault(kind="crash", unit_index=CRASH_AT),), seed=0)
    try:
        Runner(ledger=tmp / "crashed.jsonl", policy=policy).run(
            build_units(crash_calls), injector=FaultInjector(plan)
        )
        raise AssertionError("injected crash did not fire")
    except SimulatedCrash:
        pass
    assert len(set(crash_calls)) == CRASH_AT, crash_calls

    resume_calls = []
    resumed = Runner(ledger=tmp / "crashed.jsonl", policy=policy).run(build_units(resume_calls))
    assert resumed.ok, f"resume failed: {resumed.failed}"
    assert len(resumed.replayed) == CRASH_AT, resumed.replayed
    assert set(resume_calls).isdisjoint(set(crash_calls)), "a ledgered unit re-executed"

    if payloads(resumed) != payloads(clean):
        print("runner-smoke: MISMATCH between clean and resumed results", file=sys.stderr)
        return 1
    retried = resumed.records.get("smoke/-/-/u3/-") or clean.records["smoke/-/-/u3/-"]
    assert retried["attempts"] == 2, retried  # the transient failure was retried

    print(
        f"runner-smoke: ok ({NUM_UNITS} units; crash at {CRASH_AT}, "
        f"{len(resumed.replayed)} replayed, {len(resumed.executed)} resumed; results identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
