#!/usr/bin/env python
"""Multi-worker serving smoke: sharding, SLO admission, worker death.

Drives the :class:`~repro.serve.ServePool` front end through its
operational envelope on the cached ``mnist-fast`` artifacts:

1. **sharded equivalence** — requests fan out across forked workers and
   every served label must be bitwise-identical to offline
   ``DCN.classify`` on the same rows (the per-input corrector noise
   streams make the label a pure function of the row, not the worker);
2. **merged telemetry** — the fleet snapshot must sum counters across
   workers, produce finite fleet-wide percentiles from the merged
   sketches, and journal cleanly through ``TelemetryExporter``;
3. **SLO admission in workers** — a pool built with ``slo_target_s``
   forwards it to each worker's service; a generous budget must not
   shed anything on a light stream;
4. **worker death** — SIGKILL one worker mid-stream: its in-flight
   tickets must resolve as shed (never hang a caller), the survivors
   must finish the stream, and the fleet snapshot must name the corpse.

Exit status 0 = all checks passed.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.eval import build_context, scale_config  # noqa: E402
from repro.serve import (  # noqa: E402
    ServePool,
    StreamSpec,
    TelemetryExporter,
    build_stream,
    read_telemetry,
    run_pool,
)


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def main() -> int:
    ctx = build_context("mnist-fast", scale_config("fast"))
    dcn = ctx.dcn
    adv, _, _ = ctx.pool("cw-l2").successful()
    stream = build_stream(
        ctx.dataset.x_test,
        adv,
        StreamSpec(requests=32, adv_fraction=0.10, min_size=1, max_size=3, seed=11),
    )
    offline = [dcn.classify(request.x) for request in stream]
    tmp = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("/tmp")

    # 1 + 2 + 3. sharded equivalence with SLO admission and journaled telemetry
    journal = tmp / "serve_pool_smoke_telemetry.jsonl"
    journal.unlink(missing_ok=True)
    with ServePool(
        dcn, workers=2, ledger_path=tmp / "serve_pool_smoke_ledger.jsonl",
        max_batch=32, max_queue=256, slo_target_s=30.0,
    ) as pool:
        with TelemetryExporter(pool, journal, interval_s=60.0):
            stats = run_pool(pool, stream, window=8)
            snapshot = pool.fleet_snapshot()
    check(stats.statuses == ["ok"] * len(stream), "pool: all requests served")
    check(
        all(np.array_equal(got, want) for got, want in zip(stats.labels, offline)),
        "pool: labels bitwise-identical to offline DCN.classify",
    )
    check(
        snapshot["workers"]["reporting"] == [0, 1],
        "pool: every worker took traffic and reported",
    )
    check(
        snapshot["counters"]["requests"] == len(stream)
        and snapshot["counters"]["shed"] == 0
        and snapshot["counters"]["slo_shed"] == 0,
        "pool: merged counters cover the stream, generous SLO sheds nothing",
    )
    check(
        np.isfinite(snapshot["latency"]["p95_ms"])
        and snapshot["latency"]["count"] == float(len(stream)),
        "pool: fleet percentiles finite over merged sketches",
    )
    records = read_telemetry(journal)
    check(
        records and records[-1]["final"] and records[-1]["workers"]["total"] == 2,
        "pool: telemetry journal replayable, final fleet record present",
    )

    # 4. SIGKILL one worker mid-stream: shed in-flight, survivors finish
    def stall_worker_zero(worker_id, n_requests):
        if worker_id == 0:
            time.sleep(30.0)

    with ServePool(
        dcn, workers=2, ledger_path=tmp / "serve_pool_smoke_chaos.jsonl",
        max_batch=32, max_queue=256, dispatch_hook=stall_worker_zero,
    ) as pool:
        # Even sequence numbers shard to worker 0 (stalled), odd to 1.
        tickets = [pool.submit(stream[i].x) for i in range(8)]
        healthy = [tickets[i].wait(30.0) for i in (1, 3, 5, 7)]
        check(
            all(r.status == "ok" for r in healthy),
            "chaos: healthy worker keeps serving while its peer stalls",
        )
        pool.processes[0].kill()
        doomed = [tickets[i].wait(10.0) for i in (0, 2, 4, 6)]
        check(
            all(r.status == "shed" for r in doomed),
            "chaos: SIGKILLed worker's in-flight tickets resolve as shed",
        )
        check(pool.live_workers() == [1], "chaos: monitor saw exactly one death")
        after = [pool.submit(stream[i].x) for i in range(8, 16)]
        results = [t.wait(30.0) for t in after]
        check(
            all(r.status == "ok" for r in results),
            "chaos: survivor finishes the stream",
        )
        check(
            all(
                np.array_equal(r.labels, offline[i])
                for i, r in zip(range(8, 16), results)
            ),
            "chaos: survivor's labels still bitwise-identical to offline",
        )
        snapshot = pool.fleet_snapshot()
        check(
            snapshot["workers"]["dead"] == [0]
            and snapshot["counters"]["shed"] >= 4,
            "chaos: fleet snapshot names the corpse and counts its sheds",
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
