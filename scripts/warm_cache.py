"""Pre-build every cached artifact the test and benchmark suites need.

Usage::

    python scripts/warm_cache.py [fast|paper]

Builds, for each dataset of the chosen scale: the dataset itself, the
standard and distilled models, the DCN detector (including its CW-L2
training pool), the Table 2 held-out pool, and the Table 4/5 robustness
pools for every CW attack against both the standard and distilled models.
Everything lands in ``.artifacts`` keyed by configuration, so benchmarks
and tests afterwards run from cache.
"""

from __future__ import annotations

import sys
import time

from repro.eval import build_context, scale_config, table2_detector_rates
from repro.eval.harness import CW_ATTACKS


def log(message: str, start: float) -> None:
    print(f"[{time.perf_counter() - start:7.1f}s] {message}", flush=True)


def warm(scale_name: str | None = None) -> None:
    start = time.perf_counter()
    scale = scale_config(scale_name)
    log(f"scale = {scale.name}", start)
    for dataset_name in (scale.mnist, scale.cifar):
        ctx = build_context(dataset_name, scale)
        log(f"{dataset_name}: model ready (acc={ctx.model.accuracy(ctx.dataset.x_test, ctx.dataset.y_test):.4f})", start)
        ctx.distilled
        log(f"{dataset_name}: distilled model ready", start)
        ctx.dcn  # trains detector (builds its CW-L2 pool)
        log(f"{dataset_name}: detector ready", start)
        log(f"{dataset_name}: corrector radius calibrated to r={ctx.radius}", start)
        rates = table2_detector_rates(ctx)
        log(f"{dataset_name}: table2 pool ready {rates}", start)
        for attack in CW_ATTACKS:
            ctx.pool(attack)
            log(f"{dataset_name}: {attack} pool (standard) ready", start)
            ctx.pool(attack, network=ctx.distilled.network, model_tag="distilled")
            log(f"{dataset_name}: {attack} pool (distilled) ready", start)
    log("cache warm", start)


if __name__ == "__main__":
    warm(sys.argv[1] if len(sys.argv) > 1 else None)
