"""Pre-build every cached artifact the test and benchmark suites need.

Usage::

    python scripts/warm_cache.py [fast|paper]

Builds, for each dataset of the chosen scale: the dataset itself, the
standard and distilled models, the DCN detector (including its CW-L2
training pool), the Table 2 held-out pool, and the Table 4/5 robustness
pools for every CW attack against both the standard and distilled models.
Everything lands in ``.artifacts`` keyed by configuration, so benchmarks
and tests afterwards run from cache.

Training runs on the fused float32
:class:`~repro.nn.train_engine.TrainingEngine` path (the library default
since PR 3); per-model engine counters are logged so cold warms show how
much work the fused kernels absorbed.
"""

from __future__ import annotations

import sys
import time

from repro.eval import build_context, scale_config, table2_detector_rates
from repro.eval.harness import CW_ATTACKS


def log(message: str, start: float) -> None:
    print(f"[{time.perf_counter() - start:7.1f}s] {message}", flush=True)


def _train_counters(network) -> str:
    """Render a network's training-engine counters (all zero on cache hits)."""
    counters = network.train_engine.counters
    if not counters.batches:
        return "cached (no training this run)"
    return (
        f"{counters.batches} fused batches / {counters.examples} examples "
        f"in {counters.seconds:.1f}s kernel time ({counters.fallbacks} fallbacks)"
    )


def warm(scale_name: str | None = None) -> None:
    start = time.perf_counter()
    scale = scale_config(scale_name)
    log(f"scale = {scale.name}", start)
    for dataset_name in (scale.mnist, scale.cifar):
        ctx = build_context(dataset_name, scale)
        log(f"{dataset_name}: model ready (acc={ctx.model.accuracy(ctx.dataset.x_test, ctx.dataset.y_test):.4f})", start)
        log(f"{dataset_name}: model training {_train_counters(ctx.model)}", start)
        ctx.distilled
        log(f"{dataset_name}: distilled model ready; student {_train_counters(ctx.distilled.network)}", start)
        ctx.dcn  # trains detector (builds its CW-L2 pool)
        log(f"{dataset_name}: detector ready; {_train_counters(ctx.dcn.detector.network)}", start)
        log(f"{dataset_name}: corrector radius calibrated to r={ctx.radius}", start)
        rates = table2_detector_rates(ctx)
        log(f"{dataset_name}: table2 pool ready {rates}", start)
        for attack in CW_ATTACKS:
            ctx.pool(attack)
            log(f"{dataset_name}: {attack} pool (standard) ready", start)
            ctx.pool(attack, network=ctx.distilled.network, model_tag="distilled")
            log(f"{dataset_name}: {attack} pool (distilled) ready", start)
    log("cache warm", start)


if __name__ == "__main__":
    warm(sys.argv[1] if len(sys.argv) > 1 else None)
