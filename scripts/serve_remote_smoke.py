#!/usr/bin/env python
"""Remote serving smoke: framed transport, chaos retries, server death.

Forks a real :class:`~repro.serve.DCNServer` into a child process and
drives it over loopback TCP with :class:`~repro.serve.DCNClient` on the
cached ``mnist-fast`` artifacts:

1. **remote equivalence** — a deterministic stream replayed through
   concurrent remote clients must serve every request with labels
   bitwise-identical to offline ``DCN.classify``;
2. **transport chaos** — with seeded reply faults (connection drop,
   torn half-frame) injected server-side, the clients must retry the
   idempotent-safe failures and still converge on identical labels;
3. **deadline agreement** — a budget the server cannot meet must come
   back as a ``shed``/``reason="deadline"`` result on the client, fast;
4. **server SIGKILL** — killing the server process mid-conversation
   must resolve every outstanding and subsequent call (shed or breaker
   fast-fail), never hang a caller.

Exit status 0 = all checks passed.
"""

import multiprocessing
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.eval import build_context, scale_config  # noqa: E402
from repro.runner.faultinject import Fault, FaultPlan, TransportChaos  # noqa: E402
from repro.serve import (  # noqa: E402
    DCNClient,
    StreamSpec,
    build_stream,
    run_remote,
)


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def _server_main(dcn, conn, chaos, max_delay):
    """Child process: serve the fork-inherited DCN until told to stop."""
    from repro.serve import DCNServer, DCNService

    with DCNService(dcn, max_batch=32, max_queue=256, max_delay=max_delay) as service:
        with DCNServer(service, chaos=chaos) as server:
            conn.send(server.address)
            try:
                conn.recv()  # blocks until the parent says stop (or dies)
            except (EOFError, OSError):
                pass


def start_server(dcn, chaos=None, max_delay=0.002):
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(
        target=_server_main, args=(dcn, child, chaos, max_delay), daemon=True
    )
    proc.start()
    child.close()
    address = tuple(parent.recv())
    return proc, parent, address


def stop_server(proc, conn):
    try:
        conn.send("stop")
    except (OSError, BrokenPipeError):
        pass
    proc.join(timeout=10.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=5.0)
    conn.close()


def main() -> int:
    ctx = build_context("mnist-fast", scale_config("fast"))
    dcn = ctx.dcn
    adv, _, _ = ctx.pool("cw-l2").successful()
    stream = build_stream(
        ctx.dataset.x_test,
        adv,
        StreamSpec(requests=24, adv_fraction=0.10, min_size=1, max_size=3, seed=13),
    )
    offline = [dcn.classify(request.x) for request in stream]

    # 1. remote equivalence over a clean server
    proc, conn, address = start_server(dcn)
    clients = [DCNClient(address, backoff_seed=c) for c in range(3)]
    try:
        stats = run_remote(clients, stream)
    finally:
        for client in clients:
            client.close()
    check(stats.statuses == ["ok"] * len(stream), "remote: all requests served")
    check(
        all(np.array_equal(got, want) for got, want in zip(stats.labels, offline)),
        "remote: labels bitwise-identical to offline DCN.classify",
    )
    stop_server(proc, conn)

    # 2. transport chaos: dropped and torn replies retried to identical labels
    chaos = TransportChaos(
        FaultPlan(
            faults=(
                Fault(kind="conn-drop", unit_index=0),
                Fault(kind="torn-frame", unit_index=3),
            )
        )
    )
    proc, conn, address = start_server(dcn, chaos=chaos)
    clients = [
        DCNClient(address, retries=2, backoff_base_s=0.01, backoff_seed=c)
        for c in range(2)
    ]
    try:
        stats = run_remote(clients, stream)
    finally:
        for client in clients:
            client.close()
    check(stats.statuses == ["ok"] * len(stream), "chaos: every faulted call resolved ok")
    check(
        all(np.array_equal(got, want) for got, want in zip(stats.labels, offline)),
        "chaos: labels identical despite dropped and torn replies",
    )
    retries = sum(c.counters.retries for c in clients)
    torn = sum(c.counters.torn_replies for c in clients)
    check(retries >= 2 and torn >= 2, "chaos: both faults cost exactly a retry each")
    stop_server(proc, conn)

    # 3. deadline agreement: an un-meetable budget sheds as "deadline", fast
    proc, conn, address = start_server(dcn, max_delay=1.5)
    with DCNClient(address, deadline_s=0.3, retries=2) as client:
        t0 = time.monotonic()
        result = client.classify(stream[0].x)
        elapsed = time.monotonic() - t0
    check(
        result.status == "shed" and result.reason == "deadline" and elapsed < 1.2,
        "deadline: un-meetable budget resolves as deadline shed at the deadline",
    )
    stop_server(proc, conn)

    # 4. server SIGKILL mid-conversation: calls resolve, breaker fast-fails
    proc, conn, address = start_server(dcn)
    client = DCNClient(
        address, deadline_s=5.0, retries=1, backoff_base_s=0.01,
        breaker_threshold=1, breaker_reset_s=30.0,
    )
    check(client.classify(stream[0].x).status == "ok", "sigkill: server healthy first")
    proc.kill()
    proc.join(timeout=5.0)
    t0 = time.monotonic()
    result = client.classify(stream[1].x)
    elapsed = time.monotonic() - t0
    check(
        result.status == "shed" and elapsed < 5.0,
        "sigkill: in-flight call resolves shed, never hangs",
    )
    t0 = time.monotonic()
    fast = client.classify(stream[2].x)
    elapsed = time.monotonic() - t0
    check(
        fast.status == "shed" and fast.reason == "breaker" and elapsed < 0.5,
        "sigkill: open breaker fast-fails follow-up calls",
    )
    client.close()
    conn.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
