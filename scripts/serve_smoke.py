#!/usr/bin/env python
"""Serving smoke: threaded coalescing, backpressure, bitwise equivalence.

Drives the online ``DCNService`` through its operational envelope on the
cached ``mnist-fast`` artifacts:

1. **threaded equivalence** — concurrent client threads submit small
   requests against the dispatcher thread; every served label must be
   bitwise-identical to offline ``DCN.classify`` on the same rows;
2. **backpressure (shed)** — a burst past ``max_queue`` must shed the
   overflow and serve the admitted remainder correctly;
3. **backpressure (degrade)** — under the degrade policy the overflow is
   admitted detector-only: flagged rows keep the model's label (no
   corrector vote) and the result is marked ``"degraded"``;
4. **telemetry** — the ``ServeCounters`` snapshot must be internally
   consistent (admitted = served, gate split adds up, plan counters
   moved, snapshot is a detached copy).

Exit status 0 = all checks passed.
"""

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.eval import build_context, scale_config  # noqa: E402
from repro.serve import DCNService, StreamSpec, build_stream  # noqa: E402


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def main() -> int:
    ctx = build_context("mnist-fast", scale_config("fast"))
    dcn = ctx.dcn
    adv, _, _ = ctx.pool("cw-l2").successful()
    stream = build_stream(
        ctx.dataset.x_test,
        adv,
        StreamSpec(requests=48, adv_fraction=0.10, min_size=1, max_size=3, seed=3),
    )
    offline = [dcn.classify(request.x) for request in stream]

    # 1. threaded equivalence under concurrent submission
    results = [None] * len(stream)
    with DCNService(dcn, max_batch=32, max_queue=256, max_delay=0.001) as service:
        def client(lane):
            for i in range(lane, len(stream), 4):
                results[i] = service.classify(stream[i].x, timeout=60.0)

        threads = [threading.Thread(target=client, args=(lane,)) for lane in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    check(all(r is not None and r.status == "ok" for r in results), "threaded: all requests served")
    check(
        all(np.array_equal(r.labels, want) for r, want in zip(results, offline)),
        "threaded: labels bitwise-identical to offline DCN.classify",
    )
    check(service.counters.batches < len(stream), "threaded: requests were coalesced")

    # 2. shed policy: a window past max_queue rejects the overflow only
    shed_service = DCNService(dcn, max_batch=32, max_queue=8, overload="shed")
    window = [request.x for request in stream[:20]]
    served = shed_service.serve_batch(window)
    check(
        sum(r.status == "shed" for r in served) == len(window) - 8,
        "shed: overflow past max_queue rejected",
    )
    admitted = [(r, want) for r, want in zip(served, offline) if r.status == "ok"]
    check(
        all(np.array_equal(r.labels, want) for r, want in admitted),
        "shed: admitted requests still bitwise-identical",
    )

    # 3. degrade policy: overflow served detector-only with model labels
    degrade_service = DCNService(dcn, max_batch=32, max_queue=4, overload="degrade")
    served = degrade_service.serve_batch(window)
    degraded = [r for r in served if r.status == "degraded"]
    # Degraded admission is itself bounded: depths [max_queue, 2*max_queue)
    # degrade, everything beyond sheds regardless.
    check(len(degraded) == 4, "degrade: overflow admitted detector-only")
    check(sum(r.status == "shed" for r in served) == len(window) - 8,
          "degrade: queue memory stays bounded past 2x max_queue")
    model_labels = [dcn.network.engine.predict(x, memo=False) for x in window]
    check(
        all(
            np.array_equal(r.labels, labels)
            for r, labels in zip(served, model_labels)
            if r.status == "degraded"
        ),
        "degrade: degraded rows carry the model's label (no corrector vote)",
    )

    # 4. telemetry consistency
    counters = service.counters.snapshot()
    check(counters.requests == len(stream), "telemetry: every admitted request counted")
    check(
        counters.examples == sum(len(request.x) for request in stream),
        "telemetry: admitted rows counted",
    )
    check(counters.corrected == counters.flagged, "telemetry: all flagged rows corrected (no overload)")
    check(0.0 <= counters.flagged_fraction <= 1.0, "telemetry: flagged fraction well-formed")
    check(counters.plan_hits + counters.plan_misses > 0, "telemetry: plan counters attributed")
    before = counters.batches
    service.serve_batch([stream[0].x])
    check(counters.batches == before != service.counters.batches, "telemetry: snapshot is detached")

    summary = service.latencies.summary()
    check(summary["count"] >= len(stream), "telemetry: latencies recorded per request")
    check(summary["p95_ms"] >= summary["p50_ms"], "telemetry: percentile ordering")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
