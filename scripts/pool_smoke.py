#!/usr/bin/env python
"""Pool smoke: 2 lease workers, one SIGKILLed mid-lease, resume, diff.

A tiny synthetic workload (no datasets, no cache) driven through the full
``WorkerPool``/``Ledger`` lease stack:

1. run the plan cleanly through a sequential ``Runner`` for reference;
2. run it with 2 forked workers, worker 0 SIGKILLed after claiming its
   second unit — no cleanup, no lease release, expiry is the only recovery;
3. check the survivor reclaimed the orphaned unit exactly once and every
   payload matches the sequential reference byte-for-byte;
4. resume the same ledger with a fresh pool — nothing may re-execute.

Exercises the same machinery as ``python -m repro run --workers N`` in a
couple of seconds, so CI can gate on it.  Exit status 0 = all checks
passed (or fork is unavailable, in which case the pool's sequential
fallback is exercised instead).
"""

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.runner import (  # noqa: E402
    FailurePolicy,
    Fault,
    FaultInjector,
    FaultPlan,
    Ledger,
    PoolConfig,
    Runner,
    WorkerPool,
    WorkUnit,
    fork_available,
)

NUM_UNITS = 8
KILL_AT = 1  # worker 0 dies before its second executed unit
LEASE_TTL = 0.5


def build_units(marker: Path):
    def make(i):
        def fn():
            time.sleep(0.01)
            fd = os.open(str(marker), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            os.write(fd, f"{i}\n".encode())
            os.close(fd)
            return {"value": i * i}

        return WorkUnit(experiment="poolsmoke", attack=f"u{i}", fn=fn)

    return [make(i) for i in range(NUM_UNITS)]


def payloads(result):
    return {key: rec["payload"] for key, rec in sorted(result.records.items())}


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="pool-smoke-"))
    policy = FailurePolicy(max_attempts=3)
    units = build_units(tmp / "unused-marker")

    clean = Runner(ledger=tmp / "clean.jsonl", policy=policy).run(units)
    assert clean.ok, f"clean run failed: {clean.failed}"

    if not fork_available():  # the pool degrades to the sequential Runner
        result = WorkerPool(tmp / "pool.jsonl", policy=policy).run(units, resume=False)
        assert result.ok and payloads(result) == payloads(clean)
        print("pool-smoke: ok (no fork on this platform; sequential fallback verified)")
        return 0

    marker = tmp / "executions"
    units = build_units(marker)
    plan = FaultPlan(faults=(Fault(kind="sigkill", unit_index=KILL_AT, worker=0),), seed=0)
    pool = WorkerPool(
        tmp / "pool.jsonl",
        policy=policy,
        config=PoolConfig(workers=2, lease_ttl=LEASE_TTL, poll_interval=0.02),
        injector_factory=lambda worker_id: FaultInjector(plan, worker_id),
    )
    result = pool.run(units, resume=False)
    assert result.ok, f"pool run failed: {result.failed}"
    assert len(result.records) == NUM_UNITS

    if payloads(result) != payloads(clean):
        print("pool-smoke: MISMATCH between sequential and pool results", file=sys.stderr)
        return 1

    state = Ledger(tmp / "pool.jsonl").replay()
    reclaimed = {k for k, n in state.lease_grants.items() if n > 1}
    assert all(n in (1, 2) for n in state.lease_grants.values()), state.lease_grants
    assert len(reclaimed) <= 1, f"more than one reclamation: {reclaimed}"
    counts = [marker.read_text().splitlines().count(str(i)) for i in range(NUM_UNITS)]
    assert counts == [1] * NUM_UNITS, f"duplicate/lost executions: {counts}"
    end = next(e for e in state.events if e["event"] == "pool-end")
    killed = -9 in end["worker_exits"]

    resumed = pool.run(units, resume=True)
    assert resumed.executed == [], f"resume re-executed {resumed.executed}"
    assert len(resumed.replayed) == NUM_UNITS
    assert payloads(resumed) == payloads(clean)

    print(
        f"pool-smoke: ok ({NUM_UNITS} units, 2 workers, ttl {LEASE_TTL}s; "
        f"worker 0 {'SIGKILLed and unit reclaimed' if killed else 'outran the kill ordinal'}; "
        "every unit executed exactly once; pool == sequential; resume replayed all)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
