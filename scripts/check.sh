#!/usr/bin/env bash
# Repo health check: byte-compile everything, then run the tier-1 suite.
#
#   ./scripts/check.sh            # fast (default REPRO_SCALE)
#   ./scripts/check.sh -k engine  # extra args forwarded to pytest

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src benchmarks scripts

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== nn + verify tests, warnings as errors =="
# The numerics tree must be warning-clean: a RuntimeWarning (overflow,
# invalid value) from a kernel is a latent divergence, not noise.
python -m pytest -x -q -W error tests/nn tests/verify

echo "== verify smoke (compiled plans + cross-engine differential) =="
# Fuzzes the compiled infer/grad/train plans against float64 autograd,
# including the zero-budget replay checks (plan buffer-reuse hazards).
REPRO_VERIFY=1 python -m repro verify --seed 0 --cases 6

echo "== runner smoke (kill mid-flight, resume, diff vs clean) =="
python scripts/runner_smoke.py

echo "== gradient-engine benchmark (smoke) =="
python benchmarks/bench_grad_throughput.py --smoke > /dev/null
echo "ok"

echo "== training-engine benchmark (smoke) =="
python benchmarks/bench_train_throughput.py --smoke > /dev/null
echo "ok"

echo "== compiled-plan benchmark (smoke) =="
python benchmarks/bench_plan_throughput.py --smoke > /dev/null
echo "ok"
