#!/usr/bin/env bash
# Repo health check: byte-compile everything, then run the tier-1 suite.
#
#   ./scripts/check.sh            # fast (default REPRO_SCALE)
#   ./scripts/check.sh -k engine  # extra args forwarded to pytest

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src benchmarks scripts

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== nn + verify tests, warnings as errors =="
# The numerics tree must be warning-clean: a RuntimeWarning (overflow,
# invalid value) from a kernel is a latent divergence, not noise.
python -m pytest -x -q -W error tests/nn tests/verify

echo "== verify smoke (compiled plans + cross-engine differential) =="
# Fuzzes the compiled infer/grad/train plans against float64 autograd,
# including the zero-budget replay checks (plan buffer-reuse hazards).
REPRO_VERIFY=1 python -m repro verify --seed 0 --cases 6

echo "== runner smoke (kill mid-flight, resume, diff vs clean) =="
python scripts/runner_smoke.py

echo "== pool smoke (2 lease workers, SIGKILL mid-lease, reclaim, resume) =="
python scripts/pool_smoke.py

echo "== gradient-engine benchmark (smoke) =="
python benchmarks/bench_grad_throughput.py --smoke > /dev/null
echo "ok"

echo "== training-engine benchmark (smoke) =="
python benchmarks/bench_train_throughput.py --smoke > /dev/null
echo "ok"

echo "== compiled-plan benchmark (smoke) =="
python benchmarks/bench_plan_throughput.py --smoke > /dev/null
echo "ok"

echo "== pool-scaling benchmark (smoke) =="
python benchmarks/bench_pool_scaling.py --smoke > /dev/null
echo "ok"

echo "== serve smoke (threaded coalescing, backpressure, bitwise equivalence) =="
python scripts/serve_smoke.py

echo "== serve-pool smoke (2 workers, SLO admission, SIGKILL mid-stream) =="
python scripts/serve_pool_smoke.py

echo "== serve-remote smoke (framed TCP, chaos retries, deadline shed, server SIGKILL) =="
python scripts/serve_remote_smoke.py

echo "== serve-latency benchmark (smoke) =="
python benchmarks/bench_serve_latency.py --smoke > /dev/null
echo "ok"

echo "== perf smoke (bench regression gate vs committed baseline, warn-only) =="
# A --smoke run is context-mismatched with the committed full baseline by
# design; the gate reports drift without failing CI.  Full runs gate hard:
#   python benchmarks/bench_plan_throughput.py --out /tmp/bench.json
#   python -m repro bench --compare BENCH_plan_throughput.json /tmp/bench.json
python benchmarks/bench_plan_throughput.py --smoke --out /tmp/bench_plan_smoke.json > /dev/null
python -m repro bench --compare BENCH_plan_throughput.json /tmp/bench_plan_smoke.json --warn-only
python benchmarks/bench_serve_latency.py --smoke --out /tmp/bench_serve_smoke.json > /dev/null
python -m repro bench --compare BENCH_serve_latency.json /tmp/bench_serve_smoke.json --warn-only
