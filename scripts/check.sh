#!/usr/bin/env bash
# Repo health check: byte-compile everything, then run the tier-1 suite.
#
#   ./scripts/check.sh            # fast (default REPRO_SCALE)
#   ./scripts/check.sh -k engine  # extra args forwarded to pytest

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src benchmarks scripts

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== gradient-engine benchmark (smoke) =="
python benchmarks/bench_grad_throughput.py --smoke > /dev/null
echo "ok"

echo "== training-engine benchmark (smoke) =="
python benchmarks/bench_train_throughput.py --smoke > /dev/null
echo "ok"
