"""Fig. 4 — corrector accuracy and running time for different m.

Paper shape: recovery accuracy is essentially flat in m (even m=10-50 is
enough for the majority vote to stabilise) while running time grows
linearly — the observation that justifies the corrector's m=50 versus
RC's m=1000.
"""

import numpy as np

from conftest import report
from repro.eval import fig4_corrector_sweep, format_fig4


def test_fig4_corrector_m_sweep(benchmark, mnist_ctx):
    rows = benchmark.pedantic(fig4_corrector_sweep, args=(mnist_ctx,), rounds=1, iterations=1)
    report("Fig. 4 (MNIST substitute)", format_fig4(rows, mnist_ctx.dataset.name))

    ms = np.array([row["m"] for row in rows], dtype=float)
    accuracy = np.array([row["recovery_accuracy"] for row in rows])
    seconds = np.array([row["seconds"] for row in rows])

    # Accuracy flat in m: best and worst beyond m=25 within a few points.
    beyond = accuracy[ms >= 25]
    assert beyond.max() - beyond.min() < 0.10
    # m=50 (the paper's choice) already recovers the bulk of examples.
    at_50 = accuracy[ms == 50][0]
    assert at_50 > 0.8
    # Runtime ~linear in m: strong correlation and >5x spread across sweep.
    assert np.corrcoef(ms, seconds)[0, 1] > 0.95
    assert seconds[-1] > 5 * seconds[0]
