"""Ablation — alternative correctors (paper Sec. 6, "Other correctors").

The paper identifies the corrector as DCN's accuracy bottleneck and asks
for better ones.  This bench compares the default hard-majority hypercube
vote against soft voting, Gaussian sampling, and an iterative re-centring
variant, on both CW-L2 (easy) and CW-L0 (the hard case the paper calls
out) adversarial pools.
"""

import time

import numpy as np

from conftest import report
from repro.core import Corrector, GaussianCorrector, IterativeCorrector, SoftVoteCorrector


def test_ablation_other_correctors(benchmark, mnist_ctx):
    ctx = mnist_ctx
    pools = {"cw-l2": ctx.pool("cw-l2"), "cw-l0": ctx.pool("cw-l0")}
    correctors = {
        "majority (paper)": Corrector(ctx.model, ctx.radius, samples=50, seed=3),
        "soft-vote": SoftVoteCorrector(ctx.model, ctx.radius, samples=50, seed=3),
        "gaussian": GaussianCorrector(ctx.model, ctx.radius, samples=50, seed=3),
        "iterative": IterativeCorrector(ctx.model, ctx.radius, samples=50, rounds=3, seed=3),
    }

    def run():
        rows = {}
        for name, corrector in correctors.items():
            row = {}
            for pool_name, pool in pools.items():
                adv, labels, _ = pool.successful()
                start = time.perf_counter()
                recovered = corrector.correct(adv)
                row[pool_name] = float((recovered == labels).mean())
                row[f"{pool_name}_seconds"] = time.perf_counter() - start
            rows[name] = row
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'corrector':>18} {'CW-L2 recov':>12} {'CW-L0 recov':>12} {'L2 time':>9}"]
    for name, row in rows.items():
        lines.append(
            f"{name:>18} {row['cw-l2']:>11.1%} {row['cw-l0']:>11.1%} {row['cw-l2_seconds']:>8.2f}s"
        )
    report("Ablation — alternative correctors (MNIST substitute)", "\n".join(lines))

    baseline = rows["majority (paper)"]
    # Every corrector recovers most L2 adversarials.
    for name, row in rows.items():
        assert row["cw-l2"] > 0.7, name
    # L0 is harder than L2 for the paper's corrector — its stated weakness.
    assert baseline["cw-l0"] <= baseline["cw-l2"] + 0.05
    # The iterative variant addresses exactly that case: it must not be
    # worse than the baseline on L0.
    assert rows["iterative"]["cw-l0"] >= baseline["cw-l0"] - 0.05
