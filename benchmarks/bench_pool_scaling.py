"""Worker-pool scaling benchmark (standalone, JSON output).

Measures **units/second** of the lease-based worker pool at 1, 2 and 4
workers on a chunked Table-4/5-shaped plan, persisting
``BENCH_pool_scaling.json`` for the regression gate.  Two workloads:

* ``latency`` (default) — a synthetic plan with the exact key structure
  of ``plan_table45``'s eval chunks (defense x attack x seed-chunk) where
  each unit blocks for a fixed stall plus a small NumPy compute slice.
  This models the regime the pool exists for — units dominated by
  non-CPU latency (artifact loads, remote execution, the m=50 corrector
  fan-out waiting on a shared accelerator) — and therefore measures what
  the *pool layer itself* contributes: claim/heartbeat overhead over the
  shared ledger and how well concurrent leases overlap.  It scales on a
  single-core host, so CI can gate on it anywhere.
* ``table45`` — the real ``plan_table45`` eval units on ``mnist-fast``
  (artifact cache pre-warmed so crafting is excluded).  These are pure
  CPU, so their scaling ceiling is ``min(workers, physical cores)``; run
  this on a multicore host for end-to-end numbers.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_pool_scaling.py
    PYTHONPATH=src python benchmarks/bench_pool_scaling.py --workload table45
    PYTHONPATH=src python benchmarks/bench_pool_scaling.py --smoke

The acceptance bar: >= 2.5x units/sec at 4 workers vs 1 on the default
workload.  ``--smoke`` runs a tiny 1-vs-2-worker sweep for CI wiring and
does not enforce the bar.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_common import bench_context, write_payload
from repro.runner import FailurePolicy, PoolConfig, WorkerPool, WorkUnit

DEFENSES = ("standard", "distillation", "rc", "dcn")


def latency_plan(units_per_defense: int, stall_ms: float, compute: int) -> list[WorkUnit]:
    """A chunked table45-shaped plan of stall+compute units.

    Payloads are pure functions of the unit key (the plan contract), so
    byte-identity invariants hold at every worker count.
    """
    units = []
    for defense in DEFENSES:
        for chunk in range(units_per_defense):

            def fn(defense=defense, chunk=chunk):
                time.sleep(stall_ms / 1000.0)  # the modelled artifact/remote stall
                rng = np.random.default_rng([hash(defense) % (2**31), chunk])
                a = rng.standard_normal((compute, compute)).astype(np.float32)
                return {"checksum": float(np.abs(a @ a.T).sum()), "chunk": chunk}

            units.append(
                WorkUnit(
                    experiment="poolbench",
                    dataset="synthetic",
                    defense=defense,
                    attack="cw-l2",
                    chunk=f"seeds{chunk:03d}",
                    fn=fn,
                )
            )
    return units


def table45_plan() -> list[WorkUnit]:
    """The real chunked Table 4/5 eval units, cache pre-warmed."""
    import dataclasses

    from repro.eval import build_context, scale_config
    from repro.runner import Runner
    from repro.runner import experiments as plans

    scale = dataclasses.replace(scale_config("fast"), rc_samples=100)
    ctx = build_context("mnist-fast", scale)
    units = plans.plan_table45(ctx, attacks=("cw-l2",), chunk_seeds=1)
    setup = [u for u in units if u.chunk in ("setup", "craft")]
    evals = [u for u in units if u.chunk.startswith("seeds")]
    # Warm defenses/pools sequentially so the timed sweep measures eval
    # units only, all loading the same cached artifacts.
    warm = Runner(ledger=None).run(setup)
    assert warm.ok, f"warm-up failed: {warm.failed}"
    return evals


def sweep(units: list[WorkUnit], worker_counts: tuple[int, ...], lease_ttl: float) -> dict:
    results = {}
    for workers in worker_counts:
        with tempfile.TemporaryDirectory(prefix="bench-pool-") as tmp:
            pool = WorkerPool(
                Path(tmp) / "ledger.jsonl",
                policy=FailurePolicy(max_attempts=2),
                config=PoolConfig(workers=workers, lease_ttl=lease_ttl, poll_interval=0.02),
            )
            start = time.perf_counter()
            result = pool.run(units, resume=False)
            seconds = time.perf_counter() - start
        assert result.ok, f"pool run failed at {workers} workers: {result.failed}"
        assert len(result.executed) == len(units)
        results[f"workers-{workers}"] = {
            "workers": workers,
            "units": len(units),
            "seconds": seconds,
            "units_per_sec": len(units) / seconds,
        }
    return results


def run(workload: str, units_per_defense: int, stall_ms: float, compute: int,
        worker_counts: tuple[int, ...], lease_ttl: float) -> dict:
    if workload == "table45":
        units = table45_plan()
    else:
        units = latency_plan(units_per_defense, stall_ms, compute)

    results = sweep(units, worker_counts, lease_ttl)
    base = results[f"workers-{worker_counts[0]}"]["units_per_sec"]
    speedups = {
        f"speedup_{w}x": results[f"workers-{w}"]["units_per_sec"] / base
        for w in worker_counts[1:]
    }
    top = worker_counts[-1]
    return {
        "context": bench_context(
            workload=workload,
            units=len(units),
            stall_ms=stall_ms if workload == "latency" else None,
            compute=compute if workload == "latency" else None,
            worker_counts=list(worker_counts),
            lease_ttl=lease_ttl,
            cpu_count=os.cpu_count(),
        ),
        "results": results,
        **speedups,
        "meets_2p5x_bar": bool(speedups.get(f"speedup_{top}x", 0.0) >= 2.5 and top >= 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", choices=("latency", "table45"), default="latency")
    parser.add_argument("--units-per-defense", type=int, default=12)
    parser.add_argument("--stall-ms", type=float, default=100.0)
    parser.add_argument("--compute", type=int, default=48, help="matmul size of the CPU slice")
    parser.add_argument("--lease-ttl", type=float, default=5.0)
    parser.add_argument("--out", type=Path, default=None, help="JSON path override")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny 1-vs-2-worker sweep, no JSON write, never fails the bar (CI wiring)",
    )
    args = parser.parse_args(argv)
    worker_counts = (1, 2) if args.smoke else (1, 2, 4)
    if args.smoke:
        args.units_per_defense, args.stall_ms = 2, 30.0
    if min(args.units_per_defense, args.compute) < 1 or args.stall_ms < 0:
        parser.error("--units-per-defense/--compute must be >= 1, --stall-ms >= 0")

    payload = run(
        args.workload, args.units_per_defense, args.stall_ms, args.compute,
        worker_counts, args.lease_ttl,
    )
    print(json.dumps(payload, indent=2))
    if args.out is not None or not args.smoke:
        path = write_payload("pool_scaling", payload, out=args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.smoke:
        return 0
    return 0 if payload["meets_2p5x_bar"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
