"""Table 3 — classification accuracy and overall runtime on benign inputs.

Paper shape: DCN matches the standard DNN's accuracy exactly (the detector
passes benign inputs through); distillation is slightly lower; RC is
comparable in accuracy but orders of magnitude slower because it always
pays m=1000 predictions per input.
"""

from conftest import report
from repro.eval import format_table3, table3_benign_performance


def test_table3_benign_performance(benchmark, mnist_ctx, cifar_ctx):
    rows = {}
    for ctx in (mnist_ctx, cifar_ctx):
        rows[ctx.dataset.name] = benchmark.pedantic(
            table3_benign_performance, args=(ctx,), rounds=1, iterations=1
        ) if ctx is mnist_ctx else table3_benign_performance(ctx)
    report("Table 3", format_table3(rows))

    for dataset, row in rows.items():
        standard = row["standard"]["accuracy"]
        # DCN preserves benign accuracy (paper: identical to the baseline).
        assert abs(row["dcn"]["accuracy"] - standard) <= 0.02, dataset
        # RC pays for its m=1000 votes: far slower than both.
        assert row["rc"]["seconds"] > 10 * row["dcn"]["seconds"], dataset
        assert row["rc"]["seconds"] > 10 * row["standard"]["seconds"], dataset
        # DCN overhead over the raw model stays bounded on benign traffic:
        # it is the detector pass plus the corrector on the few false
        # negatives (the CIFAR detector flags ~12% of benign inputs, so
        # its factor is higher than MNIST's ~2x, but still far below RC).
        assert row["dcn"]["seconds"] < 25 * row["standard"]["seconds"], dataset
