"""Throughput benchmark for the GradientEngine (standalone, JSON output).

Measures the digits-CNN input-gradient paths that dominate the paper's
attack evaluation, each as ``legacy`` (float64 autograd graph) vs
``engine`` (fused float32 kernels):

* ``fgsm-batch``    — one batched cross-entropy gradient (the FGSM step)
* ``cw-l2-inner``   — iterations of the CW-L2 objective (margin gradient
                      plus the tanh/distance chain rule, the attack's hot
                      loop)
* ``jacobian``      — the full 10-class logits Jacobian (JSMA/DeepFool);
                      the engine does 1 forward + 10 seeded backwards,
                      the legacy path 10 full forward+backward passes

Run as a script::

    PYTHONPATH=src python benchmarks/bench_grad_throughput.py
    PYTHONPATH=src python benchmarks/bench_grad_throughput.py --out bench.json
    PYTHONPATH=src python benchmarks/bench_grad_throughput.py --smoke

The acceptance bar from the gradient-engine refactor: the engine must beat
legacy by >= 1.5x on ``cw-l2-inner`` and ``jacobian``.  ``--smoke`` runs a
tiny configuration for CI wiring and does not enforce the bar.

Full (non-smoke) runs persist ``BENCH_grad_throughput.json`` with the
provenance context (git SHA, NumPy, dataset fingerprint) the
``python -m repro bench --compare`` regression gate diffs against.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_common import bench_context, dataset_fingerprint, write_payload
from repro.attacks.cw import _margin_loss, _to_w
from repro.nn import GradientEngine, Tensor, losses, ops
from repro.zoo import model_for_dataset


def timeit(fn, repeats):
    """Best-of-``repeats`` wall clock (seconds) for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- legacy (autograd) reference implementations --------------------------------


def legacy_cross_entropy_grad(network, x, labels):
    inp = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    logits = network.forward(inp)
    targets = losses.one_hot(labels, logits.shape[-1])
    log_probs = ops.log_softmax(logits)
    ops.mul(ops.sum_(ops.mul(log_probs, targets)), -1.0).backward()
    return inp.grad


def legacy_jacobian(network, x):
    num_classes = network.num_classes
    rows = np.empty((len(x), num_classes) + x.shape[1:])
    for c in range(num_classes):
        inp = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
        logits = network.forward(inp)
        selector = np.zeros(logits.shape)
        selector[:, c] = 1.0
        ops.sum_(ops.mul(logits, selector)).backward()
        rows[:, c] = inp.grad
    return rows


def legacy_cw_inner(network, x, onehot, c, iterations):
    """The pre-engine CW-L2 inner loop: full autograd graph per iteration."""
    axes = tuple(range(1, x.ndim))
    w = _to_w(x)
    for _ in range(iterations):
        w_tensor = Tensor(w, requires_grad=True)
        candidate = ops.mul(ops.tanh(w_tensor), 0.5)
        delta = candidate - Tensor(x)
        l2_sq = ops.sum_(ops.mul(delta, delta), axis=axes)
        logits = network.forward(candidate)
        f = _margin_loss(logits, onehot, 0.0)
        ops.sum_(l2_sq + ops.mul(f, Tensor(c))).backward()
        w = w - 0.01 * w_tensor.grad
    return w


def engine_cw_inner(engine, x, target_labels, c, iterations):
    """The engine-backed CW-L2 inner loop (matches attacks/cw.py)."""
    axes = tuple(range(1, x.ndim))
    c_cols = c.reshape((-1,) + (1,) * len(axes))
    w = _to_w(x)
    for _ in range(iterations):
        tanh_w = np.tanh(w)
        candidate = tanh_w * 0.5
        delta = candidate - x
        grad_f, _, _ = engine.margin_input_grad(candidate, target_labels, 0.0)
        grad = (2.0 * delta + c_cols * grad_f) * (0.5 * (1.0 - tanh_w * tanh_w))
        w = w - 0.01 * grad
    return w


# -- benchmark ------------------------------------------------------------------


def run(n_examples: int, cw_examples: int, cw_iterations: int, repeats: int) -> dict:
    dataset, model = model_for_dataset("mnist-fast")
    rng = np.random.default_rng(0)
    x = dataset.x_test[:n_examples]
    labels = dataset.y_test[:n_examples]
    num_classes = model.num_classes

    x_cw = dataset.x_test[:cw_examples]
    targets_cw = (dataset.y_test[:cw_examples] + 1) % num_classes
    onehot_cw = losses.one_hot(targets_cw, num_classes)
    c_cw = np.full(cw_examples, 1.0)

    engine = GradientEngine(model)  # float32 default

    workloads = {
        "fgsm-batch": {
            "legacy": lambda: legacy_cross_entropy_grad(model, x, labels),
            "engine": lambda: engine.cross_entropy_input_grad(x, labels),
            "unit": "examples",
            "amount": len(x),
        },
        "cw-l2-inner": {
            "legacy": lambda: legacy_cw_inner(model, x_cw, onehot_cw, c_cw, cw_iterations),
            "engine": lambda: engine_cw_inner(engine, x_cw, targets_cw, c_cw, cw_iterations),
            "unit": "iterations",
            "amount": cw_iterations,
        },
        "jacobian": {
            "legacy": lambda: legacy_jacobian(model, x),
            "engine": lambda: engine.jacobian(x),
            "unit": "examples",
            "amount": len(x),
        },
    }

    results = {}
    for name, spec in workloads.items():
        entry = {"unit": spec["unit"], "amount": spec["amount"]}
        for variant in ("legacy", "engine"):
            fn = spec[variant]
            fn()  # warm up caches (parameter casts, im2col indices, BLAS)
            seconds = timeit(fn, repeats)
            entry[variant] = {
                "seconds": seconds,
                f"{spec['unit']}_per_sec": spec["amount"] / seconds,
            }
        entry["speedup"] = entry["legacy"]["seconds"] / entry["engine"]["seconds"]
        results[name] = entry

    # Numerical sanity alongside the throughput claim.
    reference = legacy_cross_entropy_grad(model, x, labels)
    f32 = engine.cross_entropy_input_grad(x, labels)
    scale = max(float(np.abs(reference).max()), 1e-12)
    bar = (
        results["cw-l2-inner"]["speedup"] >= 1.5 and results["jacobian"]["speedup"] >= 1.5
    )
    return {
        "context": bench_context(
            dataset=dataset.name,
            dataset_fingerprint=dataset_fingerprint(x),
            examples=len(x),
            cw_examples=len(x_cw),
            cw_iterations=cw_iterations,
            repeats=repeats,
        ),
        "dataset": dataset.name,
        "examples": len(x),
        "cw_examples": len(x_cw),
        "cw_iterations": cw_iterations,
        "repeats": repeats,
        "results": results,
        "f32_max_rel_error": float(np.abs(f32.astype(np.float64) - reference).max() / scale),
        "grad_counters": engine.counters.as_dict(),
        "meets_1p5x_bar": bool(bar),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--examples", type=int, default=256)
    parser.add_argument("--cw-examples", type=int, default=64)
    parser.add_argument("--cw-iterations", type=int, default=30)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=None, help="also write JSON here")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, single repeat, never fails the speedup bar (CI wiring)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.examples, args.cw_examples, args.cw_iterations, args.repeats = 32, 8, 3, 1
    if min(args.examples, args.cw_examples, args.cw_iterations, args.repeats) < 1:
        parser.error("--examples/--cw-examples/--cw-iterations/--repeats must be >= 1")

    payload = run(args.examples, args.cw_examples, args.cw_iterations, args.repeats)
    text = json.dumps(payload, indent=2)
    print(text)
    if args.out:
        args.out.write_text(text + "\n")
    elif not args.smoke:
        path = write_payload("grad_throughput", payload)
        print(f"wrote {path}", file=sys.stderr)
    if args.smoke:
        return 0
    return 0 if payload["meets_1p5x_bar"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
