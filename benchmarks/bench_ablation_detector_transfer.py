"""Ablation — detector transfer across attack families.

The paper trains the detector on CW-L2 only and tests it against the
other CW variants (Tab. 4/5) and, in Sec. 6, against FGSM/JSMA/DeepFool.
This benchmark isolates pure *detection* rates per attack family.

Shape expectation: near-perfect detection of the minimal-distortion
attacks (CW-L0/L2/L∞, DeepFool — all stop right at the decision boundary,
which is the logit signature the detector learned), and weaker detection
of crude high-distortion attacks like FGSM whose logits can be confident.
"""

import numpy as np

from conftest import report
from repro.attacks import DeepFool, FGSM, IGSM
from repro.eval.adversarial_sets import select_correct_seeds


def test_ablation_detector_transfer(benchmark, mnist_ctx):
    ctx = mnist_ctx
    detector = ctx.dcn.detector
    rng = np.random.default_rng(909)
    x, y, _ = select_correct_seeds(
        ctx.model, ctx.dataset, ctx.scale.robustness_seeds, rng,
        exclude=detector.train_seed_indices,
    )

    def run():
        rows = {}
        # Cross-metric CW pools (cached) — trained on L2 only.
        for attack_name in ("cw-l2", "cw-l0", "cw-linf"):
            pool = ctx.pool(attack_name)
            adv, _, _ = pool.successful()
            rows[attack_name] = float(detector.flag_images(ctx.model, adv).mean())
        # Other families crafted fresh (untargeted).
        for name, attack in (
            ("deepfool", DeepFool(max_steps=30)),
            ("igsm", IGSM(epsilon=0.15, alpha=0.02, steps=15)),
            ("fgsm", FGSM(epsilon=0.25)),
        ):
            result = attack.perturb(ctx.model, x, y)
            if result.success.any():
                rows[name] = float(
                    detector.flag_images(ctx.model, result.adversarial[result.success]).mean()
                )
            else:
                rows[name] = float("nan")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'attack':>10} {'detection rate':>15}"]
    for name, rate in rows.items():
        lines.append(f"{name:>10} {rate:>14.2%}")
    report("Ablation — detector transfer (trained on CW-L2 only)", "\n".join(lines))

    # Minimal-distortion attacks are detected nearly always.
    assert rows["cw-l2"] > 0.9
    assert rows["cw-l0"] > 0.7
    assert rows["cw-linf"] > 0.7
    assert rows["deepfool"] > 0.7
