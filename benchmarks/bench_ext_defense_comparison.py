"""Extension — DCN vs the related-work defenses the paper only discusses.

Sec. 2.3 surveys feature squeezing and MagNet without measuring them, and
the intro cites adversarial training.  This bench adds them to the paper's
comparison on the untargeted CW-L2 pool:

* detection-only methods (feature squeezing, MagNet detector, margin
  threshold) are scored on detection rate,
* label-producing methods (MagNet reformer, adversarial training, DCN) on
  attack success rate.
"""

import numpy as np

from conftest import report
from repro.core import MarginThresholdDetector
from repro.defenses import FeatureSqueezingDetector, MagNet, train_adversarial
from repro.eval import attack_success_rate, untargeted_from_pool
from repro.zoo import MODEL_CONFIGS


def test_ext_defense_comparison(benchmark, mnist_ctx):
    ctx = mnist_ctx
    pool = ctx.pool("cw-l2")
    untargeted = untargeted_from_pool(pool, metric="l2")
    adv = untargeted.adversarial[untargeted.success]
    rng = np.random.default_rng(444)
    benign_x, benign_y, _ = ctx.dataset.sample_test(
        200, rng, exclude=ctx.dcn.detector.train_seed_indices
    )

    def run():
        results = {}

        # --- detectors: (benign flag rate, adversarial detection rate) ----
        squeezer = FeatureSqueezingDetector(ctx.model)
        squeezer.calibrate(benign_x[:100], false_positive_rate=0.05)
        margin = MarginThresholdDetector()
        margin.calibrate(ctx.model.logits(benign_x[:100]), false_negative_rate=0.05)
        magnet = MagNet.build(ctx.model, ctx.dataset, cache=ctx.cache)
        eval_benign = benign_x[100:]
        results["detectors"] = {
            "dcn-detector": (
                float(ctx.dcn.detector.flag_images(ctx.model, eval_benign).mean()),
                float(ctx.dcn.detector.flag_images(ctx.model, adv).mean()),
            ),
            "margin-threshold": (
                float(margin.flag_images(ctx.model, eval_benign).mean()),
                float(margin.flag_images(ctx.model, adv).mean()),
            ),
            "feature-squeezing": (
                float(squeezer.is_adversarial(eval_benign).mean()),
                float(squeezer.is_adversarial(adv).mean()),
            ),
            "magnet-detector": (
                float(magnet.is_adversarial(eval_benign).mean()),
                float(magnet.is_adversarial(adv).mean()),
            ),
        }

        # --- classifiers: (benign accuracy, attack success) ---------------
        model_name = "cnn-fast" if ctx.dataset.name == "mnist-fast" else "cnn-fast-wide"
        hardened = train_adversarial(ctx.dataset, MODEL_CONFIGS[model_name], cache=ctx.cache)
        # Note: the pool is crafted white-box against the *standard* model.
        # That is the right threat model for the wrappers (MagNet, DCN)
        # whose protected model is the standard DNN, but the hardened
        # model's row is a transfer attack — flagged in its name.
        classifiers = {
            "standard": ctx.standard,
            "magnet-reformer": magnet,
            "adv-training (transfer)": hardened,
            "dcn": ctx.dcn,
        }
        results["classifiers"] = {
            name: (
                float((clf.classify(eval_benign) == benign_y[100:]).mean()),
                attack_success_rate(clf, untargeted),
            )
            for name, clf in classifiers.items()
        }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'detector':>18} {'benign flagged':>15} {'adv detected':>13}"]
    for name, (benign_rate, detection) in results["detectors"].items():
        lines.append(f"{name:>18} {benign_rate:>14.1%} {detection:>12.1%}")
    lines.append("")
    lines.append(f"{'classifier':>18} {'benign acc':>15} {'CW-L2 success':>14}")
    for name, (accuracy, success) in results["classifiers"].items():
        lines.append(f"{name:>18} {accuracy:>14.1%} {success:>13.1%}")
    report("Extension — related-work defenses vs DCN (MNIST substitute)", "\n".join(lines))

    detectors = results["detectors"]
    classifiers = results["classifiers"]
    # The learned detector dominates the survey methods on CW-L2 detection.
    assert detectors["dcn-detector"][1] >= detectors["feature-squeezing"][1] - 0.05
    assert detectors["dcn-detector"][1] >= detectors["magnet-detector"][1] - 0.05
    assert detectors["dcn-detector"][1] > 0.85
    # DCN beats the undefended model and adversarial training on CW.
    assert classifiers["dcn"][1] < classifiers["standard"][1]
    assert classifiers["dcn"][1] <= classifiers["adv-training (transfer)"][1] + 0.05
    # Nobody sacrifices benign accuracy catastrophically.
    for name, (accuracy, _) in classifiers.items():
        assert accuracy > 0.75, name
