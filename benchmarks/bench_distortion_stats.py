"""Distortion statistics of the CW pools (CW-paper-style table).

Verifies the premise the DCN paper inherits from Carlini & Wagner: each
attack variant minimises its own metric — CW-L0 touches the fewest pixels,
CW-L2 has the smallest Euclidean distortion, CW-L∞ the smallest maximum
change — and that the L0 examples are the "spotty", further-out ones that
the corrector struggles with (Sec. 5.3's explanation).
"""

from conftest import report
from repro.eval.distortions import format_distortion_table, pool_distortion_summary


def test_distortion_stats(benchmark, mnist_ctx):
    ctx = mnist_ctx

    def run():
        return {
            attack: pool_distortion_summary(ctx.pool(attack))
            for attack in ("cw-l0", "cw-l2", "cw-linf")
        }

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "CW distortion statistics (MNIST substitute)",
        format_distortion_table(summaries, ctx.dataset.name),
    )

    # Each attack wins under its own metric.
    assert summaries["cw-l0"]["l0"]["mean"] <= summaries["cw-l2"]["l0"]["mean"]
    assert summaries["cw-l0"]["l0"]["mean"] <= summaries["cw-linf"]["l0"]["mean"]
    assert summaries["cw-l2"]["l2"]["mean"] <= summaries["cw-l0"]["l2"]["mean"]
    assert summaries["cw-linf"]["linf"]["mean"] <= summaries["cw-l0"]["linf"]["mean"]
    # Sec. 5.3's observation: the L0 attack changes few pixels but changes
    # them a lot (larger max per-pixel change than the L∞ attack).
    assert summaries["cw-l0"]["linf"]["mean"] > summaries["cw-linf"]["linf"]["mean"]
