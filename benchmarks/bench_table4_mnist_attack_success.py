"""Table 4 — success rate of the six CW attack variants on MNIST.

Paper shape (MNIST): every attack achieves ~100% against the standard DNN
and distillation; RC collapses L2/L∞ success to <10% but only halves L0;
DCN is at least as strong as RC everywhere, with L2/L∞ success near zero
and the residual success concentrated in L0.
"""

from conftest import report
from repro.eval import format_table45, table45_robustness


def test_table4_mnist_attack_success(benchmark, mnist_ctx):
    rows = benchmark.pedantic(table45_robustness, args=(mnist_ctx,), rounds=1, iterations=1)
    report("Table 4 (MNIST substitute)", format_table45(rows, mnist_ctx.dataset.name, coverage=True))

    # A benchmark number from a partially-covered run is not comparable:
    # every planned work unit must have completed.
    for defense, cells in rows.items():
        for attack, cell in cells.items():
            ok, total = cell["coverage"]
            assert ok == total, (defense, attack, cell["coverage"])

    for attack in ("cw-l0", "cw-l2", "cw-linf"):
        for mode in ("targeted", "untargeted"):
            standard = rows["standard"][attack][mode]
            distilled = rows["distillation"][attack][mode]
            rc = rows["rc"][attack][mode]
            dcn = rows["dcn"][attack][mode]
            # CW defeats the undefended and distilled models.
            assert standard > 0.85, (attack, mode, standard)
            assert distilled > 0.6, (attack, mode, distilled)
            # The recovery defenses beat no-defense decisively.
            assert dcn < standard - 0.3, (attack, mode, dcn)
            # DCN is competitive with RC (paper: at least as good).
            assert dcn <= rc + 0.12, (attack, mode, dcn, rc)

    # L2 is the paper's headline: DCN mitigates ~99% of targeted L2 attacks.
    assert rows["dcn"]["cw-l2"]["targeted"] < 0.15
    assert rows["dcn"]["cw-linf"]["targeted"] < 0.15
    # L0 remains the hardest metric for region-based correction.
    assert rows["dcn"]["cw-l0"]["targeted"] >= rows["dcn"]["cw-l2"]["targeted"]
