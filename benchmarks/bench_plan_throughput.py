"""Throughput benchmark for the compiled-plan layer (standalone, JSON output).

Measures the serving-shaped hot path — *repeated same-shape batched
inference* on the digits CNN — two ways:

* ``percall``  — the pre-plan engine execution: one allocating closure per
  layer, shapes re-decided and every temporary re-allocated on each call
  (:func:`repro.nn.kernels.build_percall_infer_kernels`, kept precisely as
  this baseline);
* ``plan``     — the compiled-plan engine path: the layer stack lowered
  once per batch shape into arena-preallocated, fusion-folded ops, served
  from the engine's plan cache (:mod:`repro.nn.plan`).

Both regimes of the DCN serving asymmetry are timed: the detector-gated
single-request forward (batch 1) and the corrector's fused fan-out batch.
Run as a script::

    PYTHONPATH=src python benchmarks/bench_plan_throughput.py
    PYTHONPATH=src python benchmarks/bench_plan_throughput.py --smoke

The acceptance bar from the plan-compiler refactor: ``plan`` must beat
``percall`` by >= 1.3x examples/second on the fan-out batch regime.
Results (with provenance context) are persisted to
``BENCH_plan_throughput.json`` for the bench-regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_common import bench_context, dataset_fingerprint, write_payload
from repro.nn import InferenceEngine
from repro.nn.kernels import build_percall_infer_kernels
from repro.zoo import model_for_dataset


def percall_forward(kernels, x: np.ndarray, dtype) -> np.ndarray:
    out = np.ascontiguousarray(x, dtype=dtype)
    for kernel in kernels:
        out = kernel(out)
    return out


def make_percall_runner(network, dtype):
    """The pre-plan execution with the same cast-cache the engines use."""
    casts: dict[int, np.ndarray] = {}

    def cast(param):
        cached = casts.get(id(param))
        if cached is None:
            cached = np.ascontiguousarray(param.data, dtype=dtype)
            casts[id(param)] = cached
        return cached

    kernels = build_percall_infer_kernels(network, cast)
    assert kernels is not None, "benchmark model must lower to per-call kernels"
    return lambda x: percall_forward(kernels, x, dtype)


def timeit(fn, repeats):
    """Best-of-``repeats`` wall clock (seconds) for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(run_once, batch: np.ndarray, calls: int, repeats: int) -> dict:
    """Time ``calls`` repeated same-shape forwards (the serving regime)."""

    def loop():
        for _ in range(calls):
            run_once(batch)

    run_once(batch)  # warm up: plan compilation / cast cache / BLAS
    seconds = timeit(loop, repeats)
    return {
        "seconds": seconds,
        "calls": calls,
        "batch": len(batch),
        "examples_per_sec": calls * len(batch) / seconds,
    }


def run(batch_size: int, calls: int, repeats: int) -> dict:
    dataset, model = model_for_dataset("mnist-fast")
    dtype = np.float32
    fanout = np.ascontiguousarray(dataset.x_test[:batch_size], dtype=dtype)
    single = fanout[:1]

    percall = make_percall_runner(model, dtype)
    engine = InferenceEngine(model, dtype=dtype, memo_entries=0)
    plan = lambda x: engine.logits(x, memo=False)  # noqa: E731

    results = {
        "percall-batch": measure(percall, fanout, calls, repeats),
        "plan-batch": measure(plan, fanout, calls, repeats),
        "percall-single": measure(percall, single, calls, repeats),
        "plan-single": measure(plan, single, calls, repeats),
    }

    # Numerical sanity alongside the throughput claim: both paths compute
    # the same fused math, so they must agree to f32 roundoff.
    ref = percall(fanout)
    out = engine.logits(fanout, memo=False)
    max_abs = float(np.max(np.abs(out.astype(np.float64) - ref.astype(np.float64))))

    speedup = (
        results["plan-batch"]["examples_per_sec"] / results["percall-batch"]["examples_per_sec"]
    )
    single_speedup = (
        results["plan-single"]["examples_per_sec"] / results["percall-single"]["examples_per_sec"]
    )
    return {
        "context": bench_context(
            dataset=dataset.name,
            dataset_fingerprint=dataset_fingerprint(fanout),
            batch_size=batch_size,
            calls=calls,
            repeats=repeats,
        ),
        "results": results,
        "plan_vs_percall_speedup": speedup,
        "plan_vs_percall_single_speedup": single_speedup,
        "max_abs_error_vs_percall": max_abs,
        "label_agreement": float((out.argmax(-1) == ref.argmax(-1)).mean()),
        "plan_counters": engine.counters.as_dict(),
        "meets_1p3x_bar": bool(speedup >= 1.3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--calls", type=int, default=50)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=None, help="JSON path override")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, single repeat, no JSON write, never fails the bar (CI wiring)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.batch_size, args.calls, args.repeats = 8, 3, 1
    if min(args.batch_size, args.calls, args.repeats) < 1:
        parser.error("--batch-size/--calls/--repeats must be >= 1")

    payload = run(args.batch_size, args.calls, args.repeats)
    print(json.dumps(payload, indent=2))
    # --out writes even under --smoke, so the CI perf-smoke stage can feed
    # its (tiny, context-mismatched) result to `repro bench --compare`.
    if args.out is not None or not args.smoke:
        path = write_payload("plan_throughput", payload, out=args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.smoke:
        return 0
    return 0 if payload["meets_1p3x_bar"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
