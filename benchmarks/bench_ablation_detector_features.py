"""Ablation — which detector input representation works at this scale?

The paper asserts logits suffice (Sec. 3).  This ablation compares three
feature choices on identical training pools and held-out pools:

* raw logits (the paper's choice),
* sorted logits (this reproduction's default — margin becomes linear),
* softmax probabilities.

Shape expectation: all carry the signal; sorted logits dominate at our
training-set size, softmax compresses the scale information the paper's
Fig. 1 highlights.
"""

import numpy as np

from conftest import report
from repro.core.detector import ADVERSARIAL, BENIGN, build_detector_network, detector_training_data
from repro.eval.adversarial_sets import build_targeted_pool
from repro.nn import Adam, TrainConfig, fit


def _softmax(z):
    shifted = z - z.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


_FEATURES = {
    "raw-logits": lambda z: z,
    "sorted-logits": lambda z: np.sort(z, axis=1),
    "softmax": _softmax,
}


def test_ablation_detector_features(benchmark, mnist_ctx):
    ctx = mnist_ctx
    features, labels, indices = detector_training_data(
        ctx.model, ctx.dataset, ctx.scale.detector_seeds, seed=101, cache=ctx.cache
    )
    heldout = build_targeted_pool(
        ctx.model, ctx.dataset, "cw-l2", ctx.scale.table2_seeds, seed=202,
        exclude=indices, cache=ctx.cache,
    )
    benign_logits = ctx.model.logits(heldout.seeds)
    adv_images, _, _ = heldout.successful()
    adv_logits = ctx.model.logits(adv_images)

    def run():
        rows = {}
        for name, transform in _FEATURES.items():
            network = build_detector_network()
            fit(
                network,
                Adam(network.parameters(), lr=1e-2),
                transform(features),
                labels,
                TrainConfig(epochs=300, batch_size=64),
                np.random.default_rng(3),
            )
            flagged_benign = network.predict(transform(benign_logits)) == ADVERSARIAL
            missed_adv = network.predict(transform(adv_logits)) == BENIGN
            rows[name] = {
                "false_negative": float(flagged_benign.mean()),
                "false_positive": float(missed_adv.mean()),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'features':>15} {'FN (benign flagged)':>21} {'FP (adv missed)':>17}"]
    for name, row in rows.items():
        lines.append(f"{name:>15} {row['false_negative']:>20.2%} {row['false_positive']:>16.2%}")
    report("Ablation — detector feature representation", "\n".join(lines))

    # Every representation detects the bulk of adversarials...
    for name, row in rows.items():
        assert row["false_positive"] < 0.35, name
    # ...and sorting is at least as good as raw logits on both error rates.
    assert rows["sorted-logits"]["false_positive"] <= rows["raw-logits"]["false_positive"] + 0.02
    assert rows["sorted-logits"]["false_negative"] <= rows["raw-logits"]["false_negative"] + 0.02
