"""Throughput benchmark for the InferenceEngine (standalone, JSON output).

Measures the digits-CNN logits path four ways:

* ``legacy``        — the pre-engine float64 autograd forward, batched
* ``engine-f64``    — engine kernels at float64 (bit-compatible baseline)
* ``engine-f32``    — engine kernels at float32 (the default)
* ``engine-memo``   — engine with the memo warm (repeat-query regime)

Run as a script::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --out bench.json

The acceptance bar from the engine refactor: ``engine-f32`` must beat
``legacy`` by >= 1.5x examples/second.  Results (with provenance context:
git SHA, toolchain versions, run parameters) are persisted to
``BENCH_engine_throughput.json`` for the bench-regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_common import bench_context, dataset_fingerprint, write_payload
from repro.nn import InferenceEngine, Tensor, no_grad
from repro.zoo import model_for_dataset

BATCH_SIZE = 256


def legacy_logits(network, x):
    with no_grad():
        outputs = [
            network.forward(Tensor(x[begin : begin + BATCH_SIZE])).data
            for begin in range(0, len(x), BATCH_SIZE)
        ]
    return np.concatenate(outputs, axis=0)


def timeit(fn, repeats):
    """Best-of-``repeats`` wall clock (seconds) for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(n_examples: int, repeats: int) -> dict:
    dataset, model = model_for_dataset("mnist-fast")
    x = dataset.x_test[:n_examples]

    engine32 = InferenceEngine(model, dtype=np.float32)
    engine64 = InferenceEngine(model, dtype=np.float64)

    variants = {
        "legacy": lambda: legacy_logits(model, x),
        "engine-f64": lambda: engine64.logits(x, memo=False),
        "engine-f32": lambda: engine32.logits(x, memo=False),
    }
    results = {}
    for name, fn in variants.items():
        fn()  # warm up caches (parameter casts, BLAS)
        seconds = timeit(fn, repeats)
        results[name] = {"seconds": seconds, "examples_per_sec": len(x) / seconds}

    # Memo regime: the same array queried again (the table-builder pattern).
    engine32.logits(x)  # prime
    seconds = timeit(lambda: engine32.logits(x), repeats)
    results["engine-memo"] = {"seconds": seconds, "examples_per_sec": len(x) / seconds}

    # Numerical sanity alongside the throughput claim.
    reference = legacy_logits(model, x)
    f32 = engine32.logits(x, memo=False)
    speedup = results["engine-f32"]["examples_per_sec"] / results["legacy"]["examples_per_sec"]
    return {
        "context": bench_context(
            dataset=dataset.name,
            dataset_fingerprint=dataset_fingerprint(x),
            examples=len(x),
            batch_size=BATCH_SIZE,
            repeats=repeats,
        ),
        "dataset": dataset.name,
        "examples": len(x),
        "batch_size": BATCH_SIZE,
        "repeats": repeats,
        "results": results,
        "f32_vs_legacy_speedup": speedup,
        "f32_max_abs_error": float(np.max(np.abs(f32.astype(np.float64) - reference))),
        "f32_label_agreement": float((f32.argmax(-1) == reference.argmax(-1)).mean()),
        "meets_1p5x_bar": bool(speedup >= 1.5),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--examples", type=int, default=512)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=None, help="also write JSON here")
    args = parser.parse_args(argv)
    if args.examples < 1:
        parser.error("--examples must be >= 1")
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    payload = run(args.examples, args.repeats)
    print(json.dumps(payload, indent=2))
    path = write_payload("engine_throughput", payload, out=args.out)
    print(f"wrote {path}", file=sys.stderr)
    return 0 if payload["meets_1p5x_bar"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
