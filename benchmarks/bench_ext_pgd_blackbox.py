"""Extension — DCN against attacks beyond the paper's Table 1.

Two threat-model extensions:

* **PGD** (Madry et al.) — the white-box attack that superseded IGSM.
* **Black-box substitute** (Papernot et al.) — label-query-only attacker.

Shape expectations: PGD behaves like a stronger IGSM (DCN's detector
partially misses large-epsilon iterates, like FGSM); black-box transfer
attacks use crude high-distortion perturbations and are caught/corrected
much like FGSM is — and DCN never *increases* an attack's success.
"""

import numpy as np

from conftest import report
from repro.attacks import FGSM, PGD, SubstituteBlackBox
from repro.datasets import generate_digits
from repro.eval import attack_success_rate
from repro.eval.adversarial_sets import select_correct_seeds


def test_ext_pgd_blackbox(benchmark, mnist_ctx):
    ctx = mnist_ctx
    rng = np.random.default_rng(999)
    x, y, _ = select_correct_seeds(
        ctx.model, ctx.dataset, ctx.scale.robustness_seeds, rng,
        exclude=ctx.dcn.detector.train_seed_indices,
    )
    # Attacker-owned seed data for the substitute: freshly generated digits
    # (same generator family, disjoint from the victim's splits).
    size = ctx.dataset.input_shape[-1]
    attacker_seeds, _ = generate_digits(120, np.random.default_rng(5), size=size)
    attacker_seeds = attacker_seeds - 0.5

    def run():
        rows = {}
        for name, attack in (
            ("pgd e=0.1", PGD(epsilon=0.1, alpha=0.02, steps=20, restarts=2)),
            ("pgd e=0.2", PGD(epsilon=0.2, alpha=0.03, steps=20, restarts=2)),
            (
                "blackbox-sub",
                SubstituteBlackBox(
                    attacker_seeds, augmentation_rounds=2, epochs=25,
                    inner_attack=FGSM(epsilon=0.25), seed=2,
                ),
            ),
        ):
            result = attack.perturb(ctx.model, x, y)
            detected = float("nan")
            if result.success.any():
                detected = float(
                    ctx.dcn.detector.flag_images(ctx.model, result.adversarial[result.success]).mean()
                )
            rows[name] = {
                "standard": attack_success_rate(ctx.standard, result),
                "dcn": attack_success_rate(ctx.dcn, result),
                "detected": detected,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'attack':>13} {'vs DNN':>8} {'vs DCN':>8} {'detected':>9}"]
    for name, row in rows.items():
        lines.append(
            f"{name:>13} {row['standard']:>7.0%} {row['dcn']:>7.0%} {row['detected']:>8.0%}"
        )
    report("Extension — PGD and black-box substitute vs DCN", "\n".join(lines))

    for name, row in rows.items():
        assert row["dcn"] <= row["standard"] + 1e-9, name
    # The small-epsilon PGD stays near the boundary and is handled well.
    assert rows["pgd e=0.1"]["dcn"] <= rows["pgd e=0.1"]["standard"]
    # The black-box attack is weaker than white-box PGD against the victim.
    assert rows["blackbox-sub"]["standard"] <= rows["pgd e=0.2"]["standard"] + 0.1
