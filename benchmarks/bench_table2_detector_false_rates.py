"""Table 2 — false negative / false positive rate of the detector.

Paper numbers: MNIST FN 3.7% / FP 0.31%; CIFAR-10 FN 4.3% / FP 0.91%.
The shape to reproduce: FP (adversarial examples slipping past the
detector) is near zero and FN (benign examples needlessly flagged) is a
few percent.
"""

from conftest import report
from repro.eval import format_table2, table2_detector_rates


def test_table2_detector_false_rates(benchmark, mnist_ctx, cifar_ctx):
    rates = {}
    for ctx in (mnist_ctx, cifar_ctx):
        rates[ctx.dataset.name] = table2_detector_rates(ctx)
    report("Table 2", format_table2(rates))

    for dataset, row in rates.items():
        assert row["false_positive"] < 0.10, f"{dataset}: detector misses too many adversarials"
        assert row["false_negative"] < 0.15, f"{dataset}: detector flags too many benign inputs"

    # Benchmark the detector's marginal cost: it is a ~400-parameter net, so
    # scoring must be a negligible add-on to the protected model's forward.
    logits = mnist_ctx.model.logits(mnist_ctx.dataset.x_test[:256])
    benchmark(mnist_ctx.dcn.detector.is_adversarial, logits)
