"""Online-serving benchmark: coalesced dispatch vs per-request classify.

Drives deterministic synthetic request streams (``repro.serve.loadgen``)
through two ends of the same defense:

* **offline** — the pre-serving status quo: each request dispatched alone
  via ``DCN.classify`` (its own engine call, its own detector forward,
  its own corrector vote).
* **coalesced** — ``DCNService`` in synchronous-window mode: requests
  coalesced into shape-bucketed dispatches, benign rows gated straight
  out, flagged rows fused into one cross-request corrector vote.

Served labels are asserted bitwise-identical to the offline baseline on
every workload — the per-input corrector noise streams make the fused
vote a pure function of ``(seed, row)``, so coalescing is a pure
performance transform.

Two workloads:

* ``gate`` (the headline) — single-example benign requests drawn from the
  detector-negative subset of the test set: the benign fast path that the
  paper's Sec. 5 asymmetry argument says dominates real traffic.  This
  isolates what the serving layer changes (dispatch, gating, plan reuse);
  the acceptance bar — **>= 2x requests/sec over per-request dispatch** —
  is enforced here.
* ``fraction sweep`` (0%, 5%, 10% adversarial) — the full defense
  including detector false positives and the corrector.  Corrector
  compute is *identical* in both paths (forced by bitwise equivalence:
  the same m-vote must be computed either way), so as the adversarial
  fraction grows both paths converge toward corrector-bound and the
  coalescing speedup decays toward 1x — the serving-side mirror of the
  paper's Table 6 runtime-vs-fraction axis.  Reported, not gated.
* ``overload sweep`` — arrival windows 4x the queue bound, served under
  depth-only admission vs SLO-aware admission (``slo_target_s`` derived
  from a calibration run, so the numbers are machine-relative).  The
  gated claims: with a latency budget of twice the calibrated p95 cost
  of a maximally-admitted window (``2 x max_queue`` rows — the deepest
  backlog the hard bound permits), SLO admission serves *deeper* than
  the depth policy (fewer sheds at equal load, bounded by the
  ``2 x max_queue`` backstop) while keeping served p95 inside the
  budget; and percentiles stay finite even with most of the stream
  shedding — the bug this PR fixes.  A tight-budget point (half a
  queue's worth of mean row cost) is reported un-gated to show the wait
  estimate itself binding: it sheds *more* than depth-only and pulls
  the tail down, which is what latency-governed admission is for.

Timing uses interleaved offline/coalesced pairs and takes the median of
per-pair ratios: per-request dispatch is many small Python-heavy calls
and is far noisier run-to-run than the few-big-kernels coalesced path, so
adjacent-in-time pairing cancels machine-state drift that would otherwise
dominate the comparison.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py
    PYTHONPATH=src python benchmarks/bench_serve_latency.py --smoke

``--smoke`` shrinks the streams and pair counts for CI wiring and never
fails the bar.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_common import bench_context, dataset_fingerprint, write_payload
from repro.serve import (
    DCNService,
    StreamSpec,
    build_stream,
    run_coalesced,
    run_offline,
    summarize_latencies,
)

FRACTIONS = (0.0, 0.05, 0.10)


def _labels_equal(a, b) -> bool:
    return all(np.array_equal(x, y) for x, y in zip(a.labels, b.labels))


def _measure(dcn, stream, pairs: int, max_batch: int, window: int) -> dict:
    """Interleaved offline/coalesced pairs -> median seconds and ratio."""
    make_service = lambda: DCNService(dcn, max_batch=max_batch, max_queue=4 * len(stream))
    # Warm both paths (plans compiled, memo steady-state) and pin equality.
    warm_off = run_offline(dcn, stream)
    warm_co = run_coalesced(make_service(), stream, window=window)
    assert _labels_equal(warm_off, warm_co), "served labels diverged from offline"

    offs, cos, ratios = [], [], []
    service = None
    for _ in range(pairs):
        off = run_offline(dcn, stream)
        service = make_service()
        co = run_coalesced(service, stream, window=window)
        assert _labels_equal(off, co), "served labels diverged from offline"
        offs.append(off)
        cos.append(co)
        ratios.append(off.seconds / co.seconds)

    off_seconds = statistics.median(r.seconds for r in offs)
    co_seconds = statistics.median(r.seconds for r in cos)
    co_latencies = summarize_latencies(cos[-1].latencies_s)
    return {
        "requests": len(stream),
        "examples": int(sum(len(r.x) for r in stream)),
        "offline_seconds": off_seconds,
        "serve_seconds": co_seconds,
        "offline_req_per_sec": len(stream) / off_seconds,
        "serve_req_per_sec": len(stream) / co_seconds,
        "speedup": statistics.median(ratios),
        "serve_p50_ms": co_latencies["p50_ms"],
        "serve_p95_ms": co_latencies["p95_ms"],
        "flagged": service.counters.flagged,
        "plan_hits": service.counters.plan_hits,
        "plan_misses": service.counters.plan_misses,
        "labels_equal": True,  # asserted above, recorded for the payload
    }


def _overloaded_run(dcn, stream, max_batch: int, max_queue: int, window: int,
                    slo_target_s: float | None) -> dict:
    """One policy under overload: warm one window, then measure the stream."""
    service = DCNService(
        dcn, max_batch=max_batch, max_queue=max_queue, overload="shed",
        slo_target_s=slo_target_s,
    )
    run_coalesced(service, stream[:window], window=window)  # warm plans + cost model
    before = service.counters.snapshot()
    stats = run_coalesced(service, stream, window=window)
    for request, labels, status in zip(stream, stats.labels, stats.statuses):
        if status != "shed":
            assert np.array_equal(labels, dcn.classify(request.x)), (
                "served labels diverged from offline under overload"
            )
    latencies = summarize_latencies(stats.latencies_s)
    return {
        "served": stats.served,
        "shed": stats.shed,
        "shed_rate": stats.shed / len(stream),
        "slo_shed": int(service.counters.slo_shed - before.slo_shed),
        "p50_ms": latencies["p50_ms"],
        "p95_ms": latencies["p95_ms"],
    }


def _overload_sweep(dcn, stream, max_batch: int, max_queue: int) -> dict:
    """Depth-only vs SLO-aware admission on the same overloaded stream."""
    # Calibrate with a generous queue (nothing sheds) at a window of
    # exactly ``2 x max_queue`` rows -- the deepest backlog the hard
    # bound ever admits -- so the calibration latencies sample the same
    # window-cost distribution the admitted tail will see.  The mean
    # per-row cost alone would understate the tail: a window where
    # several flagged rows land together pays the corrector vote many
    # times over, and p95 is exactly those windows.
    calibration = DCNService(dcn, max_batch=max_batch, max_queue=4 * len(stream))
    cal_stats = run_coalesced(calibration, stream, window=2 * max_queue)
    assert calibration.counters.shed == 0
    row_cost = calibration.counters.seconds / max(1, calibration.counters.examples)
    full_window_p95 = summarize_latencies(cal_stats.latencies_s)["p95_ms"] / 1e3
    loose_target = 2.0 * max(full_window_p95, 1e-9)
    tight_target = 0.5 * max_queue * max(row_cost, 1e-9)

    window = 4 * max_queue  # every arrival window oversubscribes the queue
    depth = _overloaded_run(dcn, stream, max_batch, max_queue, window, None)
    loose = _overloaded_run(dcn, stream, max_batch, max_queue, window, loose_target)
    tight = _overloaded_run(dcn, stream, max_batch, max_queue, window, tight_target)
    finite = all(
        np.isfinite(block[key])
        for block in (depth, loose, tight)
        for key in ("p50_ms", "p95_ms")
    )
    return {
        "window": window,
        "max_queue": max_queue,
        "row_cost_ms": row_cost * 1e3,
        "full_window_p95_ms": full_window_p95 * 1e3,
        "slo_target_ms": loose_target * 1e3,
        "tight_target_ms": tight_target * 1e3,
        "depth_only": depth,
        "slo": loose,
        "slo_tight": tight,
        "percentiles_finite": finite,
        "slo_sheds_fewer": loose["shed"] < depth["shed"],
        "slo_p95_within_target": bool(loose["p95_ms"] <= loose_target * 1e3),
        "tight_estimate_binds": tight["slo_shed"] > 0,
    }


def run(requests: int, gate_requests: int, pairs: int, max_batch: int,
        window: int, seed: int) -> dict:
    from repro.eval import build_context, scale_config

    ctx = build_context("mnist-fast", scale_config("fast"))
    dcn = ctx.dcn
    benign = ctx.dataset.x_test
    adv, _, _ = ctx.pool("cw-l2").successful()

    # The benign fast path: rows the detector waves through.  Detector
    # false positives route into the corrector, whose compute is part of
    # the defense (and identical in both paths), not of the serving layer
    # this bar measures; the sweep below includes them.
    logits = dcn.network.engine.logits(benign, memo=False)
    gate_pool = benign[~dcn.detector.is_adversarial(logits)]

    results: dict = {}
    gate_spec = StreamSpec(
        requests=gate_requests, adv_fraction=0.0, min_size=1, max_size=1, seed=seed
    )
    results["gate"] = _measure(
        dcn, build_stream(gate_pool, None, gate_spec), pairs, max_batch, window
    )

    for fraction in FRACTIONS:
        spec = StreamSpec(
            requests=requests, adv_fraction=fraction, min_size=1, max_size=1, seed=seed
        )
        stream = build_stream(benign, adv, spec)
        key = f"frac_{int(round(fraction * 100)):02d}"
        results[key] = _measure(dcn, stream, pairs, max_batch, window)

    overload_spec = StreamSpec(
        requests=requests, adv_fraction=0.05, min_size=1, max_size=1, seed=seed + 1
    )
    results["overload"] = _overload_sweep(
        dcn, build_stream(benign, adv, overload_spec), max_batch, max_queue=8
    )

    gate_speedup = results["gate"]["speedup"]
    overload = results["overload"]
    equal_everywhere = all(
        block.get("labels_equal", True) for block in results.values()
    )
    meets_slo_bar = bool(
        overload["slo_sheds_fewer"]
        and overload["slo_p95_within_target"]
        and overload["percentiles_finite"]
    )
    return {
        "context": bench_context(
            dataset="mnist-fast",
            requests=requests,
            gate_requests=gate_requests,
            pairs=pairs,
            max_batch=max_batch,
            window=window,
            seed=seed,
            fractions=list(FRACTIONS),
            benign_fingerprint=dataset_fingerprint(benign),
            adv_fingerprint=dataset_fingerprint(adv),
        ),
        "results": results,
        "gate_speedup": gate_speedup,
        "meets_2x_bar": bool(gate_speedup >= 2.0 and equal_everywhere),
        "meets_slo_bar": meets_slo_bar,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=320, help="requests per sweep stream")
    parser.add_argument("--gate-requests", type=int, default=640, help="requests in the gate stream")
    parser.add_argument("--pairs", type=int, default=5, help="interleaved timing pairs per workload")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--window", type=int, default=64, help="simultaneous arrivals per serving window")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=None, help="JSON path override")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny streams, no JSON write unless --out, never fails the bar (CI wiring)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests, args.gate_requests, args.pairs = 96, 128, 2
    if min(args.requests, args.gate_requests, args.pairs, args.max_batch, args.window) < 1:
        parser.error("--requests/--gate-requests/--pairs/--max-batch/--window must be >= 1")

    payload = run(
        args.requests, args.gate_requests, args.pairs, args.max_batch,
        args.window, args.seed,
    )
    print(json.dumps(payload, indent=2))
    if args.out is not None or not args.smoke:
        path = write_payload("serve_latency", payload, out=args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.smoke:
        return 0
    return 0 if payload["meets_2x_bar"] and payload["meets_slo_bar"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
