"""Online-serving benchmark: coalesced dispatch vs per-request classify.

Drives deterministic synthetic request streams (``repro.serve.loadgen``)
through two ends of the same defense:

* **offline** — the pre-serving status quo: each request dispatched alone
  via ``DCN.classify`` (its own engine call, its own detector forward,
  its own corrector vote).
* **coalesced** — ``DCNService`` in synchronous-window mode: requests
  coalesced into shape-bucketed dispatches, benign rows gated straight
  out, flagged rows fused into one cross-request corrector vote.

Served labels are asserted bitwise-identical to the offline baseline on
every workload — the per-input corrector noise streams make the fused
vote a pure function of ``(seed, row)``, so coalescing is a pure
performance transform.

Two workloads:

* ``gate`` (the headline) — single-example benign requests drawn from the
  detector-negative subset of the test set: the benign fast path that the
  paper's Sec. 5 asymmetry argument says dominates real traffic.  This
  isolates what the serving layer changes (dispatch, gating, plan reuse);
  the acceptance bar — **>= 2x requests/sec over per-request dispatch** —
  is enforced here.
* ``fraction sweep`` (0%, 5%, 10% adversarial) — the full defense
  including detector false positives and the corrector.  Corrector
  compute is *identical* in both paths (forced by bitwise equivalence:
  the same m-vote must be computed either way), so as the adversarial
  fraction grows both paths converge toward corrector-bound and the
  coalescing speedup decays toward 1x — the serving-side mirror of the
  paper's Table 6 runtime-vs-fraction axis.  Reported, not gated.
* ``overload sweep`` — arrival windows 4x the queue bound, served under
  depth-only admission vs SLO-aware admission (``slo_target_s`` derived
  from a calibration run, so the numbers are machine-relative).  The
  gated claims: with a latency budget of twice the calibrated p95 cost
  of a maximally-admitted window (``2 x max_queue`` rows — the deepest
  backlog the hard bound permits), SLO admission serves *deeper* than
  the depth policy (fewer sheds at equal load, bounded by the
  ``2 x max_queue`` backstop) while keeping served p95 inside the
  budget; and percentiles stay finite even with most of the stream
  shedding — the bug this PR fixes.  A tight-budget point (half a
  queue's worth of mean row cost) is reported un-gated to show the wait
  estimate itself binding: it sheds *more* than depth-only and pulls
  the tail down, which is what latency-governed admission is for.
* ``remote`` — the benign gate pool replayed over the framed
  loopback-TCP transport (``DCNServer`` forked into its own process +
  concurrent ``DCNClient`` fleet) against the *identical* in-process
  concurrent ticket path (same service config, same caller count, zero
  transport).  Labels must stay bitwise-identical to offline on both
  points.  Single-row requests report the worst-case per-request tax
  un-gated (on the tiny bench model the frame/socket cost dominates
  per-row compute, which it never would at production scale); the
  gated claim rides the ``max_batch``-row point (one full coalescing
  window per request), where the per-request tax amortises: remote
  req/s must stay **>= 0.7x** in-process.

Timing uses interleaved offline/coalesced pairs and takes the median of
per-pair ratios: per-request dispatch is many small Python-heavy calls
and is far noisier run-to-run than the few-big-kernels coalesced path, so
adjacent-in-time pairing cancels machine-state drift that would otherwise
dominate the comparison.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py
    PYTHONPATH=src python benchmarks/bench_serve_latency.py --smoke

``--smoke`` shrinks the streams and pair counts for CI wiring and never
fails the bar.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_common import bench_context, dataset_fingerprint, write_payload
from repro.serve import (
    DCNClient,
    DCNServer,
    DCNService,
    StreamSpec,
    build_stream,
    run_coalesced,
    run_offline,
    run_remote,
    summarize_latencies,
)

FRACTIONS = (0.0, 0.05, 0.10)
REMOTE_CLIENTS = 4
# The framed-TCP loopback path pays encode/decode plus a socket
# round-trip per request; the bar says that at the amortised
# (max_batch-row) point the tax costs at most 30% of the throughput of
# the identical in-process concurrent ticket path.
REMOTE_RATIO_BAR = 0.7


def _labels_equal(a, b) -> bool:
    return all(np.array_equal(x, y) for x, y in zip(a.labels, b.labels))


def _measure(dcn, stream, pairs: int, max_batch: int, window: int) -> dict:
    """Interleaved offline/coalesced pairs -> median seconds and ratio."""
    make_service = lambda: DCNService(dcn, max_batch=max_batch, max_queue=4 * len(stream))
    # Warm both paths (plans compiled, memo steady-state) and pin equality.
    warm_off = run_offline(dcn, stream)
    warm_co = run_coalesced(make_service(), stream, window=window)
    assert _labels_equal(warm_off, warm_co), "served labels diverged from offline"

    offs, cos, ratios = [], [], []
    service = None
    for _ in range(pairs):
        off = run_offline(dcn, stream)
        service = make_service()
        co = run_coalesced(service, stream, window=window)
        assert _labels_equal(off, co), "served labels diverged from offline"
        offs.append(off)
        cos.append(co)
        ratios.append(off.seconds / co.seconds)

    off_seconds = statistics.median(r.seconds for r in offs)
    co_seconds = statistics.median(r.seconds for r in cos)
    co_latencies = summarize_latencies(cos[-1].latencies_s)
    return {
        "requests": len(stream),
        "examples": int(sum(len(r.x) for r in stream)),
        "offline_seconds": off_seconds,
        "serve_seconds": co_seconds,
        "offline_req_per_sec": len(stream) / off_seconds,
        "serve_req_per_sec": len(stream) / co_seconds,
        "speedup": statistics.median(ratios),
        "serve_p50_ms": co_latencies["p50_ms"],
        "serve_p95_ms": co_latencies["p95_ms"],
        "flagged": service.counters.flagged,
        "plan_hits": service.counters.plan_hits,
        "plan_misses": service.counters.plan_misses,
        "labels_equal": True,  # asserted above, recorded for the payload
    }


def _remote_server_main(dcn, conn, max_batch: int, max_queue: int) -> None:
    """Forked child: serve the fork-inherited DCN until told to stop."""
    with DCNService(dcn, max_batch=max_batch, max_queue=max_queue, max_delay=0.0) as service:
        with DCNServer(service) as server:
            conn.send(server.address)
            try:
                conn.recv()  # blocks until the parent says stop
            except (EOFError, OSError):
                pass


def _measure_remote_stream(dcn, stream, pairs: int, max_batch: int) -> dict:
    """One stream through both the in-process and loopback-TCP paths.

    Both sides run ``REMOTE_CLIENTS`` concurrent callers through the
    *same* threaded :class:`DCNService` config (``max_delay=0`` so the
    dispatcher never pads latency):

    * **in-process** — the service object itself is the "client" fleet
      (``DCNService.classify`` is submit + wait), so the run pays
      admission, coalescing and dispatch but zero transport;
    * **remote** — the deployment shape: a :class:`DCNServer` forked
      into its own process (plans fork-inherited warm), ``DCNClient``
      fleets replaying over 127.0.0.1.  Each request adds frame
      encode/decode and a socket round trip, overlapped across the two
      processes.

    The service work is identical on both sides, so the req/s ratio
    *is* the transport tax.  Labels are asserted bitwise-identical to
    offline ``DCN.classify`` on both sides.
    """
    offline_labels = [dcn.classify(request.x) for request in stream]

    def checked(stats, what: str):
        assert stats.statuses == ["ok"] * len(stream), f"{what} run shed on loopback"
        assert all(
            np.array_equal(got, want)
            for got, want in zip(stats.labels, offline_labels)
        ), f"{what} labels diverged from offline"
        return stats

    def inprocess_run():
        service = DCNService(
            dcn, max_batch=max_batch, max_queue=4 * len(stream), max_delay=0.0
        )
        with service:
            return checked(run_remote([service] * REMOTE_CLIENTS, stream), "in-process")

    def remote_run():
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_remote_server_main,
            args=(dcn, child, max_batch, 4 * len(stream)),
            daemon=True,
        )
        proc.start()
        child.close()
        address = tuple(parent.recv())
        clients = [
            DCNClient(address, backoff_seed=c) for c in range(REMOTE_CLIENTS)
        ]
        try:
            return checked(run_remote(clients, stream), "remote")
        finally:
            for client in clients:
                client.close()
            try:
                parent.send("stop")
            except (OSError, BrokenPipeError):
                pass
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung child cleanup
                proc.kill()
                proc.join(timeout=5.0)
            parent.close()

    # Warm both paths (plans compiled, socket buffers steady-state), then
    # time interleaved pairs — same drift-cancelling idiom as _measure.
    inprocess_run()
    remote_run()
    inp_runs, rem_runs, ratios = [], [], []
    for _ in range(pairs):
        inp = inprocess_run()
        rem = remote_run()
        inp_runs.append(inp)
        rem_runs.append(rem)
        ratios.append(inp.seconds / rem.seconds)

    rows = int(sum(len(r.x) for r in stream))
    inp_seconds = statistics.median(r.seconds for r in inp_runs)
    rem_seconds = statistics.median(r.seconds for r in rem_runs)
    latencies = summarize_latencies(rem_runs[-1].latencies_s)
    return {
        "requests": len(stream),
        "rows_per_request": rows // len(stream),
        "inprocess_seconds": inp_seconds,
        "remote_seconds": rem_seconds,
        "inprocess_req_per_sec": len(stream) / inp_seconds,
        "remote_req_per_sec": len(stream) / rem_seconds,
        "remote_rows_per_sec": rows / rem_seconds,
        "ratio_vs_inprocess": statistics.median(ratios),
        "remote_p50_ms": latencies["p50_ms"],
        "remote_p95_ms": latencies["p95_ms"],
        "labels_equal": True,  # asserted above, recorded for the payload
    }


def _measure_remote(dcn, pool, requests: int, pairs: int, max_batch: int,
                    seed: int) -> dict:
    """Two remote-overhead points on the benign gate pool.

    The frame/socket tax is per *request*, so it shows up hardest on
    single-row requests and amortises with request size:

    * ``single_row`` — the worst case; reported, not gated, because on
      the deliberately tiny bench model the per-request tax dominates
      per-row compute in a way it never would at production scale.
    * ``batched`` — ``max_batch`` rows per request (one full coalescing
      window each): the gated claim is that with any realistic amount
      of per-request work the wire keeps >= ``REMOTE_RATIO_BAR`` of
      in-process throughput.
    """
    batch_rows = max_batch
    out: dict = {"clients": REMOTE_CLIENTS, "batch_rows": batch_rows}
    for key, size in (("single_row", 1), ("batched", batch_rows)):
        spec = StreamSpec(
            requests=requests, adv_fraction=0.0, min_size=size, max_size=size,
            seed=seed,
        )
        out[key] = _measure_remote_stream(
            dcn, build_stream(pool, None, spec), pairs, max_batch
        )
    return out


def _overloaded_run(dcn, stream, max_batch: int, max_queue: int, window: int,
                    slo_target_s: float | None) -> dict:
    """One policy under overload: warm one window, then measure the stream."""
    service = DCNService(
        dcn, max_batch=max_batch, max_queue=max_queue, overload="shed",
        slo_target_s=slo_target_s,
    )
    run_coalesced(service, stream[:window], window=window)  # warm plans + cost model
    before = service.counters.snapshot()
    stats = run_coalesced(service, stream, window=window)
    for request, labels, status in zip(stream, stats.labels, stats.statuses):
        if status != "shed":
            assert np.array_equal(labels, dcn.classify(request.x)), (
                "served labels diverged from offline under overload"
            )
    latencies = summarize_latencies(stats.latencies_s)
    return {
        "served": stats.served,
        "shed": stats.shed,
        "shed_rate": stats.shed / len(stream),
        "slo_shed": int(service.counters.slo_shed - before.slo_shed),
        "p50_ms": latencies["p50_ms"],
        "p95_ms": latencies["p95_ms"],
    }


def _overload_sweep(dcn, stream, max_batch: int, max_queue: int) -> dict:
    """Depth-only vs SLO-aware admission on the same overloaded stream."""
    # Calibrate with a generous queue (nothing sheds) at a window of
    # exactly ``2 x max_queue`` rows -- the deepest backlog the hard
    # bound ever admits -- so the calibration latencies sample the same
    # window-cost distribution the admitted tail will see.  The mean
    # per-row cost alone would understate the tail: a window where
    # several flagged rows land together pays the corrector vote many
    # times over, and p95 is exactly those windows.
    calibration = DCNService(dcn, max_batch=max_batch, max_queue=4 * len(stream))
    cal_stats = run_coalesced(calibration, stream, window=2 * max_queue)
    assert calibration.counters.shed == 0
    row_cost = calibration.counters.seconds / max(1, calibration.counters.examples)
    full_window_p95 = summarize_latencies(cal_stats.latencies_s)["p95_ms"] / 1e3
    loose_target = 2.0 * max(full_window_p95, 1e-9)
    tight_target = 0.5 * max_queue * max(row_cost, 1e-9)

    window = 4 * max_queue  # every arrival window oversubscribes the queue
    depth = _overloaded_run(dcn, stream, max_batch, max_queue, window, None)
    loose = _overloaded_run(dcn, stream, max_batch, max_queue, window, loose_target)
    tight = _overloaded_run(dcn, stream, max_batch, max_queue, window, tight_target)
    finite = all(
        np.isfinite(block[key])
        for block in (depth, loose, tight)
        for key in ("p50_ms", "p95_ms")
    )
    return {
        "window": window,
        "max_queue": max_queue,
        "row_cost_ms": row_cost * 1e3,
        "full_window_p95_ms": full_window_p95 * 1e3,
        "slo_target_ms": loose_target * 1e3,
        "tight_target_ms": tight_target * 1e3,
        "depth_only": depth,
        "slo": loose,
        "slo_tight": tight,
        "percentiles_finite": finite,
        "slo_sheds_fewer": loose["shed"] < depth["shed"],
        "slo_p95_within_target": bool(loose["p95_ms"] <= loose_target * 1e3),
        "tight_estimate_binds": tight["slo_shed"] > 0,
    }


def run(requests: int, gate_requests: int, pairs: int, max_batch: int,
        window: int, seed: int) -> dict:
    from repro.eval import build_context, scale_config

    ctx = build_context("mnist-fast", scale_config("fast"))
    dcn = ctx.dcn
    benign = ctx.dataset.x_test
    adv, _, _ = ctx.pool("cw-l2").successful()

    # The benign fast path: rows the detector waves through.  Detector
    # false positives route into the corrector, whose compute is part of
    # the defense (and identical in both paths), not of the serving layer
    # this bar measures; the sweep below includes them.
    logits = dcn.network.engine.logits(benign, memo=False)
    gate_pool = benign[~dcn.detector.is_adversarial(logits)]

    results: dict = {}
    gate_spec = StreamSpec(
        requests=gate_requests, adv_fraction=0.0, min_size=1, max_size=1, seed=seed
    )
    results["gate"] = _measure(
        dcn, build_stream(gate_pool, None, gate_spec), pairs, max_batch, window
    )

    for fraction in FRACTIONS:
        spec = StreamSpec(
            requests=requests, adv_fraction=fraction, min_size=1, max_size=1, seed=seed
        )
        stream = build_stream(benign, adv, spec)
        key = f"frac_{int(round(fraction * 100)):02d}"
        results[key] = _measure(dcn, stream, pairs, max_batch, window)

    overload_spec = StreamSpec(
        requests=requests, adv_fraction=0.05, min_size=1, max_size=1, seed=seed + 1
    )
    results["overload"] = _overload_sweep(
        dcn, build_stream(benign, adv, overload_spec), max_batch, max_queue=8
    )

    # Remote overhead: the benign gate pool served over loopback TCP.
    results["remote"] = _measure_remote(
        dcn, gate_pool, requests, pairs, max_batch, seed + 2
    )

    gate_speedup = results["gate"]["speedup"]
    overload = results["overload"]
    equal_everywhere = all(
        block.get("labels_equal", True) for block in results.values()
    )
    meets_slo_bar = bool(
        overload["slo_sheds_fewer"]
        and overload["slo_p95_within_target"]
        and overload["percentiles_finite"]
    )
    remote = results["remote"]
    remote_ratio = remote["batched"]["ratio_vs_inprocess"]
    meets_remote_bar = bool(
        remote_ratio >= REMOTE_RATIO_BAR
        and remote["batched"]["labels_equal"]
        and remote["single_row"]["labels_equal"]
    )
    return {
        "context": bench_context(
            dataset="mnist-fast",
            requests=requests,
            gate_requests=gate_requests,
            pairs=pairs,
            max_batch=max_batch,
            window=window,
            seed=seed,
            fractions=list(FRACTIONS),
            benign_fingerprint=dataset_fingerprint(benign),
            adv_fingerprint=dataset_fingerprint(adv),
        ),
        "results": results,
        "gate_speedup": gate_speedup,
        "remote_ratio": remote_ratio,
        "meets_2x_bar": bool(gate_speedup >= 2.0 and equal_everywhere),
        "meets_slo_bar": meets_slo_bar,
        "meets_remote_bar": meets_remote_bar,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=320, help="requests per sweep stream")
    parser.add_argument("--gate-requests", type=int, default=640, help="requests in the gate stream")
    parser.add_argument("--pairs", type=int, default=5, help="interleaved timing pairs per workload")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--window", type=int, default=64, help="simultaneous arrivals per serving window")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=None, help="JSON path override")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny streams, no JSON write unless --out, never fails the bar (CI wiring)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests, args.gate_requests, args.pairs = 96, 128, 2
    if min(args.requests, args.gate_requests, args.pairs, args.max_batch, args.window) < 1:
        parser.error("--requests/--gate-requests/--pairs/--max-batch/--window must be >= 1")

    payload = run(
        args.requests, args.gate_requests, args.pairs, args.max_batch,
        args.window, args.seed,
    )
    print(json.dumps(payload, indent=2))
    if args.out is not None or not args.smoke:
        path = write_payload("serve_latency", payload, out=args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.smoke:
        return 0
    bars = ("meets_2x_bar", "meets_slo_bar", "meets_remote_bar")
    return 0 if all(payload[bar] for bar in bars) else 1


if __name__ == "__main__":
    raise SystemExit(main())
