"""Table 5 — success rate of the six CW attack variants on CIFAR-10.

Paper shape (CIFAR): as on MNIST, the undefended/distilled models lose
completely; RC and DCN recover most L2 attacks (residual ~5%); L0 and L∞
are harder than on MNIST (paper: 34-36% / 18-32% residual success), since
the usable hypercube radius is far smaller.

Small-sample caveat: at the fast preset the untargeted columns have 12
seeds, so one example is 8.3 points; the DCN-vs-RC tolerance below is set
accordingly (the m=50-vs-1000 gap genuinely costs DCN a few contested
votes on CIFAR, where region votes are much more marginal than on MNIST).
"""

from conftest import report
from repro.eval import format_table45, table45_robustness


def test_table5_cifar_attack_success(benchmark, cifar_ctx):
    rows = benchmark.pedantic(table45_robustness, args=(cifar_ctx,), rounds=1, iterations=1)
    report("Table 5 (CIFAR substitute)", format_table45(rows, cifar_ctx.dataset.name, coverage=True))

    # Benchmark numbers require a fully-covered run (no failed work units).
    for defense, cells in rows.items():
        for attack, cell in cells.items():
            assert cell["coverage"][0] == cell["coverage"][1], (defense, attack)

    for attack in ("cw-l0", "cw-l2", "cw-linf"):
        for mode in ("targeted", "untargeted"):
            standard = rows["standard"][attack][mode]
            dcn = rows["dcn"][attack][mode]
            rc = rows["rc"][attack][mode]
            assert standard > 0.85, (attack, mode, standard)
            assert dcn < standard, (attack, mode)
            # DCN roughly matches RC on CIFAR (paper: near-identical rows);
            # tolerance covers the 12-seed noise plus the m=50 penalty.
            assert dcn <= rc + 0.3, (attack, mode, dcn, rc)

    # CIFAR correction is weaker than MNIST correction (paper's 2nd finding):
    # the L2 residual is a few percent, not zero.
    assert rows["dcn"]["cw-l2"]["targeted"] < 0.5
