"""Shared provenance plumbing for the standalone throughput benchmarks.

A benchmark number without its context is unusable for regression gating:
the same script on a different git revision, NumPy build or input pool is
a different experiment.  Every standalone benchmark therefore attaches
:func:`bench_context` to its payload and persists it with
:func:`write_payload` as ``BENCH_<name>.json`` at the repo root — the
committed JSONs are the baseline the ROADMAP's bench-regression gate will
diff against.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]

__all__ = ["REPO_ROOT", "bench_context", "dataset_fingerprint", "write_payload"]


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def dataset_fingerprint(x: np.ndarray) -> str:
    """Content hash of the exact example pool the benchmark timed."""
    arr = np.ascontiguousarray(x)
    digest = hashlib.sha1(arr.tobytes())
    digest.update(repr((arr.shape, str(arr.dtype))).encode())
    return digest.hexdigest()[:16]


def bench_context(**extra) -> dict:
    """Provenance block: toolchain versions, revision, run parameters.

    Keyword arguments (iterations, dataset fingerprints, …) are folded in
    verbatim so each benchmark records the knobs that shaped its numbers.
    """
    context = {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    context.update(extra)
    return context


def write_payload(name: str, payload: dict, out: Path | None = None) -> Path:
    """Write ``payload`` to ``BENCH_<name>.json`` (or ``out``), return the path."""
    path = out if out is not None else REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
