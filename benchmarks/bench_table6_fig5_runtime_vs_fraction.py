"""Table 6 + Fig. 5 — DCN vs RC runtime as the adversarial fraction varies.

Paper shape: DCN's time grows linearly with the adversarial percentage
(only flagged inputs pay the corrector's m=50 votes) while RC's time is
flat and far larger (every input pays m=1000 votes).  At 0% adversarial
traffic the gap is largest — the paper's headline efficiency claim.
"""

import numpy as np

from conftest import report
from repro.eval import format_table6, table6_runtime_vs_fraction


def test_table6_fig5_runtime_vs_fraction(benchmark, mnist_ctx):
    rows = benchmark.pedantic(
        table6_runtime_vs_fraction, args=(mnist_ctx,), rounds=1, iterations=1
    )
    report("Table 6 / Fig. 5 (MNIST substitute)", format_table6(rows, mnist_ctx.dataset.name))

    dcn_times = np.array([row["dcn_seconds"] for row in rows])
    rc_times = np.array([row["rc_seconds"] for row in rows])
    fractions = np.array([row["fraction"] for row in rows])

    # RC is flat: its coefficient of variation stays small.
    assert rc_times.std() / rc_times.mean() < 0.35
    # DCN grows with the adversarial fraction...
    corr = np.corrcoef(fractions, dcn_times)[0, 1]
    assert corr > 0.8
    # ...and is dramatically cheaper than RC on clean traffic.
    assert dcn_times[0] * 10 < rc_times[0]
    # Even fully adversarial traffic stays cheaper than RC (m=50 vs m=1000).
    assert dcn_times[-1] < rc_times[-1]

    # Both defenses keep reasonable accuracy on the mixes.
    for row in rows:
        assert row["dcn_accuracy"] > 0.6, row
