"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures through the
:mod:`repro.eval.harness` functions and prints the paper-formatted table.
Heavy artifacts (models, adversarial pools) are cached in ``.artifacts``;
the first run of the suite builds them, later runs load them.

Scale: ``REPRO_SCALE=fast`` (default) or ``paper`` — see
``repro.eval.harness.scale_config``.
"""

import pytest

from repro.eval import build_context, scale_config


@pytest.fixture(scope="session")
def scale():
    return scale_config()


@pytest.fixture(scope="session")
def mnist_ctx(scale):
    return build_context(scale.mnist, scale)


@pytest.fixture(scope="session")
def cifar_ctx(scale):
    return build_context(scale.cifar, scale)


def report(title: str, text: str) -> None:
    """Print a paper-style table under a banner (shown with pytest -s)."""
    print(f"\n=== {title} ===\n{text}\n")
