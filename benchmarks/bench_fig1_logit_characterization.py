"""Fig. 1 — logits of a benign seed vs its nine CW-L2 adversaries.

Regenerates the paper's characterisation figure: one benign example, the
nine targeted CW-L2 adversarial examples crafted from it, and each image's
logit vector with the maximum marked.  Also reports the aggregate
separation statistics of Sec. 3 over the full pool.
"""

import numpy as np

from conftest import report
from repro.core import fig1_rows, format_fig1, separation_summary


def test_fig1_logit_characterization(benchmark, mnist_ctx):
    ctx = mnist_ctx
    pool = ctx.pool("cw-l2")

    # The paper's figure uses one seed with all 9 targets successful.
    per_seed = pool.targets_per_seed
    seed_index = next(
        i for i in range(pool.num_seeds) if pool.success[i * per_seed : (i + 1) * per_seed].all()
    )
    block = slice(seed_index * per_seed, (seed_index + 1) * per_seed)
    adversarials = pool.adversarial[block]
    true_label = int(pool.seed_labels[seed_index])

    rows = benchmark.pedantic(
        fig1_rows,
        args=(ctx.model, pool.seeds[seed_index], true_label, adversarials),
        rounds=1,
        iterations=1,
    )
    report(f"Fig. 1 ({ctx.dataset.name})", format_fig1(rows))

    # Benign row is predicted correctly; adversarial rows hit their targets.
    assert rows[0].predicted_label == true_label
    predicted = [row.predicted_label for row in rows[1:]]
    assert predicted == list(pool.targets[block])

    # Aggregate Sec. 3 statistics: margins differ sharply between classes.
    benign_logits = ctx.model.logits(pool.seeds)
    adv_images, _, _ = pool.successful()
    adv_logits = ctx.model.logits(adv_images)
    summary = separation_summary(benign_logits, adv_logits)
    report(
        "Sec. 3 separation statistics",
        "\n".join(f"{key}: {value:.4f}" for key, value in summary.items()),
    )
    assert summary["benign_mean_margin"] > 5 * summary["adversarial_mean_margin"]
    assert summary["margin_auc"] > 0.95
