"""Sec. 6 — adaptive CW attacks against DCN.

Two adaptive strategies the paper anticipates:

1. κ-sweep: higher-confidence CW-L2 examples evade the logit detector more
   often, at the price of visibly larger distortion (the paper's "more
   likely to be noticed by human").
2. Detector-aware CW: a combined loss through model+detector (the "new
   loss function" the paper suggests future attacks should construct).

Shape expectation: both adaptive variants beat the detector more often
than plain CW-L2, with measurably larger L2 distortion; the corrector
still recovers part of them.
"""

import numpy as np

from conftest import report
from repro.attacks import CarliniWagnerL2, DetectorAwareCWL2
from repro.core import train_detector
from repro.core.corrector import Corrector
from repro.core.dcn import DCN
from repro.eval import attack_success_rate
from repro.eval.adversarial_sets import select_correct_seeds


def test_sec6_adaptive_attacks(benchmark, mnist_ctx):
    ctx = mnist_ctx
    # The adaptive attack differentiates through the detector, which needs
    # the raw-feature variant (sorting is not autograd-traversable here).
    raw_detector = train_detector(ctx.model, ctx.dataset, sort_features=False, cache=ctx.cache)
    raw_dcn = DCN(
        ctx.model,
        raw_detector,
        Corrector(ctx.model, radius=ctx.radius, samples=ctx.scale.corrector_samples),
    )

    rng = np.random.default_rng(707)
    count = max(6, ctx.scale.robustness_seeds // 2)
    x, y, _ = select_correct_seeds(
        ctx.model, ctx.dataset, count, rng, exclude=raw_detector.train_seed_indices
    )
    targets = (y + 1 + rng.integers(0, 9, len(y))) % 10
    targets = np.where(targets == y, (targets + 1) % 10, targets)

    def run():
        rows = {}
        for name, attack in (
            ("cw-l2 k=0", CarliniWagnerL2(binary_search_steps=3, max_iterations=150)),
            ("cw-l2 k=5", CarliniWagnerL2(confidence=5.0, binary_search_steps=3, max_iterations=150)),
            ("cw-l2 k=15", CarliniWagnerL2(confidence=15.0, binary_search_steps=3, max_iterations=150)),
            ("detector-aware", DetectorAwareCWL2(raw_detector, binary_search_steps=3, max_iterations=150)),
        ):
            result = attack.perturb(ctx.model, x, y, targets)
            crafted = result.success
            bypass = float("nan")
            if crafted.any():
                flagged = raw_detector.flag_images(ctx.model, result.adversarial[crafted])
                bypass = float((~flagged).mean())
            rows[name] = {
                "crafted": result.success_rate,
                "bypass": bypass,
                "vs_dcn": attack_success_rate(raw_dcn, result),
                "l2": result.mean_distortion("l2"),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'attack':>15} {'crafted':>9} {'bypass-det':>11} {'vs DCN':>8} {'mean L2':>9}"]
    for name, row in rows.items():
        lines.append(
            f"{name:>15} {row['crafted']:>8.0%} {row['bypass']:>10.0%}"
            f" {row['vs_dcn']:>7.0%} {row['l2']:>9.3f}"
        )
    report("Sec. 6 — adaptive attacks vs DCN (raw-feature detector)", "\n".join(lines))

    # Confidence raises detector bypass but costs distortion.
    assert rows["cw-l2 k=15"]["bypass"] >= rows["cw-l2 k=0"]["bypass"]
    assert rows["cw-l2 k=15"]["l2"] > rows["cw-l2 k=0"]["l2"]
    # The detector-aware attack bypasses the detector it differentiates through.
    assert rows["detector-aware"]["bypass"] >= rows["cw-l2 k=0"]["bypass"]
