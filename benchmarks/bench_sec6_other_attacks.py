"""Sec. 6 — "DCN against other evasion attacks" (FGSM, JSMA, DeepFool).

The paper's closing experiment-in-progress: the detector is trained only
on CW-L2 examples, so this measures how the full DCN holds up against the
other attack families of Table 1.  Observed shape (recorded in
EXPERIMENTS.md): minimal-distortion attacks (DeepFool) are fully
mitigated, greedy L0 attacks (JSMA) partially, while large-epsilon FGSM
slips past the logit detector — its crude perturbations land *deep* in the
wrong region with confident logits, the same blind spot
``bench_ablation_detector_transfer`` isolates.
"""

import numpy as np

from conftest import report
from repro.attacks import DeepFool, FGSM, JSMA, UntargetedFromTargeted
from repro.eval import attack_success_rate
from repro.eval.adversarial_sets import select_correct_seeds


def _attack_suite():
    return {
        "fgsm": UntargetedFromTargeted(FGSM(epsilon=0.2), metric="linf"),
        "jsma": UntargetedFromTargeted(JSMA(gamma=0.3), metric="l0"),
        "deepfool": DeepFool(max_steps=30),
    }


def test_sec6_other_attacks(benchmark, mnist_ctx):
    ctx = mnist_ctx
    rng = np.random.default_rng(606)
    x, y, _ = select_correct_seeds(
        ctx.model, ctx.dataset, ctx.scale.robustness_seeds, rng,
        exclude=ctx.dcn.detector.train_seed_indices,
    )

    def run_suite():
        rows = {}
        for name, attack in _attack_suite().items():
            result = attack.perturb(ctx.model, x, y)
            rows[name] = {
                "crafted": result.success_rate,
                "standard": attack_success_rate(ctx.standard, result),
                "dcn": attack_success_rate(ctx.dcn, result),
                "detected": float(
                    ctx.dcn.detector.flag_images(ctx.model, result.adversarial[result.success]).mean()
                )
                if result.success.any()
                else float("nan"),
            }
        return rows

    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    lines = [f"{'attack':>10} {'crafted':>9} {'vs DNN':>9} {'vs DCN':>9} {'detected':>9}"]
    for name, row in rows.items():
        lines.append(
            f"{name:>10} {row['crafted']:>8.0%} {row['standard']:>8.0%}"
            f" {row['dcn']:>8.0%} {row['detected']:>8.0%}"
        )
    report("Sec. 6 — other evasion attacks (MNIST substitute, untargeted)", "\n".join(lines))

    for name, row in rows.items():
        assert row["dcn"] <= row["standard"] + 1e-9, name
    # Minimal-distortion attacks sit at the boundary: detector + corrector
    # neutralise DeepFool and cut JSMA down.
    assert rows["deepfool"]["dcn"] < 0.2
    assert rows["deepfool"]["detected"] > 0.9
    assert rows["jsma"]["dcn"] < rows["jsma"]["standard"]
    # Large-epsilon FGSM is the known blind spot: confident wrong logits.
    assert rows["fgsm"]["detected"] < 0.5
