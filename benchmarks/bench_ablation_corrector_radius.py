"""Ablation — sensitivity of the corrector to the hypercube radius r.

The paper adopts r = 0.3 (MNIST) / 0.02 (CIFAR) from Cao & Gong without
re-deriving them; this reproduction calibrates r on the detector's CW-L2
pool instead (repro.core.radius).  The sweep shows the trade-off both
choices balance: too small a radius stays inside the adversarial region
(no recovery); too large a radius crosses into *other* wrong classes and
eventually hurts benign stability.
"""

import numpy as np

from conftest import report
from repro.core.corrector import Corrector


def test_ablation_corrector_radius(benchmark, mnist_ctx):
    ctx = mnist_ctx
    pool = ctx.pool("cw-l2")
    adv_images, adv_labels, _ = pool.successful()
    rng = np.random.default_rng(808)
    benign_x, benign_y, _ = ctx.dataset.sample_test(100, rng)
    radii = (0.02, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6)

    def run():
        rows = []
        for radius in radii:
            corrector = Corrector(ctx.model, radius=radius, samples=ctx.scale.corrector_samples)
            recovery = float((corrector.correct(adv_images) == adv_labels).mean())
            benign_ok = float((corrector.correct(benign_x) == benign_y).mean())
            rows.append({"radius": radius, "recovery": recovery, "benign": benign_ok})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'radius':>8} {'adv recovery':>13} {'benign acc':>11}"]
    for row in rows:
        lines.append(f"{row['radius']:>8.2f} {row['recovery']:>12.2%} {row['benign']:>10.2%}")
    report("Ablation — corrector radius (MNIST substitute)", "\n".join(lines))

    by_radius = {row["radius"]: row for row in rows}
    best = max(row["recovery"] for row in rows)
    # A vanishing radius cannot recover (it reproduces the DNN's mistake).
    assert by_radius[0.02]["recovery"] < best - 0.1
    # The calibrated radius the harness uses is near the sweep optimum.
    calibrated = min(radii, key=lambda r: abs(r - ctx.radius))
    assert by_radius[calibrated]["recovery"] >= best - 0.1
    # An oversized radius hurts both recovery and benign stability.
    assert by_radius[0.6]["recovery"] < best - 0.1
    assert by_radius[0.6]["benign"] <= by_radius[0.1]["benign"] + 0.02
