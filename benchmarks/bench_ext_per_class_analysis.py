"""Extension — which classes does the corrector fail on?

The paper reports aggregate recovery rates only.  This analysis breaks the
corrector's CW-L2 and CW-L0 recovery down by *true class* and checks the
model's calibration (ECE), connecting two observations:

* recovery failures concentrate on glyph classes with close neighbours
  (the same confusable pairs that dominate the confusion matrix), and
* the standard model is over-confident on adversarial inputs, which is
  exactly the margin signal the detector uses.
"""

import numpy as np

from conftest import report
from repro.nn.metrics import expected_calibration_error, per_class_accuracy


def test_ext_per_class_analysis(benchmark, mnist_ctx):
    ctx = mnist_ctx

    def run():
        rows = {}
        for attack in ("cw-l2", "cw-l0"):
            pool = ctx.pool(attack)
            adv, labels, _ = pool.successful()
            recovered = ctx.dcn.corrector.correct(adv)
            rows[attack] = {
                "per_class": per_class_accuracy(labels, recovered, 10),
                "overall": float((recovered == labels).mean()),
            }
        # Calibration of the protected model on benign vs adversarial data.
        pool = ctx.pool("cw-l2")
        adv, labels, _ = pool.successful()
        benign_probs = ctx.model.softmax(pool.seeds)
        adv_probs = ctx.model.softmax(adv)
        rows["ece_benign"] = expected_calibration_error(benign_probs, pool.seed_labels)
        rows["ece_adversarial"] = expected_calibration_error(adv_probs, labels)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'class':>6} {'CW-L2 recovery':>15} {'CW-L0 recovery':>15}"]
    for cls in range(10):
        l2 = rows["cw-l2"]["per_class"][cls]
        l0 = rows["cw-l0"]["per_class"][cls]
        fmt = lambda v: "   n/a" if np.isnan(v) else f"{v:6.0%}"
        lines.append(f"{cls:>6} {fmt(l2):>15} {fmt(l0):>15}")
    lines.append("")
    lines.append(f"model ECE on benign inputs:      {rows['ece_benign']:.3f}")
    lines.append(f"model ECE on adversarial inputs: {rows['ece_adversarial']:.3f}")
    report("Extension — per-class corrector recovery + calibration", "\n".join(lines))

    # Aggregates must match the Table 4 picture.
    assert rows["cw-l2"]["overall"] > 0.8
    assert rows["cw-l0"]["overall"] < rows["cw-l2"]["overall"]
    # The model is (far) worse calibrated on adversarial inputs: it assigns
    # high confidence to wrong labels there.
    assert rows["ece_adversarial"] > rows["ece_benign"]
