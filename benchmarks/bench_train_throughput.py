"""Throughput benchmark for the TrainingEngine (standalone, JSON output).

Measures epochs/second of the training loops that dominate the repo's
cache-warm cost, each as ``legacy`` (float64 autograd graph) vs ``engine``
(fused float32 parameter-gradient kernels):

* ``cnn-fast``     — the -fast preset CNN on mnist-fast (the workhorse of
                     every test-suite model build)
* ``cnn-paper``    — the full-size Carlini-style CNN on the 28x28
                     mnist-like dataset (paper-scale runs)
* ``detector-mlp`` — the DCN detector's 2-layer logit MLP (many epochs on
                     tiny batches; per-batch overhead dominates)

Run as a script::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py
    PYTHONPATH=src python benchmarks/bench_train_throughput.py --out bench.json
    PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke

The acceptance bar from the training-engine refactor: the engine must beat
legacy by >= 2x epochs/sec on ``cnn-fast``.  ``--smoke`` runs a tiny
configuration for CI wiring (skipping the paper-scale CNN) and does not
enforce the bar.

Full (non-smoke) runs persist ``BENCH_train_throughput.json`` with the
provenance context (git SHA, NumPy, dataset fingerprint) the
``python -m repro bench --compare`` regression gate diffs against.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_common import bench_context, dataset_fingerprint, write_payload
from repro.core.detector import build_detector_network
from repro.datasets import load_dataset
from repro.nn import Adam, TrainConfig, fit
from repro.zoo import MODEL_CONFIGS, build_network


def _cnn_workload(dataset_name: str, model_name: str, examples: int, epochs: int):
    dataset = load_dataset(dataset_name)
    config = MODEL_CONFIGS[model_name]
    x = dataset.x_train[:examples]
    y = dataset.y_train[:examples]

    def run_once(engine: bool) -> tuple[float, float]:
        network = build_network(config, dataset.input_shape, 10)
        optimizer = Adam(network.parameters(), lr=config.learning_rate)
        history = fit(
            network, optimizer, x, y,
            TrainConfig(epochs=epochs, batch_size=config.batch_size, engine=engine),
            np.random.default_rng(1),
        )
        return history.seconds, history.loss[-1]

    return run_once, len(x), epochs


def _detector_workload(examples: int, epochs: int):
    rng = np.random.default_rng(0)
    half = examples // 2
    benign = rng.normal(size=(half, 10))
    benign[np.arange(half), rng.integers(0, 10, half)] += 10.0
    features = np.sort(np.concatenate([benign, rng.normal(size=(half, 10))]), axis=-1)
    labels = np.concatenate([np.zeros(half, dtype=int), np.ones(half, dtype=int)])

    def run_once(engine: bool) -> tuple[float, float]:
        network = build_detector_network()
        optimizer = Adam(network.parameters(), lr=1e-2)
        history = fit(
            network, optimizer, features, labels,
            TrainConfig(epochs=epochs, batch_size=64, engine=engine),
            np.random.default_rng(1),
        )
        return history.seconds, history.loss[-1]

    return run_once, len(features), epochs


def run(examples: int, epochs: int, detector_epochs: int, repeats: int, smoke: bool) -> dict:
    workloads = {
        "cnn-fast": _cnn_workload("mnist-fast", "cnn-fast", examples, epochs),
        "detector-mlp": _detector_workload(600, detector_epochs),
    }
    if not smoke:
        workloads["cnn-paper"] = _cnn_workload("mnist-like", "cnn-paper", examples // 2, max(1, epochs // 2))

    results = {}
    for name, (run_once, amount, n_epochs) in workloads.items():
        entry = {"examples": amount, "epochs": n_epochs}
        losses = {}
        for variant, engine in (("legacy", False), ("engine", True)):
            best = float("inf")
            for _ in range(repeats):
                seconds, final_loss = run_once(engine)
                best = min(best, seconds)
                losses[variant] = final_loss
            entry[variant] = {"seconds": best, "epochs_per_sec": n_epochs / best}
        entry["speedup"] = entry["legacy"]["seconds"] / entry["engine"]["seconds"]
        # The two paths optimise the same objective from the same seeds;
        # their final losses must agree to float32 training noise.
        entry["final_loss_delta"] = abs(losses["engine"] - losses["legacy"])
        results[name] = entry

    train_x = load_dataset("mnist-fast").x_train[:examples]
    return {
        "context": bench_context(
            dataset="mnist-fast",
            dataset_fingerprint=dataset_fingerprint(train_x),
            examples=examples,
            epochs=epochs,
            detector_epochs=detector_epochs,
            repeats=repeats,
            smoke=smoke,
        ),
        "examples": examples,
        "repeats": repeats,
        "results": results,
        "meets_2x_bar": bool(results["cnn-fast"]["speedup"] >= 2.0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--examples", type=int, default=512)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--detector-epochs", type=int, default=60)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--out", type=Path, default=None, help="also write JSON here")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, single repeat, never fails the speedup bar (CI wiring)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.examples, args.epochs, args.detector_epochs, args.repeats = 64, 1, 5, 1
    if min(args.examples, args.epochs, args.detector_epochs, args.repeats) < 1:
        parser.error("--examples/--epochs/--detector-epochs/--repeats must be >= 1")

    payload = run(args.examples, args.epochs, args.detector_epochs, args.repeats, args.smoke)
    text = json.dumps(payload, indent=2)
    print(text)
    if args.out:
        args.out.write_text(text + "\n")
    elif not args.smoke:
        path = write_payload("train_throughput", payload)
        print(f"wrote {path}", file=sys.stderr)
    if args.smoke:
        return 0
    return 0 if payload["meets_2x_bar"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
