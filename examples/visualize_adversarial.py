"""Visualise an adversarial example in the terminal (the paper's Fig. 1).

Renders, side by side: the benign digit, its CW-L2 adversarial twin, and
the perturbation between them — plus both logit vectors, showing the
margin collapse the DCN detector exploits.

Run:  python examples/visualize_adversarial.py
"""

import numpy as np

from repro.attacks import CarliniWagnerL2
from repro.core import logit_statistics
from repro.eval.adversarial_sets import select_correct_seeds
from repro.viz import ascii_diff, ascii_image, side_by_side
from repro.zoo import model_for_dataset


def main() -> None:
    dataset, model = model_for_dataset("mnist-fast")
    rng = np.random.default_rng(4)
    x, y, _ = select_correct_seeds(model, dataset, 1, rng)
    target = np.array([(y[0] + 4) % 10])
    attack = CarliniWagnerL2(binary_search_steps=3, max_iterations=150)
    result = attack.perturb(model, x, y, target)

    benign_art = ascii_image(x[0])
    adv_art = ascii_image(result.adversarial[0])
    noise_art = ascii_diff(x[0], result.adversarial[0])
    print(side_by_side(benign_art, adv_art, noise_art, gap=4))
    print(f"\n{'benign':<20}{'adversarial':<20}{'perturbation'}")

    for label, image in (("benign", x), ("adversarial", result.adversarial)):
        logits = model.logits(image)
        stats = logit_statistics(logits)
        vector = "  ".join(f"{v:6.2f}" for v in logits[0])
        print(
            f"\n{label}: predicted {stats['argmax'][0]} "
            f"(margin {stats['margin'][0]:.2f}, entropy {stats['entropy'][0]:.2f})"
        )
        print(f"  logits: {vector}")

    print(
        f"\ntrue label {y[0]}, attack target {target[0]}, "
        f"L2 distortion {result.mean_distortion('l2'):.3f}"
    )
    print("Note the adversarial margin collapse — the signal the DCN detector learns.")


if __name__ == "__main__":
    main()
