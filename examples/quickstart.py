"""Quickstart: protect a classifier with DCN in a few lines.

Trains (or loads from cache) a CNN on the MNIST substitute, crafts a CW-L2
adversarial example, and shows the full DCN workflow of the paper's
Figs. 2-3: the detector passes benign inputs straight through and routes
the adversarial one to the corrector, which recovers the right label.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import CarliniWagnerL2
from repro.core import DCN
from repro.zoo import model_for_dataset


def main() -> None:
    # 1. A standard (undefended) classifier.
    dataset, model = model_for_dataset("mnist-fast")
    print(f"standard model accuracy: {model.accuracy(dataset.x_test, dataset.y_test):.1%}")

    # 2. Wrap it in a Detector-Corrector Network.  DCN.build trains the
    #    logit detector (cached after the first run) and configures the
    #    corrector with the paper's parameters (r=0.3, m=50).
    dcn = DCN.build(model, dataset)

    # 3. Craft an adversarial example with the CW-L2 attack.
    rng = np.random.default_rng(0)
    benign, label, _ = dataset.sample_test(1, rng, exclude=dcn.detector.train_seed_indices)
    target = np.array([(label[0] + 1) % 10])
    attack = CarliniWagnerL2(binary_search_steps=3, max_iterations=150)
    result = attack.perturb(model, benign, label, target)
    adversarial = result.adversarial

    print(f"\ntrue label:               {label[0]}")
    print(f"attack target:            {target[0]}")
    print(f"undefended model says:    {model.predict(adversarial)[0]}  (fooled: {result.success[0]})")
    print(f"L2 distortion:            {result.mean_distortion('l2'):.3f}")

    # 4. DCN workflow (paper Fig. 3): detect, then correct.
    labels, flagged = dcn.classify_detailed(adversarial)
    print(f"\nDCN detector flagged it:  {flagged[0]}")
    print(f"DCN final label:          {labels[0]}  (recovered: {labels[0] == label[0]})")

    # 5. Benign traffic passes through untouched (paper Fig. 2).
    labels, flagged = dcn.classify_detailed(benign)
    print(f"\nbenign input flagged:     {flagged[0]}")
    print(f"DCN label on benign:      {labels[0]} (true: {label[0]})")


if __name__ == "__main__":
    main()
