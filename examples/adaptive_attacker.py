"""Adaptive attacker: stress-testing DCN as Sec. 6 proposes.

An attacker who knows DCN exists can (1) raise the CW confidence κ so the
crafted logits look benign, or (2) differentiate through the detector
itself.  This example runs both against a raw-feature detector and shows
the price: detector bypass rises, but so does the visible distortion —
and the corrector still catches part of what the detector misses.

Run:  python examples/adaptive_attacker.py
"""

import numpy as np

from repro.attacks import CarliniWagnerL2, DetectorAwareCWL2
from repro.core import DCN, Corrector, select_radius, train_detector
from repro.eval import attack_success_rate
from repro.eval.adversarial_sets import select_correct_seeds
from repro.zoo import model_for_dataset


def main() -> None:
    dataset, model = model_for_dataset("mnist-fast")
    # The gradient-based adaptive attack needs the raw-feature detector.
    detector = train_detector(model, dataset, sort_features=False)
    radius = select_radius(model, dataset)  # calibrated on the detector's CW-L2 pool
    dcn = DCN(model, detector, Corrector(model, radius=radius))

    rng = np.random.default_rng(2)
    x, y, _ = select_correct_seeds(model, dataset, 8, rng, exclude=detector.train_seed_indices)
    targets = (y + 3) % 10

    attacks = {
        "CW-L2 (k=0)": CarliniWagnerL2(binary_search_steps=3, max_iterations=150),
        "CW-L2 (k=10)": CarliniWagnerL2(confidence=10.0, binary_search_steps=3, max_iterations=150),
        "detector-aware": DetectorAwareCWL2(detector, binary_search_steps=3, max_iterations=150),
    }

    header = f"{'attack':>15} {'crafted':>8} {'bypassed det':>13} {'beat DCN':>9} {'mean L2':>8}"
    print(header)
    print("-" * len(header))
    for name, attack in attacks.items():
        result = attack.perturb(model, x, y, targets)
        bypass = float("nan")
        if result.success.any():
            flagged = detector.flag_images(model, result.adversarial[result.success])
            bypass = (~flagged).mean()
        print(
            f"{name:>15} {result.success_rate:>7.0%} {bypass:>12.0%}"
            f" {attack_success_rate(dcn, result):>8.0%}"
            f" {result.mean_distortion('l2'):>8.3f}"
        )

    print(
        "\nReading: evading the detector is possible but costs extra L2"
        "\ndistortion, exactly the trade-off the paper's Sec. 6 predicts."
    )


if __name__ == "__main__":
    main()
