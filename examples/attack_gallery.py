"""Attack gallery: run all six attack families against one model.

Reproduces the paper's Table 1 taxonomy in action: every implemented
attack crafts adversarial examples for the same benign seeds, and the
script reports success rate and the distortion under all three distance
metrics — making the L0/L2/L∞ trade-offs of Sec. 2.2 concrete.

Run:  python examples/attack_gallery.py
"""

import numpy as np

from repro.attacks import (
    CarliniWagnerL0,
    CarliniWagnerL2,
    CarliniWagnerLinf,
    DeepFool,
    FGSM,
    IGSM,
    JSMA,
    LBFGSAttack,
)
from repro.eval.adversarial_sets import select_correct_seeds
from repro.zoo import model_for_dataset


def main() -> None:
    dataset, model = model_for_dataset("mnist-fast")
    rng = np.random.default_rng(1)
    x, y, _ = select_correct_seeds(model, dataset, 10, rng)
    targets = (y + 1 + rng.integers(0, 9, len(y))) % 10
    targets = np.where(targets == y, (targets + 1) % 10, targets)

    targeted_attacks = {
        "L-BFGS": LBFGSAttack(),
        "FGSM": FGSM(epsilon=0.25),
        "IGSM": IGSM(epsilon=0.15, alpha=0.02, steps=20),
        "JSMA": JSMA(gamma=0.25),
        "CW-L2": CarliniWagnerL2(binary_search_steps=3, max_iterations=150),
        "CW-L0": CarliniWagnerL0(max_rounds=10),
        "CW-Linf": CarliniWagnerLinf(max_rounds=8),
    }

    header = f"{'attack':>9} {'mode':>10} {'success':>8} {'L0':>7} {'L2':>7} {'Linf':>7}"
    print(header)
    print("-" * len(header))
    for name, attack in targeted_attacks.items():
        result = attack.perturb(model, x, y, targets)
        print(
            f"{name:>9} {'targeted':>10} {result.success_rate:>7.0%}"
            f" {result.mean_distortion('l0'):>7.1f}"
            f" {result.mean_distortion('l2'):>7.3f}"
            f" {result.mean_distortion('linf'):>7.3f}"
        )

    result = DeepFool(max_steps=30).perturb(model, x, y)
    print(
        f"{'DeepFool':>9} {'untargeted':>10} {result.success_rate:>7.0%}"
        f" {result.mean_distortion('l0'):>7.1f}"
        f" {result.mean_distortion('l2'):>7.3f}"
        f" {result.mean_distortion('linf'):>7.3f}"
    )


if __name__ == "__main__":
    main()
