"""Defense comparison: the paper's Sec. 5 evaluation in miniature.

Builds every defense the paper compares (standard DNN, defensive
distillation, region-based classification, DCN), runs the untargeted
CW-L2 attack, and prints benign accuracy, attack success rate, and
wall-clock per defense — a one-screen version of Tables 3-5.

Run:  python examples/defense_comparison.py
"""

import numpy as np

from repro.eval import (
    attack_success_rate,
    build_context,
    scale_config,
    time_defense,
    untargeted_from_pool,
)


def main() -> None:
    ctx = build_context(scale_config().mnist)
    pool = ctx.pool("cw-l2")
    untargeted = untargeted_from_pool(pool, metric="l2")

    rng = np.random.default_rng(5)
    benign_x, benign_y, _ = ctx.dataset.sample_test(100, rng)

    header = f"{'defense':>14} {'benign acc':>11} {'attack success':>15} {'time/100 (s)':>13}"
    print(header)
    print("-" * len(header))
    for name, defense in ctx.defenses().items():
        labels, seconds = time_defense(defense, benign_x)
        accuracy = (labels == benign_y).mean()
        success = attack_success_rate(defense, untargeted)
        print(f"{name:>14} {accuracy:>10.1%} {success:>14.1%} {seconds:>13.2f}")

    print(
        "\nReading: the standard and distilled models lose to CW completely;"
        "\nRC recovers most labels but pays m=1000 predictions per input;"
        "\nDCN matches RC's robustness at a fraction of the cost."
    )


if __name__ == "__main__":
    main()
