"""Tests for the logit characterisation study (Sec. 3 / Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import fig1_rows, format_fig1, logit_statistics, separation_summary


class TestLogitStatistics:
    def test_known_values(self):
        logits = np.array([[1.0, 5.0, 2.0]])
        stats = logit_statistics(logits)
        assert stats["max"][0] == 5.0
        assert stats["margin"][0] == 3.0
        assert stats["argmax"][0] == 1

    def test_entropy_bounds(self):
        uniform = logit_statistics(np.zeros((1, 10)))
        peaked = logit_statistics(np.array([[100.0] + [0.0] * 9]))
        assert uniform["entropy"][0] == pytest.approx(np.log(10), abs=1e-6)
        assert peaked["entropy"][0] < 1e-6

    @given(hnp.arrays(np.float64, (4, 10), elements=st.floats(-50, 50, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, logits):
        stats = logit_statistics(logits)
        assert (stats["margin"] >= 0).all()
        assert (stats["entropy"] >= -1e-9).all()
        assert (stats["entropy"] <= np.log(10) + 1e-9).all()
        np.testing.assert_array_equal(stats["argmax"], logits.argmax(axis=1))
        # Shifting all logits by a constant changes max but not margin/entropy.
        shifted = logit_statistics(logits + 7.0)
        np.testing.assert_allclose(shifted["margin"], stats["margin"], atol=1e-9)
        np.testing.assert_allclose(shifted["entropy"], stats["entropy"], atol=1e-6)


class TestSeparationSummary:
    def test_perfectly_separated(self):
        benign = np.zeros((50, 10))
        benign[:, 0] = 20.0  # huge margin
        adversarial = np.zeros((50, 10))
        adversarial[:, 1] = 0.1  # tiny margin
        summary = separation_summary(benign, adversarial)
        assert summary["margin_auc"] == 1.0
        assert summary["benign_mean_margin"] > summary["adversarial_mean_margin"]
        assert summary["benign_mean_entropy"] < summary["adversarial_mean_entropy"]

    def test_identical_populations_auc_half(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(100, 10))
        summary = separation_summary(logits, logits)
        assert summary["margin_auc"] == pytest.approx(0.5, abs=0.01)


class TestFig1:
    def test_rows_structure(self, tiny_correct):
        network, x, y = tiny_correct
        adversarials = x[1:4]  # stand-ins
        rows = fig1_rows(network, x[0], int(y[0]), adversarials)
        assert len(rows) == 4
        assert rows[0].is_benign
        assert rows[0].noise_l2 == 0.0
        assert all(not row.is_benign for row in rows[1:])
        assert all(row.noise_l2 > 0 for row in rows[1:])

    def test_format_marks_maximum(self, tiny_correct):
        network, x, y = tiny_correct
        rows = fig1_rows(network, x[0], int(y[0]), x[1:2])
        text = format_fig1(rows)
        assert "*" in text
        assert "benign" in text and "adv" in text
        # One marked maximum per logit row.
        for line in text.splitlines()[1:]:
            assert line.count("*") == 1
