"""Tests for corrector-radius calibration."""

import numpy as np
import pytest

from repro.core.radius import DEFAULT_RADIUS_GRID, select_radius
from repro.datasets import Dataset
from tests.conftest import make_blob_problem


@pytest.fixture(scope="module")
def blob_dataset(tiny_model):
    network, x_test, y_test = tiny_model
    rng = np.random.default_rng(10)
    x_train, y_train = make_blob_problem(50, rng)
    return Dataset("blob", x_train, y_train, x_test, y_test)


class TestSelectRadius:
    def test_returns_grid_value(self, tiny_model, blob_dataset):
        network, _, _ = tiny_model
        radius = select_radius(network, blob_dataset, num_seeds=5, samples=25, cache=False)
        assert radius in DEFAULT_RADIUS_GRID

    def test_custom_grid(self, tiny_model, blob_dataset):
        network, _, _ = tiny_model
        grid = (0.05, 0.2)
        radius = select_radius(network, blob_dataset, num_seeds=5, samples=25, grid=grid, cache=False)
        assert radius in grid

    def test_mnist_fast_calibration_beats_extremes(self):
        """On the real substrate, the calibrated radius recovers better
        than a tiny or an oversized radius (uses cached artifacts)."""
        from repro.core import Corrector
        from repro.eval import build_context

        ctx = build_context("mnist-fast")
        pool = ctx.pool("cw-l2")
        adv, labels, _ = pool.successful()

        def recovery(radius):
            corrector = Corrector(ctx.model, radius=radius, samples=50, seed=2)
            return (corrector.correct(adv) == labels).mean()

        calibrated = recovery(ctx.radius)
        assert calibrated > 0.8
        assert calibrated >= recovery(0.01) - 0.05
        assert calibrated >= recovery(0.6)
