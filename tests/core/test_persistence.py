"""Tests for DCN save/load bundles."""

import numpy as np
import pytest

from repro.core import DCN, Corrector, LogitDetector, build_detector_network, load_dcn, save_dcn


@pytest.fixture
def small_dcn(tiny_correct):
    network, x, _ = tiny_correct
    detector = LogitDetector(
        build_detector_network(hidden=16),
        train_seed_indices=np.array([3, 7, 9]),
        sort_features=False,
    )
    corrector = Corrector(network, radius=0.17, samples=42)
    return DCN(network, detector, corrector), x


class TestRoundtrip:
    def test_configuration_preserved(self, small_dcn, tmp_path):
        dcn, _ = small_dcn
        path = tmp_path / "dcn.npz"
        save_dcn(dcn, path)
        loaded = load_dcn(dcn.network, path)
        assert loaded.corrector.radius == 0.17
        assert loaded.corrector.samples == 42
        assert loaded.detector.sort_features is False
        np.testing.assert_array_equal(loaded.detector.train_seed_indices, [3, 7, 9])

    def test_detector_weights_preserved(self, small_dcn, tmp_path):
        dcn, x = small_dcn
        path = tmp_path / "dcn.npz"
        save_dcn(dcn, path)
        loaded = load_dcn(dcn.network, path)
        logits = dcn.network.logits(x[:8])
        np.testing.assert_allclose(loaded.detector.scores(logits), dcn.detector.scores(logits))

    def test_hidden_width_recovered(self, small_dcn, tmp_path):
        dcn, _ = small_dcn
        path = tmp_path / "dcn.npz"
        save_dcn(dcn, path)
        loaded = load_dcn(dcn.network, path)
        assert loaded.detector.network.num_parameters() == dcn.detector.network.num_parameters()

    def test_classification_identical(self, small_dcn, tmp_path):
        dcn, x = small_dcn
        path = tmp_path / "dcn.npz"
        save_dcn(dcn, path)
        loaded = load_dcn(dcn.network, path)
        # Detector decisions (deterministic part) must agree exactly.
        logits = dcn.network.logits(x[:20])
        np.testing.assert_array_equal(
            loaded.detector.is_adversarial(logits), dcn.detector.is_adversarial(logits)
        )

    def test_version_check(self, small_dcn, tmp_path):
        dcn, _ = small_dcn
        path = tmp_path / "dcn.npz"
        save_dcn(dcn, path)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive.files}
        data["format_version"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_dcn(dcn.network, path)
