"""Tests for the alternative correctors and the margin-threshold baseline."""

import numpy as np
import pytest

from repro.attacks import CarliniWagnerL2
from repro.core import (
    Corrector,
    GaussianCorrector,
    IterativeCorrector,
    MarginThresholdDetector,
    SoftVoteCorrector,
)


@pytest.fixture(scope="module")
def cw_examples(tiny_correct):
    network, x, y = tiny_correct
    targets = (y[:10] + 1) % 10
    attack = CarliniWagnerL2(binary_search_steps=3, max_iterations=100)
    result = attack.perturb(network, x[:10], y[:10], targets)
    return network, x[:10], y[:10], result


ALL_CORRECTORS = [SoftVoteCorrector, GaussianCorrector, IterativeCorrector]


class TestAlternativeCorrectors:
    @pytest.mark.parametrize("corrector_cls", ALL_CORRECTORS)
    def test_recovers_adversarial_labels(self, corrector_cls, cw_examples):
        network, x, y, result = cw_examples
        corrector = corrector_cls(network, radius=0.25, samples=50, seed=0)
        ok = result.success
        recovered = corrector.correct(result.adversarial[ok])
        assert (recovered == y[ok]).mean() > 0.5

    @pytest.mark.parametrize("corrector_cls", ALL_CORRECTORS)
    def test_stable_on_benign(self, corrector_cls, tiny_correct):
        network, x, y = tiny_correct
        corrector = corrector_cls(network, radius=0.1, samples=40, seed=1)
        assert (corrector.correct(x[:15]) == y[:15]).mean() > 0.8

    @pytest.mark.parametrize("corrector_cls", ALL_CORRECTORS + [Corrector])
    def test_empty_batch(self, corrector_cls, tiny_correct):
        network, x, _ = tiny_correct
        corrector = corrector_cls(network, radius=0.1)
        assert corrector.correct(x[:0]).shape == (0,)

    @pytest.mark.parametrize("corrector_cls", ALL_CORRECTORS)
    def test_invalid_samples(self, corrector_cls, tiny_correct):
        network, _, _ = tiny_correct
        with pytest.raises(ValueError):
            corrector_cls(network, radius=0.1, samples=0)

    def test_gaussian_sigma_default(self, tiny_correct):
        network, _, _ = tiny_correct
        corrector = GaussianCorrector(network, radius=0.3)
        assert corrector.sigma == pytest.approx(0.3 / np.sqrt(3))


class TestMarginThresholdDetector:
    def test_calibration_bounds_benign_flags(self, tiny_correct):
        network, x, _ = tiny_correct
        detector = MarginThresholdDetector()
        logits = network.logits(x)
        detector.calibrate(logits, false_negative_rate=0.1)
        assert detector.is_adversarial(logits).mean() <= 0.12

    def test_detects_small_margin_inputs(self, cw_examples):
        network, x, y, result = cw_examples
        detector = MarginThresholdDetector()
        detector.calibrate(network.logits(x), false_negative_rate=0.05)
        adv_logits = network.logits(result.adversarial[result.success])
        # CW-0 adversarials end right at the boundary: tiny margins.
        assert detector.is_adversarial(adv_logits).mean() > 0.8

    def test_error_rates_contract(self, tiny_correct):
        network, x, _ = tiny_correct
        detector = MarginThresholdDetector(threshold=1e9)  # flags everything
        logits = network.logits(x[:10])
        rates = detector.error_rates(logits, logits)
        assert rates["false_negative"] == 1.0
        assert rates["false_positive"] == 0.0

    def test_flag_images_path(self, tiny_correct):
        network, x, _ = tiny_correct
        detector = MarginThresholdDetector(threshold=0.0)
        flags = detector.flag_images(network, x[:5])
        assert flags.shape == (5,)
