"""Tests for the corrector and the DCN pipeline (tiny-model based)."""

import numpy as np
import pytest

from repro.attacks import CarliniWagnerL2
from repro.core import DCN, Corrector, LogitDetector, build_detector_network


class _StubDetector:
    """Detector stand-in with a fixed decision."""

    def __init__(self, flag_all: bool):
        self.flag_all = flag_all
        self.sort_features = True
        self.train_seed_indices = np.array([], dtype=int)

    def is_adversarial(self, logits):
        return np.full(len(logits), self.flag_all)


@pytest.fixture(scope="module")
def cw_examples(tiny_correct):
    network, x, y = tiny_correct
    targets = (y[:12] + 1) % 10
    attack = CarliniWagnerL2(binary_search_steps=3, max_iterations=100)
    result = attack.perturb(network, x[:12], y[:12], targets)
    return network, x[:12], y[:12], result


class TestCorrector:
    def test_recovers_adversarial_labels(self, cw_examples):
        network, x, y, result = cw_examples
        corrector = Corrector(network, radius=0.25, samples=50, seed=0)
        ok = result.success
        recovered = corrector.correct(result.adversarial[ok])
        assert (recovered == y[ok]).mean() > 0.6

    def test_keeps_benign_labels(self, tiny_correct):
        network, x, y = tiny_correct
        corrector = Corrector(network, radius=0.1, samples=50, seed=0)
        assert (corrector.correct(x[:20]) == y[:20]).mean() > 0.9

    def test_empty_batch(self, tiny_correct):
        network, x, _ = tiny_correct
        corrector = Corrector(network, radius=0.1)
        out = corrector.correct(x[:0])
        assert out.shape == (0,)

    def test_invalid_samples(self, tiny_correct):
        network, _, _ = tiny_correct
        with pytest.raises(ValueError):
            Corrector(network, radius=0.1, samples=0)


class TestDCN:
    def test_flag_nothing_matches_standard(self, tiny_correct):
        network, x, _ = tiny_correct
        dcn = DCN(network, _StubDetector(flag_all=False), Corrector(network, 0.2))
        labels, flagged = dcn.classify_detailed(x[:10])
        assert not flagged.any()
        np.testing.assert_array_equal(labels, network.predict(x[:10]))

    def test_flag_everything_uses_corrector(self, tiny_correct):
        network, x, y = tiny_correct
        dcn = DCN(network, _StubDetector(flag_all=True), Corrector(network, 0.1, seed=0))
        labels, flagged = dcn.classify_detailed(x[:10])
        assert flagged.all()
        # Corrector on benign inputs agrees with the model most of the time,
        # which is why false negatives are harmless (paper Sec. 5.2).
        assert (labels == y[:10]).mean() > 0.8

    def test_classify_matches_detailed(self, tiny_correct):
        network, x, _ = tiny_correct
        dcn = DCN(network, _StubDetector(flag_all=False), Corrector(network, 0.2))
        np.testing.assert_array_equal(dcn.classify(x[:6]), dcn.classify_detailed(x[:6])[0])

    def test_end_to_end_recovery(self, cw_examples):
        """Full pipeline with a real trained detector on the tiny model."""
        network, x, y, result = cw_examples
        # Train a detector on this model's logits.
        from repro.nn import Adam, TrainConfig, fit

        benign_logits = network.logits(x)
        adv_logits = network.logits(result.adversarial[result.success])
        features = np.sort(np.concatenate([benign_logits, adv_logits]), axis=1)
        labels = np.concatenate([np.zeros(len(benign_logits), int), np.ones(len(adv_logits), int)])
        det_net = build_detector_network()
        fit(
            det_net, Adam(det_net.parameters(), lr=1e-2), features, labels,
            TrainConfig(epochs=200, batch_size=32), np.random.default_rng(0),
        )
        detector = LogitDetector(det_net, sort_features=True)
        dcn = DCN(network, detector, Corrector(network, radius=0.25, samples=50, seed=1))

        adv = result.adversarial[result.success]
        true = y[result.success]
        # The undefended model is fooled on all of these...
        assert (network.predict(adv) == true).mean() < 0.2
        # ...while DCN recovers the majority.
        assert (dcn.classify(adv) == true).mean() > 0.5


class TestClassifyDtype:
    """classify_detailed must not round-trip engine-dtype input via float64."""

    def test_float32_batch_reaches_engine_uncopied(self, tiny_correct, monkeypatch):
        network, x, _ = tiny_correct
        dcn = DCN(network, _StubDetector(flag_all=False), Corrector(network, 0.1, seed=0))
        seen = {}
        original = network.engine.logits

        def spy(batch, *args, **kwargs):
            seen["batch"] = batch
            return original(batch, *args, **kwargs)

        monkeypatch.setattr(network.engine, "logits", spy)
        x32 = np.ascontiguousarray(x[:8], dtype=np.float32)
        dcn.classify_detailed(x32)
        # np.asarray on an ndarray is the identity: no float64 (or any
        # other) intermediate copy on the serving hot path.
        assert seen["batch"] is x32

    def test_float32_labels_match_float64(self, tiny_correct):
        network, x, _ = tiny_correct
        # Flag everything so the corrector's dtype canonicalisation is
        # exercised too, not just the engine forward.
        dcn = DCN(network, _StubDetector(flag_all=True), Corrector(network, 0.1, seed=0))
        rows64 = np.asarray(x[:10], dtype=np.float64)
        rows32 = rows64.astype(np.float32)
        labels32, flagged32 = dcn.classify_detailed(rows32)
        labels64, flagged64 = dcn.classify_detailed(rows32.astype(np.float64))
        np.testing.assert_array_equal(labels32, labels64)
        np.testing.assert_array_equal(flagged32, flagged64)
