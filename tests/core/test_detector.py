"""Unit tests for the logit detector (synthetic logit populations)."""

import numpy as np
import pytest

from repro.core import ADVERSARIAL, BENIGN, LogitDetector, build_detector_network
from repro.nn import Adam, TrainConfig, fit


def synthetic_logits(n, rng, kind):
    """Benign-like logits (confident winner) or adversarial-like (tight race)."""
    logits = rng.normal(0.0, 1.0, size=(n, 10))
    winners = rng.integers(0, 10, size=n)
    if kind == "benign":
        logits[np.arange(n), winners] += rng.uniform(8.0, 15.0, size=n)
    else:
        runner_up = (winners + rng.integers(1, 10, size=n)) % 10
        boost = rng.uniform(3.0, 5.0, size=n)
        logits[np.arange(n), runner_up] += boost
        logits[np.arange(n), winners] += boost + rng.uniform(0.1, 0.8, size=n)
    return logits


@pytest.fixture(scope="module")
def trained_detector():
    rng = np.random.default_rng(0)
    benign = synthetic_logits(400, rng, "benign")
    adversarial = synthetic_logits(400, rng, "adversarial")
    features = np.concatenate([benign, adversarial])
    labels = np.concatenate([np.full(400, BENIGN), np.full(400, ADVERSARIAL)])
    network = build_detector_network()
    fit(
        network,
        Adam(network.parameters(), lr=1e-2),
        features,
        labels,
        TrainConfig(epochs=60, batch_size=64),
        np.random.default_rng(1),
    )
    # Trained on raw features, so disable the default sorting preprocessor.
    return LogitDetector(network, sort_features=False)


class TestArchitecture:
    def test_two_layer_shape(self):
        network = build_detector_network(num_classes=10, hidden=32)
        assert network.input_shape == (10,)
        assert network.num_classes == 2
        # 2 Dense layers as the paper specifies.
        from repro.nn import Dense

        dense = [l for l in network.layers if isinstance(l, Dense)]
        assert len(dense) == 2

    def test_is_lightweight(self):
        network = build_detector_network()
        assert network.num_parameters() < 1000


class TestDetection:
    def test_separates_populations(self, trained_detector):
        rng = np.random.default_rng(2)
        benign = synthetic_logits(200, rng, "benign")
        adversarial = synthetic_logits(200, rng, "adversarial")
        assert trained_detector.is_adversarial(benign).mean() < 0.1
        assert trained_detector.is_adversarial(adversarial).mean() > 0.9

    def test_scores_shape(self, trained_detector):
        scores = trained_detector.scores(np.zeros((5, 10)))
        assert scores.shape == (5, 2)

    def test_error_rates_follow_paper_naming(self, trained_detector):
        rng = np.random.default_rng(3)
        benign = synthetic_logits(100, rng, "benign")
        adversarial = synthetic_logits(100, rng, "adversarial")
        rates = trained_detector.error_rates(benign, adversarial)
        # Paper naming: false_negative = benign flagged, false_positive =
        # adversarial missed.
        flagged_benign = trained_detector.is_adversarial(benign).mean()
        missed_adv = 1.0 - trained_detector.is_adversarial(adversarial).mean()
        assert rates["false_negative"] == pytest.approx(flagged_benign)
        assert rates["false_positive"] == pytest.approx(missed_adv)

    def test_error_rates_empty_inputs(self, trained_detector):
        rates = trained_detector.error_rates(np.zeros((0, 10)), np.zeros((0, 10)))
        assert rates == {"false_negative": 0.0, "false_positive": 0.0}

    def test_flag_images_consistent(self, trained_detector, tiny_correct):
        network, x, _ = tiny_correct
        direct = trained_detector.is_adversarial(network.logits(x[:10]))
        via_images = trained_detector.flag_images(network, x[:10])
        np.testing.assert_array_equal(direct, via_images)

    def test_default_train_indices_empty(self, trained_detector):
        assert trained_detector.train_seed_indices.size == 0
