"""Property tests on detector components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import LogitDetector, MarginThresholdDetector, build_detector_network

finite = {"allow_nan": False, "allow_infinity": False}


@pytest.fixture(scope="module")
def detector():
    return LogitDetector(build_detector_network(), sort_features=True)


class TestSortedDetectorProperties:
    @given(
        hnp.arrays(np.float64, (4, 10), elements=st.floats(-30, 30, **finite)),
        st.permutations(list(range(10))),
    )
    @settings(max_examples=50, deadline=None)
    def test_permutation_invariance(self, logits, permutation):
        """Sorting makes the detector invariant to class relabelling."""
        net = build_detector_network()
        det = LogitDetector(net, sort_features=True)
        original = det.scores(logits)
        permuted = det.scores(logits[:, permutation])
        np.testing.assert_allclose(original, permuted, atol=1e-9)

    @given(hnp.arrays(np.float64, (3, 10), elements=st.floats(-30, 30, **finite)))
    @settings(max_examples=50, deadline=None)
    def test_decision_consistent_with_scores(self, logits):
        net = build_detector_network()
        det = LogitDetector(net, sort_features=True)
        scores = det.scores(logits)
        np.testing.assert_array_equal(det.is_adversarial(logits), scores[:, 1] > scores[:, 0])


class TestMarginDetectorProperties:
    @given(
        hnp.arrays(np.float64, (5, 10), elements=st.floats(-30, 30, **finite)),
        st.floats(-10, 10, **finite),
    )
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, logits, shift):
        det = MarginThresholdDetector(threshold=1.0)
        np.testing.assert_array_equal(
            det.is_adversarial(logits), det.is_adversarial(logits + shift)
        )

    @given(hnp.arrays(np.float64, (5, 10), elements=st.floats(-30, 30, **finite)))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_threshold(self, logits):
        loose = MarginThresholdDetector(threshold=0.5).is_adversarial(logits)
        strict = MarginThresholdDetector(threshold=2.0).is_adversarial(logits)
        # A larger threshold can only flag more inputs.
        assert (strict | ~loose).all() or (loose <= strict).all()

    def test_calibration_quantile_property(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(400, 10)) * 5
        det = MarginThresholdDetector()
        for rate in (0.01, 0.05, 0.2):
            det.calibrate(logits, false_negative_rate=rate)
            flagged = det.is_adversarial(logits).mean()
            assert flagged <= rate + 0.01
