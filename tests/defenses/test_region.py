"""Tests for region-based classification (RC) and the vote primitive."""

import numpy as np
import pytest

from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN
from repro.defenses import RegionClassifier, region_vote


class TestRegionVote:
    def test_zero_radius_matches_predict(self, tiny_correct):
        network, x, _ = tiny_correct
        labels = region_vote(network, x[:8], radius=0.0, samples=5, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(labels, network.predict(x[:8]))

    def test_small_radius_stable_on_benign(self, tiny_correct):
        network, x, y = tiny_correct
        labels = region_vote(network, x[:20], radius=0.05, samples=30, rng=np.random.default_rng(0))
        assert (labels == network.predict(x[:20])).mean() > 0.9

    def test_invalid_params(self, tiny_correct):
        network, x, _ = tiny_correct
        with pytest.raises(ValueError):
            region_vote(network, x[:1], radius=-0.1, samples=5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            region_vote(network, x[:1], radius=0.1, samples=0, rng=np.random.default_rng(0))

    def test_samples_stay_in_box(self, tiny_correct):
        # Sampling near the box corner must still produce valid labels
        # (implicitly checks clipping: the network would happily classify
        # out-of-box values, so we check the vote path doesn't crash and is
        # consistent under a huge radius).
        network, x, _ = tiny_correct
        labels = region_vote(network, x[:3], radius=2.0, samples=10, rng=np.random.default_rng(0))
        assert labels.shape == (3,)
        assert ((0 <= labels) & (labels < 10)).all()

    def test_batch_chunking_consistent(self, tiny_correct):
        network, x, _ = tiny_correct
        a = region_vote(network, x[:6], 0.05, 20, np.random.default_rng(3), batch_size=16)
        b = region_vote(network, x[:6], 0.05, 20, np.random.default_rng(3), batch_size=512)
        # Different chunking consumes the rng differently; both must still
        # agree with the model on clearly-benign inputs.
        np.testing.assert_array_equal(a, network.predict(x[:6]))
        np.testing.assert_array_equal(b, network.predict(x[:6]))


class TestRegionClassifier:
    def test_classify_interface(self, tiny_correct):
        network, x, y = tiny_correct
        rc = RegionClassifier(network, radius=0.05, samples=25)
        labels = rc.classify(x[:15])
        assert labels.shape == (15,)
        assert (labels == y[:15]).mean() > 0.8

    def test_name(self, tiny_correct):
        network, _, _ = tiny_correct
        assert RegionClassifier(network, 0.1).name == "rc"


class TestRegionClassifierDeterminism:
    """Labels are a pure function of (seed, input) — never of call order."""

    def _rc(self, network, seed=3):
        return RegionClassifier(network, radius=0.05, samples=25, seed=seed)

    def test_call_order_does_not_change_labels(self, tiny_correct):
        network, x, _ = tiny_correct
        first = self._rc(network)
        second = self._rc(network)
        a1 = first.classify(x[:5])
        b1 = first.classify(x[5:10])
        # Reversed call order on a fresh instance: before the fix, the
        # shared generator state made these disagree.
        b2 = second.classify(x[5:10])
        a2 = second.classify(x[:5])
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)

    def test_repeat_calls_pin_exact_labels(self, tiny_correct):
        network, x, _ = tiny_correct
        rc = self._rc(network)
        labels = rc.classify(x[:8])
        # Exact labels, not tolerance: the same input always gets the
        # same vote, even after unrelated intervening calls.
        rc.classify(x[8:12])
        np.testing.assert_array_equal(rc.classify(x[:8]), labels)
        np.testing.assert_array_equal(self._rc(network).classify(x[:8]), labels)

    def test_different_seeds_draw_different_noise(self, tiny_correct):
        network, x, _ = tiny_correct
        from repro.defenses.region import call_rng

        a = call_rng(0, x[:4]).random(8)
        b = call_rng(1, x[:4]).random(8)
        assert not np.array_equal(a, b)

    def test_different_inputs_draw_different_noise(self, tiny_correct):
        network, x, _ = tiny_correct
        from repro.defenses.region import call_rng

        a = call_rng(0, x[:4]).random(8)
        b = call_rng(0, x[4:8]).random(8)
        assert not np.array_equal(a, b)

    def test_corrector_is_call_order_independent(self, tiny_correct):
        from repro.core.corrector import Corrector

        network, x, _ = tiny_correct
        first = Corrector(network, radius=0.05, samples=25, seed=1)
        second = Corrector(network, radius=0.05, samples=25, seed=1)
        a1 = first.correct(x[:4])
        b1 = first.correct(x[4:8])
        b2 = second.correct(x[4:8])
        a2 = second.correct(x[:4])
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)


class TestFusedVote:
    """region_vote_fused: the corrector kernel behind cross-request fusion."""

    def _args(self):
        return dict(radius=0.05, samples=20, seed=1)

    def test_fused_equals_per_row(self, tiny_correct):
        from repro.defenses.region import region_vote_fused

        network, x, _ = tiny_correct
        fused = region_vote_fused(network, x[:10], **self._args())
        per_row = np.concatenate(
            [region_vote_fused(network, x[i : i + 1], **self._args()) for i in range(10)]
        )
        # Per-input noise streams: fusing rows from many requests into one
        # batch votes bitwise-identically to voting each row alone.
        np.testing.assert_array_equal(fused, per_row)

    def test_chunk_padding_leaves_labels_unchanged(self, tiny_correct):
        from repro.defenses.region import region_vote_fused

        network, x, _ = tiny_correct
        plain = region_vote_fused(network, x[:7], **self._args())
        padded = region_vote_fused(network, x[:7], pad_chunks=True, **self._args())
        np.testing.assert_array_equal(plain, padded)

    def test_kernel_batch_is_a_pure_performance_knob(self, tiny_correct):
        from repro.defenses.region import region_vote_fused

        network, x, _ = tiny_correct
        a = region_vote_fused(network, x[:6], kernel_batch=64, **self._args())
        b = region_vote_fused(network, x[:6], kernel_batch=7, **self._args())
        np.testing.assert_array_equal(a, b)

    def test_float32_rows_vote_like_float64(self, tiny_correct):
        from repro.defenses.region import region_vote_fused

        network, x, _ = tiny_correct
        rows32 = np.asarray(x[:6], dtype=np.float32)
        # float32 -> float64 widening is exact, so a float32 batch hashes
        # to the same per-input noise streams as its widened copy (the
        # engine-dtype fast path in DCN.classify_detailed depends on it).
        np.testing.assert_array_equal(
            region_vote_fused(network, rows32, **self._args()),
            region_vote_fused(network, rows32.astype(np.float64), **self._args()),
        )

    def test_empty_batch(self, tiny_correct):
        from repro.defenses.region import region_vote_fused

        network, x, _ = tiny_correct
        assert region_vote_fused(network, x[:0], **self._args()).shape == (0,)

    def test_corrector_fused_matches_correct(self, tiny_correct):
        from repro.core.corrector import Corrector

        network, x, _ = tiny_correct
        corrector = Corrector(network, radius=0.05, samples=20, seed=2)
        np.testing.assert_array_equal(
            corrector.correct_fused(x[:8]), corrector.correct(x[:8])
        )
