"""Tests for defensive distillation (trained at reduced scale)."""

import numpy as np
import pytest

from repro.datasets import Dataset, load_dataset
from repro.defenses import StandardClassifier, train_distilled
from repro.zoo import ModelConfig


@pytest.fixture(scope="module")
def small_slice():
    """A reduced mnist-fast slice so distillation trains in seconds."""
    ds = load_dataset("mnist-fast")
    return Dataset(
        name="mnist-fast-slice",
        x_train=ds.x_train[:500],
        y_train=ds.y_train[:500],
        x_test=ds.x_test[:200],
        y_test=ds.y_test[:200],
    )


@pytest.fixture(scope="module")
def tiny_config():
    return ModelConfig("cnn-tiny", conv_channels=(6,), dense_units=(32,), epochs=8, dropout=0.0)


@pytest.fixture(scope="module")
def distilled(small_slice, tiny_config):
    return train_distilled(small_slice, tiny_config, temperature=20.0, cache=False)


class TestDistillation:
    def test_student_learns(self, distilled, small_slice):
        accuracy = (distilled.classify(small_slice.x_test) == small_slice.y_test).mean()
        assert accuracy > 0.7

    def test_name_and_temperature(self, distilled):
        assert distilled.name == "distillation"
        assert distilled.temperature == 20.0

    def test_student_logits_scaled_up(self, distilled, small_slice):
        # Training at temperature T makes the student's T=1 logits roughly T
        # times larger than normal — the effect that squashes the softmax
        # gradients defensive distillation relies on.
        logits = distilled.network.logits(small_slice.x_test[:50])
        assert np.abs(logits).max() > 20.0


class TestStandardClassifier:
    def test_matches_network_predict(self, tiny_correct):
        network, x, _ = tiny_correct
        clf = StandardClassifier(network)
        np.testing.assert_array_equal(clf.classify(x[:10]), network.predict(x[:10]))
        assert clf.name == "standard"
