"""Tests for the MagNet and adversarial-training extensions."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.datasets import Dataset, load_dataset
from repro.defenses import MagNet, train_adversarial, train_autoencoder
from repro.defenses.magnet import build_autoencoder
from repro.zoo import ModelConfig, load_model


@pytest.fixture(scope="module")
def small_slice():
    ds = load_dataset("mnist-fast")
    return Dataset(
        name="mnist-fast-slice2",
        x_train=ds.x_train[:600],
        y_train=ds.y_train[:600],
        x_test=ds.x_test[:200],
        y_test=ds.y_test[:200],
    )


@pytest.fixture(scope="module")
def mnist_model():
    ds = load_dataset("mnist-fast")
    return ds, load_model(ds)


class TestAutoencoder:
    def test_output_in_box(self, small_slice):
        ae = build_autoencoder(small_slice.input_shape)
        out = ae.logits(small_slice.x_test[:4]) * 0.5
        assert out.min() >= -0.5 and out.max() <= 0.5

    def test_reconstruction_improves_with_training(self, small_slice):
        untrained = build_autoencoder(small_slice.input_shape)
        trained = train_autoencoder(small_slice, epochs=15, cache=False)
        x = small_slice.x_test[:50]
        flat = x.reshape(50, -1)
        err_untrained = ((untrained.logits(x) * 0.5 - flat) ** 2).mean()
        err_trained = ((trained.logits(x) * 0.5 - flat) ** 2).mean()
        assert err_trained < err_untrained / 2


class TestMagNet:
    @pytest.fixture(scope="class")
    def magnet(self, mnist_model):
        ds, model = mnist_model
        return MagNet.build(model, ds, false_positive_rate=0.05)

    def test_benign_accuracy_preserved(self, magnet, mnist_model):
        ds, model = mnist_model
        x, y = ds.x_test[:200], ds.y_test[:200]
        standard = (model.predict(x) == y).mean()
        reformed = (magnet.classify(x) == y).mean()
        assert reformed > standard - 0.10

    def test_benign_flag_rate_calibrated(self, magnet, mnist_model):
        ds, _ = mnist_model
        fresh = np.setdiff1d(np.arange(400), magnet.calibration_indices)
        flagged = magnet.is_adversarial(ds.x_test[fresh])
        assert flagged.mean() < 0.15

    def test_reconstruction_error_nonnegative(self, magnet, mnist_model):
        ds, _ = mnist_model
        errors = magnet.reconstruction_error(ds.x_test[:20])
        assert (errors >= 0).all()

    def test_reform_stays_in_box(self, magnet, mnist_model):
        ds, _ = mnist_model
        out = magnet.reform(ds.x_test[:10])
        assert out.min() >= -0.5 and out.max() <= 0.5
        assert out.shape == ds.x_test[:10].shape


class TestAdversarialTraining:
    @pytest.fixture(scope="class")
    def hardened(self, small_slice):
        config = ModelConfig("cnn-tiny-at", conv_channels=(6,), dense_units=(32,), epochs=10, dropout=0.0, learning_rate=2e-3)
        return train_adversarial(small_slice, config, epsilon=0.1, cache=False)

    def test_clean_accuracy_reasonable(self, hardened, small_slice):
        accuracy = (hardened.classify(small_slice.x_test) == small_slice.y_test).mean()
        assert accuracy > 0.7

    def test_more_robust_to_fgsm_than_standard(self, hardened, small_slice, mnist_model):
        _, standard_model = mnist_model
        x, y = small_slice.x_test[:60], small_slice.y_test[:60]
        eps = 0.1
        hardened_result = FGSM(epsilon=eps).perturb(hardened.network, x, y)
        standard_result = FGSM(epsilon=eps).perturb(standard_model, x, y)
        # White-box FGSM at the training epsilon hurts the hardened model
        # less than it hurts the standard one.
        assert hardened_result.success_rate < standard_result.success_rate + 0.05
