"""Tests for feature squeezing."""

import numpy as np
import pytest

from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN
from repro.defenses import FeatureSqueezingDetector, median_smooth, reduce_bit_depth


class TestBitDepth:
    def test_one_bit_binarises(self):
        x = np.linspace(PIXEL_MIN, PIXEL_MAX, 11).reshape(1, 1, 1, 11)
        out = reduce_bit_depth(x, 1)
        assert set(np.unique(out)) <= {PIXEL_MIN, PIXEL_MAX}

    def test_level_count(self):
        x = np.linspace(PIXEL_MIN, PIXEL_MAX, 1000).reshape(1, 1, 10, 100)
        out = reduce_bit_depth(x, 3)
        assert len(np.unique(out)) == 2**3

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(PIXEL_MIN, PIXEL_MAX, size=(2, 1, 4, 4))
        once = reduce_bit_depth(x, 4)
        np.testing.assert_allclose(reduce_bit_depth(once, 4), once, atol=1e-12)

    def test_stays_in_box(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(PIXEL_MIN, PIXEL_MAX, size=(2, 3, 4, 4))
        out = reduce_bit_depth(x, 2)
        assert out.min() >= PIXEL_MIN and out.max() <= PIXEL_MAX

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            reduce_bit_depth(np.zeros((1, 1, 2, 2)), 0)


class TestMedianSmooth:
    def test_shape_preserved(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        assert median_smooth(x).shape == x.shape

    def test_removes_salt_noise(self):
        x = np.full((1, 1, 8, 8), PIXEL_MIN)
        x[0, 0, 4, 4] = PIXEL_MAX  # isolated spike
        out = median_smooth(x, size=3)
        assert out[0, 0, 4, 4] == PIXEL_MIN

    def test_constant_image_unchanged(self):
        x = np.full((1, 2, 6, 6), 0.25)
        np.testing.assert_array_equal(median_smooth(x), x)


class TestDetector:
    def test_scores_nonnegative(self, tiny_correct):
        network, x, _ = tiny_correct
        detector = FeatureSqueezingDetector(network)
        scores = detector.scores(x[:10])
        assert (scores >= 0).all()
        assert scores.shape == (10,)

    def test_calibrate_sets_quantile_threshold(self, tiny_correct):
        network, x, _ = tiny_correct
        detector = FeatureSqueezingDetector(network)
        threshold = detector.calibrate(x[:50], false_positive_rate=0.1)
        assert detector.threshold == threshold
        flagged = detector.is_adversarial(x[:50])
        assert flagged.mean() <= 0.15
