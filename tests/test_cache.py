"""Tests for the on-disk artifact cache."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cache import cache_dir, cache_key, memoize_arrays, weights_fingerprint


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    return tmp_path


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key({"a": 1, "b": "x"}) == cache_key({"b": "x", "a": 1})

    def test_distinguishes_specs(self):
        assert cache_key({"a": 1}) != cache_key({"a": 2})

    def test_pure_json_specs_keep_their_keys(self):
        # Canonicalisation must not invalidate existing on-disk entries:
        # for plain JSON specs the key equals the legacy serialisation.
        spec = {"kind": "pool", "eps": 0.3, "n": 5, "tags": ["a", "b"], "deep": {"x": None}}
        legacy = __import__("hashlib").sha256(
            json.dumps(spec, sort_keys=True, default=str).encode()
        ).hexdigest()[:20]
        assert cache_key(spec) == legacy

    def test_numpy_scalars_match_python_values(self):
        assert cache_key({"r": np.float64(0.3)}) == cache_key({"r": 0.3})
        assert cache_key({"n": np.int64(7)}) == cache_key({"n": 7})
        assert cache_key({"f": np.bool_(True)}) == cache_key({"f": True})

    def test_dtypes_canonicalised(self):
        assert cache_key({"d": np.dtype(np.float32)}) == cache_key({"d": "float32"})
        assert cache_key({"d": np.float32}) == cache_key({"d": "float32"})

    def test_tuples_match_lists(self):
        assert cache_key({"shape": (1, 28, 28)}) == cache_key({"shape": [1, 28, 28]})

    def test_rejects_unserialisable_values(self):
        # json.dumps(default=str) used to silently stringify these.
        with pytest.raises(TypeError, match="not"):
            cache_key({"x": object()})
        with pytest.raises(TypeError):
            cache_key({"x": np.zeros(3)})


class TestWeightsFingerprint:
    @staticmethod
    def _network(arrays):
        params = [SimpleNamespace(data=np.asarray(a)) for a in arrays]
        return SimpleNamespace(parameters=lambda: params)

    def test_deterministic(self):
        arr = np.arange(12.0).reshape(3, 4)
        assert weights_fingerprint(self._network([arr])) == weights_fingerprint(
            self._network([arr.copy()])
        )

    def test_shape_mixed_into_digest(self):
        # Same byte stream, different split: hashing concatenated bytes
        # alone made these collide.
        arr = np.arange(12.0)
        a = self._network([arr.reshape(2, 6)])
        b = self._network([arr.reshape(3, 4)])
        assert weights_fingerprint(a) != weights_fingerprint(b)

    def test_parameter_split_mixed_into_digest(self):
        arr = np.arange(8.0)
        a = self._network([arr[:4], arr[4:]])
        b = self._network([arr[:6], arr[6:]])
        assert weights_fingerprint(a) != weights_fingerprint(b)

    def test_storage_dtype_mixed_into_digest(self):
        values = np.arange(4.0)
        a = self._network([values.astype(np.float32)])
        b = self._network([values.astype(np.float64)])
        assert weights_fingerprint(a) != weights_fingerprint(b)


class TestMemoizeArrays:
    def test_builds_once(self, isolated_cache):
        calls = []

        def build():
            calls.append(1)
            return {"x": np.arange(5.0)}

        spec = {"kind": "test", "v": 1}
        first = memoize_arrays(spec, build)
        second = memoize_arrays(spec, build)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["x"], second["x"])

    def test_kind_in_filename(self, isolated_cache):
        memoize_arrays({"kind": "mything"}, lambda: {"x": np.zeros(1)})
        files = list(isolated_cache.glob("mything-*.npz"))
        assert len(files) == 1

    def test_different_specs_different_files(self, isolated_cache):
        memoize_arrays({"kind": "t", "v": 1}, lambda: {"x": np.zeros(1)})
        memoize_arrays({"kind": "t", "v": 2}, lambda: {"x": np.ones(1)})
        assert len(list(isolated_cache.glob("t-*.npz"))) == 2

    def test_preserves_multiple_arrays(self, isolated_cache):
        spec = {"kind": "multi"}
        built = memoize_arrays(spec, lambda: {"a": np.eye(3), "b": np.arange(4)})
        loaded = memoize_arrays(spec, lambda: pytest.fail("must not rebuild"))
        np.testing.assert_array_equal(loaded["a"], np.eye(3))
        np.testing.assert_array_equal(loaded["b"], np.arange(4))

    def test_env_var_controls_location(self, isolated_cache):
        assert cache_dir() == isolated_cache


class TestCorruptArchives:
    """A damaged cache must behave like a miss, never wedge the suite."""

    def _cache_file(self, isolated_cache, spec):
        files = list(isolated_cache.glob(f"{spec['kind']}-*.npz"))
        assert len(files) == 1
        return files[0]

    def test_truncated_archive_rebuilds(self, isolated_cache):
        spec = {"kind": "trunc"}
        memoize_arrays(spec, lambda: {"x": np.arange(6.0)})
        path = self._cache_file(isolated_cache, spec)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        rebuilt = memoize_arrays(spec, lambda: {"x": np.arange(6.0) + 1})
        np.testing.assert_array_equal(rebuilt["x"], np.arange(6.0) + 1)
        # The rebuilt archive replaced the corrupt one and loads cleanly.
        again = memoize_arrays(spec, lambda: pytest.fail("must not rebuild"))
        np.testing.assert_array_equal(again["x"], np.arange(6.0) + 1)

    def test_garbage_bytes_rebuild(self, isolated_cache):
        spec = {"kind": "garbage"}
        memoize_arrays(spec, lambda: {"x": np.zeros(3)})
        self._cache_file(isolated_cache, spec).write_bytes(b"not a zip archive")
        rebuilt = memoize_arrays(spec, lambda: {"x": np.ones(3)})
        np.testing.assert_array_equal(rebuilt["x"], np.ones(3))

    def test_empty_file_rebuilds(self, isolated_cache):
        spec = {"kind": "empty"}
        memoize_arrays(spec, lambda: {"x": np.zeros(2)})
        self._cache_file(isolated_cache, spec).write_bytes(b"")
        rebuilt = memoize_arrays(spec, lambda: {"x": np.full(2, 7.0)})
        np.testing.assert_array_equal(rebuilt["x"], np.full(2, 7.0))

    def test_no_tmp_files_left_behind(self, isolated_cache):
        memoize_arrays({"kind": "tidy"}, lambda: {"x": np.zeros(1)})
        assert not list(isolated_cache.glob("*.tmp-*"))

    def test_tmp_name_unique_per_writer(self, isolated_cache, monkeypatch):
        """Concurrent processes AND threads must not share a temp name."""
        import os as _os

        import repro.cache as cache_module

        seen = []
        real_replace = _os.replace

        def spy(src, dst):
            seen.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(cache_module.os, "replace", spy)
        for _ in range(2):
            memoize_arrays({"kind": "pid"}, lambda: {"x": np.zeros(1)})
            # Wipe the entry so the second call writes again.
            for path in isolated_cache.glob("pid-*.npz"):
                path.unlink()
        assert len(seen) == 2
        # pid keeps cross-process uniqueness; the uuid suffix separates
        # same-process writers (two threads share one pid).
        assert all(f".tmp-{_os.getpid()}-" in name for name in seen)
        assert seen[0] != seen[1]


class TestConcurrency:
    def test_parallel_writers_on_one_key(self, isolated_cache):
        """Racing writers must each succeed and leave one valid archive."""
        import threading

        spec = {"kind": "race"}
        barrier = threading.Barrier(4, timeout=10)
        errors = []

        def worker(value):
            try:
                barrier.wait()
                memoize_arrays(spec, lambda: {"x": np.full(3, float(value))})
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert not list(isolated_cache.glob("*.tmp-*"))
        final = memoize_arrays(spec, lambda: pytest.fail("archive must be valid"))
        assert final["x"].shape == (3,)
        assert float(final["x"][0]) in {0.0, 1.0, 2.0, 3.0}

    def test_reader_ignores_mid_write_tmp_file(self, isolated_cache):
        """A partially written ``.tmp-*`` from another writer is invisible."""
        spec = {"kind": "midwrite"}
        # Fabricate what a mid-write crash (or in-flight writer) leaves on
        # disk: a tmp file full of garbage next to where the entry goes.
        (isolated_cache / f"midwrite-{cache_key(spec)}.tmp-999-deadbeef.npz").write_bytes(
            b"partial zip bytes"
        )
        arrays = memoize_arrays(spec, lambda: {"x": np.arange(4.0)})
        np.testing.assert_array_equal(arrays["x"], np.arange(4.0))
        again = memoize_arrays(spec, lambda: pytest.fail("must not rebuild"))
        np.testing.assert_array_equal(again["x"], np.arange(4.0))

    def test_build_raises_after_corrupt_unlink(self, isolated_cache):
        """A failing rebuild must not resurrect the corrupt archive."""
        spec = {"kind": "failbuild"}
        memoize_arrays(spec, lambda: {"x": np.zeros(2)})
        files = list(isolated_cache.glob("failbuild-*.npz"))
        assert len(files) == 1
        files[0].write_bytes(b"corrupt")

        with pytest.raises(RuntimeError, match="boom"):
            memoize_arrays(spec, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        # The corrupt archive is gone (not half-trusted on the next read)
        # and no tmp debris remains.
        assert not list(isolated_cache.glob("failbuild-*.npz"))
        assert not list(isolated_cache.glob("*.tmp-*"))

        rebuilt = memoize_arrays(spec, lambda: {"x": np.ones(2)})
        np.testing.assert_array_equal(rebuilt["x"], np.ones(2))
