"""Tests for the on-disk artifact cache."""

import numpy as np
import pytest

from repro.cache import cache_dir, cache_key, memoize_arrays


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    return tmp_path


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key({"a": 1, "b": "x"}) == cache_key({"b": "x", "a": 1})

    def test_distinguishes_specs(self):
        assert cache_key({"a": 1}) != cache_key({"a": 2})


class TestMemoizeArrays:
    def test_builds_once(self, isolated_cache):
        calls = []

        def build():
            calls.append(1)
            return {"x": np.arange(5.0)}

        spec = {"kind": "test", "v": 1}
        first = memoize_arrays(spec, build)
        second = memoize_arrays(spec, build)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["x"], second["x"])

    def test_kind_in_filename(self, isolated_cache):
        memoize_arrays({"kind": "mything"}, lambda: {"x": np.zeros(1)})
        files = list(isolated_cache.glob("mything-*.npz"))
        assert len(files) == 1

    def test_different_specs_different_files(self, isolated_cache):
        memoize_arrays({"kind": "t", "v": 1}, lambda: {"x": np.zeros(1)})
        memoize_arrays({"kind": "t", "v": 2}, lambda: {"x": np.ones(1)})
        assert len(list(isolated_cache.glob("t-*.npz"))) == 2

    def test_preserves_multiple_arrays(self, isolated_cache):
        spec = {"kind": "multi"}
        built = memoize_arrays(spec, lambda: {"a": np.eye(3), "b": np.arange(4)})
        loaded = memoize_arrays(spec, lambda: pytest.fail("must not rebuild"))
        np.testing.assert_array_equal(loaded["a"], np.eye(3))
        np.testing.assert_array_equal(loaded["b"], np.arange(4))

    def test_env_var_controls_location(self, isolated_cache):
        assert cache_dir() == isolated_cache


class TestCorruptArchives:
    """A damaged cache must behave like a miss, never wedge the suite."""

    def _cache_file(self, isolated_cache, spec):
        files = list(isolated_cache.glob(f"{spec['kind']}-*.npz"))
        assert len(files) == 1
        return files[0]

    def test_truncated_archive_rebuilds(self, isolated_cache):
        spec = {"kind": "trunc"}
        memoize_arrays(spec, lambda: {"x": np.arange(6.0)})
        path = self._cache_file(isolated_cache, spec)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        rebuilt = memoize_arrays(spec, lambda: {"x": np.arange(6.0) + 1})
        np.testing.assert_array_equal(rebuilt["x"], np.arange(6.0) + 1)
        # The rebuilt archive replaced the corrupt one and loads cleanly.
        again = memoize_arrays(spec, lambda: pytest.fail("must not rebuild"))
        np.testing.assert_array_equal(again["x"], np.arange(6.0) + 1)

    def test_garbage_bytes_rebuild(self, isolated_cache):
        spec = {"kind": "garbage"}
        memoize_arrays(spec, lambda: {"x": np.zeros(3)})
        self._cache_file(isolated_cache, spec).write_bytes(b"not a zip archive")
        rebuilt = memoize_arrays(spec, lambda: {"x": np.ones(3)})
        np.testing.assert_array_equal(rebuilt["x"], np.ones(3))

    def test_empty_file_rebuilds(self, isolated_cache):
        spec = {"kind": "empty"}
        memoize_arrays(spec, lambda: {"x": np.zeros(2)})
        self._cache_file(isolated_cache, spec).write_bytes(b"")
        rebuilt = memoize_arrays(spec, lambda: {"x": np.full(2, 7.0)})
        np.testing.assert_array_equal(rebuilt["x"], np.full(2, 7.0))

    def test_no_tmp_files_left_behind(self, isolated_cache):
        memoize_arrays({"kind": "tidy"}, lambda: {"x": np.zeros(1)})
        assert not list(isolated_cache.glob("*.tmp-*"))

    def test_tmp_name_is_pid_unique(self, isolated_cache, monkeypatch):
        """Concurrent processes must not share a temp file name."""
        import os as _os

        import repro.cache as cache_module

        seen = []
        real_replace = _os.replace

        def spy(src, dst):
            seen.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(cache_module.os, "replace", spy)
        memoize_arrays({"kind": "pid"}, lambda: {"x": np.zeros(1)})
        assert seen and f".tmp-{_os.getpid()}.npz" in seen[0]
