"""Tests for the on-disk artifact cache."""

import numpy as np
import pytest

from repro.cache import cache_dir, cache_key, memoize_arrays


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    return tmp_path


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key({"a": 1, "b": "x"}) == cache_key({"b": "x", "a": 1})

    def test_distinguishes_specs(self):
        assert cache_key({"a": 1}) != cache_key({"a": 2})


class TestMemoizeArrays:
    def test_builds_once(self, isolated_cache):
        calls = []

        def build():
            calls.append(1)
            return {"x": np.arange(5.0)}

        spec = {"kind": "test", "v": 1}
        first = memoize_arrays(spec, build)
        second = memoize_arrays(spec, build)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["x"], second["x"])

    def test_kind_in_filename(self, isolated_cache):
        memoize_arrays({"kind": "mything"}, lambda: {"x": np.zeros(1)})
        files = list(isolated_cache.glob("mything-*.npz"))
        assert len(files) == 1

    def test_different_specs_different_files(self, isolated_cache):
        memoize_arrays({"kind": "t", "v": 1}, lambda: {"x": np.zeros(1)})
        memoize_arrays({"kind": "t", "v": 2}, lambda: {"x": np.ones(1)})
        assert len(list(isolated_cache.glob("t-*.npz"))) == 2

    def test_preserves_multiple_arrays(self, isolated_cache):
        spec = {"kind": "multi"}
        built = memoize_arrays(spec, lambda: {"a": np.eye(3), "b": np.arange(4)})
        loaded = memoize_arrays(spec, lambda: pytest.fail("must not rebuild"))
        np.testing.assert_array_equal(loaded["a"], np.eye(3))
        np.testing.assert_array_equal(loaded["b"], np.arange(4))

    def test_env_var_controls_location(self, isolated_cache):
        assert cache_dir() == isolated_cache
