"""Tests for attack result containers and distance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks import AttackResult, clip_to_box, distortion
from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN


class TestDistortion:
    def test_l0_counts_positions_not_channels(self):
        original = np.zeros((1, 3, 2, 2))
        adv = original.copy()
        adv[0, :, 0, 0] = 0.3  # all three channels of one pixel
        assert distortion(original, adv, "l0")[0] == 1.0

    def test_l0_grayscale(self):
        original = np.zeros((1, 1, 3, 3))
        adv = original.copy()
        adv[0, 0, 0, 0] = 0.1
        adv[0, 0, 2, 2] = -0.1
        assert distortion(original, adv, "l0")[0] == 2.0

    def test_l2_euclidean(self):
        original = np.zeros((1, 1, 2, 2))
        adv = original + 0.5
        assert distortion(original, adv, "l2")[0] == pytest.approx(1.0)

    def test_linf_max_change(self):
        original = np.zeros((1, 1, 2, 2))
        adv = original.copy()
        adv[0, 0, 0, 1] = 0.4
        adv[0, 0, 1, 1] = -0.2
        assert distortion(original, adv, "linf")[0] == pytest.approx(0.4)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            distortion(np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 2, 2)), "l1")

    @given(
        hnp.arrays(
            np.float64,
            (3, 1, 4, 4),
            elements=st.floats(PIXEL_MIN, PIXEL_MAX, allow_nan=False),
        ),
        hnp.arrays(
            np.float64,
            (3, 1, 4, 4),
            elements=st.floats(PIXEL_MIN, PIXEL_MAX, allow_nan=False),
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_metric_properties(self, a, b):
        for metric in ("l0", "l2", "linf"):
            d = distortion(a, b, metric)
            assert (d >= 0).all()
            # Identity of indiscernibles (zero iff equal batches).
            np.testing.assert_array_equal(distortion(a, a, metric), np.zeros(3))
        assert (distortion(a, b, "l0") <= 16).all()
        assert (distortion(a, b, "linf") <= (PIXEL_MAX - PIXEL_MIN) + 1e-12).all()
        # linf <= l2 <= sqrt(n)*linf
        l2 = distortion(a, b, "l2")
        linf = distortion(a, b, "linf")
        assert (linf <= l2 + 1e-12).all()
        assert (l2 <= np.sqrt(16) * linf + 1e-12).all()

    @given(
        hnp.arrays(np.float64, (2, 1, 3, 3), elements=st.floats(-2, 2, allow_nan=False))
    )
    @settings(max_examples=50, deadline=None)
    def test_clip_to_box_idempotent_and_bounded(self, x):
        clipped = clip_to_box(x)
        assert clipped.min() >= PIXEL_MIN and clipped.max() <= PIXEL_MAX
        np.testing.assert_array_equal(clip_to_box(clipped), clipped)


class TestAttackResult:
    def _result(self):
        original = np.zeros((4, 1, 2, 2))
        adv = original + 0.1
        success = np.array([True, False, True, True])
        return AttackResult(original, adv, success, np.arange(4))

    def test_success_rate(self):
        assert self._result().success_rate == 0.75

    def test_distortions_only_successful(self):
        result = self._result()
        assert len(result.distortions("l2")) == 3

    def test_mean_distortion_nan_when_all_failed(self):
        original = np.zeros((2, 1, 2, 2))
        result = AttackResult(original, original, np.zeros(2, bool), np.arange(2))
        assert np.isnan(result.mean_distortion("l2"))

    def test_inconsistent_lengths_rejected(self):
        original = np.zeros((3, 1, 2, 2))
        with pytest.raises(ValueError):
            AttackResult(original, original, np.zeros(2, bool), np.arange(3))
