"""Unit tests for CW attack internals (no network required where possible)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks.cw import _margin_loss, _to_w, CarliniWagnerL2
from repro.nn.tensor import Tensor

finite = {"allow_nan": False, "allow_infinity": False}


class TestTanhTransform:
    @given(
        hnp.arrays(np.float64, (2, 1, 3, 3), elements=st.floats(-0.5, 0.5, **finite))
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, x):
        recovered = np.tanh(_to_w(x)) * 0.5
        np.testing.assert_allclose(recovered, np.clip(x, -0.4999995, 0.4999995), atol=1e-6)

    def test_boundary_values_finite(self):
        w = _to_w(np.array([-0.5, 0.5]))
        assert np.isfinite(w).all()


class TestMarginLoss:
    def test_zero_when_target_wins_with_confidence(self):
        logits = Tensor(np.array([[10.0, 0.0, 0.0]]))
        onehot = np.array([[1.0, 0.0, 0.0]])
        f = _margin_loss(logits, onehot, confidence=5.0)
        assert float(f.data[0]) == 0.0

    def test_positive_when_target_loses(self):
        logits = Tensor(np.array([[0.0, 3.0, 0.0]]))
        onehot = np.array([[1.0, 0.0, 0.0]])
        f = _margin_loss(logits, onehot, confidence=0.0)
        assert float(f.data[0]) == pytest.approx(3.0)

    def test_confidence_raises_requirement(self):
        logits = Tensor(np.array([[2.0, 0.0, 0.0]]))
        onehot = np.array([[1.0, 0.0, 0.0]])
        assert float(_margin_loss(logits, onehot, 0.0).data[0]) == 0.0
        assert float(_margin_loss(logits, onehot, 5.0).data[0]) == pytest.approx(3.0)

    def test_gradient_flows_when_hinge_active(self):
        raw = np.array([[0.0, 1.0, 0.0]])
        logits = Tensor(raw, requires_grad=True)
        onehot = np.array([[1.0, 0.0, 0.0]])
        _margin_loss(logits, onehot, confidence=0.0).sum().backward()
        # Pushes target up, runner-up down.
        assert logits.grad[0, 0] < 0
        assert logits.grad[0, 1] > 0


class TestRecordBest:
    def _state(self, n=3):
        from repro.attacks.cw import _L2State

        return _L2State(
            best_adv=np.zeros((n, 2)),
            best_l2=np.full(n, np.inf),
            found=np.zeros(n, dtype=bool),
        )

    def test_success_recorded(self):
        state = self._state()
        adv = np.ones((3, 2))
        CarliniWagnerL2._record_best(state, adv, np.array([1.0, 2.0, 3.0]), np.array([-1.0, 0.5, -1.0]), None)
        np.testing.assert_array_equal(state.found, [True, False, True])
        assert state.best_l2[0] == 1.0

    def test_keeps_smaller_l2(self):
        state = self._state(1)
        adv_big = np.full((1, 2), 5.0)
        adv_small = np.full((1, 2), 1.0)
        CarliniWagnerL2._record_best(state, adv_big, np.array([4.0]), np.array([-1.0]), None)
        CarliniWagnerL2._record_best(state, adv_small, np.array([2.0]), np.array([-1.0]), None)
        assert state.best_l2[0] == 2.0
        np.testing.assert_array_equal(state.best_adv[0], adv_small[0])
        # A later, larger solution must not overwrite.
        CarliniWagnerL2._record_best(state, adv_big, np.array([3.0]), np.array([-1.0]), None)
        assert state.best_l2[0] == 2.0

    def test_margin_zero_counts_as_success(self):
        state = self._state(1)
        CarliniWagnerL2._record_best(state, np.ones((1, 2)), np.array([1.0]), np.array([0.0]), None)
        assert state.found[0]


class TestWarmStart:
    def test_initial_guess_reduces_iterations_needed(self, tiny_correct):
        network, x, y = tiny_correct
        targets = (y[:4] + 1) % 10
        full = CarliniWagnerL2(binary_search_steps=2, max_iterations=100)
        first = full.perturb(network, x[:4], y[:4], targets)
        # Warm-started short run should succeed where a cold short run may not.
        short = CarliniWagnerL2(binary_search_steps=1, max_iterations=15)
        warm = short.perturb(network, x[:4], y[:4], targets, initial_guess=first.adversarial)
        assert warm.success.sum() >= 1


class TestParameterValidation:
    def test_l0_rejects_bad_params(self):
        from repro.attacks import CarliniWagnerL0

        with pytest.raises(ValueError):
            CarliniWagnerL0(max_rounds=0)
        with pytest.raises(ValueError):
            CarliniWagnerL0(freeze_fraction=0.0)
        with pytest.raises(ValueError):
            CarliniWagnerL0(freeze_fraction=1.0)

    def test_linf_rejects_bad_params(self):
        from repro.attacks import CarliniWagnerLinf

        with pytest.raises(ValueError):
            CarliniWagnerLinf(max_rounds=0)
        with pytest.raises(ValueError):
            CarliniWagnerLinf(tau_decay=1.0)
