"""Tests for the PGD and black-box substitute extensions."""

import numpy as np
import pytest

from repro.attacks import FGSM, IGSM, PGD, SubstituteBlackBox, distortion
from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN
from tests.conftest import make_blob_problem


class TestPGD:
    def test_untargeted_success(self, tiny_correct):
        network, x, y = tiny_correct
        result = PGD(epsilon=0.3, alpha=0.04, steps=15).perturb(network, x[:20], y[:20])
        assert result.success_rate > 0.6

    def test_stays_in_ball_and_box(self, tiny_correct):
        network, x, y = tiny_correct
        eps = 0.12
        result = PGD(epsilon=eps, alpha=0.02, steps=10).perturb(network, x[:10], y[:10])
        assert distortion(x[:10], result.adversarial, "linf").max() <= eps + 1e-9
        assert result.adversarial.min() >= PIXEL_MIN - 1e-12
        assert result.adversarial.max() <= PIXEL_MAX + 1e-12

    def test_at_least_as_strong_as_igsm(self, tiny_correct):
        network, x, y = tiny_correct
        eps = 0.12
        igsm = IGSM(epsilon=eps, alpha=0.02, steps=15).perturb(network, x[:30], y[:30])
        pgd = PGD(epsilon=eps, alpha=0.02, steps=15, restarts=3).perturb(network, x[:30], y[:30])
        assert pgd.success_rate >= igsm.success_rate - 0.05

    def test_targeted_mode(self, tiny_correct):
        network, x, y = tiny_correct
        targets = (y[:15] + 1) % 10
        result = PGD(epsilon=0.3, alpha=0.04, steps=20).perturb(network, x[:15], y[:15], targets)
        predicted = network.predict(result.adversarial[result.success])
        np.testing.assert_array_equal(predicted, targets[result.success])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PGD(epsilon=0.0)
        with pytest.raises(ValueError):
            PGD(restarts=0)


class TestSubstituteBlackBox:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_correct):
        network, x, y = tiny_correct
        rng = np.random.default_rng(11)
        seeds, _ = make_blob_problem(80, rng)
        # Minimal-distortion inner attacks do not transfer (they stop at
        # the substitute's own boundary); a generous FGSM step does.
        attack = SubstituteBlackBox(
            seeds, augmentation_rounds=1, epochs=20, seed=1, inner_attack=FGSM(epsilon=0.4)
        )
        attack.fit_substitute(network)
        return network, x, y, attack

    def test_substitute_agrees_with_victim(self, fitted):
        network, x, _, attack = fitted
        assert attack.agreement(network, x[:50]) > 0.7

    def test_query_budget_tracked(self, fitted):
        _, _, _, attack = fitted
        # 80 seeds + 80 augmented points queried once each.
        assert attack.queries_used == 160

    def test_transfer_attack_succeeds_sometimes(self, fitted):
        network, x, y, attack = fitted
        result = attack.perturb(network, x[:30], y[:30])
        assert result.target_labels is None
        # Transferability is imperfect by nature; some but not none.
        assert 0.1 < result.success_rate <= 1.0

    def test_success_judged_by_victim_not_substitute(self, fitted):
        network, x, y, attack = fitted
        result = attack.perturb(network, x[:20], y[:20])
        predicted = network.predict(result.adversarial)
        np.testing.assert_array_equal(result.success, predicted != y[:20])

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            SubstituteBlackBox(np.zeros((4, 1, 6, 6)), augmentation_rounds=-1)
