"""Tests for the named-attack factory."""

import pytest

from repro.attacks import (
    ATTACK_FACTORIES,
    CarliniWagnerL2,
    DeepFool,
    make_attack,
)
from repro.attacks.factory import TARGETED_ATTACKS, UNTARGETED_ATTACKS


class TestFactory:
    def test_all_names_construct(self):
        for name in ATTACK_FACTORIES:
            attack = make_attack(name)
            assert hasattr(attack, "perturb")
            assert hasattr(attack, "norm")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown attack"):
            make_attack("boundary-attack")

    def test_overrides_applied(self):
        attack = make_attack("cw-l2", confidence=7.0, max_iterations=10)
        assert isinstance(attack, CarliniWagnerL2)
        assert attack.confidence == 7.0
        assert attack.max_iterations == 10

    def test_default_budget_preserved_with_partial_override(self):
        attack = make_attack("cw-l2", confidence=2.0)
        assert attack.binary_search_steps == 4  # factory default survives

    def test_deepfool_untargeted(self):
        assert isinstance(make_attack("deepfool"), DeepFool)
        assert "deepfool" in UNTARGETED_ATTACKS
        assert "deepfool" not in TARGETED_ATTACKS

    def test_taxonomy_covers_paper_table1(self):
        # Paper Table 1 lists L-BFGS, FGSM, IGSM, JSMA, DeepFool, CW.
        expected = {"lbfgs", "fgsm", "igsm", "jsma", "deepfool", "cw-l0", "cw-l2", "cw-linf"}
        assert expected <= set(ATTACK_FACTORIES)

    def test_norms_match_paper_table1(self):
        assert make_attack("lbfgs").norm == "l2"
        assert make_attack("fgsm").norm == "linf"
        assert make_attack("igsm").norm == "linf"
        assert make_attack("jsma").norm == "l0"
        assert make_attack("deepfool").norm == "l2"
        assert make_attack("cw-l0").norm == "l0"
        assert make_attack("cw-l2").norm == "l2"
        assert make_attack("cw-linf").norm == "linf"
