"""Tests for the detector-aware adaptive CW attack."""

import numpy as np
import pytest

from repro.attacks import CarliniWagnerL2, DetectorAwareCWL2
from repro.core import LogitDetector, build_detector_network
from repro.nn import Adam, TrainConfig, fit


@pytest.fixture(scope="module")
def raw_detector(tiny_correct):
    """A raw-feature detector trained on the tiny model's CW-L2 logits."""
    network, x, y = tiny_correct
    targets = (y[:20] + 1) % 10
    attack = CarliniWagnerL2(binary_search_steps=3, max_iterations=80)
    result = attack.perturb(network, x[:20], y[:20], targets)
    benign_logits = network.logits(x)
    adv_logits = network.logits(result.adversarial[result.success])
    features = np.concatenate([benign_logits, adv_logits])
    labels = np.concatenate([np.zeros(len(benign_logits), int), np.ones(len(adv_logits), int)])
    det_net = build_detector_network()
    fit(
        det_net, Adam(det_net.parameters(), lr=1e-2), features, labels,
        TrainConfig(epochs=250, batch_size=32), np.random.default_rng(0),
    )
    return LogitDetector(det_net, sort_features=False)


class TestDetectorAware:
    def test_rejects_sorted_detector(self, raw_detector):
        sorted_detector = LogitDetector(raw_detector.network, sort_features=True)
        with pytest.raises(ValueError, match="sort_features"):
            DetectorAwareCWL2(sorted_detector)

    def test_bypasses_detector(self, tiny_correct, raw_detector):
        network, x, y = tiny_correct
        targets = (y[:8] + 2) % 10
        attack = DetectorAwareCWL2(raw_detector, binary_search_steps=3, max_iterations=120)
        result = attack.perturb(network, x[:8], y[:8], targets)
        assert result.success_rate > 0.4
        # By construction, every reported success evades the detector AND
        # hits the target.
        adv = result.adversarial[result.success]
        assert not raw_detector.flag_images(network, adv).any()
        np.testing.assert_array_equal(network.predict(adv), targets[result.success])

    def test_costs_more_distortion_than_plain_cw(self, tiny_correct, raw_detector):
        network, x, y = tiny_correct
        targets = (y[:8] + 2) % 10
        plain = CarliniWagnerL2(binary_search_steps=3, max_iterations=120).perturb(
            network, x[:8], y[:8], targets
        )
        aware = DetectorAwareCWL2(raw_detector, binary_search_steps=3, max_iterations=120).perturb(
            network, x[:8], y[:8], targets
        )
        both = plain.success & aware.success
        if both.sum() >= 3:
            from repro.attacks import distortion

            plain_l2 = distortion(x[:8][both], plain.adversarial[both], "l2").mean()
            aware_l2 = distortion(x[:8][both], aware.adversarial[both], "l2").mean()
            assert aware_l2 >= plain_l2 - 0.05
