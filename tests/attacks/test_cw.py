"""Tests for the three Carlini & Wagner attacks and JSMA."""

import numpy as np
import pytest

from repro.attacks import (
    JSMA,
    AdamState,
    CarliniWagnerL0,
    CarliniWagnerL2,
    CarliniWagnerLinf,
    FGSM,
    distortion,
)
from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN


def _targets(labels, rng):
    t = (labels + rng.integers(1, 10, len(labels))) % 10
    return np.where(t == labels, (t + 1) % 10, t)


@pytest.fixture(scope="module")
def cw_l2_result(tiny_correct):
    network, x, y = tiny_correct
    rng = np.random.default_rng(0)
    targets = _targets(y[:15], rng)
    attack = CarliniWagnerL2(binary_search_steps=3, max_iterations=100)
    return network, x[:15], y[:15], targets, attack.perturb(network, x[:15], y[:15], targets)


class TestAdamState:
    def test_converges_on_quadratic(self):
        adam = AdamState((2,), lr=0.1)
        values = np.zeros(2)
        target = np.array([1.0, -1.0])
        for _ in range(300):
            values = adam.update(values, 2 * (values - target))
        np.testing.assert_allclose(values, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        adam = AdamState((1,), lr=0.05)
        out = adam.update(np.zeros(1), np.array([100.0]))
        assert abs(out[0]) == pytest.approx(0.05, rel=1e-5)

    def test_state_adopts_gradient_dtype(self):
        adam = AdamState((3,), lr=0.1)
        assert adam.m is None  # lazy until the first gradient arrives
        adam.update(np.zeros(3, dtype=np.float32), np.ones(3, dtype=np.float32))
        assert adam.m.dtype == np.float32
        assert adam.v.dtype == np.float32
        adam64 = AdamState((3,), lr=0.1)
        adam64.update(np.zeros(3), np.ones(3))
        assert adam64.m.dtype == np.float64


class TestCWL2:
    def test_high_success(self, cw_l2_result):
        _, _, _, _, result = cw_l2_result
        assert result.success_rate >= 0.9

    def test_hits_requested_targets(self, cw_l2_result):
        network, _, _, targets, result = cw_l2_result
        predicted = network.predict(result.adversarial[result.success])
        np.testing.assert_array_equal(predicted, targets[result.success])

    def test_respects_box(self, cw_l2_result):
        _, _, _, _, result = cw_l2_result
        assert result.adversarial.min() >= PIXEL_MIN - 1e-9
        assert result.adversarial.max() <= PIXEL_MAX + 1e-9

    def test_smaller_l2_than_fgsm(self, cw_l2_result, tiny_correct):
        network, x, y, targets, result = cw_l2_result
        fgsm = FGSM(epsilon=0.4).perturb(network, x, y, targets)
        both = result.success & fgsm.success
        if both.sum() >= 3:
            cw_d = distortion(x[both], result.adversarial[both], "l2").mean()
            fg_d = distortion(x[both], fgsm.adversarial[both], "l2").mean()
            assert cw_d < fg_d

    def test_confidence_increases_margin(self, tiny_correct):
        network, x, y = tiny_correct
        rng = np.random.default_rng(1)
        targets = _targets(y[:8], rng)

        def margins(kappa):
            attack = CarliniWagnerL2(confidence=kappa, binary_search_steps=3, max_iterations=100)
            result = attack.perturb(network, x[:8], y[:8], targets)
            logits = network.logits(result.adversarial[result.success])
            t = targets[result.success]
            z_t = logits[np.arange(len(t)), t]
            masked = logits.copy()
            masked[np.arange(len(t)), t] = -np.inf
            return (z_t - masked.max(axis=1)).mean()

        assert margins(3.0) > margins(0.0)

    def test_mask_freezes_pixels(self, tiny_correct):
        network, x, y = tiny_correct
        rng = np.random.default_rng(2)
        targets = _targets(y[:5], rng)
        mask = np.ones_like(x[:5])
        mask[:, :, 0, :] = 0.0  # top row frozen
        attack = CarliniWagnerL2(binary_search_steps=2, max_iterations=60)
        result = attack.perturb(network, x[:5], y[:5], targets, mask=mask)
        np.testing.assert_allclose(result.adversarial[:, :, 0, :], x[:5][:, :, 0, :], atol=1e-9)


class TestCWL0:
    @pytest.fixture(scope="class")
    def result(self, tiny_correct):
        network, x, y = tiny_correct
        rng = np.random.default_rng(3)
        targets = _targets(y[:8], rng)
        attack = CarliniWagnerL0(max_rounds=8)
        return network, x[:8], y[:8], targets, attack.perturb(network, x[:8], y[:8], targets)

    def test_success(self, result):
        _, _, _, _, res = result
        assert res.success_rate >= 0.7

    def test_changes_few_pixels(self, result):
        _, x, _, _, res = result
        l0 = res.distortions("l0")
        assert (l0 < x[0].size).all()
        assert l0.mean() < x[0].size * 0.6

    def test_respects_box(self, result):
        _, _, _, _, res = result
        assert res.adversarial.min() >= PIXEL_MIN - 1e-9
        assert res.adversarial.max() <= PIXEL_MAX + 1e-9

    def test_targets_hit(self, result):
        network, _, _, targets, res = result
        predicted = network.predict(res.adversarial[res.success])
        np.testing.assert_array_equal(predicted, targets[res.success])


class TestCWLinf:
    @pytest.fixture(scope="class")
    def result(self, tiny_correct):
        network, x, y = tiny_correct
        rng = np.random.default_rng(4)
        targets = _targets(y[:8], rng)
        attack = CarliniWagnerLinf(max_rounds=8, max_iterations=100)
        return network, x[:8], y[:8], targets, attack.perturb(network, x[:8], y[:8], targets)

    def test_success(self, result):
        _, _, _, _, res = result
        assert res.success_rate >= 0.7

    def test_linf_below_half_box(self, result):
        _, _, _, _, res = result
        assert res.distortions("linf").max() < 1.0

    def test_tighter_than_fgsm_epsilon(self, result, tiny_correct):
        # CW-Linf should find perturbations below a generous FGSM budget.
        _, _, _, _, res = result
        if res.success.any():
            assert res.distortions("linf").mean() < 0.4


class TestJSMA:
    @pytest.fixture(scope="class")
    def result(self, tiny_correct):
        network, x, y = tiny_correct
        rng = np.random.default_rng(5)
        targets = _targets(y[:10], rng)
        attack = JSMA(gamma=0.4)
        return network, x[:10], targets, attack.perturb(network, x[:10], y[:10], targets)

    def test_some_success(self, result):
        _, _, _, res = result
        assert res.success_rate > 0.3

    def test_l0_bounded_by_gamma(self, result):
        _, x, _, res = result
        assert res.distortions("l0").max() <= x[0].size * 0.4 + 1

    def test_modified_pixels_saturated(self, result):
        _, x, _, res = result
        changed = np.abs(res.adversarial - x) > 1e-7
        assert np.allclose(res.adversarial[changed], PIXEL_MAX)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            JSMA(gamma=0.0)
        with pytest.raises(ValueError):
            JSMA(theta=0.0)
