"""Tests for the random-noise control baselines."""

import numpy as np
import pytest

from repro.attacks import CarliniWagnerL2, GaussianNoise, UniformNoise, distortion


class TestUniformNoise:
    def test_respects_epsilon(self, tiny_correct):
        network, x, y = tiny_correct
        result = UniformNoise(epsilon=0.1).perturb(network, x[:10], y[:10])
        assert distortion(x[:10], result.adversarial, "linf").max() <= 0.1 + 1e-12

    def test_rarely_flips_predictions(self, tiny_correct):
        network, x, y = tiny_correct
        result = UniformNoise(epsilon=0.1, seed=1).perturb(network, x[:40], y[:40])
        # The control claim: random noise at small epsilon is not an attack.
        assert result.success_rate < 0.2

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            UniformNoise(epsilon=0)


class TestGaussianNoise:
    def test_l2_scaled(self, tiny_correct):
        network, x, y = tiny_correct
        result = GaussianNoise(l2_norm=0.5).perturb(network, x[:10], y[:10])
        # Clipping to the box can only shrink the norm.
        assert distortion(x[:10], result.adversarial, "l2").max() <= 0.5 + 1e-9

    def test_directedness_of_adversarial_noise(self, tiny_correct):
        """The scientific control: CW perturbations flip labels at an L2
        where random noise of the same magnitude does not."""
        network, x, y = tiny_correct
        targets = (y[:10] + 1) % 10
        cw = CarliniWagnerL2(binary_search_steps=3, max_iterations=100).perturb(
            network, x[:10], y[:10], targets
        )
        if not cw.success.any():
            pytest.skip("CW failed on this toy model")
        budget = float(cw.distortions("l2").mean())
        noise = GaussianNoise(l2_norm=budget, seed=2).perturb(network, x[:40], y[:40])
        assert cw.success_rate > 0.8
        assert noise.success_rate < cw.success_rate / 2

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            GaussianNoise(l2_norm=-1.0)
