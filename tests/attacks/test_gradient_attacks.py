"""Tests for FGSM, IGSM, DeepFool, L-BFGS and the gradient helpers."""

import numpy as np
import pytest

from repro.attacks import FGSM, IGSM, DeepFool, LBFGSAttack, UntargetedFromTargeted, distortion
from repro.attacks.gradients import cross_entropy_gradient, jacobian, logit_gradient
from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN


def _targets(labels, rng):
    t = (labels + rng.integers(1, 10, len(labels))) % 10
    return np.where(t == labels, (t + 1) % 10, t)


class TestGradientHelpers:
    def test_cross_entropy_gradient_shape(self, tiny_correct):
        network, x, y = tiny_correct
        grad = cross_entropy_gradient(network, x[:3], y[:3])
        assert grad.shape == (3, 1, 6, 6)
        assert np.abs(grad).max() > 0

    def test_gradient_independent_of_batch(self, tiny_correct):
        network, x, y = tiny_correct
        single = cross_entropy_gradient(network, x[:1], y[:1])
        batched = cross_entropy_gradient(network, x[:4], y[:4])
        # Same example, different batch shapes: the float32 engine's BLAS
        # calls may sum in a different order, so allow float32-level noise.
        np.testing.assert_allclose(single[0], batched[0], atol=2e-6)

    def test_logit_gradient_matches_jacobian_row(self, tiny_correct):
        network, x, _ = tiny_correct
        full = jacobian(network, x[:2])
        row = logit_gradient(network, x[:2], np.array([3, 3]))
        np.testing.assert_allclose(full[:, 3], row, atol=1e-12)

    def test_jacobian_shape(self, tiny_correct):
        network, x, _ = tiny_correct
        assert jacobian(network, x[:2]).shape == (2, 10, 1, 6, 6)


class TestFGSM:
    def test_untargeted_flips_labels(self, tiny_correct):
        network, x, y = tiny_correct
        result = FGSM(epsilon=0.3).perturb(network, x[:20], y[:20])
        assert result.success_rate > 0.5
        assert result.target_labels is None

    def test_respects_box(self, tiny_correct):
        network, x, y = tiny_correct
        result = FGSM(epsilon=0.5).perturb(network, x[:10], y[:10])
        assert result.adversarial.min() >= PIXEL_MIN
        assert result.adversarial.max() <= PIXEL_MAX

    def test_linf_bounded_by_epsilon(self, tiny_correct):
        network, x, y = tiny_correct
        eps = 0.2
        result = FGSM(epsilon=eps).perturb(network, x[:10], y[:10])
        assert distortion(x[:10], result.adversarial, "linf").max() <= eps + 1e-9

    def test_targeted_mode(self, tiny_correct):
        network, x, y = tiny_correct
        rng = np.random.default_rng(0)
        targets = _targets(y[:20], rng)
        result = FGSM(epsilon=0.4).perturb(network, x[:20], y[:20], targets)
        # Success must be measured against the targets.
        predicted = network.predict(result.adversarial)
        np.testing.assert_array_equal(result.success, predicted == targets)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            FGSM(epsilon=0.0)


class TestIGSM:
    def test_beats_fgsm_at_same_budget(self, tiny_correct):
        network, x, y = tiny_correct
        eps = 0.15
        fgsm = FGSM(epsilon=eps).perturb(network, x[:30], y[:30])
        igsm = IGSM(epsilon=eps, alpha=0.02, steps=20).perturb(network, x[:30], y[:30])
        assert igsm.success_rate >= fgsm.success_rate

    def test_stays_in_epsilon_ball(self, tiny_correct):
        network, x, y = tiny_correct
        eps = 0.1
        result = IGSM(epsilon=eps, alpha=0.03, steps=15).perturb(network, x[:10], y[:10])
        assert distortion(x[:10], result.adversarial, "linf").max() <= eps + 1e-9

    def test_early_stop_freezes_successes(self, tiny_correct):
        # With a tiny alpha relative to budget, successful examples should
        # stop moving: their distortion must be below the full budget.
        network, x, y = tiny_correct
        result = IGSM(epsilon=0.5, alpha=0.05, steps=10).perturb(network, x[:20], y[:20])
        succeeded = result.success
        if succeeded.any():
            dist = distortion(x[:20][succeeded], result.adversarial[succeeded], "linf")
            assert dist.min() < 0.5


class TestDeepFool:
    def test_finds_small_perturbations(self, tiny_correct):
        network, x, y = tiny_correct
        result = DeepFool(max_steps=40).perturb(network, x[:20], y[:20])
        assert result.success_rate > 0.8
        fgsm = FGSM(epsilon=0.3).perturb(network, x[:20], y[:20])
        ok = result.success & fgsm.success
        if ok.sum() >= 3:
            df_l2 = distortion(x[:20][ok], result.adversarial[ok], "l2").mean()
            fg_l2 = distortion(x[:20][ok], fgsm.adversarial[ok], "l2").mean()
            assert df_l2 < fg_l2

    def test_respects_box(self, tiny_correct):
        network, x, y = tiny_correct
        result = DeepFool().perturb(network, x[:10], y[:10])
        assert result.adversarial.min() >= PIXEL_MIN - 1e-12
        assert result.adversarial.max() <= PIXEL_MAX + 1e-12


class TestLBFGS:
    def test_targeted_success(self, tiny_correct):
        network, x, y = tiny_correct
        rng = np.random.default_rng(1)
        targets = _targets(y[:5], rng)
        result = LBFGSAttack().perturb(network, x[:5], y[:5], targets)
        assert result.success_rate > 0.5
        predicted = network.predict(result.adversarial[result.success])
        np.testing.assert_array_equal(predicted, targets[result.success])

    def test_respects_box(self, tiny_correct):
        network, x, y = tiny_correct
        targets = _targets(y[:3], np.random.default_rng(2))
        result = LBFGSAttack().perturb(network, x[:3], y[:3], targets)
        assert result.adversarial.min() >= PIXEL_MIN - 1e-9
        assert result.adversarial.max() <= PIXEL_MAX + 1e-9


class TestUntargetedWrapper:
    def test_wraps_targeted_attack(self, tiny_correct):
        network, x, y = tiny_correct
        wrapper = UntargetedFromTargeted(IGSM(epsilon=0.3, alpha=0.05, steps=10))
        result = wrapper.perturb(network, x[:10], y[:10])
        assert result.target_labels is None
        assert result.success_rate > 0.5
        predicted = network.predict(result.adversarial[result.success])
        assert (predicted != y[:10][result.success]).all()

    def test_picks_minimum_distortion(self, tiny_correct):
        network, x, y = tiny_correct
        wrapper = UntargetedFromTargeted(IGSM(epsilon=0.4, alpha=0.05, steps=12), metric="linf")
        result = wrapper.perturb(network, x[:6], y[:6])
        # The chosen example can never have larger distortion than any other
        # successful target for the same seed; spot check via re-running.
        raw = IGSM(epsilon=0.4, alpha=0.05, steps=12)
        for i in range(3):
            if not result.success[i]:
                continue
            chosen = distortion(x[i : i + 1], result.adversarial[i : i + 1], "linf")[0]
            targets = np.array([c for c in range(10) if c != y[i]])
            tiled = np.repeat(x[i : i + 1], 9, axis=0)
            full = raw.perturb(network, tiled, np.repeat(y[i : i + 1], 9), targets)
            if full.success.any():
                dists = distortion(tiled[full.success], full.adversarial[full.success], "linf")
                assert chosen <= dists.min() + 1e-9
