"""Smoke tests: the example scripts import cleanly and quickstart runs."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(f"examples.{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "attack_gallery", "defense_comparison", "adaptive_attacker", "visualize_adversarial"],
)
def test_example_imports(name):
    module = _load(name)
    assert callable(module.main)
    assert module.__doc__  # every example documents itself


def test_quickstart_runs_end_to_end(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "standard model accuracy" in out
    assert "DCN final label" in out
    # The printed workflow must show a recovery verdict either way.
    assert "recovered:" in out
