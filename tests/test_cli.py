"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7"])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.dataset == "mnist-fast"
        assert args.attack_name == "cw-l2"
        assert not args.untargeted

    def test_run_worker_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workers == 1
        assert args.lease_ttl == 30.0
        assert not args.resume

    def test_run_workers_flags(self):
        args = build_parser().parse_args(
            ["run", "--only", "table45", "--workers", "4", "--lease-ttl", "5", "--resume"]
        )
        assert args.workers == 4
        assert args.lease_ttl == 5.0
        assert args.resume

    def test_bench_requires_compare(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench", "--compare", "BENCH_x.json"])
        assert args.compare == "BENCH_x.json"
        assert args.current is None
        assert args.threshold == 0.10
        assert not args.warn_only

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.requests == 256
        assert args.adv_fraction == 0.05
        assert args.max_batch == 64
        assert args.max_queue == 128
        assert args.overload == "shed"
        assert args.burst == 32

    def test_serve_rejects_unknown_overload_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--overload", "panic"])

    def test_serve_listen_flags(self):
        args = build_parser().parse_args(["serve"])
        assert args.listen is None  # local synthetic stream by default
        assert args.max_restarts == 0
        args = build_parser().parse_args(
            ["serve", "--listen", "0.0.0.0:9000", "--workers", "2",
             "--max-restarts", "3", "--restart-window", "10",
             "--default-deadline-ms", "500"]
        )
        assert args.listen == "0.0.0.0:9000"
        assert args.max_restarts == 3
        assert args.restart_window == 10.0
        assert args.default_deadline_ms == 500.0

    def test_loadgen_connect_flags(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.connect is None
        args = build_parser().parse_args(
            ["loadgen", "--connect", "127.0.0.1:9000", "--clients", "8",
             "--deadline-ms", "250", "--retries", "1"]
        )
        assert args.connect == "127.0.0.1:9000"
        assert args.clients == 8
        assert args.deadline_ms == 250.0
        assert args.retries == 1

    def test_hostport_parsing(self):
        from repro.cli import _parse_hostport

        assert _parse_hostport("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert _parse_hostport("localhost:0") == ("localhost", 0)
        with pytest.raises(SystemExit):
            _parse_hostport("no-port-here")
        with pytest.raises(SystemExit):
            _parse_hostport("host:not-a-number")

    def test_loadgen_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "--requests", "64", "--adv-fraction", "0.1", "--window", "16"]
        )
        assert args.requests == 64
        assert args.adv_fraction == 0.1
        assert args.window == 16
        assert args.max_size == 1  # single-row requests by default


class TestCommands:
    def test_info_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mnist-like" in out
        assert "cw-l2" in out
        assert "cnn-paper" in out
        assert "REPRO_SCALE" in out

    def test_train_reports_accuracy(self, capsys):
        assert main(["train", "--dataset", "mnist-fast"]) == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert "%" in out

    def test_attack_targeted(self, capsys):
        code = main(["attack", "--dataset", "mnist-fast", "--attack", "igsm", "--seeds", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "igsm (targeted)" in out
        assert "linf" in out

    def test_attack_untargeted_native(self, capsys):
        code = main(["attack", "--dataset", "mnist-fast", "--attack", "deepfool", "--seeds", "4"])
        assert code == 0
        assert "deepfool (untargeted)" in capsys.readouterr().out

    def test_attack_untargeted_wrapper(self, capsys):
        code = main(
            ["attack", "--dataset", "mnist-fast", "--attack", "fgsm", "--seeds", "4", "--untargeted"]
        )
        assert code == 0
        assert "fgsm (untargeted)" in capsys.readouterr().out


class TestPaperArtifactCommands:
    """These rely on the warmed .artifacts cache and stay read-only."""

    def test_figure_1(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "logits" in out
        assert "*" in out  # maximum marked, as in the paper's Fig. 1

    def test_table_2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "FALSE RATE OF DETECTOR" in out
        assert "mnist-fast" in out and "cifar-fast" in out
