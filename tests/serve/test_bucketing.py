"""Unit tests for the power-of-two shape-bucket ladder."""

import numpy as np
import pytest

from repro.serve import bucket_for, bucket_sizes, pad_to_bucket


class TestBucketSizes:
    def test_power_of_two_ladder(self):
        assert bucket_sizes(64) == (1, 2, 4, 8, 16, 32, 64)

    def test_non_power_of_two_cap_is_included(self):
        # max_batch is always the top bucket so a full dispatch never pads.
        assert bucket_sizes(48) == (1, 2, 4, 8, 16, 32, 48)

    def test_degenerate_single_bucket(self):
        assert bucket_sizes(1) == (1,)

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError):
            bucket_sizes(0)


class TestBucketFor:
    def test_smallest_fitting_bucket(self):
        buckets = bucket_sizes(64)
        assert bucket_for(3, buckets) == 4
        assert bucket_for(17, buckets) == 32

    def test_exact_fit_needs_no_padding(self):
        buckets = bucket_sizes(64)
        for size in buckets:
            assert bucket_for(size, buckets) == size

    def test_overflow_and_underflow_raise(self):
        buckets = bucket_sizes(8)
        with pytest.raises(ValueError):
            bucket_for(9, buckets)
        with pytest.raises(ValueError):
            bucket_for(0, buckets)


class TestPadToBucket:
    def test_exact_size_returns_same_object(self):
        x = np.ones((4, 1, 6, 6), dtype=np.float32)
        assert pad_to_bucket(x, 4) is x

    def test_pads_with_zero_rows(self):
        x = np.full((3, 1, 2, 2), 7.0)
        padded = pad_to_bucket(x, 8)
        assert padded.shape == (8, 1, 2, 2)
        assert padded.dtype == x.dtype
        np.testing.assert_array_equal(padded[:3], x)
        assert not padded[3:].any()

    def test_overfull_batch_raises(self):
        with pytest.raises(ValueError):
            pad_to_bucket(np.ones((5, 1)), 4)
