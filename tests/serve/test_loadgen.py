"""The deterministic load generator and its offline/coalesced drivers."""

import numpy as np
import pytest

from repro.core import DCN, Corrector
from repro.serve import (
    DCNService,
    StreamSpec,
    build_stream,
    run_coalesced,
    run_offline,
    summarize_latencies,
)

from .test_service import _RuleDetector, _flag_even


@pytest.fixture()
def pools(tiny_correct):
    network, x, _ = tiny_correct
    benign = x[:24]
    adv = x[24:32] + 0.01  # stand-in payloads; content is irrelevant here
    return benign, adv


class TestStreamSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSpec(requests=0)
        with pytest.raises(ValueError):
            StreamSpec(adv_fraction=1.5)
        with pytest.raises(ValueError):
            StreamSpec(min_size=0)
        with pytest.raises(ValueError):
            StreamSpec(min_size=3, max_size=2)


class TestBuildStream:
    def test_deterministic_in_seed(self, pools):
        benign, adv = pools
        spec = StreamSpec(requests=20, adv_fraction=0.3, max_size=3, seed=5)
        a = build_stream(benign, adv, spec)
        b = build_stream(benign, adv, spec)
        assert len(a) == len(b) == 20
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.x, rb.x)
            np.testing.assert_array_equal(ra.adv_rows, rb.adv_rows)
        c = build_stream(benign, adv, StreamSpec(requests=20, adv_fraction=0.3, max_size=3, seed=6))
        assert any(not np.array_equal(ra.x, rc.x) for ra, rc in zip(a, c))

    def test_sizes_within_spec(self, pools):
        benign, adv = pools
        stream = build_stream(benign, adv, StreamSpec(requests=30, min_size=2, max_size=5, seed=1))
        assert all(2 <= len(r.x) <= 5 for r in stream)
        assert {len(r.x) for r in stream} > {2}  # sizes actually vary

    def test_benign_drawn_without_replacement_until_wrap(self, pools):
        benign, _ = pools
        spec = StreamSpec(requests=2 * len(benign), adv_fraction=0.0, max_size=1, seed=2)
        rows = np.concatenate([r.x for r in build_stream(benign, None, spec)])
        # Each pool row appears exactly once per pool pass: the first
        # len(pool) draws are a permutation, then the pool reshuffles.
        pool_keys = {row.tobytes() for row in benign}
        for half in (rows[: len(benign)], rows[len(benign) :]):
            keys = [row.tobytes() for row in half]
            assert len(set(keys)) == len(benign)
            assert set(keys) == pool_keys

    def test_adv_rows_come_from_adv_pool(self, pools):
        benign, adv = pools
        stream = build_stream(benign, adv, StreamSpec(requests=10, adv_fraction=1.0, max_size=2, seed=0))
        adv_keys = {row.tobytes() for row in adv}
        for request in stream:
            assert request.adv_rows.all()
            assert all(row.tobytes() in adv_keys for row in request.x)

    def test_zero_fraction_needs_no_adv_pool(self, pools):
        benign, _ = pools
        stream = build_stream(benign, None, StreamSpec(requests=5, adv_fraction=0.0))
        assert not any(r.adv_rows.any() for r in stream)

    def test_pool_errors(self, pools):
        benign, adv = pools
        with pytest.raises(ValueError):
            build_stream(benign[:0], adv, StreamSpec(requests=5))
        with pytest.raises(ValueError):
            build_stream(benign, None, StreamSpec(requests=5, adv_fraction=0.5))
        with pytest.raises(ValueError):
            build_stream(benign, adv[:0], StreamSpec(requests=5, adv_fraction=0.5))


class TestRunners:
    def test_offline_and_coalesced_agree_bitwise(self, tiny_correct, pools):
        network, _, _ = tiny_correct
        benign, adv = pools
        dcn = DCN(
            network,
            _RuleDetector(network, _flag_even),
            Corrector(network, radius=0.1, samples=20, seed=0),
        )
        stream = build_stream(benign, adv, StreamSpec(requests=12, adv_fraction=0.25, max_size=3, seed=4))
        off = run_offline(dcn, stream)
        co = run_coalesced(DCNService(dcn, max_batch=16, max_queue=64), stream, window=6)
        assert off.statuses == co.statuses == ["ok"] * 12
        for a, b in zip(off.labels, co.labels):
            np.testing.assert_array_equal(a, b)
        assert off.seconds > 0 and co.seconds > 0
        assert len(co.latencies_s) == 12
        assert off.requests_per_sec > 0 and co.examples_per_sec > 0

    def test_coalesced_window_validation(self, tiny_correct):
        network, _, _ = tiny_correct
        dcn = DCN(
            network,
            _RuleDetector(network, _flag_even),
            Corrector(network, radius=0.1, samples=20, seed=0),
        )
        with pytest.raises(ValueError):
            run_coalesced(DCNService(dcn), [], window=0)


class TestSummarizeLatencies:
    def test_percentiles_in_milliseconds(self):
        summary = summarize_latencies([0.001, 0.003])
        assert summary["count"] == 2.0
        assert summary["p50_ms"] == pytest.approx(2.0)
        assert summary["mean_ms"] == pytest.approx(2.0)
        assert summary["p95_ms"] <= 3.0

    def test_empty_is_nan_not_crash(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0.0
        assert np.isnan(summary["p50_ms"])


class TestShedAccounting:
    """Regression: sheds used to inflate req/s and NaN-poison percentiles."""

    def test_requests_per_sec_excludes_shed(self):
        from repro.serve import RunStats

        stats = RunStats(
            labels=[np.zeros(1, dtype=np.int64), None, None],
            statuses=["ok", "shed", "shed"],
            seconds=2.0,
            latencies_s=[0.001],
        )
        assert stats.served == 1
        assert stats.shed == 2
        assert stats.requests_per_sec == pytest.approx(0.5)  # 1 served / 2s

    def test_summarize_latencies_drops_nan(self):
        summary = summarize_latencies([0.001, float("nan"), 0.003, float("inf")])
        assert summary["count"] == 2.0
        assert np.isfinite(summary["p50_ms"])
        assert np.isfinite(summary["p95_ms"])
        assert summary["mean_ms"] == pytest.approx(2.0)

    def test_run_coalesced_under_shedding_keeps_finite_stats(self, tiny_correct,
                                                             pools):
        network, _, _ = tiny_correct
        benign, _ = pools
        dcn = DCN(
            network,
            _RuleDetector(network, _flag_even),
            Corrector(network, radius=0.1, samples=20, seed=0),
        )
        stream = build_stream(
            benign, None, StreamSpec(requests=8, max_size=1, seed=9)
        )
        service = DCNService(dcn, max_batch=16, max_queue=2, overload="shed")
        stats = run_coalesced(service, stream, window=8)
        assert stats.statuses == ["ok"] * 2 + ["shed"] * 6
        assert stats.served == 2 and stats.shed == 6
        # Only served requests contribute latencies; every stat is finite.
        assert len(stats.latencies_s) == 2
        summary = summarize_latencies(stats.latencies_s)
        assert summary["count"] == 2.0
        assert np.isfinite(summary["p95_ms"])
        assert all(
            label is None for label, status in zip(stats.labels, stats.statuses)
            if status == "shed"
        )
