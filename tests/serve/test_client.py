"""DCNClient fault tolerance: circuit breaker, deterministic backoff, errors.

These tests drive the failure machinery without a live DCN where they
can: a refused port exercises connect failures, a scripted fake server
exercises protocol violations, and an injectable clock walks the breaker
through closed → open → half-open → closed without sleeping.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.serve import CircuitBreaker, DCNClient, RemoteProtocolError
from repro.serve.transport import (
    KIND_PONG,
    KIND_REQUEST,
    KIND_RESPONSE,
    _HEADER,
    encode_array,
    read_frame,
    write_frame,
)


def _dead_address():
    """An address nothing listens on (bind, learn the port, close)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()[:2]
    probe.close()
    return address


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=3, reset_s=1.0, clock=clock)
        for _ in range(2):
            assert breaker.record_failure() is False
            assert breaker.state == "closed"
        assert breaker.record_failure() is True
        assert breaker.state == "open"
        admitted, probe = breaker.allow()
        assert (admitted, probe) == (False, False)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False  # streak starts over
        assert breaker.state == "closed"

    def test_half_open_allows_exactly_one_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=1.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now += 1.5  # past reset_s: next call is the probe
        assert breaker.allow() == (True, True)
        assert breaker.state == "half-open"
        # A second concurrent call must NOT slip through beside the probe.
        assert breaker.allow() == (False, False)

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now += 1.5
        assert breaker.allow() == (True, True)
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() == (True, False)
        # Round two: the probe fails and the circuit re-opens immediately.
        breaker.record_failure()
        clock.now += 1.5
        assert breaker.allow() == (True, True)
        assert breaker.record_failure() is True
        assert breaker.state == "open"
        assert breaker.allow() == (False, False)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_s=0.0)


class TestRetriesAndBackoff:
    def test_connect_failure_resolves_shed_after_bounded_retries(self):
        sleeps: list[float] = []
        client = DCNClient(
            _dead_address(), retries=3, backoff_base_s=0.01,
            breaker_threshold=100, sleep=sleeps.append,
        )
        result = client.classify(np.zeros((1, 1, 6, 6), dtype=np.float32))
        assert result.status == "shed"
        assert result.reason == "unavailable"
        assert client.counters.connect_failures == 4  # 1 try + 3 retries
        assert client.counters.retries == 3
        assert len(sleeps) == 3

    def test_backoff_schedule_is_seeded_and_deterministic(self):
        def schedule(seed):
            sleeps: list[float] = []
            client = DCNClient(
                _dead_address(), retries=4, backoff_base_s=0.01,
                backoff_max_s=0.05, backoff_seed=seed,
                breaker_threshold=100, sleep=sleeps.append,
            )
            client.classify(np.zeros((1, 1, 6, 6), dtype=np.float32))
            return sleeps

        first, second = schedule(7), schedule(7)
        assert first == second  # replayable byte for byte
        assert schedule(8) != first  # and actually seed-dependent
        # Exponential envelope with jitter in [0.5, 1.5) x the base curve.
        for attempt, delay in enumerate(first):
            envelope = min(0.05, 0.01 * 2**attempt)
            assert 0.5 * envelope <= delay < 1.5 * envelope

    def test_breaker_opens_then_fast_fails_without_touching_network(self):
        client = DCNClient(
            _dead_address(), retries=0, breaker_threshold=2,
            breaker_reset_s=60.0, sleep=lambda s: None,
        )
        x = np.zeros((1, 1, 6, 6), dtype=np.float32)
        assert client.classify(x).reason == "unavailable"
        assert client.classify(x).reason == "unavailable"
        assert client.counters.breaker_opened == 1
        # Circuit open: calls short-circuit as shed/breaker with zero
        # connect attempts.
        before = client.counters.connect_failures
        result = client.classify(x)
        assert result.status == "shed"
        assert result.reason == "breaker"
        assert client.counters.connect_failures == before
        assert client.counters.breaker_fast_fail == 1

    def test_breaker_half_open_probe_recovers_when_server_returns(self, tiny_correct):
        """closed -> open -> half-open -> closed against a real socket."""
        from repro.core import DCN, Corrector
        from repro.serve import DCNServer, DCNService

        network, x, _ = tiny_correct

        class _Detector:
            def __init__(self, net):
                self.network = net

            def is_adversarial(self, logits):
                return np.zeros(len(np.asarray(logits)), dtype=bool)

        dcn = DCN(
            network, _Detector(network),
            Corrector(network, radius=0.1, samples=5, seed=0),
        )
        address = _dead_address()
        client = DCNClient(
            address, retries=0, breaker_threshold=1, breaker_reset_s=0.1,
            sleep=lambda s: None,
        )
        assert client.classify(x[:1]).reason == "unavailable"
        assert client.breaker.state == "open"
        # The endpoint comes back on the same port; after reset_s the
        # next call is the half-open probe and re-closes the circuit.
        with DCNService(dcn, max_batch=8) as service:
            with DCNServer(service, host=address[0], port=address[1]) as _server:
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    result = client.classify(x[:1])
                    if result.status == "ok":
                        break
                assert result.status == "ok"
        assert client.breaker.state == "closed"
        assert client.counters.breaker_probes >= 1
        assert client.counters.breaker_closed >= 1
        client.close()


class _ScriptedServer:
    """Accept one connection and answer with scripted bytes."""

    def __init__(self, respond):
        self._respond = respond
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        conn, _ = self._listener.accept()
        conn.settimeout(5.0)
        try:
            read_frame(conn)  # consume the request
            self._respond(conn)
        except Exception:
            pass
        finally:
            conn.close()

    def close(self):
        self._listener.close()
        self._thread.join(timeout=5.0)


class TestProtocolViolations:
    def test_bad_magic_reply_raises_structured_error(self):
        def respond(conn):
            conn.sendall(_HEADER.pack(b"EVIL", 1, KIND_RESPONSE, 0, 0))

        server = _ScriptedServer(respond)
        client = DCNClient(server.address, retries=2, sleep=lambda s: None)
        with pytest.raises(RemoteProtocolError) as excinfo:
            client.classify(np.zeros((1, 1, 6, 6), dtype=np.float32))
        assert excinfo.value.code == "bad-magic"
        assert client.counters.protocol_errors == 1
        assert client.counters.retries == 0  # violations are terminal
        client.close()
        server.close()

    def test_mismatched_reply_id_is_protocol_error(self):
        def respond(conn):
            write_frame(
                conn, KIND_RESPONSE,
                {"id": 999, "status": "ok", "retryable": False},
                encode_array(labels=np.zeros(1, dtype=np.int64)),
            )

        server = _ScriptedServer(respond)
        client = DCNClient(server.address, retries=0, sleep=lambda s: None)
        with pytest.raises(RemoteProtocolError) as excinfo:
            client.classify(np.zeros((1, 1, 6, 6), dtype=np.float32))
        assert excinfo.value.code == "bad-payload"
        client.close()
        server.close()

    def test_unexpected_reply_kind_is_protocol_error(self):
        def respond(conn):
            write_frame(conn, KIND_PONG, {"id": 0})

        server = _ScriptedServer(respond)
        client = DCNClient(server.address, retries=0, sleep=lambda s: None)
        with pytest.raises(RemoteProtocolError) as excinfo:
            client.classify(np.zeros((1, 1, 6, 6), dtype=np.float32))
        assert excinfo.value.code == "bad-kind"
        client.close()
        server.close()


class TestClientTelemetry:
    def test_snapshot_shape(self):
        client = DCNClient(_dead_address(), retries=0, sleep=lambda s: None)
        client.classify(np.zeros((1, 1, 6, 6), dtype=np.float32))
        snapshot = client.telemetry_snapshot()
        assert snapshot["counters"]["requests"] == 1
        assert snapshot["counters"]["shed"] == 1
        assert snapshot["breaker"]["state"] in ("closed", "open", "half-open")
        assert snapshot["endpoint"].startswith("127.0.0.1:")
        client.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            DCNClient(("127.0.0.1", 1), deadline_s=0.0)
        with pytest.raises(ValueError):
            DCNClient(("127.0.0.1", 1), retries=-1)
        with pytest.raises(ValueError):
            DCNClient(("127.0.0.1", 1), backoff_base_s=0.5, backoff_max_s=0.1)
