"""Framed transport + remote serving: protocol safety and the chaos matrix.

The acceptance bar is the client's one promise: **every call resolves** —
labels, a shed/degraded result, or a structured error — never a hang —
under every deterministic transport fault the chaos harness can fire.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.core import DCN, Corrector
from repro.runner.faultinject import Fault, FaultPlan, TransportChaos
from repro.serve import (
    DCNClient,
    DCNServer,
    DCNService,
    RemoteProtocolError,
    StreamSpec,
    build_stream,
    run_offline,
    run_remote,
)
from repro.serve.transport import (
    KIND_ERROR,
    KIND_PING,
    KIND_REQUEST,
    KIND_RESPONSE,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    _HEADER,
    FrameError,
    decode_arrays,
    decode_body,
    encode_array,
    encode_body,
    read_frame,
    write_frame,
)


class _RuleDetector:
    def __init__(self, network, rule):
        self.network = network
        self._rule = rule

    def is_adversarial(self, logits):
        return self._rule(np.asarray(logits))


@pytest.fixture()
def tiny_dcn(tiny_correct):
    network, _, _ = tiny_correct
    detector = _RuleDetector(network, lambda lg: lg.argmax(axis=-1) % 2 == 0)
    return DCN(network, detector, Corrector(network, radius=0.1, samples=20, seed=0))


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFrameCodec:
    def test_roundtrip_meta_and_arrays(self):
        a, b = _pair()
        body = encode_array(x=np.arange(6, dtype=np.float32).reshape(2, 3), skip=None)
        write_frame(a, KIND_REQUEST, {"id": 7, "deadline_s": 0.5}, body)
        kind, meta, got = read_frame(b)
        assert kind == KIND_REQUEST
        assert meta == {"id": 7, "deadline_s": 0.5}
        arrays = decode_arrays(got)
        assert list(arrays) == ["x"]  # None-valued arrays are skipped
        np.testing.assert_array_equal(
            arrays["x"], np.arange(6, dtype=np.float32).reshape(2, 3)
        )
        a.close()
        b.close()

    def test_npy_segment_roundtrip(self):
        # The hot-path codec: bare .npy segments, table in the metadata.
        meta = {"id": 3}
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        flagged = np.array([True, False])
        body = encode_body(meta, labels=x, flagged=flagged, skip=None)
        assert [name for name, _ in meta["npy"]] == ["labels", "flagged"]
        arrays = decode_body(meta, body)
        np.testing.assert_array_equal(arrays["labels"], x)
        np.testing.assert_array_equal(arrays["flagged"], flagged)

    def test_decode_body_falls_back_to_npz(self):
        # A peer that sends .npz without a segment table still decodes.
        body = encode_array(x=np.ones(3, dtype=np.float64))
        arrays = decode_body({"id": 1}, body)
        np.testing.assert_array_equal(arrays["x"], np.ones(3))

    @pytest.mark.parametrize(
        "table",
        [
            [["x", 10_000]],  # length past the end of the body
            [["x", -1]],  # negative length
            [[7, 4]],  # non-string name
            ["not-a-pair"],  # malformed entry
        ],
    )
    def test_malformed_segment_table_is_bad_payload(self, table):
        body = encode_body({}, x=np.ones(2, dtype=np.float32))
        with pytest.raises(FrameError) as err:
            decode_body({"npy": table}, body)
        assert err.value.code == "bad-payload"

    def test_garbage_npy_segment_is_bad_payload(self):
        with pytest.raises(FrameError) as err:
            decode_body({"npy": [["x", 9]]}, b"not-a-npy")
        assert err.value.code == "bad-payload"

    def test_clean_eof_is_none(self):
        a, b = _pair()
        a.close()
        assert read_frame(b) is None
        b.close()

    @pytest.mark.parametrize(
        "header, code",
        [
            (_HEADER.pack(b"EVIL", PROTOCOL_VERSION, KIND_REQUEST, 0, 0), "bad-magic"),
            (_HEADER.pack(PROTOCOL_MAGIC, 99, KIND_REQUEST, 0, 0), "bad-version"),
            (_HEADER.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, 200, 0, 0), "bad-kind"),
            (
                _HEADER.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, KIND_REQUEST, 10, 2**40),
                "oversized",
            ),
        ],
    )
    def test_bad_headers_are_structured_errors(self, header, code):
        a, b = _pair()
        a.sendall(header)
        with pytest.raises(FrameError) as excinfo:
            read_frame(b)
        assert excinfo.value.code == code
        a.close()
        b.close()

    def test_torn_frame_mid_body(self):
        a, b = _pair()
        meta = b'{"id":1}'
        a.sendall(
            _HEADER.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, KIND_REQUEST, len(meta), 64)
            + meta
            + b"\x00" * 10  # 10 of the promised 64 body bytes
        )
        a.close()
        with pytest.raises(FrameError) as excinfo:
            read_frame(b)
        assert excinfo.value.code == "torn"
        b.close()

    def test_undecodable_metadata(self):
        a, b = _pair()
        meta = b"not json"
        a.sendall(
            _HEADER.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, KIND_REQUEST, len(meta), 0)
            + meta
        )
        with pytest.raises(FrameError) as excinfo:
            read_frame(b)
        assert excinfo.value.code == "bad-payload"
        a.close()
        b.close()

    def test_stalled_peer_times_out(self):
        a, b = _pair()
        with pytest.raises(FrameError) as excinfo:
            read_frame(b, deadline=time.monotonic() + 0.2)
        assert excinfo.value.code == "timeout"
        a.close()
        b.close()


class TestServerClient:
    def test_remote_labels_bitwise_identical_to_offline(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service) as server:
                with DCNClient(server.address) as client:
                    assert client.ping()
                    for i in range(4):
                        result = client.classify(x[i : i + 2])
                        assert result.status == "ok"
                        np.testing.assert_array_equal(
                            result.labels, tiny_dcn.classify(x[i : i + 2])
                        )
                        assert result.flagged is not None
                        assert np.isfinite(result.latency_s)
                    assert client.counters.ok == 4
                    assert client.counters.retries == 0
                snapshot = server.telemetry_snapshot()
        assert snapshot["counters"]["requests"] == 4
        assert snapshot["transport"]["requests"] == 4
        assert snapshot["transport"]["connections_total"] == 1

    def test_run_remote_replays_stream_offline_identical(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        stream = build_stream(x, None, StreamSpec(requests=12, max_size=3, seed=5))
        offline = run_offline(tiny_dcn, stream)
        with DCNService(tiny_dcn, max_batch=16) as service:
            with DCNServer(service) as server:
                clients = [DCNClient(server.address, backoff_seed=c) for c in range(3)]
                try:
                    remote = run_remote(clients, stream)
                finally:
                    for client in clients:
                        client.close()
        assert remote.statuses == ["ok"] * len(stream)
        for got, want in zip(remote.labels, offline.labels):
            np.testing.assert_array_equal(got, want)
        assert len(remote.latencies_s) == len(stream)

    def test_oversized_request_rejected_structurally(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service, max_frame_bytes=512) as server:
                sock = socket.create_connection(server.address, timeout=5.0)
                sock.settimeout(5.0)
                write_frame(
                    sock, KIND_REQUEST, {"id": 0}, encode_array(x=x[:8])
                )
                kind, meta, _ = read_frame(sock)
                assert kind == KIND_ERROR
                assert meta["code"] == "oversized"
                sock.close()
                assert server.frame_errors == 1

    def test_bad_body_is_protocol_error_not_retry(self, tiny_correct, tiny_dcn):
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service) as server:
                sock = socket.create_connection(server.address, timeout=5.0)
                sock.settimeout(5.0)
                write_frame(sock, KIND_REQUEST, {"id": 0}, b"not an npz body")
                kind, meta, _ = read_frame(sock)
                assert kind == KIND_ERROR
                assert meta["code"] == "bad-payload"
                sock.close()

    def test_ping_pong(self, tiny_correct, tiny_dcn):
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service) as server:
                sock = socket.create_connection(server.address, timeout=5.0)
                sock.settimeout(5.0)
                write_frame(sock, KIND_PING, {"id": 42})
                kind, meta, _ = read_frame(sock)
                from repro.serve.transport import KIND_PONG

                assert kind == KIND_PONG
                assert meta["id"] == 42
                sock.close()


class TestDeadlinePropagation:
    def test_server_sheds_unmeetable_deadline_both_sides_agree(
        self, tiny_correct, tiny_dcn
    ):
        _, x, _ = tiny_correct
        # The dispatcher holds partial batches open for 1.2s, so a 0.3s
        # budget is un-meetable: the server's bounded ticket wait fires
        # and both ends record the same deadline shed.
        with DCNService(tiny_dcn, max_batch=8, max_delay=1.2) as service:
            with DCNServer(service) as server:
                with DCNClient(server.address, deadline_s=0.3, retries=2) as client:
                    t0 = time.monotonic()
                    result = client.classify(x[:1])
                    elapsed = time.monotonic() - t0
                assert result.status == "shed"
                assert result.reason == "deadline"
                assert elapsed < 1.0  # resolved at the deadline, not the dispatch
                assert client.counters.deadline_shed == 1
                assert client.counters.retries == 0  # dead budgets don't retry
                # The server's bounded ticket wait fires within ~1ms of the
                # client's read timeout; poll past the race.
                give_up = time.monotonic() + 2.0
                while server.counters.deadline_shed != 1 and time.monotonic() < give_up:
                    time.sleep(0.01)
                assert server.counters.deadline_shed == 1

    def test_spent_budget_sheds_before_any_work(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service) as server:
                sock = socket.create_connection(server.address, timeout=5.0)
                sock.settimeout(5.0)
                # A request whose remaining budget is already <= 0 must be
                # refused at admission, without touching the backend.
                write_frame(
                    sock, KIND_REQUEST, {"id": 1, "deadline_s": -0.5},
                    encode_array(x=x[:1]),
                )
                kind, meta, _ = read_frame(sock)
                assert kind == KIND_RESPONSE
                assert meta["status"] == "shed"
                assert meta["reason"] == "deadline"
                assert meta["retryable"] is False
                sock.close()
                assert server.counters.deadline_shed == 1
                assert service.counters.requests == 0


class TestTransportChaos:
    def test_conn_drop_retries_then_succeeds(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        chaos = TransportChaos(
            FaultPlan(faults=(Fault(kind="conn-drop", unit_index=0),))
        )
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service, chaos=chaos) as server:
                with DCNClient(server.address, retries=2, backoff_base_s=0.01) as client:
                    result = client.classify(x[:2])
        assert result.status == "ok"
        np.testing.assert_array_equal(result.labels, tiny_dcn.classify(x[:2]))
        assert client.counters.retries == 1
        assert client.counters.torn_replies == 1
        assert [fault.kind for fault in chaos.fired] == ["conn-drop"]

    def test_torn_frame_reply_never_yields_partial_labels(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        chaos = TransportChaos(
            FaultPlan(faults=(Fault(kind="torn-frame", unit_index=0),))
        )
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service, chaos=chaos) as server:
                with DCNClient(server.address, retries=2, backoff_base_s=0.01) as client:
                    result = client.classify(x[:2])
        assert result.status == "ok"
        np.testing.assert_array_equal(result.labels, tiny_dcn.classify(x[:2]))
        assert client.counters.torn_replies == 1
        assert client.counters.retries == 1

    def test_sock_stall_resolves_as_deadline_shed(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        chaos = TransportChaos(
            FaultPlan(faults=(Fault(kind="sock-stall", unit_index=0),)),
            stall_s=1.5,
        )
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service, chaos=chaos) as server:
                with DCNClient(server.address, deadline_s=0.4, retries=2) as client:
                    t0 = time.monotonic()
                    result = client.classify(x[:1])
                    elapsed = time.monotonic() - t0
        assert result.status == "shed"
        assert result.reason == "deadline"
        assert elapsed < 1.2  # the stall did not hang the caller
        assert client.counters.deadline_shed == 1

    def test_retries_exhausted_resolves_shed_never_hangs(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        # Every reply dropped: the client must burn its bounded retries
        # and resolve shed — the no-hang guarantee under a dead endpoint.
        chaos = TransportChaos(
            FaultPlan(
                faults=tuple(Fault(kind="conn-drop", unit_index=i) for i in range(8))
            )
        )
        with DCNService(tiny_dcn, max_batch=8) as service:
            with DCNServer(service, chaos=chaos) as server:
                with DCNClient(
                    server.address, retries=2, backoff_base_s=0.01,
                    breaker_threshold=10,
                ) as client:
                    result = client.classify(x[:1])
        assert result.status == "shed"
        assert result.reason == "torn"
        assert client.counters.retries == 2
        assert client.counters.torn_replies == 3

    def test_reply_fault_matches_ordinal_only(self):
        chaos = TransportChaos(
            FaultPlan(faults=(Fault(kind="conn-drop", unit_index=3),))
        )
        assert chaos.reply_fault(0) is None
        fault = chaos.reply_fault(3)
        assert fault is not None and fault.kind == "conn-drop"

    def test_plan_generate_accepts_transport_kinds(self):
        plan = FaultPlan.generate(
            seed=7, num_units=10, kinds=("conn-drop", "torn-frame"), count=4
        )
        assert len(plan.faults) == 4
        assert all(f.kind in ("conn-drop", "torn-frame") for f in plan.faults)
        assert plan == FaultPlan.generate(
            seed=7, num_units=10, kinds=("conn-drop", "torn-frame"), count=4
        )

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.generate(seed=0, num_units=4, kinds=("sock-melt",))
