"""Telemetry: mergeable counters, latency sketch, streaming JSONL export."""

import json
import math

import numpy as np
import pytest

from repro.core import DCN, Corrector
from repro.serve import (
    DCNService,
    LatencySketch,
    ServeCounters,
    TelemetryExporter,
    read_telemetry,
)


class _RuleDetector:
    def __init__(self, network, rule):
        self.network = network
        self._rule = rule

    def is_adversarial(self, logits):
        return self._rule(np.asarray(logits))


@pytest.fixture()
def tiny_dcn(tiny_correct):
    network, _, _ = tiny_correct
    detector = _RuleDetector(network, lambda lg: lg.argmax(axis=-1) % 2 == 0)
    return DCN(network, detector, Corrector(network, radius=0.1, samples=20, seed=0))


class TestServeCountersMerged:
    def test_sums_counts_maxes_gauge_high_water(self):
        a = ServeCounters(requests=3, examples=9, shed=1, max_queue_depth=4,
                          seconds=0.5)
        b = ServeCounters(requests=5, examples=10, shed=0, max_queue_depth=7,
                          seconds=0.25)
        merged = ServeCounters.merged([a, b])
        assert merged.requests == 8
        assert merged.examples == 19
        assert merged.shed == 1
        assert merged.max_queue_depth == 7  # high-water mark: max, not sum
        assert merged.seconds == pytest.approx(0.75)

    def test_accepts_wire_dicts_and_ignores_unknown_keys(self):
        wire = ServeCounters(requests=2).as_dict()
        wire["from_the_future"] = 99
        merged = ServeCounters.merged([wire, ServeCounters(requests=1)])
        assert merged.requests == 3
        assert not hasattr(merged, "from_the_future")

    def test_empty_merge_is_zero(self):
        assert ServeCounters.merged([]) == ServeCounters()


class TestLatencySketch:
    def test_percentiles_within_relative_error(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-6.0, sigma=1.0, size=4000)
        sketch = LatencySketch(alpha=0.01)
        for v in values:
            sketch.record(float(v))
        for q in (50, 95, 99):
            true = float(np.percentile(values, q))
            got = sketch.percentile(q)
            assert abs(got - true) <= 0.02 * true  # 2*alpha headroom

    def test_merge_equals_single_sketch_exactly(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(scale=0.01, size=1000)
        whole = LatencySketch()
        left, right = LatencySketch(), LatencySketch()
        for i, v in enumerate(values):
            whole.record(float(v))
            (left if i % 2 else right).record(float(v))
        left.merge(right)
        # Same bucket counts -> identical percentile output, not just close.
        assert left.percentile(50) == whole.percentile(50)
        assert left.percentile(95) == whole.percentile(95)
        assert left.count == whole.count

    def test_state_round_trips_through_json(self):
        sketch = LatencySketch()
        for v in (0.001, 0.02, 0.3):
            sketch.record(v)
        state = json.loads(json.dumps(sketch.state()))
        clone = LatencySketch.from_state(state)
        assert clone.summary() == sketch.summary()

    def test_drops_non_finite_and_negative(self):
        sketch = LatencySketch()
        sketch.record(float("nan"))
        sketch.record(float("inf"))
        sketch.record(-1.0)
        assert sketch.count == 0
        assert math.isnan(sketch.percentile(50))

    def test_underflow_bucket_and_clamping(self):
        sketch = LatencySketch()
        sketch.record(0.0)  # below MIN_VALUE -> underflow bucket
        sketch.record(0.01)
        assert sketch.count == 2
        assert sketch.percentile(0) == 0.0
        assert sketch.percentile(100) <= sketch.max

    def test_alpha_mismatch_refuses_merge(self):
        with pytest.raises(ValueError, match="alpha"):
            LatencySketch(alpha=0.01).merge(LatencySketch(alpha=0.02))

    def test_empty_merge_is_noop(self):
        sketch = LatencySketch()
        sketch.record(0.01)
        before = sketch.summary()
        sketch.merge(LatencySketch())
        assert sketch.summary() == before


class TestTelemetryExporter:
    def test_journals_snapshots_and_final_record(self, tiny_correct, tiny_dcn,
                                                 tmp_path):
        _, x, _ = tiny_correct
        service = DCNService(tiny_dcn, max_batch=8, max_queue=64, slo_target_s=30.0)
        journal = tmp_path / "telemetry.jsonl"
        with TelemetryExporter(service, journal, interval_s=0.05) as exporter:
            service.serve_batch([x[:2], x[2:5]])
            exporter.snapshot_now()
        records = read_telemetry(journal)
        assert len(records) >= 2
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)
        assert records[-1]["final"] is True
        assert all(not r["final"] for r in records[:-1])
        last = records[-1]
        # Counters, window percentiles, mergeable sketch and the SLO cost
        # model all stream through the journal.
        assert last["counters"]["requests"] == 2
        assert last["counters"]["examples"] == 5
        assert last["latency"]["count"] == 2.0
        assert last["sketch"]["count"] == 2
        assert last["cost"]["observations"] >= 1
        # The journal is plain JSONL: every line parses standalone.
        for line in journal.read_text().splitlines():
            json.loads(line)

    def test_sketch_in_journal_reconstructs_percentiles(self, tiny_correct,
                                                        tiny_dcn, tmp_path):
        _, x, _ = tiny_correct
        service = DCNService(tiny_dcn, max_batch=8, max_queue=64)
        journal = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(service, journal, interval_s=60.0)
        service.serve_batch([x[i : i + 1] for i in range(6)])
        exporter.snapshot_now(final=True)
        exporter.stop()
        state = read_telemetry(journal)[0]["sketch"]
        sketch = LatencySketch.from_state(state)
        assert sketch.count == 6
        assert np.isfinite(sketch.percentile(95))

    def test_validates_interval(self, tiny_dcn, tmp_path):
        service = DCNService(tiny_dcn)
        with pytest.raises(ValueError):
            TelemetryExporter(service, tmp_path / "t.jsonl", interval_s=0.0)


class _CountingSource:
    """Minimal telemetry source: numbered snapshots of a fixed size."""

    def __init__(self):
        self.calls = 0

    def telemetry_snapshot(self):
        self.calls += 1
        return {"counters": {"requests": self.calls}, "pad": "x" * 64}


class TestJournalRotation:
    def test_rotates_at_max_bytes_and_reads_across_segments(self, tmp_path):
        from repro.serve import rotated_segment

        journal = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(
            _CountingSource(), journal, interval_s=60.0, fsync_every=1,
            max_bytes=400, keep=3,
        )
        for _ in range(20):
            exporter.snapshot_now()
        exporter.stop()
        assert exporter.rotations > 0
        assert rotated_segment(journal, 1).exists()
        records = read_telemetry(journal)
        # Oldest-first across segments: seq strictly increasing and
        # contiguous, ending at the final record.
        seqs = [rec["seq"] for rec in records]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        assert records[-1]["final"] is True
        assert records[-1]["seq"] == 20

    def test_keep_bounds_the_segment_count(self, tmp_path):
        from repro.serve import rotated_segment

        journal = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(
            _CountingSource(), journal, interval_s=60.0, fsync_every=1,
            max_bytes=150, keep=2,
        )
        for _ in range(30):
            exporter.snapshot_now()
        exporter.stop()
        assert exporter.rotations > 3  # rotated more times than we keep
        assert rotated_segment(journal, 1).exists()
        assert rotated_segment(journal, 2).exists()
        assert not rotated_segment(journal, 3).exists()
        # Replay still works; the dropped history is simply absent.
        records = read_telemetry(journal)
        assert records[-1]["seq"] == 30
        assert len(records) < 31

    def test_no_rotation_without_max_bytes(self, tmp_path):
        journal = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(
            _CountingSource(), journal, interval_s=60.0, fsync_every=1,
        )
        for _ in range(10):
            exporter.snapshot_now()
        exporter.stop()
        assert exporter.rotations == 0
        assert len(read_telemetry(journal)) == 11

    def test_validates_rotation_params(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            TelemetryExporter(_CountingSource(), tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(ValueError, match="keep"):
            TelemetryExporter(_CountingSource(), tmp_path / "t.jsonl", keep=0)
