"""DCNService: coalescing equivalence, admission control, telemetry.

These run on the in-session tiny model with deterministic detector
stand-ins so the full serving envelope — including the detector
false-negative path — is exercised without the cached artifact zoo.
The mnist-fast integration equivalents live in ``scripts/serve_smoke.py``
and ``benchmarks/bench_serve_latency.py``.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import DCN, Corrector
from repro.serve import DCNService


class _RuleDetector:
    """Deterministic detector stand-in: flags rows by a pure logits rule."""

    def __init__(self, network, rule):
        self.network = network
        self._rule = rule

    def is_adversarial(self, logits):
        return self._rule(np.asarray(logits))


def _flag_even(logits):
    return logits.argmax(axis=-1) % 2 == 0


@pytest.fixture()
def tiny_dcn(tiny_correct):
    """DCN whose detector flags every even-labelled row (pinned seed)."""
    network, _, _ = tiny_correct
    detector = _RuleDetector(network, _flag_even)
    return DCN(network, detector, Corrector(network, radius=0.1, samples=20, seed=0))


def _requests(x, sizes):
    out, start = [], 0
    for size in sizes:
        out.append(x[start : start + size])
        start += size
    return out


class TestServeBatchEquivalence:
    def test_bitwise_identical_to_offline_classify(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        window = _requests(x, [1, 3, 2, 4, 1, 5])
        service = DCNService(tiny_dcn, max_batch=8, max_queue=64)
        results = service.serve_batch(window)
        assert [r.status for r in results] == ["ok"] * len(window)
        for result, request in zip(results, window):
            labels, flagged = tiny_dcn.classify_detailed(request)
            np.testing.assert_array_equal(result.labels, labels)
            np.testing.assert_array_equal(result.flagged, flagged)
        # The detector rule flags ~half the rows, so the fused corrector
        # path genuinely ran — this is not a gate-only equivalence.
        assert 0 < service.counters.flagged < service.counters.examples
        assert service.counters.corrected == service.counters.flagged

    def test_coalesces_across_requests_and_pads_to_buckets(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        window = _requests(x, [1] * 6)
        service = DCNService(tiny_dcn, max_batch=8, max_queue=64)
        service.serve_batch(window)
        # 6 single-row requests fuse into one dispatch, padded 6 -> 8.
        assert service.counters.batches == 1
        assert service.counters.coalesced_requests == 6
        assert service.counters.pad_rows == 2

    def test_detector_false_negative_rows_keep_model_label(self, tiny_correct):
        """Benign rows deliberately flagged are served the model's label.

        The paper's Sec. 5.2 harmlessness argument, on the serving path:
        a detector false positive routes a benign row into the corrector,
        whose vote agrees with the model on benign inputs.
        """
        network, x, _ = tiny_correct
        dcn = DCN(
            network,
            _RuleDetector(network, lambda logits: np.ones(len(logits), dtype=bool)),
            Corrector(network, radius=0.05, samples=20, seed=0),
        )
        rows = x[:12]
        service = DCNService(dcn, max_batch=8, max_queue=64)
        results = service.serve_batch(_requests(rows, [4, 4, 4]))
        served = np.concatenate([r.labels for r in results])
        # Bitwise-equal to offline DCN (same pinned corrector seed) ...
        np.testing.assert_array_equal(served, dcn.classify(rows))
        # ... and the corrector vote recovers the model's own labels.
        assert (served == network.predict(rows)).mean() > 0.8
        assert service.counters.corrected == len(rows)


class TestAdmissionControl:
    def test_shed_policy_rejects_overflow_only(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        window = _requests(x, [1] * 10)
        service = DCNService(tiny_dcn, max_batch=8, max_queue=3, overload="shed")
        results = service.serve_batch(window)
        assert [r.status for r in results] == ["ok"] * 3 + ["shed"] * 7
        assert service.counters.shed == 7
        for result, request in zip(results[:3], window[:3]):
            np.testing.assert_array_equal(result.labels, tiny_dcn.classify(request))
        shed = results[-1]
        assert shed.labels is None and not shed.ok

    def test_degrade_policy_bounded_at_twice_max_queue(self, tiny_correct, tiny_dcn):
        network, x, _ = tiny_correct
        window = _requests(x, [1] * 10)
        service = DCNService(tiny_dcn, max_batch=8, max_queue=2, overload="degrade")
        results = service.serve_batch(window)
        # Depths [0, 2) full service, [2, 4) detector-only, >= 4 shed.
        assert [r.status for r in results] == ["ok"] * 2 + ["degraded"] * 2 + ["shed"] * 6
        for result, request in zip(results[2:4], window[2:4]):
            # Degraded rows carry the model's label even when flagged.
            np.testing.assert_array_equal(result.labels, network.predict(request))
            assert result.ok
        assert service.counters.degraded == 2 and service.counters.shed == 6

    def test_request_validation(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        service = DCNService(tiny_dcn, max_batch=4)
        with pytest.raises(ValueError):
            service.serve_batch([x[:0]])  # empty request
        with pytest.raises(ValueError):
            service.serve_batch([x[0, 0, 0]])  # not a batch of inputs
        with pytest.raises(ValueError):
            service.serve_batch([x[:5]])  # exceeds max_batch

    def test_constructor_validation(self, tiny_dcn):
        for kwargs in (
            {"max_batch": 0},
            {"max_queue": 0},
            {"max_delay": -1.0},
            {"overload": "panic"},
            {"plan_entries": 0},
        ):
            with pytest.raises(ValueError):
                DCNService(tiny_dcn, **kwargs)

    def test_plan_budget_floor_never_shrinks(self, tiny_dcn):
        engine = tiny_dcn.network.engine
        original = engine.plan_entries
        try:
            DCNService(tiny_dcn, plan_entries=64)
            assert engine.plan_entries >= 64
            DCNService(tiny_dcn, plan_entries=2)
            assert engine.plan_entries >= 64  # floor, not a setter
        finally:
            engine.plan_entries = original


class TestThreadedMode:
    def test_concurrent_submit_matches_offline(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        window = _requests(x, [1, 2, 1, 3, 1, 2, 1, 1])
        results = [None] * len(window)
        with DCNService(tiny_dcn, max_batch=8, max_queue=64, max_delay=0.001) as service:
            def client(lane):
                for i in range(lane, len(window), 2):
                    results[i] = service.classify(window[i], timeout=30.0)

            threads = [threading.Thread(target=client, args=(lane,)) for lane in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert all(r is not None and r.status == "ok" for r in results)
        for result, request in zip(results, window):
            np.testing.assert_array_equal(result.labels, tiny_dcn.classify(request))
        assert result.latency_s >= 0

    def test_lifecycle_errors(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        service = DCNService(tiny_dcn)
        with pytest.raises(RuntimeError):
            service.submit(x[:1])  # not started
        with service:
            with pytest.raises(RuntimeError):
                service.start()  # already running
        with pytest.raises(RuntimeError):
            service.submit(x[:1])  # stopped again


class TestTelemetry:
    def test_counters_and_latencies(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        window = _requests(x, [2, 3, 1, 2])
        service = DCNService(tiny_dcn, max_batch=8, max_queue=64)
        service.serve_batch(window)
        counters = service.counters
        assert counters.requests == 4
        assert counters.examples == 8
        assert counters.seconds > 0
        assert 0.0 <= counters.flagged_fraction <= 1.0
        assert counters.plan_hits + counters.plan_misses > 0
        as_dict = counters.as_dict()
        assert as_dict["requests"] == 4 and as_dict["examples"] == 8
        summary = service.latencies.summary()
        assert summary["count"] == 4
        assert summary["p95_ms"] >= summary["p50_ms"] > 0

    def test_snapshot_is_detached(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        service = DCNService(tiny_dcn, max_batch=8, max_queue=64)
        service.serve_batch([x[:2]])
        frozen = service.counters.snapshot()
        service.serve_batch([x[:2]])
        assert frozen.batches == 1
        assert service.counters.batches == 2


class TestQueueGauges:
    def test_serve_batch_updates_and_clears_gauges(self, tiny_correct, tiny_dcn):
        """Regression: sync mode used to never touch counters.queue_depth."""
        _, x, _ = tiny_correct
        service = DCNService(tiny_dcn, max_batch=4, max_queue=64)
        service.serve_batch(_requests(x, [1] * 6))
        # The drain saw the queue at its admitted size...
        assert service.counters.max_queue_depth == 6
        # ...and left both gauges at zero, not stale at the high-water mark.
        assert service.counters.queue_depth == 0
        assert service.counters.queued_rows == 0

    def test_threaded_gauges_track_queue_and_clear_on_stop(self, tiny_correct,
                                                           tiny_dcn):
        """Regression: gauges stayed stale after the stop() drain."""
        _, x, _ = tiny_correct
        # max_batch and max_delay both unreachable: everything queues
        # until stop() drains, making the gauge deterministic mid-run.
        service = DCNService(tiny_dcn, max_batch=64, max_queue=64, max_delay=30.0)
        with service:
            tickets = [service.submit(x[i : i + 1]) for i in range(4)]
            assert service.counters.queue_depth == 4
            assert service.counters.queued_rows == 4
        assert all(t.wait(10.0).status == "ok" for t in tickets)
        assert service.counters.queue_depth == 0
        assert service.counters.queued_rows == 0


class TestThreadedOverload:
    def test_degrade_to_shed_transition_and_immediate_shed_tickets(
        self, tiny_correct, tiny_dcn
    ):
        _, x, _ = tiny_correct
        # Dispatch is unreachable (huge max_batch, long max_delay), so the
        # queue builds exactly with the submissions: depths 0,1 admit,
        # 2,3 degrade, and 4 = 2*max_queue sheds.
        service = DCNService(
            tiny_dcn, max_batch=64, max_queue=2, max_delay=30.0, overload="degrade"
        )
        with service:
            tickets = [service.submit(x[i : i + 1]) for i in range(8)]
            # Shed tickets resolve immediately -- callers never block on
            # a rejected request.
            t0 = time.perf_counter()
            shed_now = [tickets[i].wait(0.05) for i in range(4, 8)]
            assert time.perf_counter() - t0 < 0.5
            assert [r.status for r in shed_now] == ["shed"] * 4
            assert service.counters.shed == 4
            assert service.counters.degraded == 2
        # stop() drains the four admitted requests.
        drained = [t.wait(10.0) for t in tickets[:4]]
        assert [r.status for r in drained] == ["ok", "ok", "degraded", "degraded"]
        for result, i in zip(drained[:2], range(2)):
            np.testing.assert_array_equal(result.labels, tiny_dcn.classify(x[i : i + 1]))
        assert service.counters.queue_depth == 0


class TestIdleDispatcher:
    def test_idle_service_makes_no_spurious_wakeups(self, tiny_correct, tiny_dcn):
        """Regression: the idle loop used to poll cond.wait(0.05) forever."""
        _, x, _ = tiny_correct
        with DCNService(tiny_dcn, max_batch=8, max_queue=64, max_delay=0.001) as service:
            service.classify(x[:2], timeout=10.0)
            # Idle long enough that the old polling loop would have
            # woken dozens of times.
            time.sleep(0.3)
            service.classify(x[2:4], timeout=10.0)
            time.sleep(0.3)
        assert service.idle_wakeups == 0
