"""SLO-aware admission: cost model learning, decisions, service integration."""

import numpy as np
import pytest

from repro.core import DCN, Corrector
from repro.serve import DCNService, DispatchCostModel, SloAdmission


class _RuleDetector:
    def __init__(self, network, rule):
        self.network = network
        self._rule = rule

    def is_adversarial(self, logits):
        return self._rule(np.asarray(logits))


def _flag_even(logits):
    return logits.argmax(axis=-1) % 2 == 0


@pytest.fixture()
def tiny_dcn(tiny_correct):
    network, _, _ = tiny_correct
    detector = _RuleDetector(network, _flag_even)
    return DCN(network, detector, Corrector(network, radius=0.1, samples=20, seed=0))


def _requests(x, sizes):
    out, start = [], 0
    for size in sizes:
        out.append(x[start : start + size])
        start += size
    return out


class TestDispatchCostModel:
    def test_cold_model_has_no_estimate(self):
        model = DispatchCostModel()
        assert model.expected_row_cost() is None
        assert model.estimate_wait(10) is None

    def test_pure_dispatches_learn_each_cost_directly(self):
        model = DispatchCostModel(alpha=1.0, flagged_multiplier=10.0)
        model.observe(0.02, benign_rows=4, flagged_rows=0)
        model.observe(0.30, benign_rows=0, flagged_rows=3)
        assert model.benign_cost_s == pytest.approx(0.005)
        assert model.flagged_cost_s == pytest.approx(0.1)

    def test_mixed_dispatch_splits_by_multiplier_prior(self):
        # 2 benign + 1 flagged at multiplier 9: per = s / (2 + 9).
        model = DispatchCostModel(alpha=1.0, flagged_multiplier=9.0)
        model.observe(0.11, benign_rows=2, flagged_rows=1)
        assert model.benign_cost_s == pytest.approx(0.01)
        assert model.flagged_cost_s == pytest.approx(0.09)
        # The split reconstructs the observed wall clock exactly.
        assert 2 * model.benign_cost_s + model.flagged_cost_s == pytest.approx(0.11)

    def test_expected_cost_blends_by_flag_rate(self):
        model = DispatchCostModel(alpha=1.0, flagged_multiplier=10.0)
        model.observe(0.01, benign_rows=1, flagged_rows=0)
        model.observe(0.10, benign_rows=0, flagged_rows=1)
        # flag_rate EWMA with alpha=1 is the last observation: 1.0.
        assert model.expected_row_cost() == pytest.approx(0.10)
        # Degraded service never pays the corrector.
        assert model.expected_row_cost(degraded=True) == pytest.approx(0.01)

    def test_ignores_empty_and_negative_observations(self):
        model = DispatchCostModel()
        model.observe(0.5, benign_rows=0, flagged_rows=0)
        model.observe(-1.0, benign_rows=2, flagged_rows=0)
        assert model.observations == 0
        assert model.expected_row_cost() is None

    def test_state_is_json_able(self):
        import json

        model = DispatchCostModel()
        model.observe(0.01, benign_rows=2, flagged_rows=2)
        json.dumps(model.state())


class TestSloAdmission:
    def _admission(self, overload="shed", target=1.0, max_queue=4):
        model = DispatchCostModel(alpha=1.0, flagged_multiplier=10.0)
        return SloAdmission(target, model, max_queue, overload=overload), model

    def test_cold_start_admits(self):
        admission, _ = self._admission()
        decision = admission.decide(depth=3, rows_ahead=100)
        assert decision.action == "admit"
        assert decision.reason == "cold"

    def test_sheds_on_estimated_wait_not_depth(self):
        admission, model = self._admission(target=0.05)
        model.observe(0.10, benign_rows=0, flagged_rows=1)  # 100ms per flagged row
        # One expensive row ahead already blows a 50ms target at depth 1.
        decision = admission.decide(depth=1, rows_ahead=1)
        assert decision.action == "shed"
        assert decision.reason == "slo"
        assert decision.est_wait_s == pytest.approx(0.10)
        # The same depth with cheap traffic admits.
        cheap, cheap_model = self._admission(target=0.05)
        cheap_model.observe(0.001, benign_rows=1, flagged_rows=0)
        assert cheap.decide(depth=1, rows_ahead=1).action == "admit"

    def test_degrade_reprices_at_benign_cost(self):
        admission, model = self._admission(overload="degrade", target=0.05)
        model.observe(0.01, benign_rows=1, flagged_rows=0)
        model.observe(0.10, benign_rows=0, flagged_rows=1)
        # Full service: 100ms/row estimate (flag_rate 1.0) > 50ms target.
        # Detector-only: 10ms/row fits -> degrade, not shed.
        decision = admission.decide(depth=2, rows_ahead=4)
        assert decision.action == "degrade"
        assert decision.reason == "slo"
        assert decision.est_wait_s == pytest.approx(0.04)
        # Ten rows ahead misses even degraded -> shed.
        assert admission.decide(depth=2, rows_ahead=10).action == "shed"

    def test_hard_bound_sheds_even_cold(self):
        admission, _ = self._admission(max_queue=4)
        decision = admission.decide(depth=8, rows_ahead=0)
        assert decision.action == "shed"
        assert decision.reason == "hard-bound"

    def test_validates_target(self):
        model = DispatchCostModel()
        with pytest.raises(ValueError):
            SloAdmission(0.0, model, 4)


class TestServiceSloIntegration:
    def test_generous_target_stays_bitwise_identical(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        window = _requests(x, [2, 3, 1, 4])
        service = DCNService(tiny_dcn, max_batch=8, max_queue=64, slo_target_s=30.0)
        results = service.serve_batch(window)
        assert [r.status for r in results] == ["ok"] * len(window)
        for result, request in zip(results, window):
            np.testing.assert_array_equal(result.labels, tiny_dcn.classify(request))

    def test_tight_target_sheds_after_warmup(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        service = DCNService(tiny_dcn, max_batch=8, max_queue=64, slo_target_s=1e-9)
        # Cold model: the whole first window admits.
        first = service.serve_batch(_requests(x, [2, 2]))
        assert [r.status for r in first] == ["ok", "ok"]
        assert service.cost_model.observations > 0
        # Warm model: any queued row ahead blows a 1ns target, so only
        # the head-of-window request (zero rows ahead) is admitted.
        second = service.serve_batch(_requests(x[4:], [2, 2, 2]))
        assert [r.status for r in second] == ["ok", "shed", "shed"]
        assert service.counters.slo_shed == 2
        assert service.counters.shed == 2
        # Served labels still match offline exactly.
        np.testing.assert_array_equal(second[0].labels, tiny_dcn.classify(x[4:6]))

    def test_tight_target_degrades_when_policy_allows(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        network = tiny_dcn.network
        service = DCNService(
            tiny_dcn, max_batch=8, max_queue=64,
            slo_target_s=1e-9, overload="degrade",
        )
        service.serve_batch(_requests(x, [2, 2]))  # warm the cost model
        results = service.serve_batch(_requests(x[4:], [2, 2]))
        statuses = [r.status for r in results]
        assert statuses[0] == "ok"
        # Degraded wait is also > 1ns, so the tail sheds; with a benign
        # row cost below target it would degrade instead — covered by the
        # unit test above.  Here assert the counters route through slo_*.
        assert service.counters.slo_shed + service.counters.slo_degraded >= 1

    def test_hard_bound_backstops_cold_model(self, tiny_correct, tiny_dcn):
        _, x, _ = tiny_correct
        service = DCNService(tiny_dcn, max_batch=4, max_queue=2, slo_target_s=30.0)
        # Cold model admits on SLO grounds, but depth 2*max_queue=4 still
        # sheds: a misled estimator can never grow the queue unboundedly.
        results = service.serve_batch(_requests(x, [1] * 6))
        statuses = [r.status for r in results]
        assert statuses[:4] == ["ok"] * 4
        assert statuses[4:] == ["shed", "shed"]
        assert service.counters.shed == 2
        assert service.counters.slo_shed == 0  # hard bound, not the SLO
