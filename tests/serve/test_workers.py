"""ServePool: sharded serving equivalence, merged telemetry, worker death.

The chaos tests (SIGKILL, wedged-worker lease expiry) are the PR's
acceptance criteria: a dead worker's in-flight tickets must resolve as
shed — never hang a caller — and the survivors must finish the stream.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.core import DCN, Corrector
from repro.serve import (
    LatencySketch,
    ServeCounters,
    ServePool,
    StreamSpec,
    TelemetryExporter,
    build_stream,
    read_telemetry,
    run_pool,
)
from repro.serve.workers import worker_lease_key


class _RuleDetector:
    def __init__(self, network, rule):
        self.network = network
        self._rule = rule

    def is_adversarial(self, logits):
        return self._rule(np.asarray(logits))


@pytest.fixture()
def tiny_dcn(tiny_correct):
    network, _, _ = tiny_correct
    detector = _RuleDetector(network, lambda lg: lg.argmax(axis=-1) % 2 == 0)
    return DCN(network, detector, Corrector(network, radius=0.1, samples=20, seed=0))


class TestShardedServing:
    def test_labels_bitwise_identical_to_offline(self, tiny_correct, tiny_dcn,
                                                 tmp_path):
        _, x, _ = tiny_correct
        stream = build_stream(x, None, StreamSpec(requests=12, max_size=3, seed=7))
        with ServePool(tiny_dcn, workers=2, ledger_path=tmp_path / "pool.jsonl",
                       max_batch=8, max_queue=64) as pool:
            stats = run_pool(pool, stream, window=6)
        assert stats.statuses == ["ok"] * len(stream)
        for labels, request in zip(stats.labels, stream):
            np.testing.assert_array_equal(labels, tiny_dcn.classify(request.x))

    def test_merged_counters_cover_all_workers(self, tiny_correct, tiny_dcn,
                                               tmp_path):
        _, x, _ = tiny_correct
        stream = build_stream(x, None, StreamSpec(requests=10, max_size=2, seed=3))
        rows = sum(len(r.x) for r in stream)
        with ServePool(tiny_dcn, workers=3, ledger_path=tmp_path / "pool.jsonl",
                       max_batch=8, max_queue=64) as pool:
            run_pool(pool, stream, window=5)
            snapshot = pool.fleet_snapshot()
            # Deterministic sharding: every worker got traffic and
            # reported a snapshot.
            assert snapshot["workers"]["reporting"] == [0, 1, 2]
        merged = ServeCounters.merged([snapshot["counters"]])
        assert merged.requests == len(stream)
        assert merged.examples == rows
        assert merged.shed == 0
        # Fleet-wide percentiles come from merged sketches, finite and
        # covering every served request.
        assert snapshot["latency"]["count"] == float(len(stream))
        assert np.isfinite(snapshot["latency"]["p95_ms"])
        sketch = LatencySketch.from_state(snapshot["sketch"])
        assert sketch.count == len(stream)

    def test_counters_survive_stop(self, tiny_correct, tiny_dcn, tmp_path):
        _, x, _ = tiny_correct
        stream = build_stream(x, None, StreamSpec(requests=6, max_size=2, seed=1))
        pool = ServePool(tiny_dcn, workers=2, ledger_path=tmp_path / "pool.jsonl",
                         max_batch=8, max_queue=64)
        with pool:
            run_pool(pool, stream, window=3)
        # stop() snapshots before shutdown; post-stop queries still work.
        assert pool.counters().requests == len(stream)

    def test_workers_release_leases_on_clean_stop(self, tiny_correct, tiny_dcn,
                                                  tmp_path):
        from repro.runner.ledger import Ledger

        _, x, _ = tiny_correct
        ledger_path = tmp_path / "pool.jsonl"
        with ServePool(tiny_dcn, workers=2, ledger_path=ledger_path,
                       max_batch=8) as pool:
            pool.classify(x[:2])
        state = Ledger(ledger_path).replay()
        for worker_id in range(2):
            assert worker_lease_key(worker_id) not in state.leases

    def test_submit_requires_start_and_validates(self, tiny_dcn, tmp_path):
        pool = ServePool(tiny_dcn, workers=1, ledger_path=tmp_path / "pool.jsonl")
        with pytest.raises(RuntimeError, match="not started"):
            pool.submit(np.zeros((1, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            ServePool(tiny_dcn, workers=0)

    def test_telemetry_exporter_over_pool(self, tiny_correct, tiny_dcn, tmp_path):
        _, x, _ = tiny_correct
        journal = tmp_path / "fleet.jsonl"
        with ServePool(tiny_dcn, workers=2, ledger_path=tmp_path / "pool.jsonl",
                       max_batch=8) as pool:
            with TelemetryExporter(pool, journal, interval_s=60.0) as exporter:
                pool.classify(x[:2])
                pool.classify(x[2:4])
                exporter.snapshot_now()
        records = read_telemetry(journal)
        assert records[-1]["final"] is True
        assert records[-1]["counters"]["requests"] == 2
        assert records[-1]["workers"]["total"] == 2


class TestWorkerDeath:
    def test_sigkill_sheds_inflight_and_survivors_finish(self, tiny_correct,
                                                         tiny_dcn, tmp_path):
        _, x, _ = tiny_correct

        # Plain sleep, deliberately: sharing an mp.Event with a process
        # that gets SIGKILLed can wedge the parent's set() forever (the
        # dead sleeper never acks the notify).  The worker dies mid-nap.
        def stall_worker_zero(worker_id, n_requests):
            if worker_id == 0:
                time.sleep(45.0)

        pool = ServePool(
            tiny_dcn, workers=2, ledger_path=tmp_path / "pool.jsonl",
            max_batch=8, max_queue=64, dispatch_hook=stall_worker_zero,
        )
        with pool:
            # Even sequence numbers shard to worker 0 (stalled), odd to
            # worker 1 (healthy).
            tickets = [pool.submit(x[i : i + 1]) for i in range(6)]
            healthy = [tickets[i].wait(10.0) for i in (1, 3, 5)]
            assert [r.status for r in healthy] == ["ok"] * 3
            pool.processes[0].kill()
            # The dead worker's in-flight tickets resolve as shed --
            # promptly, via pipe EOF, not via a timeout.
            doomed = [tickets[i].wait(5.0) for i in (0, 2, 4)]
            assert [r.status for r in doomed] == ["shed"] * 3
            assert pool.live_workers() == [1]
            assert pool.worker_deaths == 1
            # Later requests route around the corpse and the stream
            # finishes on the survivor, labels still offline-identical.
            after = [pool.submit(x[i : i + 1]) for i in range(6, 10)]
            results = [t.wait(10.0) for t in after]
            assert [r.status for r in results] == ["ok"] * 4
            for i, result in zip(range(6, 10), results):
                np.testing.assert_array_equal(
                    result.labels, tiny_dcn.classify(x[i : i + 1])
                )
            snapshot = pool.fleet_snapshot()
            assert snapshot["workers"]["dead"] == [0]
            assert snapshot["counters"]["shed"] >= 3

    def test_wedged_worker_dies_by_lease_expiry(self, tiny_correct, tiny_dcn,
                                                tmp_path):
        """Alive-but-stuck worker: pipe stays open, so only the lease
        going stale in the shared ledger can unstick its callers."""
        _, x, _ = tiny_correct
        release = multiprocessing.get_context("fork").Event()

        def wedge(worker_id, n_requests):
            release.wait(30.0)

        pool = ServePool(
            tiny_dcn, workers=1, ledger_path=tmp_path / "pool.jsonl",
            max_batch=8, lease_ttl=0.4, heartbeat_interval=3600.0,
            dispatch_hook=wedge,
        )
        with pool:
            ticket = pool.submit(x[:1])
            # No heartbeats arrive, so the claim's deadline lapses and the
            # monitor declares the worker dead without any process exit.
            result = ticket.wait(5.0)
            assert result.status == "shed"
            assert pool.live_workers() == []
            assert pool.worker_deaths == 1
            # With every worker dead the pool sheds at the front door,
            # immediately, instead of blocking callers.
            t0 = time.perf_counter()
            walkup = pool.submit(x[1:2]).wait(0.1)
            assert walkup.status == "shed"
            assert time.perf_counter() - t0 < 0.1
            assert pool.front_shed >= 2
            release.set()


class TestSupervision:
    """Bounded worker respawn: SIGKILL -> respawn -> identical labels;
    crash loops exhaust the restart budget and give up with a record."""

    def test_sigkill_respawn_rejoins_ring_with_identical_labels(
        self, tiny_correct, tiny_dcn, tmp_path
    ):
        from repro.runner.ledger import Ledger

        _, x, _ = tiny_correct
        ledger_path = tmp_path / "pool.jsonl"
        with ServePool(
            tiny_dcn, workers=2, ledger_path=ledger_path, max_batch=8,
            max_queue=64, max_restarts=3, restart_window_s=60.0,
        ) as pool:
            before = pool.classify(x[:2], timeout=10.0)
            assert before.status == "ok"
            pool.processes[0].kill()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not (
                pool.respawns == 1 and pool.live_workers() == [0, 1]
            ):
                time.sleep(0.05)
            assert pool.live_workers() == [0, 1]
            assert pool.respawns == 1
            # The replacement serves the dead worker's shard with labels
            # still bitwise-identical to offline classify.
            for i in range(4, 10):
                result = pool.classify(x[i : i + 1], timeout=10.0)
                assert result.status == "ok"
                np.testing.assert_array_equal(
                    result.labels, tiny_dcn.classify(x[i : i + 1])
                )
            snapshot = pool.fleet_snapshot()
            assert snapshot["workers"]["respawns"] == 1
            assert snapshot["workers"]["crash_loops"] == 0
            assert snapshot["workers"]["generations"][0] >= 1
            assert snapshot["counters"]["respawns"] == 1
        events = [
            rec for rec in Ledger(ledger_path).replay().events
            if rec.get("event") == "serve-worker-respawn"
        ]
        assert len(events) == 1
        assert events[0]["worker"] == 0

    def test_respawned_worker_uses_generation_lease_key(
        self, tiny_correct, tiny_dcn, tmp_path
    ):
        from repro.runner.ledger import Ledger

        _, x, _ = tiny_correct
        ledger_path = tmp_path / "pool.jsonl"
        with ServePool(
            tiny_dcn, workers=1, ledger_path=ledger_path, max_batch=8,
            max_restarts=2, restart_window_s=60.0,
        ) as pool:
            pool.processes[0].kill()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not (
                pool.respawns == 1 and pool.live_workers() == [0]
            ):
                time.sleep(0.05)
            assert pool.live_workers() == [0]
            assert pool.classify(x[:1], timeout=10.0).status == "ok"
        state = Ledger(ledger_path).replay()
        # Generation 1 claimed (and cleanly released) its own key; the
        # corpse's gen-0 lease never shadowed the replacement.
        assert worker_lease_key(0, generation=1) not in state.leases

    def test_crash_loop_exhausts_budget_and_gives_up(
        self, tiny_correct, tiny_dcn, tmp_path
    ):
        import os as _os
        import signal as _signal

        from repro.runner.ledger import Ledger

        _, x, _ = tiny_correct

        def die_on_dispatch(worker_id, n_requests):
            _os.kill(_os.getpid(), _signal.SIGKILL)

        ledger_path = tmp_path / "pool.jsonl"
        with ServePool(
            tiny_dcn, workers=1, ledger_path=ledger_path, max_batch=8,
            max_restarts=1, restart_window_s=60.0,
            dispatch_hook=die_on_dispatch,
        ) as pool:
            # Every dispatch kills the worker: death -> respawn (budget 1)
            # -> death -> crash loop.  Each doomed ticket still resolves.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and pool.crash_loops == 0:
                result = pool.submit(x[:1]).wait(10.0)
                assert result.status == "shed"
                time.sleep(0.05)
            assert pool.crash_loops == 1
            assert pool.respawns == 1
            assert pool.live_workers() == []
            # The slot is abandoned: callers shed at the front door
            # instead of waiting on another doomed fork.
            walkup = pool.submit(x[:1]).wait(1.0)
            assert walkup.status == "shed"
            assert walkup.reason == "unavailable"
            snapshot = pool.fleet_snapshot()
            assert snapshot["workers"]["crash_loops"] == 1
            assert snapshot["counters"]["crash_loops"] == 1
        events = [
            rec for rec in Ledger(ledger_path).replay().events
            if rec.get("event") == "serve-worker-crash-loop"
        ]
        assert len(events) == 1
        assert events[0]["worker"] == 0
        assert events[0]["restarts"] == 1

    def test_no_respawn_by_default(self, tiny_correct, tiny_dcn, tmp_path):
        _, x, _ = tiny_correct
        with ServePool(
            tiny_dcn, workers=2, ledger_path=tmp_path / "pool.jsonl", max_batch=8,
        ) as pool:
            pool.processes[0].kill()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and 0 in pool.live_workers():
                time.sleep(0.05)
            time.sleep(0.5)  # give a (buggy) supervisor time to act
            assert pool.live_workers() == [1]
            assert pool.respawns == 0

    def test_validation(self, tiny_dcn):
        with pytest.raises(ValueError, match="max_restarts"):
            ServePool(tiny_dcn, workers=1, max_restarts=-1)
        with pytest.raises(ValueError, match="restart_window_s"):
            ServePool(tiny_dcn, workers=1, restart_window_s=0.0)


class TestBoundedSnapshot:
    def test_wedged_worker_lands_in_stale_workers(self, tiny_correct, tiny_dcn,
                                                  tmp_path):
        _, x, _ = tiny_correct

        # The worker naps through the dispatch; its heartbeat thread keeps
        # the lease fresh, so only the snapshot timeout can bound the poll.
        def nap(worker_id, n_requests):
            time.sleep(2.0)

        with ServePool(
            tiny_dcn, workers=1, ledger_path=tmp_path / "pool.jsonl",
            max_batch=8, lease_ttl=30.0, dispatch_hook=nap,
        ) as pool:
            ticket = pool.submit(x[:1])
            time.sleep(0.2)  # let the dispatch enter the nap
            t0 = time.perf_counter()
            snapshot = pool.fleet_snapshot(timeout=0.3)
            elapsed = time.perf_counter() - t0
            assert elapsed < 1.5  # bounded, nowhere near the 2s nap
            assert snapshot["workers"]["stale_workers"] == [0]
            assert ticket.wait(10.0).status == "ok"
            # Once the worker wakes, the next poll is fresh again.
            assert pool.fleet_snapshot()["workers"]["stale_workers"] == []
