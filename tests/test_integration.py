"""Integration tests: the paper's pipeline end-to-end on the MNIST substitute.

These use the shared ``.artifacts`` cache (the first run of the suite or of
``scripts/warm_cache.py`` populates it); afterwards they are fast.
"""

import numpy as np
import pytest

from repro.eval import (
    attack_success_rate,
    build_context,
    scale_config,
    table2_detector_rates,
    untargeted_from_pool,
)


@pytest.fixture(scope="module")
def ctx():
    return build_context("mnist-fast", scale_config("fast"))


class TestModels:
    def test_standard_accuracy_in_paper_range(self, ctx):
        accuracy = ctx.model.accuracy(ctx.dataset.x_test, ctx.dataset.y_test)
        assert accuracy > 0.97  # paper: 99.3-99.4% on MNIST

    def test_distilled_accuracy_close_to_standard(self, ctx):
        standard = ctx.model.accuracy(ctx.dataset.x_test, ctx.dataset.y_test)
        distilled = ctx.distilled.network.accuracy(ctx.dataset.x_test, ctx.dataset.y_test)
        assert distilled > standard - 0.05  # paper: 99.3% vs 99.4%


class TestDetectorPipeline:
    def test_table2_shape(self, ctx):
        rates = table2_detector_rates(ctx)
        # Paper: FN 3.7%, FP 0.31% — near-perfect adversarial detection with
        # a small benign flag rate.
        assert rates["false_positive"] < 0.05
        assert rates["false_negative"] < 0.10

    def test_training_seeds_excluded_from_pools(self, ctx):
        pool = ctx.pool("cw-l2")
        train = set(ctx.dcn.detector.train_seed_indices.tolist())
        assert train.isdisjoint(set(pool.seed_indices.tolist()))


class TestRobustnessPipeline:
    def test_cw_l2_defeats_standard_model(self, ctx):
        pool = ctx.pool("cw-l2")
        assert pool.success.mean() > 0.9  # paper: 100%

    def test_dcn_recovers_cw_l2(self, ctx):
        pool = ctx.pool("cw-l2")
        untargeted = untargeted_from_pool(pool, "l2")
        standard_rate = attack_success_rate(ctx.standard, untargeted)
        dcn_rate = attack_success_rate(ctx.dcn, untargeted)
        assert standard_rate > 0.9
        assert dcn_rate < 0.2  # paper: 0%

    def test_dcn_benign_accuracy_matches_standard(self, ctx):
        rng = np.random.default_rng(42)
        x, y, _ = ctx.dataset.sample_test(150, rng, exclude=ctx.dcn.detector.train_seed_indices)
        standard = (ctx.standard.classify(x) == y).mean()
        dcn = (ctx.dcn.classify(x) == y).mean()
        assert abs(dcn - standard) <= 0.03  # paper: identical

    def test_corrector_samples_default_is_paper_value(self, ctx):
        assert ctx.dcn.corrector.samples == 50
        assert ctx.rc.samples == 1000
        # Radius is calibrated per-substrate (paper constants are for the
        # real MNIST/CIFAR); DCN and RC must share it for a fair Table 4.
        assert ctx.dcn.corrector.radius == ctx.radius == ctx.rc.radius
