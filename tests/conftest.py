"""Shared fixtures.

``tiny_model`` is a 10-class toy problem (bright blob position on a 6x6
canvas) trained in-session in a couple of seconds — attack unit tests use
it so they don't depend on the cached zoo models.  Integration tests that
need realistic models use the ``mnist-fast`` context, which loads cached
artifacts from ``.artifacts`` (built on first use).
"""

import numpy as np
import pytest

from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN
from repro.nn import Adam, Dense, Flatten, Network, ReLU, TrainConfig, fit


def make_blob_problem(n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """10-class toy images: class = which of 10 cells holds a bright blob."""
    # Ten blob centres on a 6x6 canvas.
    centres = [(r, c) for r in (1, 3) for c in (1, 3, 5)] + [(5, c) for c in (0, 2, 4, 5)]
    centres = centres[:10]
    labels = rng.integers(0, 10, size=n)
    x = rng.uniform(PIXEL_MIN, PIXEL_MIN + 0.2, size=(n, 1, 6, 6))
    for i, label in enumerate(labels):
        r, c = centres[label]
        x[i, 0, r, c] = PIXEL_MAX
        if r + 1 < 6:
            x[i, 0, r + 1, c] = PIXEL_MAX - 0.1
    return x, labels


@pytest.fixture(scope="session")
def tiny_model():
    """A trained 10-class toy classifier plus held-out data."""
    rng = np.random.default_rng(0)
    x_train, y_train = make_blob_problem(600, rng)
    x_test, y_test = make_blob_problem(100, rng)
    net_rng = np.random.default_rng(1)
    network = Network(
        [Flatten(), Dense(36, 48, net_rng), ReLU(), Dense(48, 10, net_rng)], (1, 6, 6)
    )
    fit(
        network,
        Adam(network.parameters(), lr=5e-3),
        x_train,
        y_train,
        TrainConfig(epochs=30, batch_size=64),
        np.random.default_rng(2),
    )
    assert network.accuracy(x_test, y_test) > 0.95
    return network, x_test, y_test


@pytest.fixture(scope="session")
def tiny_correct(tiny_model):
    """Test examples the tiny model classifies correctly."""
    network, x_test, y_test = tiny_model
    mask = network.predict(x_test) == y_test
    return network, x_test[mask], y_test[mask]
