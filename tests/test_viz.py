"""Tests for the ASCII visualisation helpers."""

import numpy as np
import pytest

from repro.viz import ascii_diff, ascii_image, side_by_side


class TestAsciiImage:
    def test_grayscale_dimensions(self):
        image = np.zeros((1, 8, 8)) - 0.5
        art = ascii_image(image)
        lines = art.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 8 for line in lines)

    def test_dark_is_blank_bright_is_dense(self):
        dark = ascii_image(np.full((4, 4), -0.5))
        bright = ascii_image(np.full((4, 4), 0.5))
        assert set(dark) <= {" ", "\n"}
        assert "@" in bright

    def test_colour_collapsed(self):
        image = np.full((3, 4, 4), 0.5)
        assert "@" in ascii_image(image)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ascii_image(np.zeros((2, 3, 4, 4)))

    def test_downscaling(self):
        art = ascii_image(np.zeros((16, 16)), width=8)
        assert all(len(line) == 8 for line in art.splitlines())


class TestAsciiDiff:
    def test_directions(self):
        original = np.zeros((4, 4))
        adversarial = original.copy()
        adversarial[0, 0] = 0.4  # strong up
        adversarial[3, 3] = -0.4  # strong down
        adversarial[1, 1] = 0.1  # weak up
        art = ascii_diff(original, adversarial).splitlines()
        assert art[0][0] == "#"
        assert art[3][3] == "="
        assert art[1][1] == "+"
        assert art[2][2] == " "

    def test_zero_diff_blank(self):
        x = np.random.default_rng(0).uniform(-0.5, 0.5, size=(4, 4))
        art = ascii_diff(x, x)
        assert set(art) <= {" ", "\n"}


class TestSideBySide:
    def test_joins_blocks(self):
        joined = side_by_side("ab\ncd", "XY\nZW", gap=1)
        assert joined == "ab XY\ncd ZW"

    def test_uneven_heights_padded(self):
        joined = side_by_side("a", "x\ny")
        lines = joined.splitlines()
        assert len(lines) == 2
        assert lines[1].strip() == "y"
