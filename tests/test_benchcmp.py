"""The benchmark regression gate: classification, direction rules, CLI."""

import json
import math

import pytest

from repro.benchcmp import (
    BenchComparison,
    compare_files,
    compare_payloads,
    format_comparison,
    metric_direction,
)
from repro.cli import main


def payload(results, context=None):
    return {"results": results, "context": context or {}}


class TestDirectionRules:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("cnn.engine.epochs_per_sec", "higher"),
            ("plan-batch.examples_per_sec", "higher"),
            ("cnn.speedup", "higher"),
            ("plan_vs_percall_speedup", "higher"),
            ("plan-batch.seconds", "lower"),
            ("workers-4.seconds", "lower"),
            ("cnn.examples", "info"),
            ("f32_max_rel_error", "info"),
            # Latency-style names (the serving benchmark's leaves).
            ("gate.serve_p50_ms", "lower"),
            ("frac_05.serve_p95_ms", "lower"),
            ("mean_ms", "lower"),
            ("queue_latency", "lower"),
            ("latency_p99_us", "lower"),
            ("tail_p99", "lower"),
            ("p50", "lower"),
            # Percentile tokens must be terminal; p-ish names are not latencies.
            ("top_p5_accuracy", "info"),
            ("num_p2p_links", "info"),
            ("warp_speed", "info"),
        ],
    )
    def test_metric_direction(self, name, expected):
        assert metric_direction(name) == expected


class TestClassification:
    def test_rate_drop_is_regression_and_duration_drop_improvement(self):
        base = payload({"a": {"examples_per_sec": 100.0, "seconds": 10.0}})
        curr = payload({"a": {"examples_per_sec": 80.0, "seconds": 8.0}})
        cmp = compare_payloads(base, curr, threshold=0.10)
        by_name = {d.name: d for d in cmp.deltas}
        assert by_name["a.examples_per_sec"].classification == "regression"
        assert by_name["a.seconds"].classification == "improvement"
        assert not cmp.ok

    def test_within_threshold_is_unchanged(self):
        base = payload({"a": {"examples_per_sec": 100.0}})
        curr = payload({"a": {"examples_per_sec": 95.0}})
        cmp = compare_payloads(base, curr, threshold=0.10)
        assert cmp.deltas[0].classification == "unchanged"
        assert cmp.ok and not cmp.improvements

    def test_threshold_is_configurable(self):
        base = payload({"a": {"examples_per_sec": 100.0}})
        curr = payload({"a": {"examples_per_sec": 95.0}})
        assert not compare_payloads(base, curr, threshold=0.02).ok

    def test_info_metrics_never_gate(self):
        base = payload({"a": {"examples": 100, "max_abs_error": 1e-6}})
        curr = payload({"a": {"examples": 1, "max_abs_error": 1.0}})
        cmp = compare_payloads(base, curr)
        assert cmp.ok
        assert all(d.classification == "info" for d in cmp.deltas)

    def test_zero_or_nonfinite_base_is_info_not_crash(self):
        base = payload({"a": {"examples_per_sec": 0.0, "seconds": math.inf}})
        curr = payload({"a": {"examples_per_sec": 50.0, "seconds": 1.0}})
        cmp = compare_payloads(base, curr)
        assert cmp.ok
        assert all(d.classification == "info" and math.isnan(d.change) for d in cmp.deltas)

    def test_missing_and_added_metrics_reported(self):
        base = payload({"a": {"seconds": 1.0}, "b": {"seconds": 2.0}})
        curr = payload({"a": {"seconds": 1.0}, "c": {"seconds": 3.0}})
        cmp = compare_payloads(base, curr)
        assert cmp.missing == ["b.seconds"]
        assert cmp.added == ["c.seconds"]

    def test_booleans_are_not_metrics(self):
        cmp = compare_payloads(payload({"ok": True}), payload({"ok": False}))
        assert cmp.deltas == [] and cmp.missing == [] and cmp.added == []


class TestContextDiff:
    def test_parameter_drift_warns_but_provenance_does_not(self):
        base = payload({"a": {"seconds": 1.0}},
                       {"git_sha": "aaa", "numpy": "1.0", "batch_size": 64})
        curr = payload({"a": {"seconds": 1.0}},
                       {"git_sha": "bbb", "numpy": "2.0", "batch_size": 8})
        cmp = compare_payloads(base, curr)
        assert cmp.context_mismatches == {"batch_size": (64, 8)}
        assert "context mismatch batch_size" in format_comparison(cmp)

    def test_format_orders_regressions_first(self):
        base = payload({"a": {"examples_per_sec": 100.0}, "b": {"examples_per_sec": 100.0}})
        curr = payload({"a": {"examples_per_sec": 200.0}, "b": {"examples_per_sec": 10.0}})
        text = format_comparison(compare_payloads(base, curr))
        assert text.index("b.examples_per_sec") < text.index("a.examples_per_sec")
        assert "✗ regression" in text and "✓ improvement" in text
        assert "1 regression(s), 1 improvement(s)" in text

    def test_empty_comparison_formats(self):
        assert "0 regression(s)" in format_comparison(BenchComparison(threshold=0.1))


class TestBenchCli:
    def write(self, tmp_path, name, results, context=None):
        path = tmp_path / name
        path.write_text(json.dumps(payload(results, context)))
        return path

    def test_regression_fails_unless_warn_only(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", {"a": {"examples_per_sec": 100.0}})
        curr = self.write(tmp_path, "curr.json", {"a": {"examples_per_sec": 50.0}})
        assert main(["bench", "--compare", str(base), str(curr)]) == 1
        assert "regression" in capsys.readouterr().out
        assert main(["bench", "--compare", str(base), str(curr), "--warn-only"]) == 0
        assert "warn-only" in capsys.readouterr().out

    def test_clean_compare_exits_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", {"a": {"seconds": 1.0}})
        curr = self.write(tmp_path, "curr.json", {"a": {"seconds": 1.01}})
        assert main(["bench", "--compare", str(base), str(curr)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", {"a": {"seconds": 1.0}})
        assert main(["bench", "--compare", str(base), str(tmp_path / "nope.json")]) == 2

    def test_compare_files_reads_json(self, tmp_path):
        base = self.write(tmp_path, "base.json", {"a": {"seconds": 2.0}})
        curr = self.write(tmp_path, "curr.json", {"a": {"seconds": 1.0}})
        cmp = compare_files(base, curr)
        assert cmp.improvements and cmp.ok
