"""Engine-vs-autograd training equivalence and cache compatibility.

PR 3 moved every training loop onto the fused float32 TrainingEngine.
These tests pin the two guarantees that made that switch safe:

* **equivalence** — models trained on the float32 engine reach the same
  final accuracy as the float64 autograd path (seeds held fixed);
* **cache compatibility** — float64-trained artifacts keep their
  pre-engine cache keys, so weights cached before the switch still load
  byte-identically, while the float32 default forks new entries.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cache import cache_dir, cache_key
from repro.core.detector import BENIGN, ADVERSARIAL, build_detector_network
from repro.datasets import load_dataset
from repro.defenses.distillation import train_distilled
from repro.nn import Adam, TrainConfig, fit
from repro.zoo import MODEL_CONFIGS, _dtype_key, build_network, load_model, train_network


@pytest.fixture(scope="module")
def mnist_fast():
    return load_dataset("mnist-fast")


def _short_config(epochs=3):
    return replace(MODEL_CONFIGS["cnn-fast"], epochs=epochs)


class TestZooEquivalence:
    def test_float32_engine_matches_float64_accuracy(self, mnist_fast):
        config = _short_config()
        accuracies = {}
        for dtype in ("float32", "float64"):
            network = build_network(config, mnist_fast.input_shape, 10)
            accuracies[dtype] = train_network(network, mnist_fast, config, train_dtype=dtype)
        assert accuracies["float32"] > 0.9
        assert abs(accuracies["float32"] - accuracies["float64"]) <= 0.02

    def test_weights_serialise_as_float64(self, mnist_fast):
        config = _short_config(epochs=1)
        network = build_network(config, mnist_fast.input_shape, 10)
        train_network(network, mnist_fast, config)
        assert all(array.dtype == np.float64 for array in network.state().values())


class TestDistillationEquivalence:
    def test_float32_student_matches_float64(self, mnist_fast):
        accuracies = {}
        for dtype in ("float32", "float64"):
            distilled = train_distilled(
                mnist_fast, _short_config(epochs=2), temperature=20.0, cache=False, train_dtype=dtype
            )
            network = distilled.network
            accuracies[dtype] = network.accuracy(mnist_fast.x_test, mnist_fast.y_test)
        assert accuracies["float32"] > 0.8
        assert abs(accuracies["float32"] - accuracies["float64"]) <= 0.05


class TestDetectorEquivalence:
    def test_detector_mlp_trains_identically_under_engine(self):
        """The detector's 2-layer MLP path: float32 engine vs autograd."""
        rng = np.random.default_rng(0)
        benign = rng.normal(0.0, 1.0, size=(300, 10))
        benign[np.arange(300), rng.integers(0, 10, 300)] += 10.0
        adversarial = rng.normal(0.0, 1.0, size=(300, 10))
        features = np.sort(np.concatenate([benign, adversarial]), axis=-1)
        labels = np.concatenate([np.full(300, BENIGN), np.full(300, ADVERSARIAL)])
        accuracies = {}
        for engine in (True, False):
            network = build_detector_network()
            fit(
                network,
                Adam(network.parameters(), lr=1e-2),
                features,
                labels,
                TrainConfig(epochs=60, batch_size=64, engine=engine),
                np.random.default_rng(1),
            )
            accuracies[engine] = network.accuracy(features, labels)
        assert accuracies[True] > 0.95
        assert abs(accuracies[True] - accuracies[False]) <= 0.02


class TestCacheCompatibility:
    def test_float64_path_loads_legacy_entries_byte_identically(self, mnist_fast, tmp_path, monkeypatch):
        """Weights cached before the engine existed must load unchanged."""
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        config = MODEL_CONFIGS["cnn-fast"]
        # A pre-PR-3 cache entry: the key has no train_dtype field.
        legacy_key = {"kind": "model", "dataset": mnist_fast.name, **config.__dict__}
        state = build_network(config, mnist_fast.input_shape, 10, seed=99).state()
        np.savez_compressed(cache_dir() / f"model-{cache_key(legacy_key)}.npz", **state)

        model = load_model(mnist_fast, train_dtype="float64")  # must hit, not retrain
        loaded = model.state()
        assert set(loaded) == set(state)
        for name, array in state.items():
            np.testing.assert_array_equal(loaded[name], array)
            assert loaded[name].dtype == array.dtype

    def test_float64_key_is_the_legacy_key(self):
        key = {"kind": "model", "dataset": "mnist-fast"}
        assert _dtype_key(key, "float64") == key

    def test_float32_key_forks_a_new_entry(self):
        key = {"kind": "model", "dataset": "mnist-fast"}
        forked = _dtype_key(key, "float32")
        assert forked["train_dtype"] == "float32"
        assert cache_key(forked) != cache_key(key)
