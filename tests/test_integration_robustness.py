"""Integration tests for the robustness pipeline (cached pools).

These encode the paper's core qualitative claims on the MNIST substitute;
the benchmarks assert the same shapes at full table scale.
"""

import numpy as np
import pytest

from repro.eval import attack_success_rate, build_context, scale_config, untargeted_from_pool


@pytest.fixture(scope="module")
def ctx():
    return build_context("mnist-fast", scale_config("fast"))


class TestDistillationBroken:
    """Carlini's result, reproduced: distillation does not stop CW."""

    def test_cw_l2_beats_distilled_whitebox(self, ctx):
        pool = ctx.pool("cw-l2", network=ctx.distilled.network, model_tag="distilled")
        assert pool.success.mean() > 0.9  # paper: 100%

    def test_distilled_pool_crafted_against_distilled(self, ctx):
        pool = ctx.pool("cw-l2", network=ctx.distilled.network, model_tag="distilled")
        adv, labels, targets = pool.successful()
        predictions = ctx.distilled.classify(adv)
        np.testing.assert_array_equal(predictions, targets)


class TestCrossMetricPools:
    @pytest.mark.parametrize("attack", ["cw-l0", "cw-linf"])
    def test_pools_succeed_against_standard(self, ctx, attack):
        pool = ctx.pool(attack)
        assert pool.success.mean() > 0.8

    def test_l0_changes_fewer_pixels_than_image(self, ctx):
        from repro.attacks import distortion

        pool = ctx.pool("cw-l0")
        adv, _, _ = pool.successful()
        originals = pool.tiled_seeds[pool.success]
        l0 = distortion(originals, adv, "l0")
        total_pixels = np.prod(ctx.dataset.input_shape[1:])
        assert l0.mean() < total_pixels * 0.5

    def test_linf_perturbations_small(self, ctx):
        from repro.attacks import distortion

        pool = ctx.pool("cw-linf")
        adv, _, _ = pool.successful()
        originals = pool.tiled_seeds[pool.success]
        assert distortion(originals, adv, "linf").mean() < 0.3

    def test_metric_specialisation(self, ctx):
        """Each CW variant wins under its own metric (CW paper's premise)."""
        from repro.attacks import distortion

        pools = {name: ctx.pool(name) for name in ("cw-l0", "cw-l2", "cw-linf")}
        means = {}
        for name, pool in pools.items():
            adv, _, _ = pool.successful()
            originals = pool.tiled_seeds[pool.success]
            means[name] = {
                metric: float(distortion(originals, adv, metric).mean())
                for metric in ("l0", "l2", "linf")
            }
        assert means["cw-l0"]["l0"] <= means["cw-l2"]["l0"]
        assert means["cw-l2"]["l2"] <= means["cw-linf"]["l2"] + 0.05
        assert means["cw-linf"]["linf"] <= means["cw-l2"]["linf"] + 0.02


class TestUntargetedReduction:
    def test_untargeted_distortion_not_larger_than_targeted_mean(self, ctx):
        from repro.attacks import distortion

        pool = ctx.pool("cw-l2")
        untargeted = untargeted_from_pool(pool, "l2")
        targeted_mean = distortion(
            pool.tiled_seeds[pool.success], pool.adversarial[pool.success], "l2"
        ).mean()
        untargeted_mean = distortion(
            untargeted.original[untargeted.success],
            untargeted.adversarial[untargeted.success],
            "l2",
        ).mean()
        # Min-of-9 must beat the average of 9.
        assert untargeted_mean <= targeted_mean

    def test_untargeted_easier_to_recover_is_false_for_rc(self, ctx):
        """Paper Tab. 4: untargeted success vs DCN <= targeted success."""
        pool = ctx.pool("cw-l2")
        untargeted = untargeted_from_pool(pool, "l2")
        from repro.attacks.base import AttackResult

        targeted = AttackResult(
            pool.tiled_seeds, pool.adversarial, pool.success, pool.tiled_labels, pool.targets
        )
        dcn_targeted = attack_success_rate(ctx.dcn, targeted)
        dcn_untargeted = attack_success_rate(ctx.dcn, untargeted)
        assert dcn_untargeted <= dcn_targeted + 0.1
