"""Tests for adversarial pool construction and the untargeted reduction."""

import numpy as np
import pytest

from repro.attacks import IGSM
from repro.datasets import Dataset
from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN
from repro.eval import TargetedPool, select_correct_seeds, untargeted_from_pool
from repro.eval.adversarial_sets import _all_wrong_classes, build_targeted_pool
from tests.conftest import make_blob_problem


@pytest.fixture(scope="module")
def blob_dataset(tiny_model):
    network, x_test, y_test = tiny_model
    rng = np.random.default_rng(10)
    x_train, y_train = make_blob_problem(50, rng)
    return Dataset("blob", x_train, y_train, x_test, y_test)


class TestSelectCorrectSeeds:
    def test_only_correct_examples(self, tiny_model, blob_dataset):
        network, _, _ = tiny_model
        x, y, idx = select_correct_seeds(network, blob_dataset, 20, np.random.default_rng(0))
        np.testing.assert_array_equal(network.predict(x), y)

    def test_exclusion_respected(self, tiny_model, blob_dataset):
        network, _, _ = tiny_model
        exclude = np.arange(40)
        _, _, idx = select_correct_seeds(
            network, blob_dataset, 10, np.random.default_rng(0), exclude=exclude
        )
        assert set(idx).isdisjoint(set(exclude))

    def test_overdraw_raises(self, tiny_model, blob_dataset):
        network, _, _ = tiny_model
        with pytest.raises(ValueError):
            select_correct_seeds(network, blob_dataset, 10_000, np.random.default_rng(0))


class TestAllWrongClasses:
    def test_nine_targets_per_label(self):
        targets = _all_wrong_classes(np.array([3, 7]), 10)
        assert len(targets) == 18
        assert 3 not in targets[:9]
        assert 7 not in targets[9:]
        assert sorted(targets[:9]) == [0, 1, 2, 4, 5, 6, 7, 8, 9]


class TestBuildTargetedPool:
    @pytest.fixture(scope="class")
    def pool(self, tiny_model, blob_dataset):
        network, _, _ = tiny_model
        return build_targeted_pool(
            network, blob_dataset, "igsm", num_seeds=5, seed=1,
            attack_overrides={"epsilon": 0.4, "alpha": 0.05, "steps": 12}, cache=False,
        )

    def test_layout(self, pool):
        assert pool.num_seeds == 5
        assert pool.targets_per_seed == 9
        assert len(pool.adversarial) == 45
        assert len(pool.tiled_seeds) == 45
        np.testing.assert_array_equal(pool.tiled_labels[:9], np.repeat(pool.seed_labels[:1], 9))

    def test_successful_accessor(self, pool):
        adv, labels, targets = pool.successful()
        assert len(adv) == pool.success.sum()
        assert (labels != targets).all()

    def test_adversarials_in_box(self, pool):
        assert pool.adversarial.min() >= PIXEL_MIN - 1e-9
        assert pool.adversarial.max() <= PIXEL_MAX + 1e-9


class TestUntargetedFromPool:
    def test_reduction_semantics(self, tiny_model, blob_dataset):
        network, _, _ = tiny_model
        pool = build_targeted_pool(
            network, blob_dataset, "igsm", num_seeds=6, seed=2,
            attack_overrides={"epsilon": 0.4, "alpha": 0.05, "steps": 12}, cache=False,
        )
        result = untargeted_from_pool(pool, metric="linf")
        assert len(result.original) == 6
        assert result.target_labels is None
        # Success iff any of the 9 targets succeeded.
        per_seed = pool.success.reshape(6, 9)
        np.testing.assert_array_equal(result.success, per_seed.any(axis=1))
        # Chosen adversarials are actually misclassified.
        if result.success.any():
            predicted = network.predict(result.adversarial[result.success])
            assert (predicted != result.source_labels[result.success]).all()

    def test_synthetic_min_distortion_choice(self):
        # Handcrafted pool with 1 seed, 2 targets with known distortions.
        seed_img = np.zeros((1, 1, 2, 2))
        adv = np.stack([seed_img[0] + 0.5, seed_img[0] + 0.1])
        pool = TargetedPool(
            attack_name="stub",
            seeds=seed_img,
            seed_labels=np.array([0]),
            seed_indices=np.array([0]),
            targets=np.array([1, 2]),
            adversarial=adv,
            success=np.array([True, True]),
        )
        result = untargeted_from_pool(pool, metric="l2")
        np.testing.assert_allclose(result.adversarial[0], seed_img[0] + 0.1)
