"""Tests for the pool distortion summaries."""

import numpy as np
import pytest

from repro.eval import TargetedPool
from repro.eval.distortions import format_distortion_table, pool_distortion_summary


def _pool(success):
    seeds = np.zeros((2, 1, 2, 2))
    adversarial = np.zeros((4, 1, 2, 2))
    adversarial[0, 0, 0, 0] = 0.3
    adversarial[1] += 0.1
    adversarial[2, 0, 1, 1] = -0.2
    return TargetedPool(
        attack_name="stub",
        seeds=seeds,
        seed_labels=np.array([0, 1]),
        seed_indices=np.array([0, 1]),
        targets=np.array([1, 2, 0, 2]),
        adversarial=adversarial,
        success=np.asarray(success),
    )


class TestSummary:
    def test_counts_only_successes(self):
        summary = pool_distortion_summary(_pool([True, True, False, False]))
        assert summary["l2"]["count"] == 2

    def test_values(self):
        summary = pool_distortion_summary(_pool([True, False, False, False]))
        assert summary["linf"]["mean"] == pytest.approx(0.3)
        assert summary["l0"]["mean"] == 1.0

    def test_empty_pool_nan(self):
        summary = pool_distortion_summary(_pool([False, False, False, False]))
        assert np.isnan(summary["l2"]["mean"])
        assert summary["l2"]["count"] == 0

    def test_median_max(self):
        summary = pool_distortion_summary(_pool([True, False, True, False]))
        assert summary["linf"]["max"] == pytest.approx(0.3)
        assert summary["linf"]["median"] == pytest.approx(0.25)


class TestFormatting:
    def test_table_structure(self):
        summary = pool_distortion_summary(_pool([True, True, True, True]))
        text = format_distortion_table({"cw-l2": summary}, "mnist")
        assert "DISTORTION" in text
        assert "cw-l2" in text
        # One row per metric.
        assert text.count("cw-l2") == 3
