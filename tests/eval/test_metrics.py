"""Tests for evaluation metrics with the paper's semantics."""

import numpy as np
import pytest

from repro.attacks import AttackResult
from repro.eval import attack_success_rate, benign_accuracy, recovery_rate


class _FixedDefense:
    """Defense stub returning predetermined labels."""

    name = "stub"

    def __init__(self, labels):
        self._labels = np.asarray(labels)

    def classify(self, x):
        return self._labels[: len(x)]


def _result(success, sources):
    n = len(success)
    original = np.zeros((n, 1, 2, 2))
    return AttackResult(original, original + 0.1, np.asarray(success), np.asarray(sources))


class TestAttackSuccessRate:
    def test_defense_recovers_everything(self):
        result = _result([True, True, True, True], [0, 1, 2, 3])
        defense = _FixedDefense([0, 1, 2, 3])  # all labels recovered
        assert attack_success_rate(defense, result) == 0.0

    def test_defense_recovers_nothing(self):
        result = _result([True, True], [0, 1])
        defense = _FixedDefense([5, 5])
        assert attack_success_rate(defense, result) == 1.0

    def test_failed_crafting_counts_against_attack(self):
        # 4 attempts, only 2 crafted; defense misclassifies both crafted ones.
        result = _result([True, False, True, False], [0, 1, 2, 3])
        defense = _FixedDefense([9, 9])
        assert attack_success_rate(defense, result) == 0.5

    def test_empty_result(self):
        result = _result([], [])
        assert attack_success_rate(_FixedDefense([]), result) == 0.0

    def test_no_crafted_examples(self):
        result = _result([False, False], [0, 1])
        assert attack_success_rate(_FixedDefense([9, 9]), result) == 0.0


class TestRecoveryRate:
    def test_over_crafted_only(self):
        result = _result([True, False, True], [0, 1, 2])
        defense = _FixedDefense([0, 9])  # recovers first crafted, misses second
        assert recovery_rate(defense, result) == 0.5

    def test_nan_without_crafted(self):
        result = _result([False], [0])
        assert np.isnan(recovery_rate(_FixedDefense([0]), result))


class TestBenignAccuracy:
    def test_value(self):
        defense = _FixedDefense([0, 1, 2, 9])
        x = np.zeros((4, 1, 2, 2))
        assert benign_accuracy(defense, x, np.array([0, 1, 2, 3])) == 0.75
