"""Tests for table formatting, timing helpers, and scale configs."""

import time

import numpy as np
import pytest

from repro.eval import (
    format_fig4,
    format_table2,
    format_table3,
    format_table45,
    format_table6,
    scale_config,
    stopwatch,
    time_defense,
)


class TestFormatting:
    def test_table2(self):
        text = format_table2({"mnist": {"false_negative": 0.037, "false_positive": 0.0031}})
        assert "3.70%" in text
        assert "0.31%" in text
        assert "mnist" in text

    def test_table3(self):
        rows = {
            "mnist": {
                name: {"accuracy": 0.99, "seconds": 1.5}
                for name in ("standard", "distillation", "rc", "dcn")
            }
        }
        text = format_table3(rows)
        assert "99.00%" in text
        assert "Distillation" in text and "Our DCN" in text

    def test_table45(self):
        cells = {"targeted": 1.0, "untargeted": 0.44}
        rows = {
            defense: {attack: cells for attack in ("cw-l0", "cw-l2", "cw-linf")}
            for defense in ("standard", "distillation", "rc", "dcn")
        }
        text = format_table45(rows, "mnist")
        assert "100.00%" in text and "44.00%" in text
        assert "T-L0" in text and "U-Linf" in text

    def test_table6(self):
        rows = [{"fraction": 0.5, "dcn_seconds": 1.0, "rc_seconds": 50.0, "dcn_accuracy": 0.9, "rc_accuracy": 0.88}]
        text = format_table6(rows, "mnist")
        assert "50" in text and "50.00" in text

    def test_fig4(self):
        rows = [{"m": 50, "recovery_accuracy": 0.93, "seconds": 0.4}]
        text = format_fig4(rows, "mnist")
        assert "50" in text and "93.00%" in text


class TestTiming:
    def test_stopwatch_measures(self):
        with stopwatch() as held:
            time.sleep(0.05)
        assert held[0] >= 0.05

    def test_time_defense(self):
        class _Defense:
            name = "d"

            def classify(self, x):
                time.sleep(0.02)
                return np.zeros(len(x), dtype=int)

        labels, seconds = time_defense(_Defense(), np.zeros((3, 1, 2, 2)))
        assert seconds >= 0.02
        assert labels.shape == (3,)

    def test_profile_defense_reports_backward_counters(self, tiny_model):
        from repro.eval import profile_defense

        network, x, _ = tiny_model

        class _GradientDefense:
            name = "grad"

            def classify(self, inputs):
                # A defense that differentiates through the model (one
                # backward batch) before predicting.
                network.grad_engine.logit_input_grad(inputs, np.zeros(len(inputs), dtype=int))
                return network.predict(inputs)

        profile = profile_defense(
            _GradientDefense(), x[:4], network.engine, grad_engine=network.grad_engine
        )
        assert profile.labels.shape == (4,)
        assert profile.backward_batches == 1
        assert profile.backward_examples == 4
        assert profile.counters["grad_backward_batches"] == 1
        # Forward counters still come from the inference engine, unprefixed.
        # (The predict may be a memo hit, so assert on requests, not examples.)
        assert profile.counters["requests"] >= 1

    def test_profile_defense_without_grad_engine_has_zero_backwards(self, tiny_model):
        from repro.eval import profile_defense

        network, x, _ = tiny_model

        class _Plain:
            name = "plain"

            def classify(self, inputs):
                return network.predict(inputs)

        profile = profile_defense(_Plain(), x[:3], network.engine)
        assert profile.backward_batches == 0
        assert "grad_backward_batches" not in profile.counters


class TestScaleConfig:
    def test_default_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_config().name == "fast"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert scale_config().name == "paper"
        assert scale_config().mnist == "mnist-like"

    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert scale_config("fast").name == "fast"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            scale_config("huge")

    def test_paper_scale_sizes_exceed_fast(self):
        fast, paper = scale_config("fast"), scale_config("paper")
        assert paper.robustness_seeds > fast.robustness_seeds
        assert paper.benign_mnist > fast.benign_mnist
        # Both keep the paper's m parameters.
        assert fast.rc_samples == paper.rc_samples == 1000
        assert fast.corrector_samples == paper.corrector_samples == 50
