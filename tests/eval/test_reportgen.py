"""Tests for the markdown report generator (rendering logic only)."""

import io

import numpy as np
import pytest

from repro.eval import PAPER_NUMBERS
from repro.eval.reportgen import (
    _pct,
    _write_fig4,
    _write_table2,
    _write_table45,
    _write_table6,
)


class TestPaperNumbers:
    def test_table2_values_match_paper(self):
        assert PAPER_NUMBERS["table2"]["mnist"]["false_negative"] == 0.037
        assert PAPER_NUMBERS["table2"]["cifar"]["false_positive"] == 0.0091

    def test_table4_headline(self):
        # Paper: DCN mitigates 99% targeted L2 on MNIST (1.89% residual).
        assert PAPER_NUMBERS["table4"]["dcn"]["cw-l2"][0] == 0.0189
        assert PAPER_NUMBERS["table4"]["dcn"]["cw-l2"][1] == 0.0

    def test_all_defenses_cover_all_attacks(self):
        for which in ("table4", "table5"):
            for defense, cells in PAPER_NUMBERS[which].items():
                assert set(cells) == {"cw-l0", "cw-l2", "cw-linf"}, (which, defense)


class TestRendering:
    def test_pct(self):
        assert _pct(0.037) == "3.70%"

    def test_table2_section(self):
        out = io.StringIO()
        rates = {"false_negative": 0.05, "false_positive": 0.01}
        _write_table2(out, rates, rates)
        text = out.getvalue()
        assert "Table 2" in text
        assert "3.70%" in text  # paper column present
        assert "5.00%" in text  # measured column present

    def test_table45_section(self):
        out = io.StringIO()
        cell = {"targeted": 0.1, "untargeted": 0.05}
        rows = {
            defense: {attack: cell for attack in ("cw-l0", "cw-l2", "cw-linf")}
            for defense in ("standard", "distillation", "rc", "dcn")
        }
        _write_table45(out, "table4", rows)
        text = out.getvalue()
        assert "Table 4" in text
        assert "10.00% / 5.00%" in text
        assert text.count("| dcn |") == 3

    def test_fig4_section(self):
        out = io.StringIO()
        _write_fig4(out, [{"m": 50, "recovery_accuracy": 0.96, "seconds": 4.9}])
        text = out.getvalue()
        assert "| 50 | 96.00% | 4.90 |" in text

    def test_table6_section(self):
        out = io.StringIO()
        _write_table6(out, [{"fraction": 0.5, "dcn_seconds": 2.0, "rc_seconds": 90.0}])
        text = out.getvalue()
        assert "| 50% | 2.00 | 90.00 |" in text
