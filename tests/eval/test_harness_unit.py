"""Unit tests for ExperimentContext plumbing (no heavy computation)."""

import numpy as np
import pytest

from repro.eval import build_context, scale_config


@pytest.fixture(scope="module")
def ctx():
    # Uses the cached dataset/model; the lazy defenses are not forced here
    # except where a test needs them.
    return build_context("mnist-fast", scale_config("fast"))


class TestExperimentContext:
    def test_defense_order_matches_paper_tables(self, ctx):
        # Tables 3-5 list: Standard, Distillation, RC, Our DCN.
        assert list(ctx.defenses().keys()) == ["standard", "distillation", "rc", "dcn"]

    def test_defenses_share_protected_model(self, ctx):
        assert ctx.standard.network is ctx.model
        assert ctx.rc.network is ctx.model
        assert ctx.dcn.network is ctx.model

    def test_rc_uses_paper_m(self, ctx):
        assert ctx.rc.samples == 1000

    def test_radius_cached_property_stable(self, ctx):
        assert ctx.radius == ctx.radius

    def test_distilled_is_separate_network(self, ctx):
        assert ctx.distilled.network is not ctx.model

    def test_pool_reuses_detector_exclusions(self, ctx):
        pool = ctx.pool("cw-l2")
        overlap = set(pool.seed_indices) & set(ctx.dcn.detector.train_seed_indices)
        assert not overlap

    def test_standard_accuracy_sane(self, ctx):
        assert ctx.model.accuracy(ctx.dataset.x_test[:200], ctx.dataset.y_test[:200]) > 0.95
