"""Tests for the model zoo (architectures + caching)."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.nn import Conv2D, Dense
from repro.zoo import MODEL_CONFIGS, ModelConfig, build_network, load_model


class TestConfigs:
    def test_expected_presets(self):
        assert {"cnn-paper", "cnn-fast"} <= set(MODEL_CONFIGS)

    def test_carlini_topology(self):
        """Two conv blocks (conv-conv-pool) then dense head, as in CW."""
        config = MODEL_CONFIGS["cnn-paper"]
        network = build_network(config, (1, 28, 28), 10)
        convs = [l for l in network.layers if isinstance(l, Conv2D)]
        denses = [l for l in network.layers if isinstance(l, Dense)]
        assert len(convs) == 4  # two per block
        assert len(denses) == len(config.dense_units) + 1
        assert network.output_shape == (10,)


class TestBuildNetwork:
    def test_shapes_for_color_input(self):
        config = MODEL_CONFIGS["cnn-fast"]
        network = build_network(config, (3, 16, 16), 10)
        out = network.logits(np.zeros((2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_seed_reproducible(self):
        config = MODEL_CONFIGS["cnn-fast"]
        a = build_network(config, (1, 16, 16), 10, seed=5)
        b = build_network(config, (1, 16, 16), 10, seed=5)
        x = np.random.default_rng(0).normal(size=(2, 1, 16, 16)) * 0.1
        np.testing.assert_array_equal(a.logits(x), b.logits(x))

    def test_different_seeds_differ(self):
        config = MODEL_CONFIGS["cnn-fast"]
        a = build_network(config, (1, 16, 16), 10, seed=5)
        b = build_network(config, (1, 16, 16), 10, seed=6)
        x = np.random.default_rng(0).normal(size=(2, 1, 16, 16)) * 0.1
        assert not np.allclose(a.logits(x), b.logits(x))


class TestLoadModel:
    """Uses the shared .artifacts cache (trained on first suite run)."""

    def test_cached_model_is_accurate(self):
        ds = load_dataset("mnist-fast")
        model = load_model(ds)
        # The paper's MNIST model reaches 99.3-99.4%; ours must be comparable.
        assert model.accuracy(ds.x_test, ds.y_test) > 0.97

    def test_cache_roundtrip_identical(self):
        ds = load_dataset("mnist-fast")
        a = load_model(ds)
        b = load_model(ds)
        x = ds.x_test[:10]
        np.testing.assert_array_equal(a.logits(x), b.logits(x))
