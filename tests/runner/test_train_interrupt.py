"""KeyboardInterrupt during training exits cleanly with a flushed history."""

import numpy as np
import pytest

from repro.nn import Adam, Dense, Flatten, Network, TrainConfig, fit


def _problem():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 1, 4, 4))
    y = rng.integers(0, 4, size=64)
    network = Network([Flatten(), Dense(16, 4, rng)], (1, 4, 4))
    return network, x, y


@pytest.mark.parametrize("engine", [True, False])
def test_interrupt_mid_fit_flushes_partial_history(engine):
    network, x, y = _problem()
    interrupt_at = 2

    def schedule(epoch):
        if epoch == interrupt_at:
            raise KeyboardInterrupt("simulated SIGINT")
        return 1e-3

    config = TrainConfig(epochs=10, batch_size=32, schedule=schedule, engine=engine)
    with pytest.raises(KeyboardInterrupt) as excinfo:
        fit(network, Adam(network.parameters(), lr=1e-3), x, y, config, np.random.default_rng(1))

    history = excinfo.value.partial_history
    assert history.interrupted is True
    assert len(history.loss) == interrupt_at  # completed epochs flushed
    assert len(history.epoch_seconds) == interrupt_at
    assert history.seconds > 0.0


def test_uninterrupted_fit_is_not_marked():
    network, x, y = _problem()
    history = fit(
        network,
        Adam(network.parameters(), lr=1e-3),
        x,
        y,
        TrainConfig(epochs=2, batch_size=32),
        np.random.default_rng(1),
    )
    assert history.interrupted is False
    assert len(history.loss) == 2
