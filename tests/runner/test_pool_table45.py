"""Acceptance: a 4-worker pool run of Table 4/5 is byte-identical to a
sequential run — same assembled rows, same coverage — and a resumed pool
replays without re-executing.

Chunk payloads are pure functions of their keys (order-independent seeded
noise since the chunked-classification refactor), which is exactly what
makes worker scheduling — nondeterministic by nature — invisible in the
output.
"""

import dataclasses
import json

import pytest

from repro.eval import build_context, scale_config
from repro.runner import FailurePolicy, PoolConfig, Runner, WorkerPool, fork_available
from repro.runner import experiments as plans

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(not fork_available(), reason="pool workers require fork"),
]

ATTACKS = ("cw-l2",)


@pytest.fixture(scope="module")
def ctx():
    # Same cheap context as the resume acceptance test: reduced RC votes,
    # cached pools/models from .artifacts.
    cheap = dataclasses.replace(scale_config("fast"), rc_samples=100)
    return build_context("mnist-fast", cheap)


def _rows(result, units):
    return json.dumps(plans.assemble_table45(result, units, attacks=ATTACKS), sort_keys=True)


def test_pool_run_is_byte_identical_to_sequential(ctx, tmp_path):
    units = plans.plan_table45(ctx, attacks=ATTACKS)
    assert len(units) > 10

    sequential = Runner(ledger=tmp_path / "seq.jsonl").run(units)
    assert sequential.ok

    pool = WorkerPool(
        tmp_path / "pool.jsonl",
        policy=FailurePolicy(),
        config=PoolConfig(workers=4, lease_ttl=60.0, poll_interval=0.02),
    )
    parallel = pool.run(units, resume=False)
    assert parallel.ok
    assert sorted(parallel.executed) == sorted(u.key for u in units)

    assert _rows(parallel, units) == _rows(sequential, units)
    assert parallel.coverage(units) == sequential.coverage(units)

    # A resumed pool replays every unit without executing a single one,
    # and still assembles the identical table.
    resumed = pool.run(units, resume=True)
    assert resumed.executed == []
    assert sorted(resumed.replayed) == sorted(u.key for u in units)
    assert _rows(resumed, units) == _rows(sequential, units)
