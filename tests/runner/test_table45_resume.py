"""Acceptance: Table 4/5 killed at a unit boundary resumes byte-identically.

Uses the shared ``.artifacts`` cache (pools, models, detectors are cached),
with a reduced-``m`` RC so the repeated evaluation stays cheap.  The clean
run and the kill+resume run must produce **byte-identical** assembled rows
— the chunked classification path makes each unit's labels a function of
its own chunk only, which is what this test pins down.
"""

import dataclasses
import json

import pytest

from repro.eval import build_context, scale_config
from repro.runner import Fault, FaultInjector, FaultPlan, Ledger, Runner
from repro.runner import experiments as plans

pytestmark = pytest.mark.chaos

ATTACKS = ("cw-l2",)


@pytest.fixture(scope="module")
def ctx():
    scale = scale_config("fast")
    # Fewer RC votes: same machinery, ~10x cheaper evaluation.  Pool cache
    # keys do not involve rc_samples, so the cached pools are reused.
    cheap = dataclasses.replace(scale, rc_samples=100)
    return build_context("mnist-fast", cheap)


def _rows(result, units):
    return json.dumps(plans.assemble_table45(result, units, attacks=ATTACKS), sort_keys=True)


def test_kill_and_resume_matches_clean_run(ctx, tmp_path):
    units = plans.plan_table45(ctx, attacks=ATTACKS)
    assert len(units) > 10  # setup + craft + chunked eval

    clean = Runner(ledger=tmp_path / "clean.jsonl").run(units)
    assert clean.ok

    # Kill the journaled run at a mid-plan unit boundary...
    kill_at = len(units) // 2
    plan = FaultPlan(faults=(Fault(kind="interrupt", unit_index=kill_at),), seed=1)
    ledger_path = tmp_path / "killed.jsonl"
    with pytest.raises(KeyboardInterrupt):
        Runner(ledger=ledger_path).run(units, injector=FaultInjector(plan))
    state = Ledger(ledger_path).replay()
    assert len(state.completed()) == kill_at
    assert any(e["event"] == "interrupt" for e in state.events)

    # ...then resume: only the unfinished units execute, and the assembled
    # table is byte-identical to the uninterrupted run's.
    resumed = Runner(ledger=ledger_path).run(units)
    assert resumed.ok
    assert len(resumed.replayed) == kill_at
    assert len(resumed.executed) == len(units) - kill_at
    assert _rows(resumed, units) == _rows(clean, units)

    # A third run replays everything without executing a single unit.
    replay_only = Runner(ledger=ledger_path).run(units)
    assert replay_only.executed == []
    assert _rows(replay_only, units) == _rows(clean, units)


def test_injected_failure_becomes_coverage_hole(ctx, tmp_path):
    from repro.eval.tables import format_table45
    from repro.runner import FailurePolicy

    units = plans.plan_table45(ctx, attacks=ATTACKS)
    # Exhaust the retry policy inside one DCN eval chunk.
    target = next(
        i for i, u in enumerate(units) if u.defense == "dcn" and u.chunk.startswith("seeds")
    )
    plan = FaultPlan(faults=(Fault(kind="raise", unit_index=target, attempts=99),), seed=2)
    result = Runner(
        ledger=tmp_path / "hole.jsonl", policy=FailurePolicy(max_attempts=2)
    ).run(units, injector=FaultInjector(plan))

    assert not result.ok
    assert result.failed == [units[target].key]

    rows = plans.assemble_table45(result, units, attacks=ATTACKS)
    cell = rows["dcn"]["cw-l2"]
    ok, total = cell["coverage"]
    assert ok == total - 1  # one chunk missing, the rest intact
    assert 0.0 <= cell["targeted"] <= 1.0  # rate over the covered chunks
    for defense in ("standard", "distillation", "rc"):
        cov = rows[defense]["cw-l2"]["coverage"]
        assert cov[0] == cov[1]

    table = format_table45(rows, "mnist-fast", coverage=True)
    assert f"{ok}/{total}" in table  # the finished table reports coverage
