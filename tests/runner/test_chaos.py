"""Hypothesis chaos tests: the runner's recovery properties, proven.

Three properties anchor the fault-injection harness:

(a) **No silent losses** — every injected fault is either retried to
    success or surfaces as a structured ``UnitFailure`` in the records.
(b) **No re-execution** — resume after a crash/interrupt never re-executes
    a ledgered unit.
(c) **Degradation ladder** — a guard trip (NaN gradient) retries the unit
    on the float64 autograd fallback, whose result agrees with the healthy
    fused path within the cross-engine verifier's budget.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, Flatten, Network, ReLU
from repro.runner import (
    FailurePolicy,
    Fault,
    FaultInjector,
    FaultPlan,
    Runner,
    SimulatedCrash,
    WorkUnit,
)
from repro.verify.differ import REL_BUDGET

pytestmark = pytest.mark.chaos

NUM_UNITS = 6
MAX_ATTEMPTS = 3


def _plan_units(calls):
    """Synthetic units that count their executions in ``calls``."""

    def make(i):
        def fn():
            calls[i] = calls.get(i, 0) + 1
            return {"value": i * i}

        return WorkUnit(experiment="chaos", attack=f"u{i}", fn=fn)

    return [make(i) for i in range(NUM_UNITS)]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 3))
def test_every_injected_fault_retried_or_surfaced(seed, count):
    """Property (a): injected raises end as success-after-retry or UnitFailure."""
    plan = FaultPlan.generate(seed, NUM_UNITS, kinds=("raise",), count=count, attempts=(1, 4))
    calls = {}
    result = Runner(policy=FailurePolicy(max_attempts=MAX_ATTEMPTS)).run(
        _plan_units(calls), injector=FaultInjector(plan)
    )

    # Attempts poisoned per unit index: the max over faults aimed at it.
    poisoned = {}
    for fault in plan.faults:
        poisoned[fault.unit_index] = max(poisoned.get(fault.unit_index, 0), fault.attempts)

    for i in range(NUM_UNITS):
        record = result.records[f"chaos/-/-/u{i}/-"]
        bad = poisoned.get(i, 0)
        if bad >= MAX_ATTEMPTS:
            assert record["status"] == "failed"
            assert record["failure"]["error"] == "InjectedError"
            assert record["attempts"] == MAX_ATTEMPTS
        else:
            assert record["status"] == "ok"
            assert record["payload"] == {"value": i * i}
            assert record["attempts"] == bad + 1
            if bad:
                assert record["failure"]["error"] == "InjectedError"


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), kind=st.sampled_from(["crash", "interrupt"]))
def test_resume_never_reexecutes_ledgered_units(tmp_path_factory, seed, kind):
    """Property (b): after a kill at any unit boundary, resume executes only
    the units the ledger does not already hold."""
    path = tmp_path_factory.mktemp("chaos") / f"{kind}-{seed}.jsonl"
    crash_at = seed % NUM_UNITS
    plan = FaultPlan(faults=(Fault(kind=kind, unit_index=crash_at),), seed=seed)

    calls = {}
    units = _plan_units(calls)
    with pytest.raises((SimulatedCrash, KeyboardInterrupt)):
        Runner(ledger=path).run(units, injector=FaultInjector(plan))
    assert all(n == 1 for n in calls.values())
    journaled = set(calls)
    assert len(journaled) == crash_at  # everything before the kill, nothing after

    resumed_calls = {}
    result = Runner(ledger=path).run(_plan_units(resumed_calls))
    assert set(resumed_calls).isdisjoint(journaled)
    assert journaled | set(resumed_calls) == set(range(NUM_UNITS))
    assert sorted(result.replayed) == sorted(f"chaos/-/-/u{i}/-" for i in journaled)
    assert result.ok and len(result.records) == NUM_UNITS


def _grad_network():
    rng = np.random.default_rng(7)
    return Network([Flatten(), Dense(16, 12, rng), ReLU(), Dense(12, 4, rng)], (1, 4, 4))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_guard_trip_degrades_to_float64_fallback(seed):
    """Property (c): a NaN gradient trips the guard, the unit retries on the
    autograd fallback, and the fallback agrees with the healthy fused path
    within the verifier's float32 budget."""
    network = _grad_network()
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(5, 1, 4, 4))
    labels = rng.integers(0, 4, size=5)

    healthy = np.array(network.grad_engine.cross_entropy_input_grad(x, labels), dtype=np.float64)

    def fn():
        grad = network.grad_engine.cross_entropy_input_grad(x, labels)
        return {"grad": np.asarray(grad, dtype=np.float64).ravel().tolist()}

    unit = WorkUnit(experiment="chaos", attack="nan-grad", fn=fn, networks=(network,))
    plan = FaultPlan(faults=(Fault(kind="nan-grad", unit_index=0, attempts=99),), seed=seed)
    injector = FaultInjector(plan)
    result = Runner(policy=FailurePolicy(max_attempts=3)).run([unit], injector=injector)

    record = result.records[unit.key]
    assert record["status"] == "ok"
    assert record["degraded"] is True
    assert record["attempts"] == 2  # one guard trip, one fallback success
    failure = record["failure"]
    assert failure["kind"] == "numerical"
    assert failure["error"] == "GuardViolation"
    assert failure["guard_kind"] == "nonfinite"
    assert failure["guard_where"] == "faultinject.nan_gradient"
    assert injector.fired  # the poison actually fired

    degraded = np.array(record["payload"]["grad"]).reshape(healthy.shape)
    assert np.isfinite(degraded).all()
    rel = np.abs(degraded - healthy).max() / max(1.0, np.abs(healthy).max())
    assert rel <= REL_BUDGET[np.dtype(np.float32)]
    # The poison and the fallback are both gone afterwards.
    assert network.grad_engine.dtype == np.dtype(np.float32)
    assert not getattr(network.train_engine, "forced_fallback", False)


def test_run_coverage_reports_holes_not_exceptions(tmp_path):
    """An exhausted unit becomes a coverage hole; the run still finishes."""
    units = _plan_units({})
    plan = FaultPlan(faults=(Fault(kind="raise", unit_index=2, attempts=99),), seed=0)
    result = Runner(
        ledger=tmp_path / "run.jsonl", policy=FailurePolicy(max_attempts=2)
    ).run(units, injector=FaultInjector(plan))

    assert not result.ok
    assert result.failed == ["chaos/-/-/u2/-"]
    coverage = result.coverage(units)
    assert coverage["chaos/-/-/u2"] == (0, 1)
    assert all(cov == (1, 1) for cell, cov in coverage.items() if cell != "chaos/-/-/u2")


def test_corrupt_cache_fault_quarantines_and_journals(tmp_path, monkeypatch):
    """A corrupted cache entry is quarantined, journaled as a ledger event,
    and transparently rebuilt by the unit that hits it."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
    from repro.cache import memoize_arrays

    spec = {"kind": "chaostest", "n": 3}
    builds = []

    def build():
        builds.append(1)
        return {"x": np.arange(3.0)}

    memoize_arrays(spec, build)  # seed the cache with one entry

    unit = WorkUnit(
        experiment="chaos",
        attack="cache",
        fn=lambda: {"total": float(memoize_arrays(spec, build)["x"].sum())},
    )
    plan = FaultPlan(faults=(Fault(kind="corrupt-cache", unit_index=0),), seed=3)
    ledger_path = tmp_path / "run.jsonl"
    result = Runner(ledger=ledger_path).run([unit], injector=FaultInjector(plan))

    assert result.ok
    assert result.records[unit.key]["payload"] == {"total": 3.0}
    assert len(builds) == 2  # rebuilt after quarantine
    quarantined = list((tmp_path / "cache").glob("*.corrupt"))
    assert len(quarantined) == 1
    from repro.runner import Ledger

    events = [e for e in Ledger(ledger_path).replay().events if e["event"] == "cache-quarantine"]
    assert len(events) == 1
    assert events[0]["path"].endswith(".corrupt")
