"""Lease record replay semantics and the group-commit fsync knob.

The lease state machine must be a pure function of the file content — no
reader clock — so every test here asserts on ``Ledger.replay()`` after
appending records with explicit embedded timestamps.
"""

import json

import pytest

from repro.runner import Ledger, new_lease_id


def _ledger(tmp_path, **kw):
    return Ledger(tmp_path / "run.jsonl", **kw)


class TestLeaseReplay:
    def test_claim_grants_and_release_clears(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.lease("claim", "k", "L1", worker=0, now=10.0, deadline=40.0)
        state = ledger.replay()
        assert state.leases["k"]["lease_id"] == "L1"
        assert state.lease_grants == {"k": 1}
        assert not state.claimable("k", now=20.0)

        ledger.lease("release", "k", "L1", worker=0, now=20.0, deadline=20.0)
        state = ledger.replay()
        assert "k" not in state.leases
        assert state.claimable("k", now=20.0)

    def test_duplicate_claim_race_first_wins(self, tmp_path):
        # Two workers race a claim; O_APPEND order decides: first in the
        # file wins, the second claim is void.
        ledger = _ledger(tmp_path)
        ledger.lease("claim", "k", "A", worker=0, now=10.0, deadline=40.0)
        ledger.lease("claim", "k", "B", worker=1, now=10.01, deadline=40.01)
        state = ledger.replay()
        assert state.leases["k"]["lease_id"] == "A"
        assert state.lease_grants == {"k": 1}

    def test_expired_lease_is_reclaimed_exactly_once(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.lease("claim", "k", "dead", worker=0, now=10.0, deadline=11.0)
        # Two competing reclaims after expiry: again first-in-file wins.
        ledger.lease("claim", "k", "R1", worker=1, now=12.0, deadline=42.0)
        ledger.lease("claim", "k", "R2", worker=2, now=12.5, deadline=42.5)
        state = ledger.replay()
        assert state.leases["k"]["lease_id"] == "R1"
        assert state.lease_grants["k"] == 2  # original + one reclamation

    def test_unexpired_lease_blocks_reclaim(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.lease("claim", "k", "A", worker=0, now=10.0, deadline=40.0)
        ledger.lease("claim", "k", "B", worker=1, now=39.9, deadline=70.0)
        assert _ledger(tmp_path).replay().leases["k"]["lease_id"] == "A"

    def test_heartbeat_extends_only_the_active_lease(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.lease("claim", "k", "A", worker=0, now=10.0, deadline=12.0)
        ledger.lease("heartbeat", "k", "A", worker=0, now=11.0, deadline=14.0)
        # A stale heartbeat from a lost lease changes nothing.
        ledger.lease("heartbeat", "k", "ghost", worker=9, now=11.5, deadline=99.0)
        state = ledger.replay()
        assert state.leases["k"]["deadline"] == 14.0
        # The heartbeat kept the lease alive past its original deadline...
        assert not state.claimable("k", now=13.0)
        # ...but expiry still applies to the extended deadline.
        assert state.claimable("k", now=15.0)

    def test_own_reclaim_is_idempotent(self, tmp_path):
        # A worker re-claiming its own lease (e.g. after a torn heartbeat)
        # is granted without counting as a reclamation by someone else.
        ledger = _ledger(tmp_path)
        ledger.lease("claim", "k", "A", worker=0, now=10.0, deadline=40.0)
        ledger.lease("claim", "k", "A", worker=0, now=20.0, deadline=50.0)
        state = ledger.replay()
        assert state.leases["k"]["lease_id"] == "A"
        assert state.leases["k"]["deadline"] == 50.0

    def test_terminal_record_clears_lease_and_ignores_stale_ops(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.lease("claim", "k", "A", worker=0, now=10.0, deadline=40.0)
        ledger.unit("k", "ok", {"v": 1}, attempts=1, seconds=0.1)
        # Stale lease traffic on a finished key is ignored entirely.
        ledger.lease("claim", "k", "B", worker=1, now=50.0, deadline=80.0)
        ledger.lease("heartbeat", "k", "B", worker=1, now=51.0, deadline=81.0)
        state = ledger.replay()
        assert "k" not in state.leases
        assert state.lease_grants == {"k": 1}
        assert state.units["k"]["status"] == "ok"

    def test_retry_marker_voids_failed_record_once(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.unit("k", "failed", None, attempts=3, seconds=0.1)
        ledger.retry("k")
        state = ledger.replay()
        assert "k" not in state.units  # claimable again
        ledger.unit("k", "ok", {"v": 2}, attempts=1, seconds=0.1)
        state = ledger.replay()
        assert state.units["k"]["status"] == "ok"
        # A retry marker never voids a success.
        ledger.retry("k")
        assert _ledger(tmp_path).replay().units["k"]["status"] == "ok"

    def test_bad_lease_op_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _ledger(tmp_path).lease("steal", "k", "A", worker=0, now=0.0, deadline=1.0)

    def test_lease_ids_are_unique(self):
        assert new_lease_id() != new_lease_id()


class TestGroupCommit:
    def test_fsync_every_bounds_unsynced_backlog(self, tmp_path):
        ledger = _ledger(tmp_path, fsync_every=5)
        for i in range(13):
            ledger.unit(f"k{i}", "ok", {"v": i}, attempts=1, seconds=0.0)
            assert ledger.unsynced_records <= 4  # at most K-1 after any append
        assert ledger.unsynced_records == 3  # 13 = 2 commits of 5, 3 pending
        ledger.flush()
        assert ledger.unsynced_records == 0
        assert ledger.synced_bytes == (tmp_path / "run.jsonl").stat().st_size

    def test_crash_loses_at_most_last_k_records_and_resumes(self, tmp_path):
        """Emulated power loss at the worst instant: everything after the
        last group commit vanishes; replay of the survivors is clean and a
        resumed run re-executes exactly the dropped units."""
        from repro.runner import Runner, WorkUnit

        path = tmp_path / "run.jsonl"
        ledger = Ledger(path, fsync_every=4)
        for i in range(10):
            ledger.unit(f"grp/-/-/u{i}/-", "ok", {"v": i}, attempts=1, seconds=0.0)
        # Power loss: only fsynced bytes survive.  10 appends with K=4
        # means 8 are durable and the last 2 are in the loss window.
        assert path.stat().st_size > ledger.synced_bytes
        with open(path, "r+b") as handle:
            handle.truncate(ledger.synced_bytes)

        state = Ledger(path).replay()
        assert state.torn_lines == 0  # group commit loses whole lines only
        survived = {f"grp/-/-/u{i}/-" for i in range(8)}
        assert state.completed() == survived

        calls = []
        units = [
            WorkUnit(experiment="grp", attack=f"u{i}", fn=lambda i=i: (calls.append(i), {"v": i})[1])
            for i in range(10)
        ]
        result = Runner(ledger=path).run(units)
        assert result.ok
        assert calls == [8, 9]  # exactly the dropped tail re-executes
        assert len(result.replayed) == 8

    def test_default_remains_fsync_per_record(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.unit("k", "ok", {}, attempts=1, seconds=0.0)
        assert ledger.unsynced_records == 0

    def test_fsync_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            _ledger(tmp_path, fsync_every=0)

    def test_threaded_appends_interleave_whole_lines(self, tmp_path):
        # The pool's heartbeat thread shares the ledger with the executor.
        import threading

        ledger = _ledger(tmp_path, fsync_every=8)

        def spam(worker):
            for i in range(50):
                ledger.lease("heartbeat", f"k{worker}", f"L{worker}", worker, float(i), float(i + 1))

        threads = [threading.Thread(target=spam, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ledger.close()
        lines = (tmp_path / "run.jsonl").read_text().splitlines()
        assert len(lines) == 200
        assert all(json.loads(line)["kind"] == "lease" for line in lines)
