"""FailurePolicy unit tests: retries, budgets, backoff, degradation."""

import numpy as np
import pytest

import repro.runner.policy as policy_module
from repro.nn import Dense, Flatten, Network, ReLU
from repro.runner import FailurePolicy, WorkUnit, degraded_engines, execute_unit


def _unit(fn, networks=()):
    return WorkUnit(experiment="t", fn=fn, networks=networks)


def test_retry_then_success():
    calls = []

    def fn():
        calls.append(1)
        if len(calls) < 3:
            raise RuntimeError("flaky")
        return {"v": 1}

    record = execute_unit(_unit(fn), FailurePolicy(max_attempts=3))
    assert record["status"] == "ok"
    assert record["attempts"] == 3
    assert record["payload"] == {"v": 1}
    # The last failure before success is preserved for post-mortems.
    assert record["failure"]["error"] == "RuntimeError"


def test_attempts_exhausted_yields_structured_failure():
    def fn():
        raise ValueError("always broken")

    record = execute_unit(_unit(fn), FailurePolicy(max_attempts=2))
    assert record["status"] == "failed"
    assert record["attempts"] == 2
    failure = record["failure"]
    assert failure["error"] == "ValueError"
    assert failure["kind"] == "error"
    assert failure["unit"] == "t/-/-/-/-"
    assert any("always broken" in line for line in failure["traceback"])


def test_budget_exhaustion_stops_retries():
    calls = []

    def fn():
        calls.append(1)
        raise RuntimeError("slow failure")

    policy = FailurePolicy(max_attempts=5, unit_budget_seconds=0.0)
    record = execute_unit(_unit(fn), policy)
    assert record["status"] == "failed"
    assert len(calls) == 1  # budget checked before every retry
    assert record["failure"]["kind"] == "budget"
    assert "budget" in record["failure"]["message"]


def test_backoff_is_deterministic(monkeypatch):
    sleeps = []
    monkeypatch.setattr(policy_module.time, "sleep", sleeps.append)

    def fn():
        raise RuntimeError("nope")

    execute_unit(_unit(fn), FailurePolicy(max_attempts=4, backoff_base=0.5))
    assert sleeps == [0.5, 1.0, 2.0]


def test_non_dict_payload_is_a_failure():
    record = execute_unit(_unit(lambda: [1, 2]), FailurePolicy(max_attempts=1))
    assert record["status"] == "failed"
    assert record["failure"]["error"] == "TypeError"


def test_policy_validation():
    with pytest.raises(ValueError):
        FailurePolicy(max_attempts=0)
    with pytest.raises(ValueError):
        FailurePolicy(guards="sometimes")


def _small_network():
    rng = np.random.default_rng(0)
    return Network([Flatten(), Dense(16, 8, rng), ReLU(), Dense(8, 4, rng)], (1, 4, 4))


def test_degraded_engines_swap_and_restore():
    network = _small_network()
    x = np.random.default_rng(1).normal(size=(3, 1, 4, 4))
    original = (network.engine, network.grad_engine, network.train_engine)
    assert original[0].dtype == np.dtype(np.float32)

    with degraded_engines([network]):
        assert network.engine.dtype == np.dtype(np.float64)
        assert not network.engine.supports_native  # autograd fallback, not compiled
        assert not network.grad_engine.supports_native
        assert network.train_engine.forced_fallback
        logits64 = network.engine.logits(x)
        assert logits64.dtype == np.float64

    assert (network.engine, network.grad_engine, network.train_engine) == original


def test_degraded_engines_restore_on_error():
    network = _small_network()
    original = network.engine
    with pytest.raises(RuntimeError):
        with degraded_engines([network]):
            raise RuntimeError("unit body exploded")
    assert network.engine is original
