"""Chaos: worker death and wedged workers under the lease-based pool.

``sigkill`` is a *real* SIGKILL — no exception, no ``finally``, no lease
release — so recovery can only come from lease expiry and reclamation by a
survivor.  ``hb-stall`` models the nastier case: a worker that is alive
and computing but has stopped heartbeating, whose unit is reclaimed *while
it is still running* and therefore executes twice.  Both must leave a
ledger whose replay is complete, correct and byte-identical to a clean
run's payloads.
"""

import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    FailurePolicy,
    Fault,
    FaultInjector,
    FaultPlan,
    Ledger,
    PoolConfig,
    WorkerPool,
    WorkUnit,
    fork_available,
)

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(not fork_available(), reason="pool workers require fork"),
]


def make_units(n, marker_path, slow=(), slow_seconds=1.2):
    """Synthetic units; indices in ``slow`` sleep long enough to outlive a ttl."""
    units = []
    for i in range(n):

        def fn(i=i):
            if i in slow:
                time.sleep(slow_seconds)
            else:
                time.sleep(0.01)
            fd = os.open(str(marker_path), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            os.write(fd, f"chaos/-/-/u{i}/-\n".encode())
            os.close(fd)
            return {"value": float(np.random.default_rng(i).standard_normal()), "index": i}

        units.append(WorkUnit(experiment="chaos", attack=f"u{i}", fn=fn))
    return units


def executions(marker_path):
    counts = {}
    if marker_path.exists():
        for line in marker_path.read_text().splitlines():
            counts[line] = counts.get(line, 0) + 1
    return counts


def run_pool(tmp_path, units, plan=None, workers=2, lease_ttl=0.5, name="pool.jsonl"):
    factory = None
    if plan is not None:
        factory = lambda worker_id: FaultInjector(plan, worker_id)  # noqa: E731
    pool = WorkerPool(
        tmp_path / name,
        policy=FailurePolicy(),
        config=PoolConfig(workers=workers, lease_ttl=lease_ttl, poll_interval=0.02),
        injector_factory=factory,
    )
    return pool


def test_sigkill_mid_lease_is_reclaimed_exactly_once(tmp_path):
    """Worker 0 is SIGKILLed after claiming its first unit: the lease
    expires, worker 1 reclaims it, and the run completes with every unit
    executed exactly once."""
    marker = tmp_path / "marks"
    units = make_units(6, marker)
    plan = FaultPlan(faults=(Fault(kind="sigkill", unit_index=0, worker=0),), seed=7)

    result = run_pool(tmp_path, units, plan).run(units, resume=False)
    assert result.ok
    assert sorted(result.records) == sorted(u.key for u in units)
    # The kill fired before execution, so even the killed worker's claimed
    # unit ran exactly once — under the reclaiming worker's lease.
    assert executions(marker) == {u.key: 1 for u in units}

    state = Ledger(tmp_path / "pool.jsonl").replay()
    reclaimed = {k for k, n in state.lease_grants.items() if n == 2}
    assert len(reclaimed) == 1  # exactly the orphaned unit
    assert all(n in (1, 2) for n in state.lease_grants.values())
    end = next(e for e in state.events if e["event"] == "pool-end")
    assert sorted(end["worker_exits"]) == [-9, 0]  # SIGKILL is visible to the parent


@settings(max_examples=6, deadline=None)
@given(kill_at=st.integers(min_value=0, max_value=4), seed=st.integers(0, 999))
def test_sigkill_at_any_ordinal_never_loses_or_duplicates_work(
    tmp_path_factory, kill_at, seed
):
    """Property: killing worker 0 before its ``kill_at``-th executed unit —
    any ordinal, including ones it never reaches — the pool still finishes
    every unit exactly once, with at most one reclamation."""
    tmp_path = tmp_path_factory.mktemp("sigkill")
    marker = tmp_path / "marks"
    units = make_units(6, marker)
    plan = FaultPlan(faults=(Fault(kind="sigkill", unit_index=kill_at, worker=0),), seed=seed)

    result = run_pool(tmp_path, units, plan, lease_ttl=0.4).run(units, resume=False)
    assert result.ok
    assert sorted(result.records) == sorted(u.key for u in units)
    assert executions(marker) == {u.key: 1 for u in units}

    state = Ledger(tmp_path / "pool.jsonl").replay()
    grants = list(state.lease_grants.values())
    assert all(n in (1, 2) for n in grants)
    assert sum(n == 2 for n in grants) <= 1  # one orphan at most (maybe zero:
    # worker 1 can drain the plan before worker 0 reaches the kill ordinal)


def test_heartbeat_stall_reclaims_midexecution_unit(tmp_path):
    """A wedged-but-alive worker: heartbeats stop, the lease expires while
    the unit is *still executing*, and a survivor reclaims it.  The unit
    runs twice — the payload-purity contract is what keeps the ledger
    correct — and the stalled worker's late terminal record is harmless."""
    marker = tmp_path / "marks"
    # Unit 0 is slow (1.2s >> ttl 0.4); the worker-id stagger pick gives it
    # to worker 0, whose ordinal-0 heartbeats the fault suppresses.
    units = make_units(6, marker, slow=(0,))
    plan = FaultPlan(faults=(Fault(kind="hb-stall", unit_index=0, worker=0),), seed=3)

    result = run_pool(tmp_path, units, plan, lease_ttl=0.4).run(units, resume=False)
    assert result.ok
    assert sorted(result.records) == sorted(u.key for u in units)

    state = Ledger(tmp_path / "pool.jsonl").replay()
    slow_key = units[0].key
    assert state.lease_grants[slow_key] == 2  # reclaimed mid-execution
    assert all(n == 1 for k, n in state.lease_grants.items() if k != slow_key)
    counts = executions(marker)
    assert counts[slow_key] == 2  # genuinely ran twice...
    assert all(counts[u.key] == 1 for u in units[1:])
    # ...and both executions journaled the identical pure payload.
    assert result.records[slow_key]["payload"] == {
        "value": float(np.random.default_rng(0).standard_normal()),
        "index": 0,
    }


def test_sigkill_then_resume_completes_without_reexecution(tmp_path):
    """Kill both workers early, then resume the same ledger: the second
    pool replays everything terminal and finishes only the remainder."""
    marker = tmp_path / "marks"
    units = make_units(6, marker)
    plan = FaultPlan(
        faults=(
            Fault(kind="sigkill", unit_index=1, worker=0),
            Fault(kind="sigkill", unit_index=1, worker=1),
        ),
        seed=11,
    )
    first = run_pool(tmp_path, units, plan).run(units, resume=False)
    done = set(first.records)
    assert len(done) < len(units)  # both workers died before the plan drained

    resumed = run_pool(tmp_path, units, plan=None).run(units, resume=True)
    assert resumed.ok
    assert sorted(resumed.replayed) == sorted(done)
    assert sorted(resumed.executed) == sorted({u.key for u in units} - done)
    # Each worker journaled its ordinal-0 unit once before dying at
    # ordinal 1; the resume executed the rest exactly once.
    assert executions(marker) == {u.key: 1 for u in units}
