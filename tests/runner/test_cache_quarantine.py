"""Cache content checksums and corruption quarantine."""

import numpy as np
import pytest

from repro import cache as cache_module
from repro.cache import (
    CHECKSUM_KEY,
    add_corruption_listener,
    memoize_arrays,
    remove_corruption_listener,
)


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    return tmp_path


def _entry(cache_env):
    spec = {"kind": "cachetest", "n": 4}
    arrays = memoize_arrays(spec, lambda: {"x": np.arange(4.0), "y": np.ones((2, 2))})
    (path,) = cache_env.glob("cachetest-*.npz")
    return spec, arrays, path


def test_entries_carry_content_checksum(cache_env):
    _, _, path = _entry(cache_env)
    with np.load(path) as archive:
        assert CHECKSUM_KEY in archive.files
        checksum = str(archive[CHECKSUM_KEY])
    assert len(checksum) == 64  # sha256 hex


def test_checksum_verified_on_load(cache_env):
    spec, original, path = _entry(cache_env)
    loaded = memoize_arrays(spec, lambda: pytest.fail("should load from cache"))
    np.testing.assert_array_equal(loaded["x"], original["x"])
    assert CHECKSUM_KEY not in loaded  # internal key never leaks to callers


def test_bit_rot_quarantines_and_rebuilds(cache_env):
    spec, original, path = _entry(cache_env)
    # Valid zip, tampered content: rewrite one array, keep the stale checksum.
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    arrays["x"] = arrays["x"] + 1.0
    np.savez_compressed(path, **arrays)

    seen = []
    listener = add_corruption_listener(lambda p, reason: seen.append((p, reason)))
    try:
        rebuilt = memoize_arrays(spec, lambda: {"x": np.arange(4.0), "y": np.ones((2, 2))})
    finally:
        remove_corruption_listener(listener)

    np.testing.assert_array_equal(rebuilt["x"], original["x"])
    assert path.exists()  # rebuilt in place
    quarantined = list(cache_env.glob("*.npz.corrupt"))
    assert len(quarantined) == 1
    assert seen == [(quarantined[0], "content checksum mismatch")]


def test_unreadable_archive_quarantined(cache_env):
    spec, _, path = _entry(cache_env)
    path.write_bytes(b"not a zip archive at all")

    seen = []
    listener = add_corruption_listener(lambda p, reason: seen.append(reason))
    try:
        rebuilt = memoize_arrays(spec, lambda: {"x": np.arange(4.0), "y": np.ones((2, 2))})
    finally:
        remove_corruption_listener(listener)

    assert rebuilt["x"].sum() == 6.0
    assert len(list(cache_env.glob("*.npz.corrupt"))) == 1
    assert len(seen) == 1 and seen[0].startswith("unreadable archive")


def test_quarantined_bytes_preserved(cache_env):
    spec, _, path = _entry(cache_env)
    path.write_bytes(b"forensic evidence")
    memoize_arrays(spec, lambda: {"x": np.arange(4.0), "y": np.ones((2, 2))})
    (quarantined,) = cache_env.glob("*.npz.corrupt")
    assert quarantined.read_bytes() == b"forensic evidence"


def test_legacy_entry_without_checksum_loads_unchanged(cache_env):
    spec = {"kind": "cachetest", "n": 9}
    # Write a pre-checksum entry directly at the path memoize_arrays uses.
    from repro.cache import cache_key

    path = cache_env / f"cachetest-{cache_key(spec)}.npz"
    np.savez_compressed(path, x=np.arange(9.0))

    loaded = memoize_arrays(spec, lambda: pytest.fail("legacy entry must be served"))
    np.testing.assert_array_equal(loaded["x"], np.arange(9.0))
    assert not list(cache_env.glob("*.corrupt"))


def test_reserved_checksum_name_rejected(cache_env):
    with pytest.raises(ValueError, match="reserved"):
        memoize_arrays({"kind": "cachetest", "n": 5}, lambda: {CHECKSUM_KEY: np.zeros(1)})


def test_listener_removal_is_idempotent():
    listener = lambda p, r: None  # noqa: E731
    remove_corruption_listener(listener)  # never registered: no error
    add_corruption_listener(listener)
    remove_corruption_listener(listener)
    assert listener not in cache_module._corruption_listeners
