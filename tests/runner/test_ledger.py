"""Ledger unit tests: append/replay, torn lines, atomic truncation."""

import json
import os

from repro.runner import Ledger, Runner, WorkUnit


def test_replay_last_record_per_key_wins(tmp_path):
    ledger = Ledger(tmp_path / "run.jsonl")
    ledger.unit("a/b/-/-/-", "failed", None, attempts=3, seconds=0.1)
    ledger.unit("a/b/-/-/-", "ok", {"v": 1}, attempts=1, seconds=0.2)
    ledger.unit("a/c/-/-/-", "ok", {"v": 2}, attempts=1, seconds=0.3)
    ledger.event("run-end", executed=2)
    ledger.close()

    state = Ledger(tmp_path / "run.jsonl").replay()
    assert state.units["a/b/-/-/-"]["status"] == "ok"
    assert state.units["a/b/-/-/-"]["payload"] == {"v": 1}
    assert state.completed() == {"a/b/-/-/-", "a/c/-/-/-"}
    assert state.succeeded() == {"a/b/-/-/-", "a/c/-/-/-"}
    assert [e["event"] for e in state.events] == ["run-end"]
    assert state.torn_lines == 0


def test_torn_trailing_line_tolerated(tmp_path):
    path = tmp_path / "run.jsonl"
    ledger = Ledger(path)
    ledger.unit("u/-/-/-/-", "ok", {"v": 7}, attempts=1, seconds=0.0)
    ledger.close()
    # A crash mid-append leaves a half-written line with no newline.
    with open(path, "ab") as handle:
        handle.write(b'{"kind": "unit", "key": "v/-/-/')

    state = Ledger(path).replay()
    assert state.torn_lines == 1
    assert state.completed() == {"u/-/-/-/-"}


def test_records_are_single_line_json(tmp_path):
    path = tmp_path / "run.jsonl"
    ledger = Ledger(path)
    ledger.unit("k/-/-/-/-", "ok", {"text": "with\nnewline"}, attempts=1, seconds=0.0)
    ledger.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["payload"]["text"] == "with\nnewline"


def test_fresh_truncates_atomically(tmp_path):
    path = tmp_path / "run.jsonl"
    ledger = Ledger(path)
    ledger.unit("k/-/-/-/-", "ok", {}, attempts=1, seconds=0.0)
    ledger.close()
    assert path.stat().st_size > 0
    Ledger(path, fresh=True)
    assert path.stat().st_size == 0
    # No leftover temporary files from the replace.
    assert [p.name for p in tmp_path.iterdir()] == ["run.jsonl"]


def test_runner_resume_false_starts_fresh(tmp_path):
    path = tmp_path / "run.jsonl"
    unit = WorkUnit(experiment="e", fn=lambda: {"v": 1})
    first = Runner(ledger=path).run([unit])
    assert first.executed == [unit.key]

    again = Runner(ledger=path, resume=False).run([unit])
    assert again.executed == [unit.key]
    assert again.replayed == []


def test_ledger_survives_missing_file(tmp_path):
    state = Ledger(tmp_path / "never-written.jsonl").replay()
    assert state.completed() == set()
    assert state.torn_lines == 0


def test_append_is_o_append(tmp_path):
    # Two Ledger handles on the same path interleave whole lines.
    path = tmp_path / "run.jsonl"
    a, b = Ledger(path), Ledger(path)
    a.unit("a/-/-/-/-", "ok", {}, attempts=1, seconds=0.0)
    b.unit("b/-/-/-/-", "ok", {}, attempts=1, seconds=0.0)
    a.unit("c/-/-/-/-", "ok", {}, attempts=1, seconds=0.0)
    a.close(), b.close()
    state = Ledger(path).replay()
    assert state.completed() == {"a/-/-/-/-", "b/-/-/-/-", "c/-/-/-/-"}
    assert state.torn_lines == 0
