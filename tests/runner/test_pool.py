"""WorkerPool correctness on synthetic plans (no chaos).

Units execute in forked children, so cross-process assertions go through
two channels the fork shares: the ledger itself, and an ``O_APPEND``
marker file each unit appends its key to (one line per actual execution —
the same atomic-append trick the ledger uses).
"""

import json
import os

import numpy as np
import pytest

from repro.runner import (
    FailurePolicy,
    Ledger,
    PoolConfig,
    Runner,
    WorkerPool,
    WorkUnit,
    fork_available,
)

pytestmark = pytest.mark.skipif(not fork_available(), reason="pool workers require fork")


def make_units(n, marker_path, experiment="pool", sleep=0.0):
    """Synthetic units: payload is a pure function of the key (plan contract)."""
    units = []
    for i in range(n):

        def fn(i=i):
            import time

            if sleep:
                time.sleep(sleep)
            fd = os.open(str(marker_path), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            os.write(fd, f"{experiment}/-/-/u{i}/-\n".encode())
            os.close(fd)
            rng = np.random.default_rng(i)
            return {"value": float(rng.standard_normal()), "index": i}

        units.append(WorkUnit(experiment=experiment, attack=f"u{i}", fn=fn))
    return units


def executions(marker_path):
    """Per-key actual-execution counts from the marker file."""
    if not marker_path.exists():
        return {}
    counts = {}
    for line in marker_path.read_text().splitlines():
        counts[line] = counts.get(line, 0) + 1
    return counts


def payloads(result):
    return {key: rec["payload"] for key, rec in result.records.items()}


def pool(tmp_path, workers=2, **kw):
    config = PoolConfig(workers=workers, lease_ttl=kw.pop("lease_ttl", 10.0),
                        poll_interval=0.02, **kw)
    return WorkerPool(tmp_path / "pool.jsonl", policy=FailurePolicy(), config=config)


def test_pool_matches_sequential_run(tmp_path):
    units = make_units(8, tmp_path / "marks")
    result = pool(tmp_path, workers=2).run(units, resume=False)
    assert result.ok
    assert sorted(result.executed) == sorted(u.key for u in units)
    assert result.replayed == []

    sequential = Runner(ledger=tmp_path / "seq.jsonl").run(make_units(8, tmp_path / "seq-marks"))
    assert payloads(result) == payloads(sequential)
    # Every unit executed exactly once — leases prevented double work.
    assert executions(tmp_path / "marks") == {u.key: 1 for u in units}


def test_pool_resume_never_reexecutes(tmp_path):
    marker = tmp_path / "marks"
    units = make_units(6, marker)
    first = pool(tmp_path).run(units, resume=False)
    assert first.ok

    resumed = pool(tmp_path).run(units, resume=True)
    assert resumed.ok
    assert resumed.executed == []
    assert sorted(resumed.replayed) == sorted(u.key for u in units)
    assert payloads(resumed) == payloads(first)
    assert executions(marker) == {u.key: 1 for u in units}  # still once each


def test_pool_partial_resume_executes_only_missing(tmp_path):
    marker = tmp_path / "marks"
    units = make_units(6, marker)
    # Seed the ledger with half the units via a sequential run.
    seq = Runner(ledger=tmp_path / "pool.jsonl").run(units[:3])
    assert seq.ok

    result = pool(tmp_path).run(units, resume=True)
    assert result.ok
    assert sorted(result.replayed) == sorted(u.key for u in units[:3])
    assert sorted(result.executed) == sorted(u.key for u in units[3:])
    # One execution per unit across both runs: resume replayed the seeds.
    assert executions(marker) == {u.key: 1 for u in units}


def test_pool_workers_1_degenerates_cleanly(tmp_path):
    units = make_units(4, tmp_path / "marks")
    result = pool(tmp_path, workers=1).run(units, resume=False)
    assert result.ok
    assert len(result.executed) == 4
    state = Ledger(tmp_path / "pool.jsonl").replay()
    assert all(count == 1 for count in state.lease_grants.values())


def test_pool_retry_failed_voids_failed_records(tmp_path):
    ledger_path = tmp_path / "pool.jsonl"
    units = make_units(4, tmp_path / "marks")
    with Ledger(ledger_path) as ledger:
        ledger.unit(units[0].key, "failed", None, attempts=3, seconds=0.1,
                    failure={"kind": "InjectedError"})
        ledger.unit(units[1].key, "ok", {"value": 123.0, "index": 1}, attempts=1, seconds=0.1)

    # Without retry_failed the failure is replayed verbatim.
    kept = pool(tmp_path).run(units, resume=True)
    assert kept.failed == [units[0].key]

    retried = pool(tmp_path).run(units, resume=True, retry_failed=True)
    assert retried.ok
    assert units[0].key in retried.executed  # re-executed this run
    assert units[1].key in retried.replayed  # successes always replay
    assert retried.records[units[1].key]["payload"] == {"value": 123.0, "index": 1}


def test_pool_fresh_run_truncates(tmp_path):
    units = make_units(3, tmp_path / "marks")
    assert pool(tmp_path).run(units, resume=False).ok
    second = pool(tmp_path).run(units, resume=False)
    assert second.ok
    assert len(second.executed) == 3
    assert second.replayed == []
    assert executions(tmp_path / "marks") == {u.key: 2 for u in units}


def test_pool_journals_lifecycle_events(tmp_path):
    units = make_units(3, tmp_path / "marks")
    pool(tmp_path, workers=2).run(units, resume=False)
    events = [e["event"] for e in Ledger(tmp_path / "pool.jsonl").replay().events]
    assert "pool-start" in events and "pool-end" in events
    assert events.count("worker-done") == 2
    end = next(e for e in Ledger(tmp_path / "pool.jsonl").replay().events
               if e["event"] == "pool-end")
    assert end["executed"] == 3 and end["failed"] == 0 and end["pending"] == 0
    assert end["worker_exits"] == [0, 0]


def test_pool_group_commit_end_state_is_durable(tmp_path):
    units = make_units(5, tmp_path / "marks")
    result = pool(tmp_path, workers=2, fsync_every=8).run(units, resume=False)
    assert result.ok
    # Terminal records are flushed before lease release, so every unit
    # record is on disk even though events may ride the commit window.
    lines = [json.loads(l) for l in (tmp_path / "pool.jsonl").read_text().splitlines()]
    unit_keys = {r["key"] for r in lines if r.get("kind") == "unit"}
    assert unit_keys == {u.key for u in units}


def test_pool_config_validation():
    with pytest.raises(ValueError):
        PoolConfig(workers=0)
    with pytest.raises(ValueError):
        PoolConfig(lease_ttl=0.0)
    assert PoolConfig(lease_ttl=8.0).heartbeat_seconds == 2.0
    assert PoolConfig(heartbeat_interval=0.5).heartbeat_seconds == 0.5
