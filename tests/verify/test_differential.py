"""The differential verifier itself: fuzzing, metrics, CLI plumbing.

The hypothesis harness generates architectures in the differ's block
language; because :func:`build_case` tolerates any block order (skipping
geometry-incompatible blocks), hypothesis can shrink a failing example
block-by-block down to a minimal layer stack.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.nn import Conv2D, Dense, MaxPool2D, Sigmoid
from repro.verify import GuardViolation
from repro.verify.differ import REL_BUDGET, build_case, diff_case, run_verify, ulp_distance
from repro.verify.report import Report

BLOCK = st.one_of(
    st.tuples(st.just("dense"), st.integers(3, 8)),
    st.tuples(st.just("act"), st.sampled_from(["relu", "tanh", "sigmoid"])),
    st.tuples(st.just("bn")),
    st.tuples(st.just("dropout"), st.sampled_from([0.3, 0.5])),
    st.tuples(
        st.just("conv"), st.integers(1, 3), st.integers(2, 3), st.integers(1, 2), st.integers(0, 1)
    ),
    st.tuples(st.just("maxpool"), st.integers(2, 3), st.integers(1, 2)),
    st.tuples(st.just("avgpool"), st.just(2)),
)


class TestUlpDistance:
    def test_identical_is_zero(self):
        x = np.random.default_rng(0).normal(size=8)
        assert ulp_distance(x, x.copy()) == 0.0

    def test_adjacent_floats_are_one(self):
        a = np.array([1.0, -3.5])
        b = np.nextafter(a, np.inf)
        assert ulp_distance(a, b) == 1.0

    def test_nan_is_inf(self):
        assert ulp_distance(np.array([np.nan]), np.array([0.0])) == float("inf")

    def test_measured_in_requested_dtype(self):
        a = np.array([1.0])
        b = np.array([1.0 + 1e-7])
        assert ulp_distance(a, b, dtype=np.float64) > 1e8
        assert ulp_distance(a, b, dtype=np.float32) <= 2.0

    def test_near_zero_entries_ignored(self):
        # 1e-30 vs 2e-30 is billions of ULPs apart but numerically
        # irrelevant next to the O(1) entries; the mask must exclude it.
        a = np.array([1.0, 1e-30])
        b = np.array([1.0, 2e-30])
        assert ulp_distance(a, b) == 0.0

    def test_empty(self):
        assert ulp_distance(np.zeros(0), np.zeros(0)) == 0.0


class TestBuildCase:
    def test_incompatible_blocks_are_skipped(self):
        # conv after dense, pool wider than the map: all silently dropped,
        # so any shrunk block list still builds.
        case = build_case(
            [("dense", 4), ("conv", 2, 3, 1, 0), ("maxpool", 9, 1), ("act", "relu")],
            side=4,
        )
        kinds = [type(layer) for layer in case.network.layers]
        assert Conv2D not in kinds
        assert MaxPool2D not in kinds
        assert kinds.count(Dense) == 2  # requested + final head

    def test_empty_blocks_build_linear_head(self):
        case = build_case([], side=3)
        assert case.network.predict(case.x).shape == (len(case.x),)

    def test_blocks_map_to_layers(self):
        case = build_case([("conv", 2, 2, 1, 0), ("act", "sigmoid"), ("dense", 5)], side=5)
        kinds = [type(layer) for layer in case.network.layers]
        assert Conv2D in kinds and Sigmoid in kinds

    def test_deterministic_in_seed(self):
        a = build_case([("dense", 4)], seed=9)
        b = build_case([("dense", 4)], seed=9)
        np.testing.assert_array_equal(a.x, b.x)
        for pa, pb in zip(a.network.parameters(), b.network.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestDiffCase:
    def test_restores_network_state(self):
        case = build_case([("bn",), ("act", "relu")], side=4, seed=3)
        before = {key: value.copy() for key, value in case.network.state().items()}
        diff_case(case, np.float32)
        after = case.network.state()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])
        assert all(p.grad is None for p in case.network.parameters())

    def test_flags_nothing_on_healthy_network(self):
        case = build_case([("conv", 2, 2, 1, 1), ("act", "tanh"), ("maxpool", 2, 2)], seed=5)
        report = diff_case(case, np.float64)
        assert report.ok, report.format()

    def test_traps_nan_parameters(self):
        case = build_case([("dense", 4)], seed=1)
        case.network.layers[-1].params["weight"].data[0, 0] = np.nan
        with pytest.raises(GuardViolation):
            diff_case(case, np.float32)

    def test_report_flags_over_budget(self):
        report = Report()
        report.cases = 1
        report.record("case", "infer-fwd", "network", "float32", rel=1e-2, ulp=9.0, budget=1e-4)
        assert not report.ok
        assert "DIVERGENCES" in report.format()
        assert report.divergences[0].max_rel == pytest.approx(1e-2)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    blocks=st.lists(BLOCK, max_size=5),
    batch=st.integers(1, 3),
    scale=st.sampled_from([0.5, 3.0, 30.0]),
    seed=st.integers(0, 2**16),
    quantize=st.booleans(),
)
def test_engines_agree_with_autograd(blocks, batch, scale, seed, quantize):
    """All four paths agree within budget on arbitrary shrunk stacks."""
    case = build_case(blocks, batch=batch, scale=scale, seed=seed, quantize=quantize)
    for dtype in (np.float32, np.float64):
        report = diff_case(case, dtype)
        assert report.ok, f"\n{report.format()}"


class TestRunVerify:
    def test_sweep_is_clean(self):
        report = run_verify(seed=0, cases=4)
        assert report.ok
        assert report.cases == 4
        text = report.format()
        assert "max ulp" in text and "all paths agree within budget" in text

    def test_budgets(self):
        assert REL_BUDGET[np.dtype(np.float32)] == 1e-4
        assert REL_BUDGET[np.dtype(np.float64)] == 1e-10


class TestCli:
    def test_verify_command(self, capsys):
        assert main(["verify", "--seed", "0", "--cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "differential verification: 2 case(s)" in out
        assert "all paths agree within budget" in out

    def test_verify_single_dtype(self, capsys):
        assert main(["verify", "--seed", "1", "--cases", "1", "--dtype", "float32"]) == 0
        out = capsys.readouterr().out
        assert "float32" in out and "float64" not in out
