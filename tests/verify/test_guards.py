"""Runtime-guard tests: the three trap classes at engine boundaries."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Flatten,
    GradientEngine,
    InferenceEngine,
    Network,
    SGD,
    Adam,
    TrainingEngine,
    ops,
)
from repro.nn.layers import Layer
from repro.verify import guards
from repro.verify.guards import GuardViolation


def _net(seed=0):
    rng = np.random.default_rng(seed)
    return Network([Flatten(), Dense(4, 3, rng)], (1, 2, 2))


class TestActivation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not guards.active()

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert guards.active()
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert not guards.active()

    def test_enforce_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        with guards.enforce(False):
            assert not guards.active()
        assert guards.active()

    def test_enforce_restores_on_exit(self):
        with guards.enforce(True):
            with guards.enforce(False):
                assert not guards.active()
            assert guards.active()


class TestFiniteTrap:
    def test_nan_logits_trapped_in_inference(self):
        net = _net()
        net.layers[1].params["weight"].data[0, 0] = np.nan
        x = np.ones((2, 1, 2, 2))
        engine = InferenceEngine(net, dtype=np.float32)
        with guards.enforce(True), pytest.raises(GuardViolation, match="non-finite"):
            engine.logits(x, memo=False)

    def test_nan_passes_when_disabled(self):
        net = _net()
        net.layers[1].params["weight"].data[0, 0] = np.nan
        engine = InferenceEngine(net, dtype=np.float32)
        with guards.enforce(False):
            out = engine.logits(np.ones((2, 1, 2, 2)), memo=False)
        assert np.isnan(out).any()

    def test_nan_gradient_trapped(self):
        net = _net()
        net.layers[1].params["weight"].data[0, 0] = np.inf
        engine = GradientEngine(net, dtype=np.float32)
        with guards.enforce(True), pytest.raises(GuardViolation, match="non-finite"):
            engine.forward(np.ones((2, 1, 2, 2)))

    def test_nan_training_loss_trapped(self):
        net = _net()
        net.layers[1].params["bias"].data[0] = np.nan
        engine = TrainingEngine(net, dtype=np.float64)
        with guards.enforce(True), pytest.raises(GuardViolation):
            engine.train_batch(np.ones((2, 1, 2, 2)), np.array([0, 1]))


class TestDtypeTrap:
    def test_check_dtype_direct(self):
        with guards.enforce(True):
            guards.check_dtype("x", np.zeros(3, dtype=np.float32), np.float32)
            with pytest.raises(GuardViolation, match="drifted"):
                guards.check_dtype("x", np.zeros(3, dtype=np.float64), np.float32)

    def test_inference_fallback_returns_engine_dtype(self):
        """Regression: the float64 autograd fallback used to escape a
        float32 engine uncast — exactly the silent drift the guard traps."""

        class Custom(Layer):
            def forward(self, x, training):
                return ops.relu(x)

        rng = np.random.default_rng(0)
        net = Network([Flatten(), Dense(4, 3, rng), Custom()], (1, 2, 2))
        engine = InferenceEngine(net, dtype=np.float32)
        assert not engine.supports_native
        with guards.enforce(True):
            out = engine.logits(np.ones((2, 1, 2, 2)), memo=False)
        assert out.dtype == np.float32


class TestAliasTrap:
    def _aliased_net(self):
        net = _net()
        p = net.parameters()[0]
        p.grad = p.data  # the in-place update would corrupt this gradient
        return net

    def test_sgd_rejects_aliased_gradient(self):
        net = self._aliased_net()
        opt = SGD(net.parameters(), lr=0.1)
        with guards.enforce(True), pytest.raises(GuardViolation, match="aliases"):
            opt.step()

    def test_adam_rejects_aliased_gradient(self):
        net = self._aliased_net()
        opt = Adam(net.parameters(), lr=0.1)
        with guards.enforce(True), pytest.raises(GuardViolation, match="aliases"):
            opt.step()

    def test_view_of_data_also_trapped(self):
        net = _net()
        p = net.parameters()[0]
        p.grad = p.data[:2]  # partial overlap, still aliasing
        opt = SGD(net.parameters(), lr=0.1)
        with guards.enforce(True), pytest.raises(GuardViolation, match="aliases"):
            opt.step()

    def test_honest_gradients_pass(self):
        net = _net()
        for p in net.parameters():
            p.grad = np.zeros_like(p.data)
        opt = SGD(net.parameters(), lr=0.1)
        with guards.enforce(True):
            opt.step()
