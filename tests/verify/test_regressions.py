"""Regression tests for every divergence the differential verifier found.

Each class pins one fixed bug; each test fails on the pre-fix code.
"""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Dropout,
    Flatten,
    GradientEngine,
    InferenceEngine,
    Network,
    Sigmoid,
    Tensor,
    TrainingEngine,
    ops,
)
from repro.nn.ops import stable_sigmoid
from repro.nn.tensor import no_grad


def _saturating_net(seed=0):
    """Dense→Sigmoid stack whose pre-activations reach ±10⁴ (exp overflow)."""
    rng = np.random.default_rng(seed)
    net = Network([Flatten(), Dense(4, 3, rng), Sigmoid(), Dense(3, 3, rng)], (1, 2, 2))
    weight = net.layers[1].params["weight"]
    weight.data = -np.abs(weight.data) * 100
    return net


class TestSigmoidOverflow:
    """exp(-x) overflowed for strongly negative inputs in all four paths."""

    def test_stable_sigmoid_saturates_without_overflow(self):
        with np.errstate(over="raise"):
            out = stable_sigmoid(np.array([-800.0, -90.0, 0.0, 90.0, 800.0]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[[0, 2, 4]], [0.0, 0.5, 1.0])

    def test_stable_sigmoid_float32(self):
        x = np.array([-120.0, 120.0], dtype=np.float32)
        with np.errstate(over="raise"):
            out = stable_sigmoid(x)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_autograd_sigmoid_op(self):
        with np.errstate(over="raise"), no_grad():
            out = ops.sigmoid(Tensor(np.array([[-800.0, 800.0]])))
        np.testing.assert_allclose(out.data, [[0.0, 1.0]])

    def test_matches_naive_form_in_safe_range(self):
        x = np.linspace(-20, 20, 101)
        np.testing.assert_array_equal(stable_sigmoid(x)[x >= 0], (1.0 / (1.0 + np.exp(-x)))[x >= 0])
        np.testing.assert_allclose(stable_sigmoid(x), 1.0 / (1.0 + np.exp(-x)), rtol=1e-15)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_all_engines_saturated(self, dtype):
        net = _saturating_net()
        x = np.full((2, 1, 2, 2), 120.0)
        with no_grad():
            ref = net.forward(Tensor(x)).data
        with np.errstate(over="raise"):
            out = InferenceEngine(net, dtype=dtype).logits(x, memo=False)
            grad_logits, _ = GradientEngine(net, dtype=dtype).forward(x)
            TrainingEngine(net, dtype=dtype).train_batch(x, np.array([0, 1]))
        assert np.abs(out - ref).max() < 1e-4
        assert np.abs(grad_logits - ref).max() < 1e-4


class TestEmptyBatch:
    """reshape((0, -1)) is ambiguous to NumPy; loss means nan-propagate."""

    def _net(self):
        return Network([Flatten(), Dense(9, 5, np.random.default_rng(0))], (1, 3, 3))

    def test_autograd_flatten(self):
        net = self._net()
        with no_grad():
            out = net.forward(Tensor(np.zeros((0, 1, 3, 3)))).data
        assert out.shape == (0, 5)

    def test_inference_engine(self):
        out = InferenceEngine(self._net()).logits(np.zeros((0, 1, 3, 3)))
        assert out.shape == (0, 5)

    def test_gradient_engine(self):
        net = self._net()
        grad = GradientEngine(net).cross_entropy_input_grad(
            np.zeros((0, 1, 3, 3)), np.zeros(0, dtype=int)
        )
        assert grad.shape == (0, 1, 3, 3)

    def test_training_engine_no_nan_no_grads(self):
        net = self._net()
        value, logits = TrainingEngine(net).train_batch(
            np.zeros((0, 1, 3, 3)), np.zeros(0, dtype=int)
        )
        assert value == 0.0
        assert logits.shape == (0, 5)
        # No examples → no gradient contribution, not a zero-filled one.
        assert all(p.grad is None for p in net.parameters())


class TestMemoAliasing:
    """The memo could freeze the caller's array and serve rewritable views."""

    def _identity_net(self):
        # Dropout is an inference-time identity, so the kernel stack hands
        # back whatever aliasing the layer kernels produce.
        return Network([Dropout(0.5, np.random.default_rng(0))], (3,))

    def test_caller_array_stays_writable(self):
        net = self._identity_net()
        x = np.zeros((2, 3), dtype=np.float32)
        engine = InferenceEngine(net, dtype=np.float32)
        engine.logits(x)  # memo on: used to freeze x itself
        x[0, 0] = 1.0  # must not raise ValueError (read-only array)

    def test_memoised_result_not_rewritten_by_input_edits(self):
        net = self._identity_net()
        engine = InferenceEngine(net, dtype=np.float32)
        x = np.zeros((2, 3), dtype=np.float32)
        first = engine.logits(x).copy()
        x[:] = 7.0  # in-place edit of the caller's buffer
        key_x = np.zeros((2, 3), dtype=np.float32)
        again = engine.logits(key_x)  # same digest as the first call
        np.testing.assert_array_equal(first, again)

    def test_memoised_result_is_read_only_copy(self):
        net = self._identity_net()
        engine = InferenceEngine(net, dtype=np.float32)
        x = np.zeros((2, 3), dtype=np.float32)
        out = engine.logits(x)
        assert out is not x
        assert not out.flags.writeable
        assert not np.shares_memory(out, x)
