"""Unit tests for layers: shapes, parameters, serialisation."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Tanh
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(8, 4, rng)
        out = layer(Tensor(np.zeros((3, 8))))
        assert out.shape == (3, 4)
        assert layer.output_shape((8,)) == (4,)

    def test_parameters(self, rng):
        layer = Dense(8, 4, rng)
        params = list(layer.parameters())
        assert len(params) == 2
        assert all(p.requires_grad for p in params)
        assert params[0].shape == (8, 4)
        assert params[1].shape == (4,)

    def test_bias_starts_zero(self, rng):
        layer = Dense(8, 4, rng)
        np.testing.assert_array_equal(layer.params["bias"].data, 0.0)

    def test_linear_in_input(self, rng):
        layer = Dense(5, 3, rng)
        x1, x2 = rng.normal(size=(2, 5)), rng.normal(size=(2, 5))
        out = layer(Tensor(x1 + x2)).data + layer(Tensor(np.zeros((2, 5)))).data
        np.testing.assert_allclose(out, layer(Tensor(x1)).data + layer(Tensor(x2)).data, atol=1e-12)

    def test_state_roundtrip(self, rng):
        layer = Dense(8, 4, rng)
        state = layer.state()
        other = Dense(8, 4, np.random.default_rng(99))
        other.load_state(state)
        np.testing.assert_array_equal(other.params["weight"].data, layer.params["weight"].data)

    def test_load_state_shape_mismatch(self, rng):
        layer = Dense(8, 4, rng)
        with pytest.raises(ValueError, match="shape"):
            layer.load_state({"weight": np.zeros((3, 3)), "bias": np.zeros(4)})


class TestConv2D:
    def test_output_shape_padded(self, rng):
        layer = Conv2D(3, 8, 3, rng, padding=1)
        out = layer(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 8, 16, 16)
        assert layer.output_shape((3, 16, 16)) == (8, 16, 16)

    def test_output_shape_stride(self, rng):
        layer = Conv2D(1, 4, 3, rng, stride=2)
        assert layer.output_shape((1, 9, 9)) == (4, 4, 4)
        out = layer(Tensor(np.zeros((1, 1, 9, 9))))
        assert out.shape == (1, 4, 4, 4)

    def test_translation_covariance(self, rng):
        # Shifting the input by one pixel shifts the (valid interior of the)
        # output by one pixel for a stride-1, padding-0 conv.
        layer = Conv2D(1, 2, 3, rng)
        x = rng.normal(size=(1, 1, 8, 8))
        shifted = np.roll(x, 1, axis=3)
        out = layer(Tensor(x)).data
        out_shifted = layer(Tensor(shifted)).data
        np.testing.assert_allclose(out_shifted[:, :, :, 2:], out[:, :, :, 1:-1], atol=1e-10)


class TestPoolingAndShape:
    def test_maxpool_shape(self):
        layer = MaxPool2D(2)
        out = layer(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 3, 4, 4)
        assert layer.output_shape((3, 8, 8)) == (3, 4, 4)

    def test_maxpool_no_params(self):
        assert list(MaxPool2D(2).parameters()) == []

    def test_flatten(self):
        layer = Flatten()
        out = layer(Tensor(np.zeros((2, 3, 4, 4))))
        assert out.shape == (2, 48)
        assert layer.output_shape((3, 4, 4)) == (48,)

    def test_relu_values(self):
        out = ReLU()(Tensor(np.array([[-1.0, 2.0]])))
        np.testing.assert_array_equal(out.data, [[0.0, 2.0]])

    def test_tanh_range(self):
        out = Tanh()(Tensor(np.array([[-100.0, 0.0, 100.0]])))
        np.testing.assert_allclose(out.data, [[-1.0, 0.0, 1.0]], atol=1e-9)


class TestDropout:
    def test_identity_in_inference(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((4, 10))
        out = layer(Tensor(x), training=False)
        np.testing.assert_array_equal(out.data, x)

    def test_scales_in_training(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((200, 200))
        out = layer(Tensor(x), training=True).data
        # Inverted dropout preserves the mean.
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        assert set(np.unique(out.round(6))) == {0.0, 2.0}

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
        with pytest.raises(ValueError):
            Dropout(-0.1, rng)
