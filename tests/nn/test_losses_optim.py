"""Tests for loss functions and optimisers."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, losses
from repro.nn.tensor import Tensor


class TestOneHot:
    def test_encoding(self):
        out = losses.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            losses.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            losses.one_hot(np.array([-1]), 3)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        loss = losses.cross_entropy(logits, np.array([0]))
        assert float(loss.data) < 1e-6

    def test_uniform_logits_log_k(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = losses.cross_entropy(logits, np.zeros(4, dtype=int))
        assert float(loss.data) == pytest.approx(np.log(10))

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        losses.cross_entropy(logits, np.array([1])).backward()
        grad = logits.grad[0]
        # Gradient pushes the true class up (negative grad) and others down.
        assert grad[1] < 0
        assert grad[0] > 0 and grad[2] > 0
        assert grad.sum() == pytest.approx(0.0, abs=1e-12)

    def test_matches_manual_formula(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(5, 4))
        y = rng.integers(0, 4, size=5)
        loss = float(losses.cross_entropy(Tensor(z), y).data)
        probs = np.exp(z - z.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = -np.log(probs[np.arange(5), y]).mean()
        assert loss == pytest.approx(expected)


class TestSoftCrossEntropy:
    def test_reduces_to_hard_ce_on_onehot(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(6, 5))
        y = rng.integers(0, 5, size=6)
        hard = float(losses.cross_entropy(Tensor(z), y).data)
        soft = float(losses.soft_cross_entropy(Tensor(z), losses.one_hot(y, 5)).data)
        assert soft == pytest.approx(hard)

    def test_temperature_changes_loss(self):
        z = Tensor(np.array([[4.0, 0.0, 0.0]]))
        targets = np.array([[0.5, 0.25, 0.25]])
        low = float(losses.soft_cross_entropy(z, targets, temperature=1.0).data)
        high = float(losses.soft_cross_entropy(z, targets, temperature=100.0).data)
        assert low != pytest.approx(high)


class TestMSE:
    def test_zero_when_equal(self):
        preds = Tensor(np.ones((3, 2)))
        assert float(losses.mse(preds, np.ones((3, 2))).data) == 0.0

    def test_value(self):
        preds = Tensor(np.zeros((2, 2)))
        assert float(losses.mse(preds, np.ones((2, 2)) * 2).data) == pytest.approx(4.0)


def _quadratic_descend(optimizer_cls, steps, **kwargs):
    """Minimise ||p - target||^2 and return the final parameter."""
    target = np.array([3.0, -2.0])
    p = Tensor(np.zeros(2), requires_grad=True)
    opt = optimizer_cls([p], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        diff = p - Tensor(target)
        loss = (diff * diff).sum()
        loss.backward()
        opt.step()
    return p.data, target


class TestOptimizers:
    def test_sgd_converges(self):
        final, target = _quadratic_descend(SGD, steps=100, lr=0.1)
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        final, target = _quadratic_descend(SGD, steps=200, lr=0.01, momentum=0.9)
        np.testing.assert_allclose(final, target, atol=1e-2)

    def test_adam_converges(self):
        final, target = _quadratic_descend(Adam, steps=400, lr=0.1)
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        no_decay, target = _quadratic_descend(SGD, steps=200, lr=0.1)
        decayed, _ = _quadratic_descend(SGD, steps=200, lr=0.1, weight_decay=1.0)
        assert np.linalg.norm(decayed) < np.linalg.norm(no_decay)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_step_skips_missing_grads(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward yet; must not crash
        np.testing.assert_array_equal(p.data, np.ones(2))
