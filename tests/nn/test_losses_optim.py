"""Tests for loss functions and optimisers."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, losses
from repro.nn.tensor import Tensor


class TestOneHot:
    def test_encoding(self):
        out = losses.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            losses.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            losses.one_hot(np.array([-1]), 3)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        loss = losses.cross_entropy(logits, np.array([0]))
        assert float(loss.data) < 1e-6

    def test_uniform_logits_log_k(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = losses.cross_entropy(logits, np.zeros(4, dtype=int))
        assert float(loss.data) == pytest.approx(np.log(10))

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        losses.cross_entropy(logits, np.array([1])).backward()
        grad = logits.grad[0]
        # Gradient pushes the true class up (negative grad) and others down.
        assert grad[1] < 0
        assert grad[0] > 0 and grad[2] > 0
        assert grad.sum() == pytest.approx(0.0, abs=1e-12)

    def test_matches_manual_formula(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(5, 4))
        y = rng.integers(0, 4, size=5)
        loss = float(losses.cross_entropy(Tensor(z), y).data)
        probs = np.exp(z - z.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = -np.log(probs[np.arange(5), y]).mean()
        assert loss == pytest.approx(expected)


class TestSoftCrossEntropy:
    def test_reduces_to_hard_ce_on_onehot(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(6, 5))
        y = rng.integers(0, 5, size=6)
        hard = float(losses.cross_entropy(Tensor(z), y).data)
        soft = float(losses.soft_cross_entropy(Tensor(z), losses.one_hot(y, 5)).data)
        assert soft == pytest.approx(hard)

    def test_temperature_changes_loss(self):
        z = Tensor(np.array([[4.0, 0.0, 0.0]]))
        targets = np.array([[0.5, 0.25, 0.25]])
        low = float(losses.soft_cross_entropy(z, targets, temperature=1.0).data)
        high = float(losses.soft_cross_entropy(z, targets, temperature=100.0).data)
        assert low != pytest.approx(high)


class TestMSE:
    def test_zero_when_equal(self):
        preds = Tensor(np.ones((3, 2)))
        assert float(losses.mse(preds, np.ones((3, 2))).data) == 0.0

    def test_value(self):
        preds = Tensor(np.zeros((2, 2)))
        assert float(losses.mse(preds, np.ones((2, 2)) * 2).data) == pytest.approx(4.0)


def _quadratic_descend(optimizer_cls, steps, **kwargs):
    """Minimise ||p - target||^2 and return the final parameter."""
    target = np.array([3.0, -2.0])
    p = Tensor(np.zeros(2), requires_grad=True)
    opt = optimizer_cls([p], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        diff = p - Tensor(target)
        loss = (diff * diff).sum()
        loss.backward()
        opt.step()
    return p.data, target


class TestOptimizers:
    def test_sgd_converges(self):
        final, target = _quadratic_descend(SGD, steps=100, lr=0.1)
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        final, target = _quadratic_descend(SGD, steps=200, lr=0.01, momentum=0.9)
        np.testing.assert_allclose(final, target, atol=1e-2)

    def test_adam_converges(self):
        final, target = _quadratic_descend(Adam, steps=400, lr=0.1)
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        no_decay, target = _quadratic_descend(SGD, steps=200, lr=0.1)
        decayed, _ = _quadratic_descend(SGD, steps=200, lr=0.1, weight_decay=1.0)
        assert np.linalg.norm(decayed) < np.linalg.norm(no_decay)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_step_skips_missing_grads(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward yet; must not crash
        np.testing.assert_array_equal(p.data, np.ones(2))


class TestInPlaceUpdates:
    """The optimisers must update ``p.data`` in place — the TrainingEngine
    binds kernels to the parameter arrays themselves, so a step that
    reallocates would silently train a dead copy."""

    @pytest.mark.parametrize(
        "make_opt",
        [
            lambda params: SGD(params, lr=0.1),
            lambda params: SGD(params, lr=0.1, momentum=0.9),
            lambda params: SGD(params, lr=0.1, weight_decay=0.01),
            lambda params: SGD(params, lr=0.1, momentum=0.9, weight_decay=0.01),
            lambda params: Adam(params, lr=0.1),
            lambda params: Adam(params, lr=0.1, weight_decay=0.01),
        ],
    )
    def test_data_identity_preserved(self, make_opt):
        rng = np.random.default_rng(0)
        params = [Tensor(rng.normal(size=(3, 4)), requires_grad=True) for _ in range(2)]
        arrays = [p.data for p in params]
        opt = make_opt(params)
        for _ in range(3):
            for p in params:
                p.grad = rng.normal(size=p.data.shape)
            opt.step()
        for p, original in zip(params, arrays):
            assert p.data is original  # same buffer, mutated in place

    @pytest.mark.parametrize("optimizer_cls", [SGD, Adam])
    def test_step_bumps_version(self, optimizer_cls):
        p = Tensor(np.ones(4), requires_grad=True)
        opt = optimizer_cls([p], lr=0.1)
        p.grad = np.ones(4)
        before = p.version
        opt.step()
        assert p.version > before  # engines key cached casts on this

    def test_float32_params_keep_dtype_and_state(self):
        p = Tensor(np.ones((2, 2)), requires_grad=True)
        p.data = p.data.astype(np.float32)  # as TrainingEngine.parameters_bound does
        opt = Adam([p], lr=0.01)
        p.grad = np.full((2, 2), 0.5, dtype=np.float32)
        opt.step()
        assert p.data.dtype == np.float32
        assert all(buf.dtype == np.float32 for buf in opt._state[0].values())

    @pytest.mark.parametrize("optimizer_cls", [SGD, Adam])
    def test_inplace_matches_scalar_reference(self, optimizer_cls):
        """The buffered implementation is numerically the textbook update."""
        final, target = _quadratic_descend(optimizer_cls, steps=50, lr=0.05)
        # Reference: plain float arithmetic on the same quadratic.
        ref = np.zeros(2)
        if optimizer_cls is SGD:
            for _ in range(50):
                ref = ref - 0.05 * 2 * (ref - target)
        else:
            m = np.zeros(2)
            v = np.zeros(2)
            for t in range(1, 51):
                g = 2 * (ref - target)
                m = 0.9 * m + 0.1 * g
                v = 0.999 * v + 0.001 * g * g
                m_hat = m / (1 - 0.9**t)
                v_hat = v / (1 - 0.999**t)
                ref = ref - 0.05 * m_hat / (np.sqrt(v_hat) + 1e-8)
        np.testing.assert_allclose(final, ref, atol=1e-12)
