"""Numerical gradient checks for the autograd primitives."""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.tensor import Tensor, no_grad


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(op, *shapes, tol=1e-6, positive=False, seed=0):
    """Compare autograd gradients of ``sum(op(*inputs))`` against finite differences."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=shape) for shape in shapes]
    if positive:
        arrays = [np.abs(a) + 0.5 for a in arrays]
    for target in range(len(arrays)):
        tensors = [Tensor(a.copy(), requires_grad=(i == target)) for i, a in enumerate(arrays)]
        out = op(*tensors)
        out.sum().backward()
        analytic = tensors[target].grad

        def scalar_fn(value, target=target):
            inputs = [value if i == target else arrays[i] for i in range(len(arrays))]
            with no_grad():
                return float(op(*[Tensor(v) for v in inputs]).sum().data)

        numeric = numerical_gradient(scalar_fn, arrays[target].copy())
        np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


class TestElementwise:
    def test_add(self):
        check_gradient(ops.add, (3, 4), (3, 4))

    def test_add_broadcast_rows(self):
        check_gradient(ops.add, (3, 4), (4,))

    def test_add_broadcast_scalar(self):
        check_gradient(ops.add, (3, 4), (1,))

    def test_mul(self):
        check_gradient(ops.mul, (5,), (5,))

    def test_mul_broadcast(self):
        check_gradient(ops.mul, (2, 3, 4), (3, 4))

    def test_div(self):
        check_gradient(ops.div, (4, 2), (4, 2), positive=True)

    def test_power(self):
        check_gradient(lambda a: ops.power(a, 3.0), (6,))

    def test_exp(self):
        check_gradient(ops.exp, (3, 3))

    def test_log(self):
        check_gradient(ops.log, (7,), positive=True)

    def test_tanh(self):
        check_gradient(ops.tanh, (4, 4))

    def test_sigmoid(self):
        check_gradient(ops.sigmoid, (4, 4))

    def test_relu(self):
        # Avoid kink at zero by shifting away from it.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 5))
        x[np.abs(x) < 0.1] += 0.2
        t = Tensor(x, requires_grad=True)
        ops.relu(t).sum().backward()
        np.testing.assert_allclose(t.grad, (x > 0).astype(float))

    def test_abs(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5,))
        x[np.abs(x) < 0.1] += 0.3
        t = Tensor(x, requires_grad=True)
        ops.abs_(t).sum().backward()
        np.testing.assert_allclose(t.grad, np.sign(x))

    def test_maximum(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=(6,)), rng.normal(size=(6,))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        ops.maximum(ta, tb).sum().backward()
        np.testing.assert_allclose(ta.grad, (a >= b).astype(float))
        np.testing.assert_allclose(tb.grad, (a < b).astype(float))

    def test_clip_gradient_masked_outside(self):
        x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        t = Tensor(x, requires_grad=True)
        ops.clip(t, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0, 1.0, 0.0])


class TestMatmulReductions:
    def test_matmul(self):
        check_gradient(ops.matmul, (3, 4), (4, 2))

    def test_sum_all(self):
        check_gradient(lambda a: ops.sum_(a), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda a: ops.sum_(a, axis=1), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda a: ops.sum_(a, axis=0, keepdims=True), (3, 4))

    def test_mean_all(self):
        check_gradient(lambda a: ops.mean(a), (4, 5))

    def test_mean_axis(self):
        check_gradient(lambda a: ops.mean(a, axis=-1), (4, 5))

    def test_max_axis(self):
        # Distinct values avoid ties at the max.
        x = np.arange(12.0).reshape(3, 4) + np.random.default_rng(0).normal(scale=0.01, size=(3, 4))
        t = Tensor(x, requires_grad=True)
        ops.max_(t, axis=1).sum().backward()
        expected = np.zeros_like(x)
        expected[np.arange(3), x.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_max_tie_splits_gradient(self):
        x = np.array([[1.0, 1.0, 0.0]])
        t = Tensor(x, requires_grad=True)
        ops.max_(t, axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])


class TestShapeOps:
    def test_reshape(self):
        check_gradient(lambda a: ops.reshape(a, (6, 2)), (3, 4))

    def test_transpose_default(self):
        check_gradient(lambda a: ops.transpose(a), (3, 4))

    def test_transpose_axes(self):
        check_gradient(lambda a: ops.transpose(a, (2, 0, 1)), (2, 3, 4))

    def test_getitem_slice(self):
        check_gradient(lambda a: ops.getitem(a, (slice(0, 2), slice(1, 3))), (4, 4))

    def test_getitem_fancy_accumulates(self):
        x = np.ones((4,))
        t = Tensor(x, requires_grad=True)
        ops.getitem(t, np.array([0, 0, 2])).sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])

    def test_concatenate(self):
        check_gradient(lambda a, b: ops.concatenate([a, b], axis=0), (2, 3), (4, 3))

    def test_concatenate_axis1(self):
        check_gradient(lambda a, b: ops.concatenate([a, b], axis=1), (2, 3), (2, 5))

    def test_pad2d(self):
        check_gradient(lambda a: ops.pad2d(a, 2), (2, 1, 4, 4))


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        out = ops.softmax(Tensor(rng.normal(size=(5, 10)))).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5))

    def test_softmax_gradient(self):
        check_gradient(lambda a: ops.mul(ops.softmax(a), np.arange(4.0)).sum(), (3, 4))

    def test_log_softmax_gradient(self):
        check_gradient(lambda a: ops.mul(ops.log_softmax(a), np.arange(4.0)).sum(), (3, 4))

    def test_softmax_temperature_flattens(self):
        logits = Tensor(np.array([[10.0, 0.0, -10.0]]))
        sharp = ops.softmax(logits, temperature=1.0).data
        flat = ops.softmax(logits, temperature=100.0).data
        assert sharp.max() > 0.99
        assert flat.max() < 0.4

    def test_temperature_gradient(self):
        check_gradient(
            lambda a: ops.mul(ops.softmax(a, temperature=5.0), np.arange(4.0)).sum(), (2, 4)
        )

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(
            ops.log_softmax(x).data, np.log(ops.softmax(x).data), atol=1e-12
        )

    def test_softmax_stability_large_logits(self):
        out = ops.softmax(Tensor(np.array([[1000.0, 999.0, 0.0]]))).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(), 1.0)


class TestConvPool:
    def test_conv2d_gradient_input(self):
        check_gradient(
            lambda x, w, b: ops.conv2d(x, w, b), (2, 2, 5, 5), (3, 2, 3, 3), (3,), tol=1e-5
        )

    def test_conv2d_stride2(self):
        check_gradient(
            lambda x, w, b: ops.conv2d(x, w, b, stride=2), (1, 1, 6, 6), (2, 1, 2, 2), (2,), tol=1e-5
        )

    def test_conv2d_padding(self):
        check_gradient(
            lambda x, w, b: ops.conv2d(x, w, b, padding=1), (1, 2, 4, 4), (2, 2, 3, 3), (2,), tol=1e-5
        )

    def test_conv2d_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        out = ops.conv2d(Tensor(x), Tensor(w), Tensor(b)).data
        naive = np.zeros_like(out)
        for n in range(2):
            for f in range(4):
                for i in range(4):
                    for j in range(4):
                        patch = x[n, :, i : i + 3, j : j + 3]
                        naive[n, f, i, j] = (patch * w[f]).sum() + b[f]
        np.testing.assert_allclose(out, naive, atol=1e-10)

    def test_maxpool_fast_path(self):
        check_gradient(lambda x: ops.max_pool2d(x, 2), (2, 2, 4, 4), tol=1e-5)

    def test_maxpool_general_path(self):
        check_gradient(lambda x: ops.max_pool2d(x, 3, stride=2), (1, 2, 7, 7), tol=1e-5)

    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = ops.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_maxpool_tie_routes_to_single_input(self):
        x = np.ones((1, 1, 2, 2))
        t = Tensor(x, requires_grad=True)
        ops.max_pool2d(t, 2).sum().backward()
        assert t.grad.sum() == pytest.approx(1.0)
        assert (t.grad > 0).sum() == 1

    def test_im2col_col2im_roundtrip_counts(self):
        # col2im(im2col(x)) multiplies each pixel by its window membership count.
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4))
        cols = ops.im2col(x, 2, 1)
        back = ops.col2im(cols, x.shape, 2, 1)
        counts = ops.col2im(np.ones_like(cols), x.shape, 2, 1)
        np.testing.assert_allclose(back, x * counts, atol=1e-12)


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((3,)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_without_grad_flag_raises(self):
        t = Tensor(np.ones(()))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = t * 3.0 + t * 4.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_no_grad_disables_recording(self):
        with no_grad():
            t = Tensor(np.ones((2,)), requires_grad=True)
            out = t * 2.0
        assert not out.requires_grad
        assert not t.requires_grad

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = (t * 2.0).detach() * 3.0
        assert not out.requires_grad

    def test_deep_chain_does_not_overflow(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out * 1.0001
        out.sum().backward()
        assert t.grad is not None
        assert np.isfinite(t.grad).all()

    def test_diamond_graph_gradient(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * 2.0
        b = t * 5.0
        (a * b).sum().backward()
        # d/dt (2t * 5t) = 20t = 60
        np.testing.assert_allclose(t.grad, [60.0])
