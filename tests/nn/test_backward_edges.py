"""Edge cases of Tensor.backward and graph state handling."""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


class TestBackwardContract:
    def test_explicit_vector_gradient(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2.0
        out.backward(np.array([1.0, 10.0, 100.0]))
        np.testing.assert_allclose(t.grad, [2.0, 20.0, 200.0])

    def test_gradient_shape_mismatch_rejected(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2.0
        with pytest.raises(ValueError, match="shape"):
            out.backward(np.ones(4))

    def test_repeated_backward_on_new_graphs(self):
        t = Tensor(np.ones(2), requires_grad=True)
        for i in range(1, 4):
            (t * float(i)).sum().backward()
        # Gradients accumulate across graphs until zero_grad.
        np.testing.assert_allclose(t.grad, [6.0, 6.0])
        t.zero_grad()
        assert t.grad is None

    def test_zero_size_leaf_unaffected(self):
        used = Tensor(np.ones(2), requires_grad=True)
        unused = Tensor(np.ones(2), requires_grad=True)
        (used * 3.0).sum().backward()
        assert unused.grad is None


class TestGradModeState:
    def test_flag_restored_after_exception(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_ops_inside_no_grad_produce_constants(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            frozen = ops.tanh(t)
        live = ops.tanh(t)
        assert not frozen.requires_grad
        assert live.requires_grad
