"""Tests for BatchNorm and AvgPool2D."""

import numpy as np
import pytest

from repro.nn import Adam, AvgPool2D, BatchNorm1D, BatchNorm2D, Dense, Flatten, Network, ReLU, TrainConfig, fit, ops
from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import Tensor


class TestAvgPool:
    def test_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = ops.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_gradient(self):
        check_gradients(lambda x: ops.avg_pool2d(x, 2), [(2, 2, 4, 4)])

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            ops.avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_layer_shape(self):
        layer = AvgPool2D(2)
        assert layer.output_shape((3, 8, 8)) == (3, 4, 4)
        out = layer(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 3, 4, 4)


class TestBatchNorm2D:
    def test_training_normalises_batch(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm2D(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(16, 3, 4, 4))
        out = bn(Tensor(x), training=True).data
        assert abs(out.mean()) < 1e-6
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_running_stats_track_data(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm2D(2, momentum=0.0)  # adopt the batch stats directly
        x = rng.normal(loc=2.0, scale=0.5, size=(64, 2, 3, 3))
        bn(Tensor(x), training=True)
        np.testing.assert_allclose(bn.running_mean, x.mean(axis=(0, 2, 3)), atol=1e-9)

    def test_inference_uses_running_stats(self):
        bn = BatchNorm2D(1, momentum=0.0)
        train_batch = np.random.default_rng(2).normal(loc=3.0, size=(32, 1, 2, 2))
        bn(Tensor(train_batch), training=True)
        # A wildly different inference batch must be normalised by the
        # running stats, not its own.
        test_batch = np.full((4, 1, 2, 2), 3.0)
        out = bn(Tensor(test_batch), training=False).data
        assert abs(out.mean()) < 0.5

    def test_gamma_beta_trainable(self):
        bn = BatchNorm2D(2)
        assert len(list(bn.parameters())) == 2
        x = Tensor(np.random.default_rng(3).normal(size=(8, 2, 2, 2)))
        out = bn(x, training=True)
        out.sum().backward()
        assert bn.params["gamma"].grad is not None
        assert bn.params["beta"].grad is not None

    def test_state_roundtrip_includes_running_stats(self):
        bn = BatchNorm2D(2)
        bn(Tensor(np.random.default_rng(4).normal(size=(8, 2, 2, 2))), training=True)
        state = bn.state()
        clone = BatchNorm2D(2)
        clone.load_state(state)
        np.testing.assert_array_equal(clone.running_mean, bn.running_mean)
        np.testing.assert_array_equal(clone.running_var, bn.running_var)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            BatchNorm2D(2, momentum=1.0)


class TestBatchNorm1D:
    def test_shapes(self):
        bn = BatchNorm1D(5)
        out = bn(Tensor(np.random.default_rng(0).normal(size=(7, 5))), training=True)
        assert out.shape == (7, 5)

    def test_network_with_batchnorm_trains(self):
        rng = np.random.default_rng(5)
        centers = np.array([[2.0, 2.0], [-2.0, -2.0]])
        labels = rng.integers(0, 2, 150)
        x = centers[labels] + rng.normal(scale=0.5, size=(150, 2))
        net = Network(
            [Dense(2, 16, rng), BatchNorm1D(16), ReLU(), Dense(16, 2, rng)], (2,)
        )
        fit(net, Adam(net.parameters(), lr=0.01), x, labels,
            TrainConfig(epochs=25, batch_size=32), np.random.default_rng(6))
        assert net.accuracy(x, labels) > 0.9
