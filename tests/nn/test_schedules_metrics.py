"""Tests for LR schedules, classification metrics and gradcheck utility."""

import numpy as np
import pytest

from repro.nn import Dense, Network, SGD, ops
from repro.nn.gradcheck import GradientCheckError, check_gradients
from repro.nn.metrics import confusion_matrix, expected_calibration_error, per_class_accuracy
from repro.nn.schedules import ConstantSchedule, CosineSchedule, StepSchedule, WarmupSchedule
from repro.nn.tensor import Tensor


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule(0.1).rate(99) == 0.1

    def test_step(self):
        schedule = StepSchedule(1.0, step=10, gamma=0.5)
        assert schedule.rate(0) == 1.0
        assert schedule.rate(10) == 0.5
        assert schedule.rate(25) == 0.25

    def test_cosine_endpoints(self):
        schedule = CosineSchedule(1.0, epochs=100, min_lr=0.1)
        assert schedule.rate(0) == pytest.approx(1.0)
        assert schedule.rate(100) == pytest.approx(0.1)
        assert schedule.rate(50) == pytest.approx(0.55)

    def test_cosine_monotone_decreasing(self):
        schedule = CosineSchedule(1.0, epochs=50)
        rates = [schedule.rate(e) for e in range(51)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_warmup_ramps_then_delegates(self):
        schedule = WarmupSchedule(ConstantSchedule(1.0), warmup=4)
        assert schedule.rate(0) == pytest.approx(0.25)
        assert schedule.rate(3) == pytest.approx(1.0)
        assert schedule.rate(10) == 1.0

    def test_apply_sets_optimizer_lr(self):
        rng = np.random.default_rng(0)
        net = Network([Dense(2, 2, rng)], (2,))
        opt = SGD(net.parameters(), lr=123.0)
        StepSchedule(1.0, step=5).apply(opt, epoch=7)
        assert opt.lr == pytest.approx(0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)
        with pytest.raises(ValueError):
            StepSchedule(1.0, step=0)
        with pytest.raises(ValueError):
            WarmupSchedule(ConstantSchedule(1.0), warmup=0)


class TestMetrics:
    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 2]), np.array([0, 1, 1, 2]), 3)
        expected = np.array([[1, 1, 0], [0, 1, 0], [0, 0, 1]])
        np.testing.assert_array_equal(matrix, expected)

    def test_confusion_rejects_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3, int), np.zeros(4, int), 2)

    def test_per_class_accuracy(self):
        true = np.array([0, 0, 1, 1, 1])
        pred = np.array([0, 1, 1, 1, 0])
        acc = per_class_accuracy(true, pred, 3)
        assert acc[0] == pytest.approx(0.5)
        assert acc[1] == pytest.approx(2 / 3)
        assert np.isnan(acc[2])

    def test_ece_perfectly_calibrated(self):
        # Confidence 1.0 and always right -> zero calibration error.
        probs = np.zeros((10, 3))
        probs[:, 0] = 1.0
        labels = np.zeros(10, dtype=int)
        assert expected_calibration_error(probs, labels) == pytest.approx(0.0)

    def test_ece_overconfident(self):
        # Confidence ~1.0 but only 50% right -> ECE near 0.5.
        probs = np.zeros((10, 2))
        probs[:, 0] = 0.99
        probs[:, 1] = 0.01
        labels = np.array([0, 1] * 5)
        assert expected_calibration_error(probs, labels) == pytest.approx(0.49, abs=0.01)


class TestGradcheckUtility:
    def test_passes_for_correct_op(self):
        check_gradients(ops.tanh, [(3, 3)])

    def test_fails_for_broken_op(self):
        def broken(a):
            out = ops.tanh(a)

            def bad_backward(grad):
                a._accumulate(grad * 0.123)  # wrong gradient on purpose

            return Tensor._from_op(out.data, (a,), bad_backward)

        with pytest.raises(GradientCheckError):
            check_gradients(broken, [(4,)])

    def test_positive_option(self):
        check_gradients(ops.log, [(5,)], positive=True)
