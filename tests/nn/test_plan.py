"""Tests for the compiled-plan layer: caching, invalidation, reuse hazards."""

import numpy as np
import pytest

from repro.nn import GradientEngine, InferenceEngine, SGD, Tensor, TrainingEngine, no_grad
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Network
from repro.nn.plan import CompiledPlan, compile_plan, supports
from repro.nn.train import TrainConfig, fit
from repro.verify.guards import GuardViolation

NUM_CLASSES = 3
INPUT_SHAPE = (1, 6, 6)


def _network(seed=0):
    rng = np.random.default_rng(seed)
    layers = [
        Conv2D(1, 2, 3, rng, stride=1, padding=1),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(2 * 3 * 3, NUM_CLASSES, rng),
    ]
    return Network(layers, INPUT_SHAPE)


def _batch(n=4, seed=1):
    return np.random.default_rng(seed).normal(size=(n,) + INPUT_SHAPE)


def _reference_logits(network, x):
    with no_grad():
        return network.forward(Tensor(np.asarray(x, dtype=np.float64))).data


class TestPlanCacheKeys:
    def test_batch_shape_change_misses_and_refreshes(self):
        engine = InferenceEngine(_network(), memo_entries=0)
        engine.logits(_batch(4), memo=False)
        assert engine.counters.plan_misses == 1
        engine.logits(_batch(4, seed=9), memo=False)  # same shape, new content
        assert engine.counters.plan_hits == 1
        engine.logits(_batch(2), memo=False)  # new shape compiles a new plan
        assert engine.counters.plan_misses == 2

    def test_plan_lru_is_bounded(self):
        engine = InferenceEngine(_network(), memo_entries=0, plan_entries=2)
        for n in (1, 2, 3):
            engine.logits(_batch(n), memo=False)
        assert len(engine._plans) == 2
        engine.logits(_batch(1), memo=False)  # n=1 was evicted: recompile
        assert engine.counters.plan_misses == 4

    def test_plan_entries_zero_recompiles_per_call(self):
        engine = InferenceEngine(_network(), memo_entries=0, plan_entries=0)
        x = _batch(3)
        first = engine.logits(x, memo=False)
        second = engine.logits(x, memo=False)
        assert engine.counters.plan_misses == 2 and engine.counters.plan_hits == 0
        np.testing.assert_array_equal(first, second)

    def test_negative_plan_entries_rejected(self):
        with pytest.raises(ValueError):
            InferenceEngine(_network(), plan_entries=-1)


class TestParameterInvalidation:
    def test_inplace_sgd_step_changes_compiled_results(self):
        # In-place optimiser updates bump Tensor.version; the identity+
        # version-checked cast cache must feed the *new* weights into the
        # already-compiled plan.
        network = _network()
        engine = network.engine
        x = _batch(4)
        before = engine.logits(x).copy()
        trainer = TrainingEngine(network, dtype=np.float64)
        optimizer = SGD(network.parameters(), lr=0.5)
        network.zero_grad()
        trainer.train_batch(x, np.arange(len(x)) % NUM_CLASSES)
        optimizer.step()
        after = engine.logits(x)
        assert engine.counters.plan_misses == 1  # same plan, refreshed params
        assert not np.allclose(before, after)
        np.testing.assert_allclose(
            after.astype(np.float64), _reference_logits(network, x), atol=1e-4
        )

    def test_fit_dtype_swap_rebinding_keeps_engines_coherent(self):
        # fit() rebinds every parameter to float32 for the run and restores
        # float64 on exit; both rebindings change array identity, and every
        # engine cache must follow without explicit invalidation.
        network = _network()
        x = _batch(16)
        y = np.arange(16) % NUM_CLASSES
        stale = network.engine.logits(x).copy()
        fit(
            network,
            SGD(network.parameters(), lr=0.1),
            x,
            y,
            TrainConfig(epochs=2, batch_size=8, verbose=False),
            np.random.default_rng(0),
        )
        assert network.parameters()[0].data.dtype == np.float64
        trained = network.engine.logits(x)
        assert not np.allclose(stale, trained)
        np.testing.assert_allclose(
            trained.astype(np.float64), _reference_logits(network, x), atol=1e-4
        )

    def test_memo_stays_consistent_with_compiled_plans(self):
        network = _network()
        engine = network.engine
        x = _batch(4)
        memoised = engine.logits(x)  # primes the memo
        fresh = engine.logits(x, memo=False)  # straight through the plan
        np.testing.assert_array_equal(memoised, fresh)
        hit = engine.logits(x)
        assert engine.counters.memo_hits == 1
        np.testing.assert_array_equal(hit, fresh)


class TestEmptyBatch:
    def test_infer_plan_handles_zero_examples(self):
        network = _network()
        plan = compile_plan(network, (0,) + INPUT_SHAPE, np.float32, "infer", network.engine._cast)
        out = plan.run(np.zeros((0,) + INPUT_SHAPE, dtype=np.float32))
        assert out.shape == (0, NUM_CLASSES)

    def test_engines_handle_zero_examples_end_to_end(self):
        network = _network()
        empty = np.zeros((0,) + INPUT_SHAPE)
        labels = np.zeros((0,), dtype=int)
        assert network.engine.logits(empty).shape == (0, NUM_CLASSES)
        grad = GradientEngine(network)
        assert grad.cross_entropy_input_grad(empty, labels).shape == empty.shape
        trainer = TrainingEngine(network)
        value, logits = trainer.train_batch(empty, labels)
        assert value == 0.0 and logits.shape == (0, NUM_CLASSES)

    def test_grad_plan_forward_backward_with_zero_examples(self):
        network = _network()
        grad = GradientEngine(network)
        logits, ctx = grad.forward(np.zeros((0,) + INPUT_SHAPE))
        assert logits.shape == (0, NUM_CLASSES)
        out = grad.backward(ctx, np.zeros((0, NUM_CLASSES)))
        assert out.shape == (0,) + INPUT_SHAPE


class TestContextStaleness:
    def test_backward_after_newer_forward_raises(self):
        network = _network()
        grad = GradientEngine(network)
        x = _batch(3)
        _, old_ctx = grad.forward(x)
        grad.forward(_batch(3, seed=5))  # same plan: overwrites stashes
        with pytest.raises(GuardViolation) as err:
            grad.backward(old_ctx, np.ones((3, NUM_CLASSES)))
        assert err.value.kind == "stale-context"

    def test_contexts_from_different_shapes_stay_independent(self):
        network = _network()
        grad = GradientEngine(network)
        x = _batch(3)
        _, ctx = grad.forward(x)
        grad.forward(_batch(2))  # different shape -> different plan
        out = grad.backward(ctx, np.ones((3, NUM_CLASSES)))
        assert out.shape == x.shape


class TestCompiledPlanContract:
    def test_supports_matches_engine_fallback_decision(self):
        network = _network()
        assert supports(network)
        assert network.engine.supports_native

    def test_rejects_unknown_mode_and_trainless_accumulate(self):
        network = _network()
        with pytest.raises(ValueError):
            CompiledPlan(network, (1,) + INPUT_SHAPE, np.float32, "predict", network.engine._cast)
        with pytest.raises(ValueError):
            CompiledPlan(network, (1,) + INPUT_SHAPE, np.float32, "train", network.engine._cast)

    def test_caller_input_is_never_mutated(self):
        # ReLU heads the stack after conv; the compiled fusion must not
        # write through to the caller's array even when the first layer is
        # elementwise.
        rng = np.random.default_rng(3)
        network = Network([ReLU(), Flatten(), Dense(9, NUM_CLASSES, rng)], (1, 3, 3))
        x = np.random.default_rng(4).normal(size=(2, 1, 3, 3)).astype(np.float32)
        snapshot = x.copy()
        network.engine.logits(x, memo=False)
        np.testing.assert_array_equal(x, snapshot)

    def test_layer_outputs_align_with_network_layers(self):
        network = _network()
        x = np.ascontiguousarray(_batch(2), dtype=np.float64)
        engine64 = InferenceEngine(network, dtype=np.float64)
        plan = compile_plan(network, x.shape, np.float64, "infer", engine64._cast)
        outs = plan.layer_outputs(x)
        assert len(outs) == len(network.layers)
        with no_grad():
            ref = Tensor(x)
            for layer, out in zip(network.layers, outs):
                ref = layer.forward(ref, training=False)
                np.testing.assert_array_equal(out, ref.data)

    def test_arena_buffers_are_reused_across_calls(self):
        network = _network()
        engine = InferenceEngine(network, memo_entries=0)
        x = np.ascontiguousarray(_batch(4), dtype=np.float32)
        plan = engine._plan_for(x.shape)
        first = plan.run(x)
        second = plan.run(x)
        assert first is second  # same plan-owned buffer both times
        assert plan.arena_bytes > 0
