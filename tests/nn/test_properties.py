"""Hypothesis property tests on the autograd/NN core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import ops
from repro.nn.tensor import Tensor

finite = {"allow_nan": False, "allow_infinity": False}


@st.composite
def small_array(draw, shape=(3, 4), lo=-10.0, hi=10.0):
    return draw(hnp.arrays(np.float64, shape, elements=st.floats(lo, hi, **finite)))


class TestSoftmaxProperties:
    @given(small_array())
    @settings(max_examples=60, deadline=None)
    def test_rows_are_distributions(self, x):
        probs = ops.softmax(Tensor(x)).data
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)

    @given(small_array(), st.floats(-20, 20, **finite))
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance(self, x, shift):
        a = ops.softmax(Tensor(x)).data
        b = ops.softmax(Tensor(x + shift)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(small_array())
    @settings(max_examples=60, deadline=None)
    def test_argmax_preserved(self, x):
        probs = ops.softmax(Tensor(x)).data
        # softmax is monotone: the winning logit wins the probability too
        # (compare values, not indices — near-ties may reorder in float).
        winning = probs[np.arange(len(x)), x.argmax(axis=-1)]
        np.testing.assert_allclose(winning, probs.max(axis=-1), atol=1e-12)

    @given(small_array(), st.floats(1.5, 100.0, **finite))
    @settings(max_examples=60, deadline=None)
    def test_temperature_never_sharpens(self, x, temperature):
        base = ops.softmax(Tensor(x)).data
        cooled = ops.softmax(Tensor(x), temperature=temperature).data
        assert cooled.max(axis=-1).max() <= base.max(axis=-1).max() + 1e-9


class TestAutogradProperties:
    @given(small_array(), small_array())
    @settings(max_examples=40, deadline=None)
    def test_sum_rule(self, a, b):
        """grad(sum(a+b)) wrt a is all-ones regardless of b."""
        ta = Tensor(a, requires_grad=True)
        ops.sum_(ops.add(ta, Tensor(b))).backward()
        np.testing.assert_allclose(ta.grad, np.ones_like(a))

    @given(small_array())
    @settings(max_examples=40, deadline=None)
    def test_linearity_of_gradient(self, a):
        """grad of c*f accumulates as c * grad of f."""
        t1 = Tensor(a, requires_grad=True)
        ops.sum_(ops.mul(ops.tanh(t1), 3.0)).backward()
        t2 = Tensor(a, requires_grad=True)
        ops.sum_(ops.tanh(t2)).backward()
        np.testing.assert_allclose(t1.grad, 3.0 * t2.grad, atol=1e-9)

    @given(small_array(shape=(2, 3)))
    @settings(max_examples=40, deadline=None)
    def test_reshape_preserves_gradient_mass(self, a):
        t = Tensor(a, requires_grad=True)
        ops.sum_(ops.mul(ops.reshape(t, (6,)), 2.0)).backward()
        np.testing.assert_allclose(t.grad, np.full_like(a, 2.0))

    @given(small_array(shape=(4,), lo=0.5, hi=5.0))
    @settings(max_examples=40, deadline=None)
    def test_log_exp_roundtrip_gradient(self, a):
        t = Tensor(a, requires_grad=True)
        ops.sum_(ops.log(ops.exp(t))).backward()
        np.testing.assert_allclose(t.grad, np.ones_like(a), atol=1e-9)


class TestConvProperties:
    @given(
        small_array(shape=(1, 1, 5, 5), lo=-2, hi=2),
        small_array(shape=(2, 1, 3, 3), lo=-1, hi=1),
        st.floats(0.1, 3.0, **finite),
    )
    @settings(max_examples=30, deadline=None)
    def test_conv_linear_in_input(self, x, w, scale):
        bias = Tensor(np.zeros(2))
        out1 = ops.conv2d(Tensor(x * scale), Tensor(w), bias).data
        out2 = ops.conv2d(Tensor(x), Tensor(w), bias).data * scale
        np.testing.assert_allclose(out1, out2, atol=1e-9)

    @given(small_array(shape=(1, 1, 6, 6), lo=-3, hi=3))
    @settings(max_examples=30, deadline=None)
    def test_maxpool_bounds(self, x):
        out = ops.max_pool2d(Tensor(x), 2).data
        assert out.max() <= x.max() + 1e-12
        assert out.min() >= x.min() - 1e-12
        # Pooling a constant image is the identity value.
        const = ops.max_pool2d(Tensor(np.full_like(x, 1.5)), 2).data
        np.testing.assert_allclose(const, 1.5)

    @given(small_array(shape=(2, 1, 4, 4), lo=-2, hi=2))
    @settings(max_examples=30, deadline=None)
    def test_im2col_preserves_values(self, x):
        cols = ops.im2col(x, 2, 2)
        # Non-overlapping windows: the multiset of values is preserved.
        np.testing.assert_allclose(np.sort(cols.ravel()), np.sort(x.ravel()))
