"""Tests for the Network container: inference API, serialisation, gradients."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, Network, ReLU
from repro.nn import losses
from repro.nn.tensor import Tensor


@pytest.fixture
def small_cnn():
    rng = np.random.default_rng(0)
    layers = [
        Conv2D(1, 4, 3, rng, padding=1),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(4 * 4 * 4, 10, rng),
    ]
    return Network(layers, (1, 8, 8))


@pytest.fixture
def mlp():
    rng = np.random.default_rng(1)
    return Network([Dense(6, 8, rng), ReLU(), Dense(8, 3, rng)], (6,))


class TestShapes:
    def test_output_shape(self, small_cnn):
        assert small_cnn.output_shape == (10,)
        assert small_cnn.num_classes == 10

    def test_logits_shape(self, small_cnn):
        out = small_cnn.logits(np.zeros((5, 1, 8, 8)))
        assert out.shape == (5, 10)

    def test_num_parameters(self, mlp):
        assert mlp.num_parameters() == 6 * 8 + 8 + 8 * 3 + 3

    def test_non_vector_output_rejected(self):
        rng = np.random.default_rng(0)
        net = Network([Conv2D(1, 2, 3, rng)], (1, 8, 8))
        with pytest.raises(ValueError):
            net.num_classes


class TestInference:
    def test_softmax_rows_normalised(self, small_cnn):
        probs = small_cnn.softmax(np.random.default_rng(0).normal(size=(4, 1, 8, 8)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))
        assert (probs >= 0).all()

    def test_predict_matches_argmax(self, small_cnn):
        x = np.random.default_rng(0).normal(size=(6, 1, 8, 8))
        np.testing.assert_array_equal(small_cnn.predict(x), small_cnn.logits(x).argmax(axis=1))

    def test_batched_logits_match_single_pass(self, small_cnn):
        # Inference runs on the engine's float32 kernels, where BLAS
        # blocking differs per batch shape — tolerance, not bit equality.
        x = np.random.default_rng(0).normal(size=(7, 1, 8, 8))
        np.testing.assert_allclose(
            small_cnn.logits(x, batch_size=2), small_cnn.logits(x, batch_size=256), atol=1e-5
        )

    def test_temperature_softmax_flatter(self, small_cnn):
        x = np.random.default_rng(0).normal(size=(3, 1, 8, 8))
        sharp = small_cnn.softmax(x, temperature=1.0)
        flat = small_cnn.softmax(x, temperature=50.0)
        assert flat.max() < sharp.max() + 1e-9
        np.testing.assert_allclose(flat.sum(axis=1), np.ones(3))

    def test_accuracy(self, mlp):
        x = np.random.default_rng(2).normal(size=(10, 6))
        y = mlp.predict(x)
        assert mlp.accuracy(x, y) == 1.0


class TestSerialisation:
    def test_state_roundtrip(self, small_cnn, tmp_path):
        x = np.random.default_rng(0).normal(size=(2, 1, 8, 8))
        expected = small_cnn.logits(x)
        path = tmp_path / "weights.npz"
        small_cnn.save(path)

        rng = np.random.default_rng(42)
        clone = Network(
            [
                Conv2D(1, 4, 3, rng, padding=1),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 4 * 4, 10, rng),
            ],
            (1, 8, 8),
        )
        assert not np.allclose(clone.logits(x), expected)
        clone.load(path)
        np.testing.assert_allclose(clone.logits(x), expected)

    def test_missing_layer_state_raises(self, mlp):
        with pytest.raises(KeyError):
            mlp.load_state({"layer0.weight": np.zeros((6, 8)), "layer0.bias": np.zeros(8)})


class TestInputGradient:
    def test_matches_finite_difference(self, mlp):
        x = np.random.default_rng(3).normal(size=(2, 6))
        labels = np.array([0, 2])

        def loss_fn(logits):
            return losses.cross_entropy(logits, labels)

        grad, value = mlp.input_gradient(x, loss_fn)
        assert grad.shape == x.shape
        eps = 1e-6
        for i in (0, 3):
            bumped = x.copy()
            bumped[0, i] += eps
            logits = mlp.forward(Tensor(bumped))
            upper = float(losses.cross_entropy(logits, labels).data)
            assert (upper - value) / eps == pytest.approx(grad[0, i], abs=1e-4)

    def test_gradient_nonzero(self, small_cnn):
        x = np.random.default_rng(4).normal(size=(1, 1, 8, 8)) * 0.1
        grad, _ = small_cnn.input_gradient(x, lambda logits: losses.cross_entropy(logits, np.array([3])))
        assert np.abs(grad).max() > 0
