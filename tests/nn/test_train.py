"""Training-loop tests: a small network must learn simple problems."""

import numpy as np
import pytest

from repro.nn import CROSS_ENTROPY, Adam, Dense, Network, ReLU, TrainConfig, fit
from repro.nn.losses import one_hot, soft_cross_entropy
from repro.nn.schedules import CosineSchedule, StepSchedule


def _two_blob_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[2.0, 2.0], [-2.0, -2.0]])
    labels = rng.integers(0, 2, size=n)
    x = centers[labels] + rng.normal(scale=0.5, size=(n, 2))
    return x, labels


def _make_net(seed=0, outputs=2):
    rng = np.random.default_rng(seed)
    return Network([Dense(2, 16, rng), ReLU(), Dense(16, outputs, rng)], (2,))


class TestFit:
    def test_learns_separable_blobs(self):
        x, y = _two_blob_data()
        net = _make_net()
        history = fit(
            net, Adam(net.parameters(), lr=0.01), x, y,
            TrainConfig(epochs=30, batch_size=32), np.random.default_rng(1),
        )
        assert net.accuracy(x, y) > 0.95
        assert history.loss[-1] < history.loss[0]

    def test_history_lengths(self):
        x, y = _two_blob_data(50)
        net = _make_net()
        history = fit(
            net, Adam(net.parameters()), x, y,
            TrainConfig(epochs=5, batch_size=16), np.random.default_rng(0),
            x_val=x, y_val=y,
        )
        assert len(history.loss) == 5
        assert len(history.accuracy) == 5
        assert len(history.val_accuracy) == 5
        assert history.seconds > 0

    def test_length_mismatch_rejected(self):
        net = _make_net()
        with pytest.raises(ValueError):
            fit(
                net, Adam(net.parameters()), np.zeros((10, 2)), np.zeros(5, dtype=int),
                TrainConfig(epochs=1), np.random.default_rng(0),
            )

    def test_soft_targets_supported(self):
        x, y = _two_blob_data(100)
        soft = one_hot(y, 2) * 0.9 + 0.05
        net = _make_net()
        fit(
            net, Adam(net.parameters(), lr=0.01), x, soft,
            TrainConfig(epochs=20, batch_size=32), np.random.default_rng(0),
            loss_fn=lambda logits, targets: soft_cross_entropy(logits, targets),
        )
        assert net.accuracy(x, y) > 0.9

    def test_lr_decay_applied(self):
        x, y = _two_blob_data(40)
        net = _make_net()
        opt = Adam(net.parameters(), lr=0.01)
        fit(net, opt, x, y, TrainConfig(epochs=3, lr_decay=0.5), np.random.default_rng(0))
        assert opt.lr == pytest.approx(0.01 * 0.5**3)

    def test_deterministic_given_seed(self):
        x, y = _two_blob_data(60)
        results = []
        for _ in range(2):
            net = _make_net(seed=7)
            fit(
                net, Adam(net.parameters(), lr=0.01), x, y,
                TrainConfig(epochs=3, batch_size=16), np.random.default_rng(5),
            )
            results.append(net.logits(x[:5]))
        np.testing.assert_array_equal(results[0], results[1])

    def test_params_stay_float64_after_engine_fit(self):
        """float32 engine training must restore the serialisation dtype."""
        x, y = _two_blob_data(40)
        net = _make_net()
        fit(net, Adam(net.parameters()), x, y, TrainConfig(epochs=2), np.random.default_rng(0))
        assert all(p.data.dtype == np.float64 for p in net.parameters())
        assert net.train_engine.counters.batches > 0

    def test_engine_and_autograd_agree_seed_for_seed(self):
        """float64 engine fit reproduces the legacy autograd fit exactly."""
        x, y = _two_blob_data(60)
        outputs = []
        for engine in (True, False):
            net = _make_net(seed=3)
            fit(
                net, Adam(net.parameters(), lr=0.01), x, y,
                TrainConfig(epochs=3, batch_size=16, dtype="float64", engine=engine),
                np.random.default_rng(5),
            )
            outputs.append(net.logits(x[:5]))
        np.testing.assert_allclose(outputs[0], outputs[1], atol=1e-9)

    def test_float32_engine_matches_autograd_accuracy(self):
        x, y = _two_blob_data()
        accuracies = []
        for engine in (True, False):
            net = _make_net(seed=1)
            fit(
                net, Adam(net.parameters(), lr=0.01), x, y,
                TrainConfig(epochs=30, batch_size=32, engine=engine),
                np.random.default_rng(1),
            )
            accuracies.append(net.accuracy(x, y))
        assert accuracies[0] > 0.95
        assert abs(accuracies[0] - accuracies[1]) <= 0.02

    def test_explicit_train_loss_without_engine(self):
        """A TrainLoss passed with engine=False must use its autograd form."""
        x, y = _two_blob_data(50)
        net = _make_net(seed=2)
        history = fit(
            net, Adam(net.parameters(), lr=0.01), x, y,
            TrainConfig(epochs=5, batch_size=16, engine=False), np.random.default_rng(0),
            loss=CROSS_ENTROPY,
        )
        assert history.loss[-1] < history.loss[0]


class TestSchedules:
    def test_epoch_seconds_recorded(self):
        x, y = _two_blob_data(40)
        net = _make_net()
        history = fit(
            net, Adam(net.parameters()), x, y,
            TrainConfig(epochs=4), np.random.default_rng(0),
        )
        assert len(history.epoch_seconds) == 4
        assert all(s > 0 for s in history.epoch_seconds)
        assert sum(history.epoch_seconds) <= history.seconds

    def test_step_schedule_drives_lr(self):
        x, y = _two_blob_data(40)
        net = _make_net()
        opt = Adam(net.parameters(), lr=0.01)
        schedule = StepSchedule(0.01, step=2, gamma=0.1)
        fit(net, opt, x, y, TrainConfig(epochs=4, schedule=schedule), np.random.default_rng(0))
        assert opt.lr == pytest.approx(schedule.rate(4))

    def test_callable_schedule_drives_lr(self):
        x, y = _two_blob_data(40)
        net = _make_net()
        opt = Adam(net.parameters(), lr=0.01)
        fit(
            net, opt, x, y,
            TrainConfig(epochs=3, schedule=lambda epoch: 0.01 / (1 + epoch)),
            np.random.default_rng(0),
        )
        assert opt.lr == pytest.approx(0.01 / 4)

    def test_cosine_schedule_converges(self):
        x, y = _two_blob_data()
        net = _make_net()
        opt = Adam(net.parameters(), lr=0.01)
        fit(
            net, opt, x, y,
            TrainConfig(epochs=30, batch_size=32, schedule=CosineSchedule(0.01, epochs=30, min_lr=1e-4)),
            np.random.default_rng(1),
        )
        assert net.accuracy(x, y) > 0.95
