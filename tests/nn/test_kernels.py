"""Tests for the shared kernel primitives: bounded im2col LRU, col2im reuse."""

import numpy as np
import pytest

from repro.nn.kernels import (
    IM2COL_CACHE,
    Im2colCache,
    col2im,
    conv_output_size,
    im2col_indices,
)


class TestIm2colCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Im2colCache(maxsize=0)

    def test_size_stays_bounded_under_many_geometries(self):
        # The pre-refactor module-level dict grew one entry per geometry
        # forever; the LRU must cap at maxsize no matter the traffic.
        cache = Im2colCache(maxsize=4)
        for side in range(6, 40):
            cache.get(1, side, side, 3, 1)
        assert len(cache) == 4

    def test_lru_evicts_least_recently_used(self):
        cache = Im2colCache(maxsize=2)
        a = cache.get(1, 6, 6, 2, 2)
        cache.get(1, 8, 8, 2, 2)
        cache.get(1, 6, 6, 2, 2)  # refresh A
        cache.get(1, 10, 10, 2, 2)  # evicts the 8x8 entry, not A
        hits_before = cache.hits
        assert cache.get(1, 6, 6, 2, 2) is a
        assert cache.hits == hits_before + 1
        misses_before = cache.misses
        cache.get(1, 8, 8, 2, 2)  # was evicted: must recompute
        assert cache.misses == misses_before + 1

    def test_hit_returns_identical_entry(self):
        cache = Im2colCache(maxsize=8)
        first = cache.get(2, 7, 7, 3, 2)
        again = cache.get(2, 7, 7, 3, 2)
        assert first is again
        assert cache.hits == 1 and cache.misses == 1

    def test_process_wide_cache_is_bounded(self):
        assert isinstance(IM2COL_CACHE, Im2colCache)
        assert IM2COL_CACHE.maxsize >= 1

    def test_indices_match_manual_patch_extraction(self):
        c, h, w, k, s = 2, 5, 5, 3, 2
        idx, out_h, out_w = im2col_indices(c, h, w, k, s)
        assert (out_h, out_w) == (conv_output_size(h, k, s), conv_output_size(w, k, s))
        x = np.arange(c * h * w, dtype=np.float64).reshape(1, c * h * w)
        cols = np.take(x, idx, axis=1).reshape(out_h * out_w, c * k * k)
        img = x.reshape(c, h, w)
        row = 0
        for i in range(out_h):
            for j in range(out_w):
                patch = img[:, i * s : i * s + k, j * s : j * s + k].reshape(-1)
                np.testing.assert_array_equal(cols[row], patch)
                row += 1


class TestCol2im:
    def test_preallocated_out_matches_allocating_form(self):
        rng = np.random.default_rng(0)
        n, c, h, w, k, s = 2, 3, 6, 6, 2, 2
        _, out_h, out_w = im2col_indices(c, h, w, k, s)
        cols = rng.normal(size=(n * out_h * out_w, c * k * k))
        fresh = col2im(cols, (n, c, h, w), k, s, out_h, out_w)
        buffer = np.full((n, c, h, w), 7.5)  # stale values must be cleared
        reused = col2im(cols, (n, c, h, w), k, s, out_h, out_w, out=buffer)
        assert reused is buffer
        np.testing.assert_array_equal(fresh, reused)
