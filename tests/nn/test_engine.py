"""Tests for the InferenceEngine: parity, memoisation, counters, voting."""

import numpy as np
import pytest

from repro.defenses.region import region_vote
from repro.nn import InferenceEngine, Tensor, counter_delta, no_grad
from repro.nn.layers import Layer
from repro.nn.network import Network
from repro.zoo import model_for_dataset


def legacy_logits(network, x, batch_size=256):
    """The pre-engine prediction path: float64 autograd forward, batched."""
    outputs = []
    with no_grad():
        for begin in range(0, len(x), batch_size):
            outputs.append(network.forward(Tensor(x[begin : begin + batch_size])).data)
    return np.concatenate(outputs, axis=0)


@pytest.fixture(scope="module")
def zoo_model():
    """The trained mnist-fast CNN plus a slice of test images."""
    dataset, model = model_for_dataset("mnist-fast")
    return model, dataset.x_test[:64]


class TestParity:
    def test_zoo_cnn_runs_native_kernels(self, zoo_model):
        model, _ = zoo_model
        assert model.engine.supports_native

    def test_float32_matches_legacy_within_1e4(self, zoo_model):
        model, x = zoo_model
        reference = legacy_logits(model, x)
        out = model.engine.logits(x, memo=False)
        assert out.dtype == np.float32
        assert np.max(np.abs(out.astype(np.float64) - reference)) < 1e-4
        np.testing.assert_array_equal(out.argmax(axis=-1), reference.argmax(axis=-1))

    def test_float64_engine_bit_exact_with_legacy(self, zoo_model):
        model, x = zoo_model
        engine = InferenceEngine(model, dtype=np.float64)
        np.testing.assert_array_equal(engine.logits(x, memo=False), legacy_logits(model, x))

    def test_batch_size_does_not_change_result(self, zoo_model):
        model, x = zoo_model
        # BLAS blocking depends on the matrix shape, so different batch
        # plans can differ in the last ulp — tolerances, not bit equality.
        exact = InferenceEngine(model, dtype=np.float64)
        np.testing.assert_allclose(
            exact.logits(x, batch_size=7, memo=False),
            exact.logits(x, batch_size=64, memo=False),
            rtol=1e-12,
        )
        a = model.engine.logits(x, batch_size=7, memo=False)
        b = model.engine.logits(x, batch_size=64, memo=False)
        np.testing.assert_allclose(a, b, atol=1e-4)

    def test_empty_input(self, zoo_model):
        model, _ = zoo_model
        out = model.engine.logits(np.zeros((0,) + model.input_shape))
        assert out.shape == (0,) + model.output_shape

    def test_unknown_layer_falls_back_to_legacy_forward(self, tiny_model):
        class Scale(Layer):
            def forward(self, x, training):
                return x * 2.0

            def output_shape(self, input_shape):
                return input_shape

        network, x, _ = tiny_model
        wrapped = Network(list(network.layers) + [Scale()], network.input_shape)
        engine = InferenceEngine(wrapped, dtype=np.float64)
        assert not engine.supports_native
        np.testing.assert_allclose(
            engine.logits(x[:8], memo=False), 2.0 * legacy_logits(network, x[:8]), rtol=1e-12
        )


class TestMemo:
    def test_repeat_query_hits_memo_with_identical_labels(self, zoo_model):
        model, x = zoo_model
        engine = InferenceEngine(model)
        first = engine.predict(x)
        before = engine.counters.snapshot()
        second = engine.predict(x)
        delta = counter_delta(before, engine.counters)
        assert delta["memo_hits"] == 1
        assert delta["examples"] == 0  # nothing re-ran through the network
        np.testing.assert_array_equal(first, second)

    def test_memo_off_recomputes(self, zoo_model):
        model, x = zoo_model
        engine = InferenceEngine(model)
        engine.logits(x, memo=False)
        before = engine.counters.snapshot()
        engine.logits(x, memo=False)
        delta = counter_delta(before, engine.counters)
        assert delta["memo_hits"] == 0
        assert delta["examples"] == len(x)

    def test_memo_invalidated_when_parameters_change(self, tiny_model):
        network, x, _ = tiny_model
        engine = InferenceEngine(network)
        stale = engine.logits(x[:4]).copy()
        saved = network.state()
        try:
            perturbed = {key: value + 0.25 for key, value in saved.items()}
            network.load_state(perturbed)
            fresh = engine.logits(x[:4])
            assert np.abs(fresh - stale).max() > 1e-6
        finally:
            network.load_state(saved)

    def test_lru_eviction_bounds_memo(self, tiny_model):
        network, x, _ = tiny_model
        engine = InferenceEngine(network, memo_entries=2)
        for i in range(4):
            engine.logits(x[i : i + 1])
        assert len(engine._memo) == 2


class TestCounters:
    def test_batch_accounting(self, tiny_model):
        network, x, _ = tiny_model
        engine = InferenceEngine(network)
        engine.logits(x[:10], batch_size=4, memo=False)
        c = engine.counters
        assert c.requests == 1
        assert c.forward_batches == 3  # 4 + 4 + 2
        assert c.examples == 10
        assert c.memo_hits == 0 and c.memo_misses == 0
        assert c.seconds > 0.0

    def test_reset(self, tiny_model):
        network, x, _ = tiny_model
        engine = InferenceEngine(network)
        engine.predict(x[:4])
        engine.reset_counters()
        assert engine.counters.examples == 0

    def test_counter_delta(self, tiny_model):
        network, x, _ = tiny_model
        engine = InferenceEngine(network)
        before = engine.counters.snapshot()
        engine.logits(x[:6], memo=False)
        delta = counter_delta(before, engine.counters)
        assert delta["examples"] == 6
        assert delta["requests"] == 1


def bincount_region_vote(network, x, radius, samples, rng, batch_size=512):
    """The pre-vectorisation region vote: per-row np.bincount accumulation."""
    from repro.datasets.dataset import PIXEL_MAX, PIXEL_MIN

    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    num_classes = network.num_classes
    votes = np.zeros((n, num_classes), dtype=np.int64)
    per_chunk = max(1, batch_size // max(1, samples))
    for start in range(0, n, per_chunk):
        chunk = x[start : start + per_chunk]
        noise = rng.uniform(-radius, radius, size=(len(chunk), samples) + chunk.shape[1:])
        points = np.clip(chunk[:, None] + noise, PIXEL_MIN, PIXEL_MAX)
        flat = points.reshape((-1,) + chunk.shape[1:])
        labels = network.engine.predict(flat, batch_size=batch_size, memo=False)
        labels = labels.reshape(len(chunk), samples)
        for row in range(len(chunk)):
            votes[start + row] = np.bincount(labels[row], minlength=num_classes)
    return votes.argmax(axis=1)


class TestRegionVoteVectorisation:
    def test_scatter_add_matches_bincount_loop_bitwise(self, tiny_model):
        network, x, _ = tiny_model
        vectorised = region_vote(
            network, x[:12], radius=0.3, samples=25, rng=np.random.default_rng(7)
        )
        looped = bincount_region_vote(
            network, x[:12], radius=0.3, samples=25, rng=np.random.default_rng(7)
        )
        np.testing.assert_array_equal(vectorised, looped)

    def test_zero_radius_equals_plain_prediction(self, tiny_model):
        network, x, _ = tiny_model
        labels = region_vote(network, x[:8], radius=0.0, samples=5, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(labels, network.predict(x[:8]))
