"""Parity and instrumentation tests for the GradientEngine.

The engine's fused kernels must reproduce the float64 autograd input
gradients across random layer stacks: ≤ 1e-4 max abs error at float32,
≤ 1e-10 at float64 (the PR's acceptance bar).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.attacks.cw import _margin_loss
from repro.nn import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GradientEngine,
    MaxPool2D,
    Network,
    ReLU,
    Sigmoid,
    Tanh,
    Tensor,
    losses,
    ops,
)
from repro.nn.layers import Layer

NUM_CLASSES = 5

TOLERANCE = {np.float32: 1e-4, np.float64: 1e-10}


# -- float64 autograd references ------------------------------------------------


def autograd_cross_entropy_grad(network, x, labels):
    inp = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    logits = network.forward(inp)
    log_probs = ops.log_softmax(logits)
    targets = losses.one_hot(labels, logits.shape[-1])
    ops.mul(ops.sum_(ops.mul(log_probs, targets)), -1.0).backward()
    return inp.grad


def autograd_logit_grad(network, x, class_index):
    inp = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    logits = network.forward(inp)
    selector = np.zeros(logits.shape)
    selector[np.arange(len(x)), class_index] = 1.0
    ops.sum_(ops.mul(logits, selector)).backward()
    return inp.grad


def autograd_margin_grad(network, x, target_labels, confidence):
    inp = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    logits = network.forward(inp)
    onehot = losses.one_hot(target_labels, logits.shape[-1])
    ops.sum_(_margin_loss(logits, onehot, confidence)).backward()
    return inp.grad


def autograd_jacobian(network, x):
    rows = np.empty((len(x), NUM_CLASSES) + x.shape[1:])
    for c in range(NUM_CLASSES):
        rows[:, c] = autograd_logit_grad(network, x, np.full(len(x), c))
    return rows


# -- random layer stacks --------------------------------------------------------


@st.composite
def random_stack(draw):
    """A small random network plus a matching input batch."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    activation = draw(st.sampled_from([ReLU, Tanh, Sigmoid]))
    batch = draw(st.integers(1, 4))

    if draw(st.booleans()):  # conv stack
        channels = draw(st.sampled_from([1, 2]))
        side = draw(st.sampled_from([6, 8]))
        kernel = draw(st.sampled_from([2, 3]))
        padding = draw(st.sampled_from([0, 1]))
        stride = draw(st.sampled_from([1, 2]))
        out_channels = draw(st.sampled_from([2, 3]))
        input_shape = (channels, side, side)
        layers = [Conv2D(channels, out_channels, kernel, rng, stride=stride, padding=padding)]
        if draw(st.booleans()):
            layers.append(BatchNorm2D(out_channels))
        layers.append(activation())
        conv_side = (side + 2 * padding - kernel) // stride + 1
        pool = draw(st.sampled_from(["none", "max", "max-overlap", "avg"]))
        if conv_side >= 2:
            if pool == "max":
                layers.append(MaxPool2D(2, stride=2))
            elif pool == "max-overlap":
                layers.append(MaxPool2D(2, stride=1))
            elif pool == "avg" and conv_side % 2 == 0:
                layers.append(AvgPool2D(2))
        layers.append(Flatten())
    else:  # dense stack
        side = draw(st.sampled_from([3, 4]))
        input_shape = (1, side, side)
        hidden = draw(st.sampled_from([6, 10]))
        layers = [Flatten(), Dense(side * side, hidden, rng)]
        if draw(st.booleans()):
            layers.append(BatchNorm1D(hidden))
        layers.append(activation())

    network = Network(layers, input_shape)
    features = int(np.prod(network.output_shape))
    network.layers.append(Dense(features, NUM_CLASSES, rng))

    # Randomise batch-norm statistics so their gradient path is nontrivial.
    for layer in network.layers:
        if hasattr(layer, "running_var"):
            layer.running_mean = rng.normal(size=layer.running_mean.shape)
            layer.running_var = rng.uniform(0.5, 2.0, size=layer.running_var.shape)

    x = rng.normal(scale=0.5, size=(batch,) + input_shape)
    labels = rng.integers(0, NUM_CLASSES, size=batch)
    return network, x, labels


class _Double(Layer):
    """A layer the engine has no kernel for (forces the autograd fallback)."""

    def forward(self, x, training):
        return ops.mul(x, 2.0)


@st.composite
def stack_and_dtype(draw):
    network, x, labels = draw(random_stack())
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    return network, x, labels, dtype


# -- parity ----------------------------------------------------------------------


class TestParity:
    @settings(max_examples=25, deadline=None)
    @given(case=stack_and_dtype())
    def test_cross_entropy_grad_matches_autograd(self, case):
        network, x, labels, dtype = case
        engine = GradientEngine(network, dtype=dtype)
        assert engine.supports_native
        grad = engine.cross_entropy_input_grad(x, labels)
        assert grad.dtype == np.dtype(dtype)
        reference = autograd_cross_entropy_grad(network, x, labels)
        assert np.abs(grad.astype(np.float64) - reference).max() <= TOLERANCE[dtype]

    @settings(max_examples=25, deadline=None)
    @given(case=stack_and_dtype())
    def test_jacobian_matches_autograd(self, case):
        network, x, _, dtype = case
        engine = GradientEngine(network, dtype=dtype)
        jac = engine.jacobian(x)
        assert jac.dtype == np.dtype(dtype)
        assert jac.shape == (len(x), NUM_CLASSES) + x.shape[1:]
        reference = autograd_jacobian(network, x)
        assert np.abs(jac.astype(np.float64) - reference).max() <= TOLERANCE[dtype]

    @settings(max_examples=25, deadline=None)
    @given(case=stack_and_dtype(), confidence=st.sampled_from([0.0, 0.5]))
    def test_margin_grad_matches_autograd(self, case, confidence):
        network, x, labels, dtype = case
        engine = GradientEngine(network, dtype=dtype)
        grad, logits, margin = engine.margin_input_grad(x, labels, confidence)
        # Near-ties in the runner-up class or at the hinge boundary make the
        # subgradient choice dtype-dependent; parity is only defined away
        # from them.
        z = np.asarray(logits, dtype=np.float64)
        z[np.arange(len(x)), labels] = -np.inf
        top2 = np.sort(z, axis=-1)[:, -2:]
        assume(np.all(top2[:, 1] - top2[:, 0] > 1e-3))
        assume(np.all(np.abs(margin) > 1e-3))
        reference = autograd_margin_grad(network, x, labels, confidence)
        assert np.abs(grad.astype(np.float64) - reference).max() <= TOLERANCE[dtype]

    @settings(max_examples=15, deadline=None)
    @given(case=stack_and_dtype())
    def test_logit_grad_matches_autograd(self, case):
        network, x, labels, dtype = case
        engine = GradientEngine(network, dtype=dtype)
        grad = engine.logit_input_grad(x, labels)
        reference = autograd_logit_grad(network, x, labels)
        assert np.abs(grad.astype(np.float64) - reference).max() <= TOLERANCE[dtype]

    @settings(max_examples=10, deadline=None)
    @given(case=random_stack(), batch_size=st.sampled_from([1, 2]))
    def test_batch_plan_does_not_change_results(self, case, batch_size):
        network, x, labels = case
        engine = GradientEngine(network, dtype=np.float64)
        whole = engine.cross_entropy_input_grad(x, labels)
        split = engine.cross_entropy_input_grad(x, labels, batch_size=batch_size)
        np.testing.assert_allclose(split, whole, atol=1e-12)


# -- counters and fallback -------------------------------------------------------


@pytest.fixture
def fallback_network():
    rng = np.random.default_rng(7)
    return Network([Flatten(), _Double(), Dense(16, NUM_CLASSES, rng)], (1, 4, 4))


class TestFallback:
    def test_unknown_layer_falls_back_to_autograd(self, fallback_network):
        engine = GradientEngine(fallback_network, dtype=np.float64)
        assert not engine.supports_native
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 1, 4, 4))
        jac = engine.jacobian(x)
        np.testing.assert_allclose(jac, autograd_jacobian(fallback_network, x), atol=1e-12)
        # Every one of the C seeded backwards went through autograd.
        assert engine.counters.fallbacks == NUM_CLASSES
        assert engine.counters.backward_batches == NUM_CLASSES

    def test_fallback_result_is_engine_dtype(self, fallback_network):
        engine = GradientEngine(fallback_network)  # float32 default
        grad = engine.cross_entropy_input_grad(np.zeros((2, 1, 4, 4)), np.array([0, 1]))
        assert grad.dtype == np.float32
        assert engine.counters.fallbacks == 1


class TestCounters:
    def test_counts_batches_examples_and_requests(self):
        rng = np.random.default_rng(3)
        network = Network([Flatten(), Dense(9, NUM_CLASSES, rng)], (1, 3, 3))
        engine = GradientEngine(network, batch_size=2)
        x = rng.normal(size=(5, 1, 3, 3))
        engine.cross_entropy_input_grad(x, np.zeros(5, dtype=int))
        assert engine.counters.requests == 1
        assert engine.counters.backward_batches == 3  # ceil(5 / 2)
        assert engine.counters.examples == 5
        assert engine.counters.seconds > 0
        assert engine.counters.fallbacks == 0

    def test_jacobian_shares_one_forward_per_batch(self):
        rng = np.random.default_rng(4)
        network = Network([Flatten(), Dense(9, NUM_CLASSES, rng)], (1, 3, 3))
        engine = GradientEngine(network)
        engine.jacobian(rng.normal(size=(4, 1, 3, 3)))
        # One backward per class, each pushing the full batch.
        assert engine.counters.backward_batches == NUM_CLASSES
        assert engine.counters.examples == 4 * NUM_CLASSES

    def test_reset_and_snapshot(self):
        rng = np.random.default_rng(5)
        network = Network([Flatten(), Dense(4, NUM_CLASSES, rng)], (1, 2, 2))
        engine = GradientEngine(network)
        engine.logit_input_grad(np.zeros((1, 1, 2, 2)), np.array([0]))
        before = engine.counters.snapshot()
        engine.logit_input_grad(np.zeros((1, 1, 2, 2)), np.array([0]))
        assert engine.counters.backward_batches == before.backward_batches + 1
        engine.reset_counters()
        assert engine.counters.backward_batches == 0


class TestNetworkAttachment:
    def test_lazy_property_and_attach(self):
        rng = np.random.default_rng(6)
        network = Network([Flatten(), Dense(4, NUM_CLASSES, rng)], (1, 2, 2))
        assert network._grad_engine is None
        first = network.grad_engine
        assert first is network.grad_engine  # cached
        assert first.dtype == np.float32
        replacement = GradientEngine(network, dtype=np.float64)
        assert network.attach_grad_engine(replacement) is network
        assert network.grad_engine is replacement

    def test_parameter_rebind_invalidates_cast_cache(self):
        rng = np.random.default_rng(8)
        network = Network([Flatten(), Dense(4, NUM_CLASSES, rng)], (1, 2, 2))
        engine = GradientEngine(network)
        x = rng.normal(size=(2, 1, 2, 2))
        before = engine.jacobian(x)
        weight = network.layers[1].params["weight"]
        weight.data = weight.data * 2.0  # rebinding, as optimisers/load_state do
        after = engine.jacobian(x)
        np.testing.assert_allclose(after, 2.0 * before, rtol=1e-5)
