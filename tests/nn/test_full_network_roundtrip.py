"""Serialisation round-trips through every layer type at once."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    Tanh,
    TrainConfig,
    fit,
)


def _kitchen_sink_network(seed=0):
    rng = np.random.default_rng(seed)
    layers = [
        Conv2D(1, 4, 3, rng, padding=1),
        BatchNorm2D(4),
        ReLU(),
        MaxPool2D(2),
        Conv2D(4, 6, 3, rng, padding=1),
        Tanh(),
        AvgPool2D(2),
        Flatten(),
        Dense(6 * 2 * 2, 16, rng),
        BatchNorm1D(16),
        ReLU(),
        Dropout(0.1, rng),
        Dense(16, 10, rng),
    ]
    return Network(layers, (1, 8, 8))


class TestKitchenSink:
    def test_forward_shape(self):
        net = _kitchen_sink_network()
        out = net.logits(np.random.default_rng(0).normal(size=(3, 1, 8, 8)) * 0.1)
        assert out.shape == (3, 10)
        assert np.isfinite(out).all()

    def test_trains_without_error(self):
        net = _kitchen_sink_network()
        rng = np.random.default_rng(1)
        x = rng.uniform(-0.5, 0.5, size=(64, 1, 8, 8))
        y = rng.integers(0, 10, 64)
        history = fit(
            net, Adam(net.parameters(), lr=1e-3), x, y,
            TrainConfig(epochs=3, batch_size=16), np.random.default_rng(2),
        )
        assert len(history.loss) == 3
        assert np.isfinite(history.loss).all()

    def test_state_roundtrip_after_training(self, tmp_path):
        net = _kitchen_sink_network()
        rng = np.random.default_rng(3)
        x = rng.uniform(-0.5, 0.5, size=(32, 1, 8, 8))
        y = rng.integers(0, 10, 32)
        fit(net, Adam(net.parameters()), x, y, TrainConfig(epochs=2, batch_size=16), rng)
        path = tmp_path / "net.npz"
        net.save(path)
        clone = _kitchen_sink_network(seed=99)
        clone.load(path)
        probe = x[:5]
        np.testing.assert_allclose(clone.logits(probe), net.logits(probe), atol=1e-12)

    def test_input_gradient_through_all_layers(self):
        from repro.nn.losses import cross_entropy

        net = _kitchen_sink_network()
        x = np.random.default_rng(4).uniform(-0.4, 0.4, size=(2, 1, 8, 8))
        grad, loss = net.input_gradient(x, lambda z: cross_entropy(z, np.array([1, 2])))
        assert grad.shape == x.shape
        assert np.isfinite(grad).all()
        assert np.abs(grad).max() > 0
