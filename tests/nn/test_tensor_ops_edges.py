"""Edge-case tests for Tensor operators and less-travelled op paths."""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.tensor import Tensor, as_tensor


class TestOperatorSugar:
    def test_radd_rsub_rmul(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = 1.0 + t - 0.5 + (3.0 * t)
        assert float(out.data[0]) == pytest.approx(8.5)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_rtruediv(self):
        t = Tensor(np.array([4.0]), requires_grad=True)
        out = 8.0 / t
        assert float(out.data[0]) == 2.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [-0.5])

    def test_neg(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        (-t).sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0])

    def test_pow_operator(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t**3).sum().backward()
        np.testing.assert_allclose(t.grad, [12.0])

    def test_len_and_repr(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        assert len(t) == 5
        assert "requires_grad=True" in repr(t)
        assert "shape=(5, 2)" in repr(t)

    def test_item(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_as_tensor_passthrough(self):
        t = Tensor(np.zeros(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_method_chaining(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        out = t.reshape(2, 3).transpose().sum(axis=1).mean()
        assert float(out.data) == pytest.approx(np.arange(6.0).mean() * 2)


class TestOpEdges:
    def test_concatenate_three_tensors_gradients(self):
        parts = [Tensor(np.full((2,), float(i)), requires_grad=True) for i in range(3)]
        weights = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        ops.mul(ops.concatenate(parts, axis=0), weights).sum().backward()
        np.testing.assert_allclose(parts[0].grad, [1.0, 1.0])
        np.testing.assert_allclose(parts[1].grad, [2.0, 2.0])
        np.testing.assert_allclose(parts[2].grad, [3.0, 3.0])

    def test_getitem_integer_index(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = t[1]
        assert out.shape == (4,)
        out.sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_boolean_mask(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        t[mask].sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 0.0, 1.0, 0.0])

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 3, 3)))
        assert ops.pad2d(t, 0) is t

    def test_sum_negative_axis(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        out = ops.sum_(t, axis=-1)
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_mean_tuple_axes(self):
        t = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = ops.mean(t, axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3, 4), 1 / 12))

    def test_dropout_rate_zero_identity(self):
        rng = np.random.default_rng(0)
        t = Tensor(np.ones((3, 3)))
        assert ops.dropout(t, 0.0, rng, training=True) is t

    def test_conv_bias_gradient_accumulates_over_positions(self):
        x = Tensor(np.zeros((2, 1, 4, 4)))
        w = Tensor(np.zeros((3, 1, 3, 3)))
        b = Tensor(np.zeros(3), requires_grad=True)
        ops.conv2d(x, w, b).sum().backward()
        # 2 batch x 2x2 output positions each = 8 per channel.
        np.testing.assert_allclose(b.grad, [8.0, 8.0, 8.0])
