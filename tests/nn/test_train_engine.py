"""Parity and instrumentation tests for the TrainingEngine.

The engine's fused parameter-gradient kernels must reproduce the float64
autograd training step across random layer stacks: ≤ 1e-4 relative error
at float32, ≤ 1e-10 at float64 (the PR's acceptance bar) — including
dropout mask draws and batch-norm running-stat updates, which run in
training mode here (unlike the inference/gradient engines).
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    CROSS_ENTROPY,
    MSE,
    Adam,
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    Sigmoid,
    Tanh,
    Tensor,
    TrainingEngine,
    losses,
    ops,
    soft_cross_entropy_loss,
)
from repro.nn.layers import Layer

NUM_CLASSES = 5

TOLERANCE = {np.float32: 1e-4, np.float64: 1e-10}


# -- float64 autograd reference --------------------------------------------------


def autograd_step(network, x, targets, loss_fn):
    """Float64 training=True forward/backward; returns (loss, param grads)."""
    network.zero_grad()
    logits = network.forward(Tensor(np.asarray(x, dtype=np.float64)), training=True)
    loss = loss_fn(logits, targets)
    loss.backward()
    return float(loss.data), [np.array(p.grad, dtype=np.float64) for p in network.parameters()]


def relative_error(a, b):
    scale = max(1.0, float(np.abs(b).max()))
    return float(np.abs(np.asarray(a, dtype=np.float64) - b).max()) / scale


def reseed_dropout(network, seed):
    """Give every dropout layer a fresh generator with a known seed."""
    for i, layer in enumerate(network.layers):
        if isinstance(layer, Dropout):
            layer._rng = np.random.default_rng(seed + i)


def batchnorm_stats(network):
    return [
        (layer.running_mean.copy(), layer.running_var.copy())
        for layer in network.layers
        if hasattr(layer, "running_var")
    ]


def restore_batchnorm_stats(network, stats):
    layers = [layer for layer in network.layers if hasattr(layer, "running_var")]
    for layer, (mean, var) in zip(layers, stats):
        layer.running_mean = mean.copy()
        layer.running_var = var.copy()


# -- random layer stacks ---------------------------------------------------------


@st.composite
def random_stack(draw):
    """A small random network plus a matching training batch."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    activation = draw(st.sampled_from([ReLU, Tanh, Sigmoid]))
    batch = draw(st.integers(2, 4))

    if draw(st.booleans()):  # conv stack
        channels = draw(st.sampled_from([1, 2]))
        side = draw(st.sampled_from([6, 8]))
        kernel = draw(st.sampled_from([2, 3]))
        padding = draw(st.sampled_from([0, 1]))
        stride = draw(st.sampled_from([1, 2]))
        out_channels = draw(st.sampled_from([2, 3]))
        input_shape = (channels, side, side)
        layers = [Conv2D(channels, out_channels, kernel, rng, stride=stride, padding=padding)]
        if draw(st.booleans()):
            layers.append(BatchNorm2D(out_channels))
        layers.append(activation())
        conv_side = (side + 2 * padding - kernel) // stride + 1
        pool = draw(st.sampled_from(["none", "max", "max-overlap", "avg"]))
        if conv_side >= 2:
            if pool == "max":
                layers.append(MaxPool2D(2, stride=2))
            elif pool == "max-overlap":
                layers.append(MaxPool2D(2, stride=1))
            elif pool == "avg" and conv_side % 2 == 0:
                layers.append(AvgPool2D(2))
        layers.append(Flatten())
    else:  # dense stack
        side = draw(st.sampled_from([3, 4]))
        input_shape = (1, side, side)
        hidden = draw(st.sampled_from([6, 10]))
        layers = [Flatten(), Dense(side * side, hidden, rng)]
        if draw(st.booleans()):
            layers.append(BatchNorm1D(hidden))
        layers.append(activation())
        if draw(st.booleans()):
            layers.append(Dropout(0.3, rng))

    network = Network(layers, input_shape)
    features = int(np.prod(network.output_shape))
    network.layers.append(Dense(features, NUM_CLASSES, rng))

    x = rng.normal(scale=0.5, size=(batch,) + input_shape)
    labels = rng.integers(0, NUM_CLASSES, size=batch)
    return network, x, labels


class _Double(Layer):
    """A layer the engine has no kernel for (forces the autograd fallback)."""

    def forward(self, x, training):
        return ops.mul(x, 2.0)


@st.composite
def stack_and_dtype(draw):
    network, x, labels = draw(random_stack())
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    return network, x, labels, dtype


# -- parity ----------------------------------------------------------------------


class TestParity:
    @settings(max_examples=25, deadline=None)
    @given(case=stack_and_dtype())
    def test_parameter_grads_match_autograd(self, case):
        network, x, labels, dtype = case
        engine = TrainingEngine(network, dtype=dtype)
        assert engine.supports_native

        stats = batchnorm_stats(network)
        reseed_dropout(network, 99)
        network.zero_grad()
        value, logits = engine.train_batch(x, labels)
        engine_grads = [np.array(p.grad) for p in network.parameters()]
        engine_stats = batchnorm_stats(network)
        assert logits.dtype == np.dtype(dtype)

        restore_batchnorm_stats(network, stats)
        reseed_dropout(network, 99)
        ref_value, ref_grads = autograd_step(network, x, labels, losses.cross_entropy)
        ref_stats = batchnorm_stats(network)

        tol = TOLERANCE[dtype]
        assert abs(value - ref_value) <= max(tol, tol * abs(ref_value))
        for got, want in zip(engine_grads, ref_grads):
            assert relative_error(got, want) <= tol
        # Running statistics must advance identically in training mode.
        for (got_m, got_v), (want_m, want_v) in zip(engine_stats, ref_stats):
            assert relative_error(got_m, want_m) <= tol
            assert relative_error(got_v, want_v) <= tol

    @settings(max_examples=15, deadline=None)
    @given(case=stack_and_dtype(), temperature=st.sampled_from([1.0, 20.0]))
    def test_soft_cross_entropy_matches_autograd(self, case, temperature):
        network, x, labels, dtype = case
        rng = np.random.default_rng(3)
        soft = losses.one_hot(labels, NUM_CLASSES) * 0.9 + rng.uniform(
            0, 0.1 / NUM_CLASSES, size=(len(x), NUM_CLASSES)
        )
        engine = TrainingEngine(network, dtype=dtype)

        stats = batchnorm_stats(network)
        reseed_dropout(network, 7)
        network.zero_grad()
        value, _ = engine.train_batch(x, soft, loss=soft_cross_entropy_loss(temperature))
        engine_grads = [np.array(p.grad) for p in network.parameters()]

        restore_batchnorm_stats(network, stats)
        reseed_dropout(network, 7)
        ref_value, ref_grads = autograd_step(
            network, x, soft, lambda z, t: losses.soft_cross_entropy(z, t, temperature=temperature)
        )
        tol = TOLERANCE[dtype]
        assert abs(value - ref_value) <= max(tol, tol * abs(ref_value))
        for got, want in zip(engine_grads, ref_grads):
            assert relative_error(got, want) <= tol

    @settings(max_examples=15, deadline=None)
    @given(case=stack_and_dtype())
    def test_mse_matches_autograd(self, case):
        network, x, labels, dtype = case
        rng = np.random.default_rng(4)
        targets = rng.normal(size=(len(x), NUM_CLASSES))
        engine = TrainingEngine(network, dtype=dtype)

        stats = batchnorm_stats(network)
        reseed_dropout(network, 11)
        network.zero_grad()
        value, _ = engine.train_batch(x, targets, loss=MSE)
        engine_grads = [np.array(p.grad) for p in network.parameters()]

        restore_batchnorm_stats(network, stats)
        reseed_dropout(network, 11)
        ref_value, ref_grads = autograd_step(network, x, targets, losses.mse)
        tol = TOLERANCE[dtype]
        assert abs(value - ref_value) <= max(tol, tol * abs(ref_value))
        for got, want in zip(engine_grads, ref_grads):
            assert relative_error(got, want) <= tol

    @settings(max_examples=10, deadline=None)
    @given(case=random_stack(), scale=st.sampled_from([0.25, 0.5]))
    def test_scaled_seeds_accumulate_weighted_grads(self, case, scale):
        """Two scaled train_batch calls equal the weighted-sum objective."""
        network, x, labels = case
        engine = TrainingEngine(network, dtype=np.float64)
        x2 = x + 0.1
        reseed_dropout(network, 5)
        stats = batchnorm_stats(network)
        network.zero_grad()
        engine.train_batch(x, labels, scale=scale)
        engine.train_batch(x2, labels, scale=1.0 - scale)
        accumulated = [np.array(p.grad) for p in network.parameters()]

        restore_batchnorm_stats(network, stats)
        reseed_dropout(network, 5)
        network.zero_grad()
        engine.train_batch(x, labels)
        first = [np.array(p.grad) for p in network.parameters()]
        network.zero_grad()
        engine.train_batch(x2, labels)
        second = [np.array(p.grad) for p in network.parameters()]
        for acc, a, b in zip(accumulated, first, second):
            np.testing.assert_allclose(acc, scale * a + (1.0 - scale) * b, atol=1e-10)


# -- parameter binding and staleness ---------------------------------------------


class TestParameterBinding:
    def _net(self, seed=0):
        rng = np.random.default_rng(seed)
        return Network([Flatten(), Dense(9, NUM_CLASSES, rng)], (1, 3, 3))

    def test_bound_params_are_engine_dtype_and_restored(self):
        network = self._net()
        engine = TrainingEngine(network)  # float32 default
        before = [p.data.copy() for p in network.parameters()]
        with engine.parameters_bound():
            assert all(p.data.dtype == np.float32 for p in network.parameters())
        assert all(p.data.dtype == np.float64 for p in network.parameters())
        for now, was in zip(network.parameters(), before):
            np.testing.assert_allclose(now.data, was, atol=1e-7)

    def test_float64_binding_is_noop(self):
        network = self._net()
        engine = TrainingEngine(network, dtype=np.float64)
        refs = [p.data for p in network.parameters()]
        with engine.parameters_bound():
            assert all(p.data is ref for p, ref in zip(network.parameters(), refs))

    def test_inplace_update_with_version_bump_is_visible(self):
        """Optimiser-style in-place writes must not serve stale casts."""
        network = self._net()
        engine = TrainingEngine(network, dtype=np.float32)
        x = np.zeros((1, 1, 3, 3))
        _, logits_before = engine.train_batch(x, np.array([0]))
        bias = network.layers[1].params["bias"]
        bias.data += 1.0  # in-place: identity unchanged
        bias.bump_version()
        _, logits_after = engine.train_batch(x, np.array([0]))
        np.testing.assert_allclose(logits_after, logits_before + 1.0, atol=1e-5)

    def test_training_then_inference_sees_fresh_weights(self):
        """InferenceEngine must track in-place optimiser updates mid-fit."""
        network = self._net()
        engine = TrainingEngine(network)
        optimizer = Adam(network.parameters(), lr=0.05)
        x = np.random.default_rng(0).normal(size=(8, 1, 3, 3))
        labels = np.zeros(8, dtype=int)
        with engine.parameters_bound():
            before = network.logits(x)
            for _ in range(3):
                optimizer.zero_grad()
                engine.train_batch(x, labels)
                optimizer.step()
            after = network.logits(x)
        assert np.abs(after - before).max() > 1e-6


# -- counters and fallback -------------------------------------------------------


@pytest.fixture
def fallback_network():
    rng = np.random.default_rng(7)
    return Network([Flatten(), _Double(), Dense(16, NUM_CLASSES, rng)], (1, 4, 4))


class TestFallback:
    def test_unknown_layer_falls_back_to_autograd(self, fallback_network):
        engine = TrainingEngine(fallback_network, dtype=np.float64)
        assert not engine.supports_native
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 1, 4, 4))
        labels = np.array([0, 1, 2])
        fallback_network.zero_grad()
        value, logits = engine.train_batch(x, labels)
        got = [np.array(p.grad) for p in fallback_network.parameters()]
        ref_value, ref_grads = autograd_step(fallback_network, x, labels, losses.cross_entropy)
        assert value == pytest.approx(ref_value)
        for a, b in zip(got, ref_grads):
            np.testing.assert_allclose(a, b, atol=1e-12)
        assert engine.counters.fallbacks == 1
        assert engine.counters.batches == 1

    def test_fallback_applies_scale(self, fallback_network):
        engine = TrainingEngine(fallback_network)
        x = np.zeros((2, 1, 4, 4))
        labels = np.array([0, 1])
        fallback_network.zero_grad()
        engine.train_batch(x, labels, scale=0.5)
        halved = [np.array(p.grad) for p in fallback_network.parameters()]
        fallback_network.zero_grad()
        engine.train_batch(x, labels)
        full = [np.array(p.grad) for p in fallback_network.parameters()]
        for a, b in zip(halved, full):
            np.testing.assert_allclose(a, 0.5 * b, atol=1e-12)

    def test_fallback_binding_is_noop(self, fallback_network):
        engine = TrainingEngine(fallback_network)  # float32, but not native
        with engine.parameters_bound():
            assert all(p.data.dtype == np.float64 for p in fallback_network.parameters())


class TestCounters:
    def test_counts_batches_examples_seconds(self):
        rng = np.random.default_rng(3)
        network = Network([Flatten(), Dense(9, NUM_CLASSES, rng)], (1, 3, 3))
        engine = TrainingEngine(network)
        x = rng.normal(size=(5, 1, 3, 3))
        engine.train_batch(x, np.zeros(5, dtype=int))
        engine.train_batch(x[:2], np.zeros(2, dtype=int))
        assert engine.counters.batches == 2
        assert engine.counters.examples == 7
        assert engine.counters.seconds > 0
        assert engine.counters.fallbacks == 0

    def test_reset_and_snapshot(self):
        rng = np.random.default_rng(5)
        network = Network([Flatten(), Dense(4, NUM_CLASSES, rng)], (1, 2, 2))
        engine = TrainingEngine(network)
        engine.train_batch(np.zeros((1, 1, 2, 2)), np.array([0]))
        before = engine.counters.snapshot()
        engine.train_batch(np.zeros((1, 1, 2, 2)), np.array([0]))
        assert engine.counters.batches == before.batches + 1
        engine.reset_counters()
        assert engine.counters.batches == 0


class TestNetworkAttachment:
    def test_lazy_property_and_attach(self):
        rng = np.random.default_rng(6)
        network = Network([Flatten(), Dense(4, NUM_CLASSES, rng)], (1, 2, 2))
        assert network._train_engine is None
        first = network.train_engine
        assert first is network.train_engine  # cached
        assert first.dtype == np.float32
        replacement = TrainingEngine(network, dtype=np.float64)
        assert network.attach_train_engine(replacement) is network
        assert network.train_engine is replacement


# -- loss seeds in isolation -----------------------------------------------------


class TestLossSeeds:
    def test_cross_entropy_seed_matches_autograd(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(6, NUM_CLASSES))
        labels = rng.integers(0, NUM_CLASSES, size=6)
        value, seed = CROSS_ENTROPY.value_and_seed(z, labels)
        logits = Tensor(z, requires_grad=True)
        loss = losses.cross_entropy(logits, labels)
        loss.backward()
        assert value == pytest.approx(float(loss.data))
        np.testing.assert_allclose(seed, logits.grad, atol=1e-12)

    @pytest.mark.parametrize("temperature", [1.0, 40.0])
    def test_soft_seed_matches_autograd(self, temperature):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(4, NUM_CLASSES)) * 5
        targets = rng.dirichlet(np.ones(NUM_CLASSES), size=4)
        spec = soft_cross_entropy_loss(temperature)
        value, seed = spec.value_and_seed(z, targets)
        logits = Tensor(z, requires_grad=True)
        loss = losses.soft_cross_entropy(logits, targets, temperature=temperature)
        loss.backward()
        assert value == pytest.approx(float(loss.data))
        np.testing.assert_allclose(seed, logits.grad, atol=1e-12)

    def test_mse_seed_matches_autograd(self):
        rng = np.random.default_rng(2)
        z = rng.normal(size=(3, 7))
        targets = rng.normal(size=(3, 7))
        value, seed = MSE.value_and_seed(z, targets)
        preds = Tensor(z, requires_grad=True)
        loss = losses.mse(preds, targets)
        loss.backward()
        assert value == pytest.approx(float(loss.data))
        np.testing.assert_allclose(seed, preds.grad, atol=1e-12)
