"""Tests for the procedural digit and object generators."""

import numpy as np
import pytest

from repro.datasets import (
    CLASS_NAMES,
    generate_digits,
    generate_objects,
    render_digit,
    render_object,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDigits:
    def test_shape_and_range(self, rng):
        img = render_digit(3, rng, size=20)
        assert img.shape == (20, 20)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_has_ink(self, rng):
        for digit in range(10):
            img = render_digit(digit, rng, size=16)
            assert img.max() > 0.5, f"digit {digit} rendered blank"
            # Strokes should cover a minority of the canvas.
            assert (img > 0.5).mean() < 0.5

    def test_invalid_digit(self, rng):
        with pytest.raises(ValueError):
            render_digit(10, rng)

    def test_randomised_instances_differ(self, rng):
        a = render_digit(5, rng, size=16)
        b = render_digit(5, rng, size=16)
        assert not np.allclose(a, b)

    def test_batch_generation(self, rng):
        x, y = generate_digits(30, rng, size=12)
        assert x.shape == (30, 1, 12, 12)
        assert y.shape == (30,)
        assert set(np.unique(y)).issubset(set(range(10)))

    def test_deterministic_given_seed(self):
        x1, y1 = generate_digits(5, np.random.default_rng(42), size=12)
        x2, y2 = generate_digits(5, np.random.default_rng(42), size=12)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)


class TestObjects:
    def test_shape_and_range(self, rng):
        img = render_object(0, rng, size=24)
        assert img.shape == (3, 24, 24)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_all_classes_render(self, rng):
        for label in range(len(CLASS_NAMES)):
            img = render_object(label, rng, size=16)
            assert np.isfinite(img).all()
            # Object should create contrast against the background.
            assert img.std() > 0.05

    def test_invalid_label(self, rng):
        with pytest.raises(ValueError):
            render_object(10, rng)

    def test_batch_generation(self, rng):
        x, y = generate_objects(20, rng, size=16)
        assert x.shape == (20, 3, 16, 16)
        assert set(np.unique(y)).issubset(set(range(10)))

    def test_oriented_classes_differ(self):
        # hbars (5) and vbars (6) must not be the same distribution: their
        # horizontal/vertical variance profiles should differ on average.
        rng = np.random.default_rng(7)
        def orientation_score(label):
            scores = []
            for _ in range(20):
                img = render_object(label, rng, size=16).mean(axis=0)
                scores.append(img.var(axis=0).mean() - img.var(axis=1).mean())
            return np.mean(scores)

        h_score = orientation_score(CLASS_NAMES.index("hbars"))
        v_score = orientation_score(CLASS_NAMES.index("vbars"))
        assert h_score != pytest.approx(v_score, abs=1e-4)
