"""Tests for the Dataset container and the registry."""

import numpy as np
import pytest

from repro.datasets import DATASET_CONFIGS, Dataset, PIXEL_MAX, PIXEL_MIN, corrector_radius
from repro.datasets.registry import DatasetConfig


def _toy_dataset(n_train=20, n_test=10, shape=(1, 4, 4), seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        name="toy",
        x_train=rng.uniform(PIXEL_MIN, PIXEL_MAX, size=(n_train,) + shape),
        y_train=rng.integers(0, 10, n_train),
        x_test=rng.uniform(PIXEL_MIN, PIXEL_MAX, size=(n_test,) + shape),
        y_test=rng.integers(0, 10, n_test),
    )


class TestDataset:
    def test_properties(self):
        ds = _toy_dataset()
        assert ds.input_shape == (1, 4, 4)
        assert ds.num_classes <= 10

    def test_rejects_length_mismatch(self):
        ds = _toy_dataset()
        with pytest.raises(ValueError, match="labels"):
            Dataset("bad", ds.x_train, ds.y_train[:-1], ds.x_test, ds.y_test)

    def test_rejects_out_of_box_pixels(self):
        ds = _toy_dataset()
        bad = ds.x_train.copy()
        bad[0, 0, 0, 0] = 1.5
        with pytest.raises(ValueError, match="pixel"):
            Dataset("bad", bad, ds.y_train, ds.x_test, ds.y_test)

    def test_rejects_non_nchw(self):
        ds = _toy_dataset()
        with pytest.raises(ValueError, match="NCHW"):
            Dataset("bad", ds.x_train.reshape(20, -1), ds.y_train, ds.x_test, ds.y_test)

    def test_sample_test_no_replacement(self):
        ds = _toy_dataset(n_test=10)
        _, _, idx = ds.sample_test(10, np.random.default_rng(0))
        assert len(set(idx)) == 10

    def test_sample_test_exclusion(self):
        ds = _toy_dataset(n_test=10)
        exclude = np.arange(5)
        _, _, idx = ds.sample_test(5, np.random.default_rng(0), exclude=exclude)
        assert set(idx).isdisjoint(set(exclude))

    def test_sample_test_overdraw_raises(self):
        ds = _toy_dataset(n_test=10)
        with pytest.raises(ValueError):
            ds.sample_test(11, np.random.default_rng(0))


class TestRegistry:
    def test_expected_configs_present(self):
        assert {"mnist-like", "cifar-like", "mnist-fast", "cifar-fast"} <= set(DATASET_CONFIGS)

    def test_channels_follow_family(self):
        assert DATASET_CONFIGS["mnist-like"].channels == 1
        assert DATASET_CONFIGS["cifar-like"].channels == 3

    def test_corrector_radius_follows_paper(self):
        # Paper Sec. 5.1: r = 0.3 for MNIST, r = 0.02 for CIFAR-10.
        assert corrector_radius("mnist-like") == 0.3
        assert corrector_radius("mnist-fast") == 0.3
        assert corrector_radius("cifar-like") == 0.02
        assert corrector_radius("cifar-fast") == 0.02

    def test_unknown_dataset_raises(self):
        from repro.datasets import load_dataset

        with pytest.raises(KeyError):
            load_dataset("imagenet")


class TestBuiltDataset:
    """Build the small fast datasets end-to-end (cached after first run)."""

    def test_mnist_fast_contents(self):
        from repro.datasets import load_dataset

        ds = load_dataset("mnist-fast")
        config = DATASET_CONFIGS["mnist-fast"]
        assert ds.x_train.shape == (config.train_size, 1, config.image_size, config.image_size)
        assert ds.x_test.shape[0] == config.test_size
        assert ds.x_train.min() >= PIXEL_MIN and ds.x_train.max() <= PIXEL_MAX
        assert ds.num_classes == 10
        # Roughly balanced labels.
        counts = np.bincount(ds.y_train, minlength=10)
        assert counts.min() > config.train_size / 10 * 0.6

    def test_cache_is_deterministic(self):
        from repro.datasets import load_dataset

        a = load_dataset("mnist-fast")
        b = load_dataset("mnist-fast")
        np.testing.assert_array_equal(a.x_test, b.x_test)
