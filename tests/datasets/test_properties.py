"""Hypothesis property tests on the dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import render_digit, render_object
from repro.datasets.digits import DIGIT_STROKES


class TestDigitProperties:
    @given(st.integers(0, 9), st.integers(0, 10_000), st.sampled_from([12, 16, 20]))
    @settings(max_examples=40, deadline=None)
    def test_always_valid_image(self, digit, seed, size):
        rng = np.random.default_rng(seed)
        image = render_digit(digit, rng, size=size)
        assert image.shape == (size, size)
        assert np.isfinite(image).all()
        assert image.min() >= 0.0 and image.max() <= 1.0
        # Some ink, but never a fully saturated canvas.
        assert 0.02 < (image > 0.4).mean() < 0.6

    @given(st.integers(0, 9), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_per_seed(self, digit, seed):
        a = render_digit(digit, np.random.default_rng(seed), size=12)
        b = render_digit(digit, np.random.default_rng(seed), size=12)
        np.testing.assert_array_equal(a, b)

    def test_stroke_skeletons_inside_unit_box(self):
        for digit, strokes in DIGIT_STROKES.items():
            for stroke in strokes:
                assert stroke.min() >= 0.0, digit
                assert stroke.max() <= 1.0, digit

    def test_every_digit_has_strokes(self):
        assert set(DIGIT_STROKES) == set(range(10))
        for strokes in DIGIT_STROKES.values():
            assert all(len(stroke) >= 2 for stroke in strokes)


class TestObjectProperties:
    @given(st.integers(0, 9), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_always_valid_image(self, label, seed):
        rng = np.random.default_rng(seed)
        image = render_object(label, rng, size=16)
        assert image.shape == (3, 16, 16)
        assert np.isfinite(image).all()
        assert image.min() >= 0.0 and image.max() <= 1.0

    @given(st.integers(0, 9), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_foreground_contrast(self, label, seed):
        rng = np.random.default_rng(seed)
        image = render_object(label, rng, size=16, noise=0.0)
        # The rendered object must create measurable structure.
        assert image.std() > 0.03
