"""Model zoo: standard architectures, training recipes, and a weight cache.

The paper trains the CNN architectures of Carlini & Wagner (two conv blocks
followed by two fully-connected layers).  On this NumPy/CPU substrate we use
the same topology with reduced widths (``paper`` preset) plus a smaller
``fast`` preset for the reduced-scale datasets; DESIGN.md §2 records the
substitution.  Trained weights are cached on disk so the expensive training
runs happen once per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import memoize_arrays
from .datasets import Dataset, load_dataset
from .nn import Adam, Conv2D, Dense, Dropout, Flatten, MaxPool2D, Network, ReLU, TrainConfig, fit

__all__ = ["ModelConfig", "MODEL_CONFIGS", "build_network", "train_network", "load_model", "model_for_dataset"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture + training recipe for a standard classifier."""

    name: str
    conv_channels: tuple[int, ...]  # channels of the two conv blocks
    dense_units: tuple[int, ...]
    epochs: int
    batch_size: int = 64
    learning_rate: float = 1e-3
    dropout: float = 0.2
    seed: int = 11


MODEL_CONFIGS: dict[str, ModelConfig] = {
    config.name: config
    for config in (
        # Reduced Carlini-style CNN: conv-conv-pool twice, then dense-dense.
        ModelConfig("cnn-paper", conv_channels=(16, 32), dense_units=(128, 128), epochs=12),
        # Small CNNs for the -fast datasets (16x16 inputs).  The objects
        # family is harder and needs a wider net and longer schedule.
        ModelConfig("cnn-fast", conv_channels=(8, 16), dense_units=(64,), epochs=12),
        ModelConfig("cnn-fast-wide", conv_channels=(12, 24), dense_units=(96,), epochs=35, learning_rate=2e-3),
    )
}

# Default model preset per dataset.
_DATASET_MODEL = {
    "mnist-like": "cnn-paper",
    "cifar-like": "cnn-paper",
    "mnist-fast": "cnn-fast",
    "cifar-fast": "cnn-fast-wide",
}


def build_network(
    config: ModelConfig, input_shape: tuple[int, int, int], num_classes: int, seed: int | None = None
) -> Network:
    """Instantiate the (untrained) network for ``config``."""
    rng = np.random.default_rng(config.seed if seed is None else seed)
    channels_in = input_shape[0]
    layers: list = []
    for channels in config.conv_channels:
        layers += [
            Conv2D(channels_in, channels, 3, rng, padding=1),
            ReLU(),
            Conv2D(channels, channels, 3, rng, padding=1),
            ReLU(),
            MaxPool2D(2),
        ]
        channels_in = channels
    layers.append(Flatten())
    spatial = input_shape[1] // (2 ** len(config.conv_channels))
    features = config.conv_channels[-1] * spatial * spatial
    for units in config.dense_units:
        layers += [Dense(features, units, rng), ReLU()]
        if config.dropout:
            layers.append(Dropout(config.dropout, rng))
        features = units
    layers.append(Dense(features, num_classes, rng))
    return Network(layers, input_shape)


def train_network(
    network: Network,
    dataset: Dataset,
    config: ModelConfig,
    verbose: bool = False,
    train_dtype: str = "float32",
) -> float:
    """Train ``network`` on the dataset's training split; returns test accuracy.

    ``train_dtype`` selects the fused-kernel compute dtype of the
    :class:`~repro.nn.train_engine.TrainingEngine`; weights are always
    float64 after training (the serialisation dtype).
    """
    rng = np.random.default_rng(config.seed + 1)
    optimizer = Adam(network.parameters(), lr=config.learning_rate)
    train_config = TrainConfig(
        epochs=config.epochs,
        batch_size=config.batch_size,
        verbose=verbose,
        lr_decay=0.92,
        dtype=train_dtype,
    )
    fit(network, optimizer, dataset.x_train, dataset.y_train, train_config, rng)
    return network.accuracy(dataset.x_test, dataset.y_test)


def _dtype_key(key: dict, train_dtype: str) -> dict:
    """Extend a cache key with the training dtype, float64 staying legacy.

    Entries trained on the float64 path keep their pre-engine keys, so
    every previously cached ``.npz`` still loads byte-identically; only
    non-default dtypes fork new entries.
    """
    if train_dtype != "float64":
        key = {**key, "train_dtype": train_dtype}
    return key


def load_model(
    dataset: Dataset,
    model_name: str | None = None,
    cache: bool = True,
    verbose: bool = False,
    train_dtype: str = "float32",
) -> Network:
    """Return a trained standard classifier for ``dataset`` (cached on disk)."""
    model_name = model_name or _DATASET_MODEL.get(dataset.name, "cnn-fast")
    config = MODEL_CONFIGS[model_name]
    network = build_network(config, dataset.input_shape, 10)

    def build() -> dict[str, np.ndarray]:
        train_network(network, dataset, config, verbose=verbose, train_dtype=train_dtype)
        return network.state()

    if cache:
        key = _dtype_key({"kind": "model", "dataset": dataset.name, **config.__dict__}, train_dtype)
        network.load_state(memoize_arrays(key, build))
    else:
        build()
    return network


def model_for_dataset(name: str, verbose: bool = False) -> tuple[Dataset, Network]:
    """Convenience: load the named dataset and its trained standard model."""
    dataset = load_dataset(name)
    return dataset, load_model(dataset, verbose=verbose)
