"""Comparison defenses: standard DNN, distillation, RC, feature squeezing."""

from .adversarial_training import AdversariallyTrainedClassifier, train_adversarial
from .base import Defense
from .distillation import DistilledClassifier, train_distilled
from .magnet import MagNet, build_autoencoder, train_autoencoder
from .region import RegionClassifier, region_vote, region_vote_fused
from .squeezing import FeatureSqueezingDetector, median_smooth, reduce_bit_depth
from .standard import StandardClassifier

__all__ = [
    "Defense",
    "StandardClassifier",
    "DistilledClassifier",
    "train_distilled",
    "RegionClassifier",
    "region_vote",
    "region_vote_fused",
    "FeatureSqueezingDetector",
    "reduce_bit_depth",
    "median_smooth",
    "MagNet",
    "build_autoencoder",
    "train_autoencoder",
    "AdversariallyTrainedClassifier",
    "train_adversarial",
]
