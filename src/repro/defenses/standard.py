"""The undefended baseline: a plain DNN classifier."""

from __future__ import annotations

import numpy as np

from ..nn.network import Network

__all__ = ["StandardClassifier"]


class StandardClassifier:
    """Wraps a trained network as the paper's "Standard DNN" baseline."""

    name = "standard"

    def __init__(self, network: Network):
        self.network = network

    def classify(self, x: np.ndarray) -> np.ndarray:
        return self.network.engine.predict(x)
