"""Defense interface: anything that maps images to labels."""

from __future__ import annotations

from typing import Protocol

import numpy as np

__all__ = ["Defense"]


class Defense(Protocol):
    """A classifier-with-defense; the evaluation harness only needs this."""

    name: str

    def classify(self, x: np.ndarray) -> np.ndarray:
        """Return hard labels for a batch of images."""
        ...
