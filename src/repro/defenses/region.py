"""Region-based classification (Cao & Gong, ACSAC 2017).

The paper's strongest prior defense and the mechanism its corrector reuses:
instead of classifying the input point, sample ``m`` points uniformly from
the hypercube of radius ``r`` centred on it, classify each with the
underlying DNN, and take the majority vote.  The paper runs RC with the
original parameters (``m = 1000``; ``r = 0.3`` MNIST / ``0.02`` CIFAR) and
shows its corrector achieves the same recovery with ``m = 50``.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..datasets.dataset import PIXEL_MAX, PIXEL_MIN
from ..nn.network import Network

__all__ = ["region_vote", "region_vote_fused", "call_rng", "input_rng", "RegionClassifier"]


def call_rng(seed: int, x: np.ndarray) -> np.random.Generator:
    """Per-call generator derived from a base seed and the input's content.

    A classifier holding one mutable generator answers differently
    depending on how many calls preceded this one — evaluating defenses in
    a different order silently changes their reported accuracy.  Folding a
    digest of the input bytes (and shape) into the seed makes every call a
    pure function of ``(seed, x)``: same input, same vote, in any order.
    """
    x = np.ascontiguousarray(x)
    digest = hashlib.sha256(repr((x.shape, str(x.dtype))).encode())
    digest.update(x.tobytes())
    words = np.frombuffer(digest.digest()[:16], dtype=np.uint32)
    return np.random.default_rng(np.random.SeedSequence([seed, *map(int, words)]))


def input_rng(seed: int, x: np.ndarray) -> np.random.Generator:
    """Per-*input* generator: a pure function of ``(seed, one example)``.

    Where :func:`call_rng` digests a whole batch (so an input's noise
    depends on which other inputs share its batch), this digests a single
    example's canonical ``float64`` bytes.  Two consequences the serving
    layer depends on:

    * **composition independence** — an input gets the same noise whether
      it is corrected alone, inside its original request, or fused into a
      cross-request corrector batch;
    * **dtype canonicalisation** — a ``float32`` view of the same values
      hashes identically to its exact ``float64`` widening, so the
      engine-dtype fast path and the legacy ``float64`` path vote the
      same way.
    """
    row = np.ascontiguousarray(x, dtype=np.float64)
    digest = hashlib.sha256(repr(row.shape).encode())
    digest.update(row.tobytes())
    words = np.frombuffer(digest.digest()[:16], dtype=np.uint32)
    return np.random.default_rng(np.random.SeedSequence([seed, *map(int, words)]))


def region_vote(
    network: Network,
    x: np.ndarray,
    radius: float,
    samples: int,
    rng: np.random.Generator,
    batch_size: int = 512,
) -> np.ndarray:
    """Majority-vote labels over hypercube samples around each input.

    Parameters
    ----------
    x:
        Batch of images, shape ``(N, *input_shape)``.
    radius:
        Hypercube half-width ``r``; samples are clipped to the pixel box.
    samples:
        Number of points ``m`` drawn per input.

    Returns
    -------
    Labels of shape ``(N,)`` — the mode of the ``m`` sampled predictions.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if samples < 1:
        raise ValueError("samples must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    num_classes = network.num_classes
    engine = network.engine
    votes = np.zeros((n, num_classes), dtype=np.int64)

    # Sample per input, processed in flat batches to bound memory.  The
    # sampled points are fresh noise, so the engine memo is bypassed.
    per_chunk = max(1, batch_size // max(1, samples))
    for start in range(0, n, per_chunk):
        chunk = x[start : start + per_chunk]
        noise = rng.uniform(-radius, radius, size=(len(chunk), samples) + chunk.shape[1:])
        points = np.clip(chunk[:, None] + noise, PIXEL_MIN, PIXEL_MAX)
        flat = points.reshape((-1,) + chunk.shape[1:])
        labels = engine.predict(flat, batch_size=batch_size, memo=False)
        # One scatter-add replaces the per-row bincount loop: O(1) Python
        # overhead per chunk instead of O(rows).
        rows = np.repeat(np.arange(start, start + len(chunk)), samples)
        np.add.at(votes, (rows, labels), 1)
    return votes.argmax(axis=1)


def region_vote_fused(
    network: Network,
    x: np.ndarray,
    radius: float,
    samples: int,
    seed: int,
    batch_size: int = 512,
    pad_chunks: bool = False,
    kernel_batch: int = 64,
) -> np.ndarray:
    """Majority vote with per-input noise streams — safe to fuse across batches.

    Each input's ``m`` hypercube samples are drawn from :func:`input_rng`,
    so the returned label for a row is a pure function of ``(seed, row)``
    alone: stacking flagged rows from many concurrent requests into one
    fused batch votes bitwise-identically to correcting each request on
    its own.  This is the corrector kernel behind ``Corrector.correct``
    and the serving layer's cross-request fusion.

    Parameters
    ----------
    batch_size:
        Rows of sampled points assembled per chunk (bounds noise-buffer
        memory; ``per_chunk = batch_size // samples`` inputs per chunk).
    pad_chunks:
        Quantise each sample chunk's row count onto the power-of-two
        ladder with zero-row padding, so the flat batches the engine sees
        take only ``O(log per_chunk)`` distinct shapes instead of one per
        flagged count (padding predictions are discarded before the vote,
        which leaves labels unchanged).  Useful when the engine's
        compiled-plan budget is too tight to keep every flat shape
        resident; otherwise the padding only wastes predictions.
    kernel_batch:
        Sub-batch size the engine runs the flat chunks at.  Per-row
        logits are invariant to batch splitting, and the engine's kernels
        are measurably faster in cache-sized batches than in one
        ``batch_size``-row pass, so the fused vote keeps the large chunk
        (amortising Python glue) while the kernels run at their sweet
        spot.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if samples < 1:
        raise ValueError("samples must be >= 1")
    # Canonical float64: exact for engine-dtype (float32) inputs, and the
    # dtype the noise arithmetic has always used.
    x = np.ascontiguousarray(np.asarray(x), dtype=np.float64)
    n = len(x)
    if n == 0:
        return np.array([], dtype=int)
    num_classes = network.num_classes
    engine = network.engine
    votes = np.zeros((n, num_classes), dtype=np.int64)

    per_chunk = max(1, batch_size // max(1, samples))
    noise = np.empty((per_chunk, samples) + x.shape[1:])
    for start in range(0, n, per_chunk):
        chunk = x[start : start + per_chunk]
        for j in range(len(chunk)):
            noise[j] = input_rng(seed, chunk[j]).uniform(
                -radius, radius, size=(samples,) + x.shape[1:]
            )
        points = np.clip(chunk[:, None] + noise[: len(chunk)], PIXEL_MIN, PIXEL_MAX)
        flat = points.reshape((-1,) + x.shape[1:])
        real = len(flat)
        if pad_chunks:
            rows_bucket = 1
            while rows_bucket < len(chunk):
                rows_bucket *= 2
            rows_bucket = min(rows_bucket, per_chunk)
            if rows_bucket > len(chunk):
                flat = np.concatenate(
                    [flat, np.zeros(((rows_bucket - len(chunk)) * samples,) + x.shape[1:])]
                )
        labels = engine.predict(flat, batch_size=kernel_batch, memo=False)[:real]
        rows = np.repeat(np.arange(start, start + len(chunk)), samples)
        np.add.at(votes, (rows, labels), 1)
    return votes.argmax(axis=1)


class RegionClassifier:
    """Cao & Gong's RC with the paper's parameters (``m = 1000``).

    Every input — benign or not — pays the full ``m`` predictions; this is
    exactly the inefficiency the paper's Table 6 / Fig. 5 measure.
    """

    name = "rc"

    def __init__(self, network: Network, radius: float, samples: int = 1000, seed: int = 0):
        self.network = network
        self.radius = radius
        self.samples = samples
        self.seed = seed

    def classify(self, x: np.ndarray) -> np.ndarray:
        # Fresh generator per call (seed ⊕ input digest): labels depend
        # only on the input, never on how many calls came before.
        x = np.asarray(x, dtype=np.float64)
        return region_vote(self.network, x, self.radius, self.samples, call_rng(self.seed, x))
