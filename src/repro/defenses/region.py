"""Region-based classification (Cao & Gong, ACSAC 2017).

The paper's strongest prior defense and the mechanism its corrector reuses:
instead of classifying the input point, sample ``m`` points uniformly from
the hypercube of radius ``r`` centred on it, classify each with the
underlying DNN, and take the majority vote.  The paper runs RC with the
original parameters (``m = 1000``; ``r = 0.3`` MNIST / ``0.02`` CIFAR) and
shows its corrector achieves the same recovery with ``m = 50``.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..datasets.dataset import PIXEL_MAX, PIXEL_MIN
from ..nn.network import Network

__all__ = ["region_vote", "call_rng", "RegionClassifier"]


def call_rng(seed: int, x: np.ndarray) -> np.random.Generator:
    """Per-call generator derived from a base seed and the input's content.

    A classifier holding one mutable generator answers differently
    depending on how many calls preceded this one — evaluating defenses in
    a different order silently changes their reported accuracy.  Folding a
    digest of the input bytes (and shape) into the seed makes every call a
    pure function of ``(seed, x)``: same input, same vote, in any order.
    """
    x = np.ascontiguousarray(x)
    digest = hashlib.sha256(repr((x.shape, str(x.dtype))).encode())
    digest.update(x.tobytes())
    words = np.frombuffer(digest.digest()[:16], dtype=np.uint32)
    return np.random.default_rng(np.random.SeedSequence([seed, *map(int, words)]))


def region_vote(
    network: Network,
    x: np.ndarray,
    radius: float,
    samples: int,
    rng: np.random.Generator,
    batch_size: int = 512,
) -> np.ndarray:
    """Majority-vote labels over hypercube samples around each input.

    Parameters
    ----------
    x:
        Batch of images, shape ``(N, *input_shape)``.
    radius:
        Hypercube half-width ``r``; samples are clipped to the pixel box.
    samples:
        Number of points ``m`` drawn per input.

    Returns
    -------
    Labels of shape ``(N,)`` — the mode of the ``m`` sampled predictions.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if samples < 1:
        raise ValueError("samples must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    num_classes = network.num_classes
    engine = network.engine
    votes = np.zeros((n, num_classes), dtype=np.int64)

    # Sample per input, processed in flat batches to bound memory.  The
    # sampled points are fresh noise, so the engine memo is bypassed.
    per_chunk = max(1, batch_size // max(1, samples))
    for start in range(0, n, per_chunk):
        chunk = x[start : start + per_chunk]
        noise = rng.uniform(-radius, radius, size=(len(chunk), samples) + chunk.shape[1:])
        points = np.clip(chunk[:, None] + noise, PIXEL_MIN, PIXEL_MAX)
        flat = points.reshape((-1,) + chunk.shape[1:])
        labels = engine.predict(flat, batch_size=batch_size, memo=False)
        # One scatter-add replaces the per-row bincount loop: O(1) Python
        # overhead per chunk instead of O(rows).
        rows = np.repeat(np.arange(start, start + len(chunk)), samples)
        np.add.at(votes, (rows, labels), 1)
    return votes.argmax(axis=1)


class RegionClassifier:
    """Cao & Gong's RC with the paper's parameters (``m = 1000``).

    Every input — benign or not — pays the full ``m`` predictions; this is
    exactly the inefficiency the paper's Table 6 / Fig. 5 measure.
    """

    name = "rc"

    def __init__(self, network: Network, radius: float, samples: int = 1000, seed: int = 0):
        self.network = network
        self.radius = radius
        self.samples = samples
        self.seed = seed

    def classify(self, x: np.ndarray) -> np.ndarray:
        # Fresh generator per call (seed ⊕ input digest): labels depend
        # only on the input, never on how many calls came before.
        x = np.asarray(x, dtype=np.float64)
        return region_vote(self.network, x, self.radius, self.samples, call_rng(self.seed, x))
