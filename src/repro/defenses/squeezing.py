"""Feature squeezing (Xu, Evans, Qi — NDSS 2018).

Detection-only related work the paper discusses (Sec. 2.3): squeeze the
input (bit-depth reduction, median smoothing), and flag it as adversarial
when the model's softmax prediction moves too far between the original and
squeezed versions.  Included as a comparison detector for the ablation
benches; like the paper notes, it cannot recover the right label by itself.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..datasets.dataset import PIXEL_MIN
from ..nn.network import Network

__all__ = ["reduce_bit_depth", "median_smooth", "FeatureSqueezingDetector"]


def reduce_bit_depth(x: np.ndarray, bits: int) -> np.ndarray:
    """Quantise pixel values to ``2**bits`` levels (box-aware)."""
    if not 1 <= bits <= 8:
        raise ValueError("bits must be in 1..8")
    levels = 2**bits - 1
    unit = np.clip(np.asarray(x) - PIXEL_MIN, 0.0, 1.0)  # -> [0, 1]
    squeezed = np.round(unit * levels) / levels
    return squeezed + PIXEL_MIN


def median_smooth(x: np.ndarray, size: int = 2) -> np.ndarray:
    """Median filter over the spatial axes of an NCHW batch."""
    x = np.asarray(x)
    return ndimage.median_filter(x, size=(1, 1, size, size))


class FeatureSqueezingDetector:
    """Joint detector over bit-depth and median-smoothing squeezers.

    The detection score is the maximum L1 distance between the softmax of
    the original input and of any squeezed version; inputs scoring above
    ``threshold`` are flagged adversarial.
    """

    name = "feature-squeezing"

    def __init__(self, network: Network, bits: int = 4, smooth_size: int = 2, threshold: float = 0.5):
        self.network = network
        self.bits = bits
        self.smooth_size = smooth_size
        self.threshold = threshold

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Maximum softmax-L1 displacement across the squeezers."""
        x = np.asarray(x, dtype=np.float64)
        engine = self.network.engine
        reference = engine.softmax(x)
        distances = []
        for squeezed in (reduce_bit_depth(x, self.bits), median_smooth(x, self.smooth_size)):
            probs = engine.softmax(squeezed)
            distances.append(np.abs(probs - reference).sum(axis=-1))
        return np.maximum.reduce(distances)

    def is_adversarial(self, x: np.ndarray) -> np.ndarray:
        return self.scores(x) > self.threshold

    def calibrate(self, benign: np.ndarray, false_positive_rate: float = 0.05) -> float:
        """Set ``threshold`` so at most this fraction of benign inputs is flagged."""
        scores = self.scores(benign)
        self.threshold = float(np.quantile(scores, 1.0 - false_positive_rate))
        return self.threshold
