"""MagNet (Meng & Chen, CCS 2017) — detector + reformer via autoencoders.

Related work the paper discusses in Sec. 2.3: an autoencoder is trained on
benign data only; inputs with large reconstruction error are flagged as
adversarial (detector), and inputs are replaced by their reconstruction
before classification (reformer), which pulls small perturbations back
toward the benign manifold.

Implemented here as a comparison point for the ablation benches.  The
autoencoder is a fully-connected bottleneck network trained with MSE on
the normalised pixel values, matching MagNet's MNIST configuration in
spirit (their convolutional variant differs only in capacity).
"""

from __future__ import annotations

import numpy as np

from ..cache import memoize_arrays
from ..datasets import Dataset
from ..nn import Adam, Dense, Flatten, Network, ReLU, Tanh, TrainConfig, fit
from ..nn.network import Network as _Net
from ..nn.train_engine import MSE
from ..zoo import _dtype_key

__all__ = ["build_autoencoder", "train_autoencoder", "MagNet"]


def build_autoencoder(input_shape: tuple[int, int, int], bottleneck: int = 96, seed: int = 31) -> Network:
    """Dense autoencoder mapping an image to itself through a bottleneck.

    Output activation is ``0.5*tanh`` — exactly the data box [-0.5, 0.5] —
    implemented as a Tanh layer followed by a halving Dense layer would be
    wasteful, so reconstruction targets are produced by a plain Dense and
    clipped by the training data's own range via tanh scaling in `reform`.
    """
    rng = np.random.default_rng(seed)
    features = int(np.prod(input_shape))
    layers = [
        Flatten(),
        Dense(features, bottleneck * 2, rng),
        ReLU(),
        Dense(bottleneck * 2, bottleneck, rng),
        ReLU(),
        Dense(bottleneck, bottleneck * 2, rng),
        ReLU(),
        Dense(bottleneck * 2, features, rng),
        Tanh(),
    ]
    return Network(layers, input_shape)


def train_autoencoder(
    dataset: Dataset,
    bottleneck: int = 96,
    epochs: int = 30,
    learning_rate: float = 2e-3,
    cache: bool = True,
    train_dtype: str = "float32",
) -> Network:
    """Train the MagNet autoencoder on the benign training split."""
    autoencoder = build_autoencoder(dataset.input_shape, bottleneck=bottleneck)
    flat_targets = dataset.x_train.reshape(len(dataset.x_train), -1)
    # Tanh output spans (-1, 1); targets span [-0.5, 0.5], so train against
    # doubled targets and halve at reform time.
    scaled_targets = flat_targets * 2.0

    def build() -> dict[str, np.ndarray]:
        rng = np.random.default_rng(41)
        optimizer = Adam(autoencoder.parameters(), lr=learning_rate)
        fit(
            autoencoder,
            optimizer,
            dataset.x_train,
            scaled_targets,
            TrainConfig(epochs=epochs, batch_size=64, dtype=train_dtype),
            rng,
            loss=MSE,
        )
        return autoencoder.state()

    if cache:
        key = _dtype_key(
            {
                "kind": "magnet-ae",
                "dataset": dataset.name,
                "bottleneck": bottleneck,
                "epochs": epochs,
                "lr": learning_rate,
            },
            train_dtype,
        )
        autoencoder.load_state(memoize_arrays(key, build))
    else:
        build()
    return autoencoder


class MagNet:
    """MagNet defense: reconstruction-error detector + reformer pipeline.

    ``classify`` runs the reformer unconditionally (MagNet's deployment
    mode when rejection is not an option); ``is_adversarial`` exposes the
    detector for detection-rate comparisons.
    """

    name = "magnet"

    def __init__(self, network: _Net, autoencoder: Network, threshold: float = np.inf):
        self.network = network
        self.autoencoder = autoencoder
        self.threshold = threshold
        # Benign examples consumed for threshold calibration; evaluation
        # pools should exclude these (same hygiene as the DCN detector).
        self.calibration_indices = np.array([], dtype=int)

    @classmethod
    def build(
        cls,
        network: _Net,
        dataset: Dataset,
        false_positive_rate: float = 0.05,
        calibration_size: int = 200,
        cache: bool = True,
    ) -> "MagNet":
        """Train the autoencoder and calibrate the detection threshold.

        Calibration uses a reserved slice of held-out (test-split) benign
        data: the autoencoder reconstructs its own training set slightly
        better than fresh data, so a train-set threshold under-flags
        nothing but over-flags everything at deploy time.
        """
        autoencoder = train_autoencoder(dataset, cache=cache)
        magnet = cls(network, autoencoder)
        rng = np.random.default_rng(61)
        benign, _, indices = dataset.sample_test(calibration_size, rng)
        magnet.calibrate(benign, false_positive_rate)
        magnet.calibration_indices = indices
        return magnet

    def reform(self, x: np.ndarray) -> np.ndarray:
        """Project inputs onto the learned benign manifold."""
        x = np.asarray(x, dtype=np.float64)
        # Reconstructions are full images — too large to be worth memoising.
        flat = self.autoencoder.engine.logits(x, memo=False) * 0.5  # tanh -> [-0.5, 0.5]
        return flat.reshape(x.shape)

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        """Per-example mean squared reconstruction error."""
        x = np.asarray(x, dtype=np.float64)
        reformed = self.reform(x)
        return ((reformed - x) ** 2).reshape(len(x), -1).mean(axis=1)

    def calibrate(self, benign: np.ndarray, false_positive_rate: float = 0.05) -> float:
        """Pick the detection threshold from benign reconstruction errors."""
        errors = self.reconstruction_error(benign)
        self.threshold = float(np.quantile(errors, 1.0 - false_positive_rate))
        return self.threshold

    def is_adversarial(self, x: np.ndarray) -> np.ndarray:
        return self.reconstruction_error(x) > self.threshold

    def classify(self, x: np.ndarray) -> np.ndarray:
        return self.network.engine.predict(self.reform(x), memo=False)
