"""Adversarial training (Goodfellow et al., 2015).

The other classic robustness defense the paper cites in its introduction:
augment each training batch with FGSM adversarial examples crafted against
the current model.  Included as an additional comparison row for the
extension benches (the paper itself compares only distillation and RC).

Both halves of the loop run on fused kernels: FGSM crafting goes through
the network's :class:`~repro.nn.grad_engine.GradientEngine` and the
weighted clean+adversarial objective is accumulated by two scaled
:meth:`~repro.nn.train_engine.TrainingEngine.train_batch` calls into one
optimiser step.
"""

from __future__ import annotations

import numpy as np

from ..cache import memoize_arrays
from ..datasets import Dataset
from ..nn import Adam, TrainConfig
from ..nn.network import Network
from ..nn.train_engine import TrainingEngine
from ..zoo import MODEL_CONFIGS, ModelConfig, _dtype_key, build_network

__all__ = ["AdversariallyTrainedClassifier", "train_adversarial"]


class AdversariallyTrainedClassifier:
    """Classifier hardened with FGSM data augmentation."""

    name = "adv-training"

    def __init__(self, network: Network, epsilon: float):
        self.network = network
        self.epsilon = epsilon

    def classify(self, x: np.ndarray) -> np.ndarray:
        return self.network.engine.predict(x)


def _fgsm_batch(network: Network, x: np.ndarray, y: np.ndarray, epsilon: float) -> np.ndarray:
    """Untargeted FGSM against the current weights (training-time crafting)."""
    grad = network.grad_engine.cross_entropy_input_grad(x, y)
    return np.clip(x + epsilon * np.sign(grad), -0.5, 0.5)


def train_adversarial(
    dataset: Dataset,
    model: str | ModelConfig,
    epsilon: float = 0.1,
    adversarial_weight: float = 0.5,
    cache: bool = True,
    train_dtype: str = "float32",
) -> AdversariallyTrainedClassifier:
    """Adversarially train the named architecture on ``dataset``.

    Each step optimises ``(1-w)*CE(clean) + w*CE(fgsm(clean))`` with the
    adversarial examples regenerated against the evolving model.
    """
    config = MODEL_CONFIGS[model] if isinstance(model, str) else model
    network = build_network(config, dataset.input_shape, 10, seed=config.seed + 200)

    def build() -> dict[str, np.ndarray]:
        rng = np.random.default_rng(config.seed + 201)
        optimizer = Adam(network.parameters(), lr=config.learning_rate)
        train_config = TrainConfig(epochs=config.epochs, batch_size=config.batch_size)
        engine = network.train_engine
        if engine.dtype != np.dtype(train_dtype):
            engine = TrainingEngine(network, dtype=train_dtype)
            network.attach_train_engine(engine)
        x, y = dataset.x_train, dataset.y_train
        indices = np.arange(len(x))
        with engine.parameters_bound():
            for _ in range(train_config.epochs):
                rng.shuffle(indices)
                for begin in range(0, len(x), train_config.batch_size):
                    batch_idx = indices[begin : begin + train_config.batch_size]
                    xb, yb = x[batch_idx], y[batch_idx]
                    adversarial = _fgsm_batch(network, xb, yb, epsilon)
                    optimizer.zero_grad()
                    # Two scaled seeds accumulate the weighted objective's
                    # gradient before a single optimiser step.
                    engine.train_batch(xb, yb, scale=1.0 - adversarial_weight)
                    engine.train_batch(adversarial, yb, scale=adversarial_weight)
                    optimizer.step()
        return network.state()

    if cache:
        key = _dtype_key(
            {
                "kind": "advtrain",
                "dataset": dataset.name,
                "epsilon": epsilon,
                "weight": adversarial_weight,
                **config.__dict__,
            },
            train_dtype,
        )
        network.load_state(memoize_arrays(key, build))
    else:
        build()
    return AdversariallyTrainedClassifier(network, epsilon)
