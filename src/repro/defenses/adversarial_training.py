"""Adversarial training (Goodfellow et al., 2015).

The other classic robustness defense the paper cites in its introduction:
augment each training batch with FGSM adversarial examples crafted against
the current model.  Included as an additional comparison row for the
extension benches (the paper itself compares only distillation and RC).
"""

from __future__ import annotations

import numpy as np

from ..cache import memoize_arrays
from ..datasets import Dataset
from ..nn import Adam, TrainConfig
from ..nn.losses import cross_entropy
from ..nn.network import Network
from ..nn.tensor import Tensor
from ..zoo import MODEL_CONFIGS, ModelConfig, build_network

__all__ = ["AdversariallyTrainedClassifier", "train_adversarial"]


class AdversariallyTrainedClassifier:
    """Classifier hardened with FGSM data augmentation."""

    name = "adv-training"

    def __init__(self, network: Network, epsilon: float):
        self.network = network
        self.epsilon = epsilon

    def classify(self, x: np.ndarray) -> np.ndarray:
        return self.network.engine.predict(x)


def _fgsm_batch(network: Network, x: np.ndarray, y: np.ndarray, epsilon: float) -> np.ndarray:
    """Untargeted FGSM against the current weights (training-time crafting)."""
    inp = Tensor(x, requires_grad=True)
    loss = cross_entropy(network.forward(inp), y)
    loss.backward()
    return np.clip(x + epsilon * np.sign(inp.grad), -0.5, 0.5)


def train_adversarial(
    dataset: Dataset,
    model: str | ModelConfig,
    epsilon: float = 0.1,
    adversarial_weight: float = 0.5,
    cache: bool = True,
) -> AdversariallyTrainedClassifier:
    """Adversarially train the named architecture on ``dataset``.

    Each step optimises ``(1-w)*CE(clean) + w*CE(fgsm(clean))`` with the
    adversarial examples regenerated against the evolving model.
    """
    config = MODEL_CONFIGS[model] if isinstance(model, str) else model
    network = build_network(config, dataset.input_shape, 10, seed=config.seed + 200)

    def build() -> dict[str, np.ndarray]:
        rng = np.random.default_rng(config.seed + 201)
        optimizer = Adam(network.parameters(), lr=config.learning_rate)
        train_config = TrainConfig(epochs=config.epochs, batch_size=config.batch_size)
        x, y = dataset.x_train, dataset.y_train
        indices = np.arange(len(x))
        for _ in range(train_config.epochs):
            rng.shuffle(indices)
            for begin in range(0, len(x), train_config.batch_size):
                batch_idx = indices[begin : begin + train_config.batch_size]
                xb, yb = x[batch_idx], y[batch_idx]
                adversarial = _fgsm_batch(network, xb, yb, epsilon)
                optimizer.zero_grad()
                clean_loss = cross_entropy(network.forward(Tensor(xb), training=True), yb)
                adv_loss = cross_entropy(network.forward(Tensor(adversarial), training=True), yb)
                total = clean_loss * (1.0 - adversarial_weight) + adv_loss * adversarial_weight
                total.backward()
                optimizer.step()
        return network.state()

    if cache:
        key = {
            "kind": "advtrain",
            "dataset": dataset.name,
            "epsilon": epsilon,
            "weight": adversarial_weight,
            **config.__dict__,
        }
        network.load_state(memoize_arrays(key, build))
    else:
        build()
    return AdversariallyTrainedClassifier(network, epsilon)
