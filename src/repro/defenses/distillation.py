"""Defensive distillation (Papernot et al., S&P 2016).

One of the paper's comparison defenses (Sec. 5.1): a teacher network is
trained with a temperature-``T`` softmax, its soft labels are used to train
a student of the same architecture at the same temperature, and the student
classifies at ``T = 1``.  The paper uses ``T = 100`` and — reproducing
Carlini & Wagner's finding — shows CW attacks still succeed at 100%.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..cache import memoize_arrays
from ..datasets import Dataset
from ..nn import Adam, TrainConfig, fit
from ..nn.losses import one_hot
from ..nn.network import Network
from ..nn.train_engine import soft_cross_entropy_loss
from ..zoo import MODEL_CONFIGS, ModelConfig, _dtype_key, build_network

__all__ = ["DistilledClassifier", "train_distilled"]


class DistilledClassifier:
    """Student network of a defensive-distillation run (classifies at T=1)."""

    name = "distillation"

    def __init__(self, network: Network, temperature: float):
        self.network = network
        self.temperature = temperature

    def classify(self, x: np.ndarray) -> np.ndarray:
        return self.network.engine.predict(x)


def _train_at_temperature(
    network: Network,
    x: np.ndarray,
    targets: np.ndarray,
    config: ModelConfig,
    temperature: float,
    seed_offset: int,
    train_dtype: str = "float32",
) -> None:
    rng = np.random.default_rng(config.seed + seed_offset)
    optimizer = Adam(network.parameters(), lr=config.learning_rate)
    train_config = TrainConfig(
        epochs=config.epochs, batch_size=config.batch_size, lr_decay=0.92, dtype=train_dtype
    )
    fit(
        network,
        optimizer,
        x,
        targets,
        train_config,
        rng,
        loss=soft_cross_entropy_loss(temperature),
    )


def train_distilled(
    dataset: Dataset,
    model: str | ModelConfig,
    temperature: float = 100.0,
    cache: bool = True,
    train_dtype: str = "float32",
) -> DistilledClassifier:
    """Run the full distillation pipeline and return the student classifier.

    The teacher and student share the architecture named by ``model`` (a
    :mod:`repro.zoo` config name, or a :class:`ModelConfig` directly); both
    train at ``temperature``.
    """
    config = MODEL_CONFIGS[model] if isinstance(model, str) else model
    # Temperature-T training needs logits ~T times larger than standard
    # training produces, so the distillation runs get a boosted schedule
    # (Papernot et al. likewise train distilled models longer).
    config = replace(config, learning_rate=max(config.learning_rate * 5, 5e-3), epochs=int(config.epochs * 1.5))
    student = build_network(config, dataset.input_shape, 10, seed=config.seed + 100)

    def build() -> dict[str, np.ndarray]:
        teacher = build_network(config, dataset.input_shape, 10, seed=config.seed + 50)
        hard = one_hot(dataset.y_train, 10)
        _train_at_temperature(
            teacher, dataset.x_train, hard, config, temperature, seed_offset=3, train_dtype=train_dtype
        )
        soft = teacher.engine.softmax(dataset.x_train, temperature=temperature, memo=False)
        _train_at_temperature(
            student, dataset.x_train, soft, config, temperature, seed_offset=4, train_dtype=train_dtype
        )
        return student.state()

    if cache:
        key = _dtype_key(
            {
                "kind": "distilled",
                "dataset": dataset.name,
                "temperature": temperature,
                **config.__dict__,
            },
            train_dtype,
        )
        student.load_state(memoize_arrays(key, build))
    else:
        build()
    return DistilledClassifier(student, temperature)
