"""The Detector-Corrector Network (paper Sec. 4, Figs. 2-3).

DCN wraps an unmodified protected DNN with two stages:

1. The model predicts; the detector inspects the resulting logits.
2. Inputs flagged adversarial are re-labelled by the corrector's hypercube
   vote; benign-looking inputs keep the model's label (one extra tiny
   forward pass of overhead — the detector has ~400 parameters).

Because false negatives (benign flagged adversarial) are also corrected by
the region vote, which agrees with the model on benign inputs, DCN keeps
the standard model's benign accuracy (Table 3).
"""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from ..nn.network import Network
from .corrector import Corrector
from .detector import LogitDetector, train_detector
from .radius import select_radius

__all__ = ["DCN"]


class DCN:
    """Detector-Corrector Network around a protected model."""

    name = "dcn"

    def __init__(self, network: Network, detector: LogitDetector, corrector: Corrector):
        self.network = network
        self.detector = detector
        self.corrector = corrector

    @classmethod
    def build(
        cls,
        network: Network,
        dataset: Dataset,
        radius: float | None = None,
        samples: int = 50,
        detector_seeds: int = 60,
        seed: int = 101,
        cache: bool = True,
    ) -> "DCN":
        """Train a detector and assemble a DCN with the paper's parameters.

        ``radius`` defaults to the calibrated value from
        :func:`repro.core.radius.select_radius`, which reuses the detector's
        CW-L2 training pool as the validation set.
        """
        detector = train_detector(network, dataset, num_seeds=detector_seeds, seed=seed, cache=cache)
        if radius is None:
            radius = select_radius(network, dataset, num_seeds=detector_seeds, seed=seed, cache=cache)
        corrector = Corrector(network, radius=radius, samples=samples)
        return cls(network, detector, corrector)

    def classify(self, x: np.ndarray) -> np.ndarray:
        labels, _ = self.classify_detailed(x)
        return labels

    def classify_detailed(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Classify and also report which inputs activated the corrector.

        Returns ``(labels, flagged)``.
        """
        # No dtype coercion: a float32 batch flows straight into the engine
        # (which computes in float32 anyway) without an intermediate float64
        # copy; the corrector canonicalises its own noise streams, so the
        # labels are identical either way.
        x = np.asarray(x)
        # One engine pass classifies everything; only flagged inputs pay
        # the corrector's extra m forward passes (the paper's Table 6 win).
        logits = self.network.engine.logits(x)
        labels = logits.argmax(axis=-1)
        flagged = self.detector.is_adversarial(logits)
        if flagged.any():
            labels = labels.copy()
            labels[flagged] = self.corrector.correct(x[flagged])
        return labels, flagged
