"""Alternative correctors — the paper's Sec. 6 "Other correctors" future work.

The paper observes that the corrector, not the detector, is DCN's
bottleneck (especially for L0 adversarial examples that sit far from the
original region) and calls for more accurate correctors.  Three variants
are implemented alongside the default majority vote:

* :class:`SoftVoteCorrector` — sums full softmax distributions over the
  sampled points instead of counting hard votes, so confident neighbours
  weigh more.
* :class:`GaussianCorrector` — samples from an isotropic Gaussian instead
  of the hypercube, concentrating probes near the input.
* :class:`IterativeCorrector` — re-centres the hypercube on the current
  majority-vote reconstruction for several rounds, walking back along the
  perturbation direction (helps large-|δ| L0 examples).

``bench_ablation_other_correctors`` compares their recovery rates.
"""

from __future__ import annotations

import numpy as np

from ..datasets.dataset import PIXEL_MAX, PIXEL_MIN
from ..nn.network import Network

__all__ = ["SoftVoteCorrector", "GaussianCorrector", "IterativeCorrector"]


class SoftVoteCorrector:
    """Hypercube sampling with softmax-probability (soft) voting."""

    def __init__(self, network: Network, radius: float, samples: int = 50, seed: int = 0):
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.network = network
        self.radius = radius
        self.samples = samples
        self._rng = np.random.default_rng(seed)

    def correct(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if len(x) == 0:
            return np.array([], dtype=int)
        labels = np.empty(len(x), dtype=int)
        for i, image in enumerate(x):
            noise = self._rng.uniform(-self.radius, self.radius, size=(self.samples,) + image.shape)
            points = np.clip(image[None] + noise, PIXEL_MIN, PIXEL_MAX)
            probs = self.network.softmax(points)
            labels[i] = int(probs.sum(axis=0).argmax())
        return labels


class GaussianCorrector:
    """Gaussian-ball sampling with majority voting.

    ``sigma`` defaults to ``radius / sqrt(3)`` so the per-pixel variance
    matches the uniform hypercube of the standard corrector.
    """

    def __init__(
        self,
        network: Network,
        radius: float,
        samples: int = 50,
        sigma: float | None = None,
        seed: int = 0,
    ):
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.network = network
        self.sigma = radius / np.sqrt(3.0) if sigma is None else sigma
        self.samples = samples
        self._rng = np.random.default_rng(seed)

    def correct(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if len(x) == 0:
            return np.array([], dtype=int)
        labels = np.empty(len(x), dtype=int)
        num_classes = self.network.num_classes
        for i, image in enumerate(x):
            noise = self._rng.normal(0.0, self.sigma, size=(self.samples,) + image.shape)
            points = np.clip(image[None] + noise, PIXEL_MIN, PIXEL_MAX)
            votes = np.bincount(self.network.predict(points), minlength=num_classes)
            labels[i] = int(votes.argmax())
        return labels


class IterativeCorrector:
    """Majority vote with re-centring rounds.

    After each round the probe centre moves toward the mean of the sampled
    points that voted for the current majority label — a crude projection
    back onto that label's region, which helps when the adversarial point
    lies deeper inside the wrong region than ``radius`` can reach.
    """

    def __init__(
        self,
        network: Network,
        radius: float,
        samples: int = 50,
        rounds: int = 3,
        seed: int = 0,
    ):
        if samples < 1 or rounds < 1:
            raise ValueError("samples and rounds must be >= 1")
        self.network = network
        self.radius = radius
        self.samples = samples
        self.rounds = rounds
        self._rng = np.random.default_rng(seed)

    def correct(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if len(x) == 0:
            return np.array([], dtype=int)
        labels = np.empty(len(x), dtype=int)
        num_classes = self.network.num_classes
        for i, image in enumerate(x):
            centre = image
            label = -1
            for _ in range(self.rounds):
                noise = self._rng.uniform(-self.radius, self.radius, size=(self.samples,) + image.shape)
                points = np.clip(centre[None] + noise, PIXEL_MIN, PIXEL_MAX)
                predictions = self.network.predict(points)
                votes = np.bincount(predictions, minlength=num_classes)
                label = int(votes.argmax())
                supporters = points[predictions == label]
                if len(supporters) == 0:
                    break
                centre = supporters.mean(axis=0)
            labels[i] = label
        return labels
