"""Alternative correctors — the paper's Sec. 6 "Other correctors" future work.

The paper observes that the corrector, not the detector, is DCN's
bottleneck (especially for L0 adversarial examples that sit far from the
original region) and calls for more accurate correctors.  Three variants
are implemented alongside the default majority vote:

* :class:`SoftVoteCorrector` — sums full softmax distributions over the
  sampled points instead of counting hard votes, so confident neighbours
  weigh more.
* :class:`GaussianCorrector` — samples from an isotropic Gaussian instead
  of the hypercube, concentrating probes near the input.
* :class:`IterativeCorrector` — re-centres the hypercube on the current
  majority-vote reconstruction for several rounds, walking back along the
  perturbation direction (helps large-|δ| L0 examples).

All probes route through the network's :class:`~repro.nn.engine.InferenceEngine`
(memo bypassed — the sampled points are fresh noise every call), and the
soft/Gaussian variants batch their samples across examples the same way
:func:`repro.defenses.region.region_vote` does.

``bench_ablation_other_correctors`` compares their recovery rates.
"""

from __future__ import annotations

import numpy as np

from ..datasets.dataset import PIXEL_MAX, PIXEL_MIN
from ..nn.network import Network

__all__ = ["SoftVoteCorrector", "GaussianCorrector", "IterativeCorrector"]

_CHUNK_POINTS = 512  # probe points per engine call, shared across examples


def _chunked_probes(x: np.ndarray, samples: int, draw_noise) -> "np.ndarray":
    """Yield ``(start, chunk, flat_points)`` probe batches for ``x``."""
    per_chunk = max(1, _CHUNK_POINTS // max(1, samples))
    for start in range(0, len(x), per_chunk):
        chunk = x[start : start + per_chunk]
        noise = draw_noise((len(chunk), samples) + chunk.shape[1:])
        points = np.clip(chunk[:, None] + noise, PIXEL_MIN, PIXEL_MAX)
        yield start, chunk, points.reshape((-1,) + chunk.shape[1:])


class SoftVoteCorrector:
    """Hypercube sampling with softmax-probability (soft) voting."""

    def __init__(self, network: Network, radius: float, samples: int = 50, seed: int = 0):
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.network = network
        self.radius = radius
        self.samples = samples
        self._rng = np.random.default_rng(seed)

    def correct(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if len(x) == 0:
            return np.array([], dtype=int)
        engine = self.network.engine
        labels = np.empty(len(x), dtype=int)
        draw = lambda size: self._rng.uniform(-self.radius, self.radius, size=size)
        for start, chunk, flat in _chunked_probes(x, self.samples, draw):
            probs = engine.softmax(flat, memo=False)
            summed = probs.reshape(len(chunk), self.samples, -1).sum(axis=1)
            labels[start : start + len(chunk)] = summed.argmax(axis=-1)
        return labels


class GaussianCorrector:
    """Gaussian-ball sampling with majority voting.

    ``sigma`` defaults to ``radius / sqrt(3)`` so the per-pixel variance
    matches the uniform hypercube of the standard corrector.
    """

    def __init__(
        self,
        network: Network,
        radius: float,
        samples: int = 50,
        sigma: float | None = None,
        seed: int = 0,
    ):
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.network = network
        self.sigma = radius / np.sqrt(3.0) if sigma is None else sigma
        self.samples = samples
        self._rng = np.random.default_rng(seed)

    def correct(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if len(x) == 0:
            return np.array([], dtype=int)
        engine = self.network.engine
        num_classes = self.network.num_classes
        labels = np.empty(len(x), dtype=int)
        draw = lambda size: self._rng.normal(0.0, self.sigma, size=size)
        for start, chunk, flat in _chunked_probes(x, self.samples, draw):
            predictions = engine.predict(flat, memo=False)
            votes = np.zeros((len(chunk), num_classes), dtype=np.int64)
            rows = np.repeat(np.arange(len(chunk)), self.samples)
            np.add.at(votes, (rows, predictions), 1)
            labels[start : start + len(chunk)] = votes.argmax(axis=1)
        return labels


class IterativeCorrector:
    """Majority vote with re-centring rounds.

    After each round the probe centre moves toward the mean of the sampled
    points that voted for the current majority label — a crude projection
    back onto that label's region, which helps when the adversarial point
    lies deeper inside the wrong region than ``radius`` can reach.
    """

    def __init__(
        self,
        network: Network,
        radius: float,
        samples: int = 50,
        rounds: int = 3,
        seed: int = 0,
    ):
        if samples < 1 or rounds < 1:
            raise ValueError("samples and rounds must be >= 1")
        self.network = network
        self.radius = radius
        self.samples = samples
        self.rounds = rounds
        self._rng = np.random.default_rng(seed)

    def correct(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if len(x) == 0:
            return np.array([], dtype=int)
        engine = self.network.engine
        labels = np.empty(len(x), dtype=int)
        num_classes = self.network.num_classes
        # The re-centring walk is inherently sequential per example, so
        # this stays a per-example loop; each probe batch still runs as a
        # single engine call.
        for i, image in enumerate(x):
            centre = image
            label = -1
            for _ in range(self.rounds):
                noise = self._rng.uniform(-self.radius, self.radius, size=(self.samples,) + image.shape)
                points = np.clip(centre[None] + noise, PIXEL_MIN, PIXEL_MAX)
                predictions = engine.predict(points, memo=False)
                votes = np.bincount(predictions, minlength=num_classes)
                label = int(votes.argmax())
                supporters = points[predictions == label]
                if len(supporters) == 0:
                    break
                centre = supporters.mean(axis=0)
            labels[i] = label
        return labels
