"""Save/load a trained DCN (detector weights + corrector configuration).

The protected model is serialised separately (it has its own lifecycle —
:meth:`repro.nn.network.Network.save`); a DCN bundle stores everything
*added* by the defense, so a deployment can attach it to the model it
already ships.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..nn.network import Network
from .corrector import Corrector
from .dcn import DCN
from .detector import LogitDetector, build_detector_network

__all__ = ["save_dcn", "load_dcn"]

_FORMAT_VERSION = 1


def save_dcn(dcn: DCN, path: str | Path) -> None:
    """Write the DCN's detector weights and corrector settings to ``path``."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "sort_features": np.array(int(dcn.detector.sort_features)),
        "train_seed_indices": dcn.detector.train_seed_indices,
        "radius": np.array(dcn.corrector.radius),
        "samples": np.array(dcn.corrector.samples),
    }
    for key, value in dcn.detector.network.state().items():
        payload[f"detector.{key}"] = value
    np.savez_compressed(path, **payload)


def load_dcn(network: Network, path: str | Path) -> DCN:
    """Reconstruct a DCN around ``network`` from a saved bundle.

    The detector's hidden width is recovered from the stored weight shapes,
    so no architecture metadata needs to travel separately.
    """
    with np.load(path) as archive:
        data = {key: archive[key] for key in archive.files}
    version = int(data.pop("format_version"))
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported DCN bundle version {version}")

    detector_state = {
        key[len("detector.") :]: value for key, value in data.items() if key.startswith("detector.")
    }
    num_classes, hidden = detector_state["layer0.weight"].shape
    detector_network = build_detector_network(num_classes=num_classes, hidden=hidden)
    detector_network.load_state(detector_state)
    detector = LogitDetector(
        detector_network,
        train_seed_indices=data["train_seed_indices"],
        sort_features=bool(int(data["sort_features"])),
    )
    corrector = Corrector(network, radius=float(data["radius"]), samples=int(data["samples"]))
    return DCN(network, detector, corrector)
