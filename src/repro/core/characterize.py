"""Logit characterisation — the paper's Sec. 3 measurement study (Fig. 1).

The study behind the detector: compare the classification probability
distributions (logits) of benign examples with those of the adversarial
examples crafted from them.  Benign logits have a confident winner with a
large margin; CW adversarial logits put the target class barely above the
original one.  :func:`logit_statistics` quantifies this and
:func:`fig1_rows` reproduces the paper's Fig. 1 layout for one seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.network import Network

__all__ = ["logit_statistics", "separation_summary", "Fig1Row", "fig1_rows", "format_fig1"]


def logit_statistics(logits: np.ndarray) -> dict[str, np.ndarray]:
    """Per-example summary statistics of logit vectors.

    Returns arrays keyed:

    * ``max`` — winning logit value (the paper's "confidence"),
    * ``margin`` — winner minus runner-up,
    * ``argmax`` — predicted class,
    * ``entropy`` — softmax entropy (nats).
    """
    logits = np.asarray(logits, dtype=np.float64)
    sorted_vals = np.sort(logits, axis=-1)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    entropy = -(probs * np.log(probs + 1e-12)).sum(axis=-1)
    return {
        "max": sorted_vals[:, -1],
        "margin": sorted_vals[:, -1] - sorted_vals[:, -2],
        "argmax": logits.argmax(axis=-1),
        "entropy": entropy,
    }


def separation_summary(benign_logits: np.ndarray, adversarial_logits: np.ndarray) -> dict[str, float]:
    """How separable the two populations are on simple logit statistics.

    Includes the AUC of the margin statistic (probability a random benign
    example has a larger margin than a random adversarial one) — the paper's
    "big difference ... easily identified" claim made quantitative.
    """
    benign = logit_statistics(benign_logits)
    adv = logit_statistics(adversarial_logits)
    # Rank-based AUC estimate on the margin statistic.
    b, a = benign["margin"], adv["margin"]
    comparisons = (b[:, None] > a[None, :]).mean() + 0.5 * (b[:, None] == a[None, :]).mean()
    return {
        "benign_mean_margin": float(b.mean()),
        "adversarial_mean_margin": float(a.mean()),
        "benign_mean_max": float(benign["max"].mean()),
        "adversarial_mean_max": float(adv["max"].mean()),
        "benign_mean_entropy": float(benign["entropy"].mean()),
        "adversarial_mean_entropy": float(adv["entropy"].mean()),
        "margin_auc": float(comparisons),
    }


@dataclass
class Fig1Row:
    """One row of the paper's Fig. 1: a label and its logit vector."""

    predicted_label: int
    true_label: int
    is_benign: bool
    logits: np.ndarray
    noise_l2: float


def fig1_rows(
    model: Network, benign_image: np.ndarray, true_label: int, adversarials: np.ndarray
) -> list[Fig1Row]:
    """Fig. 1's content: the benign seed's row followed by its 9 adversaries."""
    adversarials = np.asarray(adversarials)
    # One batched engine pass covers the seed and all of its adversaries.
    batch = np.concatenate([benign_image[None], adversarials])
    all_logits = model.engine.logits(batch)
    rows = [
        Fig1Row(
            predicted_label=int(all_logits[0].argmax()),
            true_label=true_label,
            is_benign=True,
            logits=all_logits[0],
            noise_l2=0.0,
        )
    ]
    for adversarial, logits in zip(adversarials, all_logits[1:]):
        noise = float(np.linalg.norm((adversarial - benign_image).ravel()))
        rows.append(
            Fig1Row(
                predicted_label=int(logits.argmax()),
                true_label=true_label,
                is_benign=False,
                logits=logits,
                noise_l2=noise,
            )
        )
    return rows


def format_fig1(rows: list[Fig1Row]) -> str:
    """Render Fig. 1 as text: label, noise, logit vector with max marked."""
    lines = ["label  kind     noise-L2  logits (max marked with *)"]
    for row in rows:
        kind = "benign" if row.is_benign else "adv"
        winner = row.logits.argmax()
        values = "  ".join(
            f"{'*' if i == winner else ' '}{value:6.2f}" for i, value in enumerate(row.logits)
        )
        lines.append(f"{row.predicted_label:>5}  {kind:<7}  {row.noise_l2:8.3f}  {values}")
    return "\n".join(lines)
