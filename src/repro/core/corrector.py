"""The DCN corrector: cheap region-based label recovery (paper Sec. 4).

The corrector is the paper's improvement over Cao & Gong's region-based
classifier: the same hypercube-sampling majority vote, but with only
``m = 50`` samples (Fig. 4 shows accuracy is nearly flat in ``m`` while
runtime is linear), and — crucially — run only on the inputs the detector
flags, not on everything.
"""

from __future__ import annotations

import numpy as np

from ..defenses.region import region_vote_fused
from ..nn.network import Network

__all__ = ["Corrector"]


class Corrector:
    """Hypercube-vote label recovery around a (suspected adversarial) input.

    Parameters
    ----------
    radius:
        Hypercube half-width ``r`` (paper: 0.3 for MNIST, 0.02 for CIFAR).
    samples:
        Votes per input ``m`` (paper: 50).
    """

    def __init__(self, network: Network, radius: float, samples: int = 50, seed: int = 0):
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.network = network
        self.radius = radius
        self.samples = samples
        self.seed = seed

    def correct(self, x: np.ndarray) -> np.ndarray:
        """Recover labels for a batch of flagged inputs.

        Deterministic in ``(seed, row)``: every input's vote noise comes
        from its own :func:`~repro.defenses.region.input_rng` stream, so a
        recovered label depends neither on how many corrections preceded
        this one nor on which other inputs share its batch.  That makes
        :meth:`correct` and :meth:`correct_fused` bitwise-interchangeable.
        """
        return region_vote_fused(self.network, x, self.radius, self.samples, self.seed)

    def correct_fused(self, x: np.ndarray, pad_chunks: bool = False) -> np.ndarray:
        """Recover labels for flagged rows fused from *many* requests.

        One noise draw, one engine pass, one vectorised vote over the
        stacked ``(n_flagged, *input_shape)`` rows — instead of one
        region vote per originating request.  Labels are bitwise-identical
        to per-request :meth:`correct` on the same rows.

        ``pad_chunks`` quantises the sample chunks' flat shapes onto the
        power-of-two ladder.  The corrector's flat shapes are already
        bounded (at most ``per_chunk`` distinct sizes), so leave this off
        when the serving engine's plan budget covers them — padding then
        only wastes engine compute.  Turn it on when the plan budget is
        tight and compile churn costs more than the padded rows.
        """
        return region_vote_fused(
            self.network, x, self.radius, self.samples, self.seed, pad_chunks=pad_chunks
        )
