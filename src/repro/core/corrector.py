"""The DCN corrector: cheap region-based label recovery (paper Sec. 4).

The corrector is the paper's improvement over Cao & Gong's region-based
classifier: the same hypercube-sampling majority vote, but with only
``m = 50`` samples (Fig. 4 shows accuracy is nearly flat in ``m`` while
runtime is linear), and — crucially — run only on the inputs the detector
flags, not on everything.
"""

from __future__ import annotations

import numpy as np

from ..defenses.region import call_rng, region_vote
from ..nn.network import Network

__all__ = ["Corrector"]


class Corrector:
    """Hypercube-vote label recovery around a (suspected adversarial) input.

    Parameters
    ----------
    radius:
        Hypercube half-width ``r`` (paper: 0.3 for MNIST, 0.02 for CIFAR).
    samples:
        Votes per input ``m`` (paper: 50).
    """

    def __init__(self, network: Network, radius: float, samples: int = 50, seed: int = 0):
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.network = network
        self.radius = radius
        self.samples = samples
        self.seed = seed

    def correct(self, x: np.ndarray) -> np.ndarray:
        """Recover labels for a batch of flagged inputs.

        Deterministic in ``(seed, x)``: the vote generator is derived per
        call from the input digest, so the recovered labels do not depend
        on how many corrections preceded this one.
        """
        if len(x) == 0:
            return np.array([], dtype=int)
        x = np.asarray(x, dtype=np.float64)
        return region_vote(self.network, x, self.radius, self.samples, call_rng(self.seed, x))
