"""Hypercube-radius calibration for the corrector / region classifier.

The paper adopts r = 0.3 (MNIST) and r = 0.02 (CIFAR-10) from Cao & Gong,
who chose them per-dataset.  Those constants are tied to their datasets'
geometry; on this reproduction's synthetic substitutes the right radius
differs (the CW perturbations land at different depths), so we re-derive
it the way a deployer of DCN would: the defender already crafts CW-L2
adversarial examples to train the detector (Sec. 5.2), and the same pool
doubles as a validation set for the radius — pick the grid value that
maximises label recovery, breaking ties toward the larger radius (more
benign-noise tolerance).

``select_radius`` is cached on disk; the paper's constants remain
available via :func:`repro.datasets.corrector_radius` and are compared in
``bench_ablation_corrector_radius``.
"""

from __future__ import annotations

import numpy as np

from ..cache import memoize_arrays, weights_fingerprint
from ..datasets import Dataset
from ..defenses.region import region_vote
from ..nn.network import Network

__all__ = ["select_radius", "DEFAULT_RADIUS_GRID"]

DEFAULT_RADIUS_GRID = (0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4)


def select_radius(
    model: Network,
    dataset: Dataset,
    num_seeds: int = 60,
    seed: int = 101,
    samples: int = 50,
    grid: tuple[float, ...] = DEFAULT_RADIUS_GRID,
    cache: bool = True,
) -> float:
    """Calibrate the corrector radius on the detector's CW-L2 training pool.

    Parameters mirror :func:`repro.core.detector.train_detector` so the two
    share the same cached pool (no extra attack cost).

    Returns the recovery-maximising radius from ``grid``.
    """
    from ..eval.adversarial_sets import build_targeted_pool  # circular-import guard

    def build() -> dict[str, np.ndarray]:
        pool = build_targeted_pool(model, dataset, "cw-l2", num_seeds, seed, cache=cache)
        adv, labels, _ = pool.successful()
        recoveries = np.empty(len(grid))
        for i, radius in enumerate(grid):
            votes = region_vote(model, adv, radius, samples, np.random.default_rng(17))
            recoveries[i] = float((votes == labels).mean())
        return {"grid": np.asarray(grid), "recoveries": recoveries}

    if cache:
        key = {
            "kind": "radius",
            "dataset": dataset.name,
            "weights": weights_fingerprint(model),
            "num_seeds": num_seeds,
            "seed": seed,
            "samples": samples,
            "grid": list(grid),
        }
        arrays = memoize_arrays(key, build)
    else:
        arrays = build()
    recoveries = arrays["recoveries"]
    stored_grid = arrays["grid"]
    # Best recovery, ties resolved toward the larger radius.
    best = recoveries.max()
    candidates = stored_grid[recoveries >= best - 1e-12]
    return float(candidates.max())
