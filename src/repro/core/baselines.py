"""Baseline detectors the learned detector must beat (or match).

The paper's detector is a learned binary classifier over logits.  Its
simplest competitor is a hand-set threshold on the logit margin (Sec. 3's
own statistic): flag an input as adversarial when the winner's lead over
the runner-up is below a threshold calibrated on benign data.  Included so
the ablation benches can show what the learned detector adds.
"""

from __future__ import annotations

import numpy as np

from ..nn.network import Network

__all__ = ["MarginThresholdDetector"]


class MarginThresholdDetector:
    """Flags inputs whose logit margin (top1 − top2) falls below a threshold."""

    def __init__(self, threshold: float = 0.0, sort_features: bool = True):
        # sort_features kept for interface parity with LogitDetector; the
        # margin statistic is permutation-invariant anyway.
        self.threshold = threshold
        self.sort_features = sort_features
        self.train_seed_indices = np.array([], dtype=int)

    @staticmethod
    def _margin(logits: np.ndarray) -> np.ndarray:
        ordered = np.sort(np.asarray(logits, dtype=np.float64), axis=-1)
        return ordered[:, -1] - ordered[:, -2]

    def calibrate(self, benign_logits: np.ndarray, false_negative_rate: float = 0.05) -> float:
        """Pick the threshold flagging at most this fraction of benign inputs."""
        margins = self._margin(benign_logits)
        self.threshold = float(np.quantile(margins, false_negative_rate))
        return self.threshold

    def is_adversarial(self, logits: np.ndarray) -> np.ndarray:
        return self._margin(logits) < self.threshold

    def flag_images(self, model: Network, x: np.ndarray) -> np.ndarray:
        return self.is_adversarial(model.engine.logits(x))

    def error_rates(self, benign_logits: np.ndarray, adversarial_logits: np.ndarray) -> dict[str, float]:
        """Same contract (and paper naming) as LogitDetector.error_rates."""
        flagged_benign = self.is_adversarial(benign_logits)
        flagged_adv = self.is_adversarial(adversarial_logits)
        return {
            "false_negative": float(flagged_benign.mean()) if len(flagged_benign) else 0.0,
            "false_positive": float((~flagged_adv).mean()) if len(flagged_adv) else 0.0,
        }
