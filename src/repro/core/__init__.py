"""The paper's contribution: logit detector, corrector, and DCN pipeline."""

from .characterize import (
    Fig1Row,
    fig1_rows,
    format_fig1,
    logit_statistics,
    separation_summary,
)
from .baselines import MarginThresholdDetector
from .corrector import Corrector
from .correctors_ext import GaussianCorrector, IterativeCorrector, SoftVoteCorrector
from .dcn import DCN
from .persistence import load_dcn, save_dcn
from .radius import DEFAULT_RADIUS_GRID, select_radius
from .detector import (
    ADVERSARIAL,
    BENIGN,
    LogitDetector,
    build_detector_network,
    detector_training_data,
    train_detector,
)

__all__ = [
    "LogitDetector",
    "build_detector_network",
    "train_detector",
    "detector_training_data",
    "BENIGN",
    "ADVERSARIAL",
    "Corrector",
    "DCN",
    "logit_statistics",
    "separation_summary",
    "Fig1Row",
    "fig1_rows",
    "format_fig1",
    "MarginThresholdDetector",
    "SoftVoteCorrector",
    "GaussianCorrector",
    "IterativeCorrector",
    "select_radius",
    "DEFAULT_RADIUS_GRID",
    "save_dcn",
    "load_dcn",
]
