"""The DCN detector: a 2-layer binary classifier over logits (paper Sec. 3).

The paper's key observation is that adversarial examples have visibly
different *classification probability distributions* — the logits of a
benign input show one dominant class with a large margin, while a CW
adversarial example's logits have the target barely above the true class.
The detector therefore needs nothing but the protected model's logit
vector: it is a tiny fully-connected network mapping ``num_classes``
inputs to 2 outputs (benign / adversarial).

Training follows Sec. 5.2: benign seeds the model classifies correctly,
plus 9 CW-L2 targeted adversarial examples per seed, with the logits of
both as the training set.  The detector trained on CW-L2 generalises to
the other attacks (Table 2 tests exactly this).

Two adaptations for this reproduction's smaller substrate (both recorded
in DESIGN.md and ablated in ``bench_ablation_detector_features``):

* the logit vector is *sorted* before entering the detector — the paper's
  separating statistic (winner-minus-runner-up margin) then becomes a
  linear function of the features, which lets the 2-layer net reach the
  paper's near-zero error with ~500 adversarial training examples instead
  of 9000;
* extra benign examples (which cost nothing to produce) supplement the
  paper's 1:9 benign:adversarial ratio so the benign manifold is covered.
"""

from __future__ import annotations

import numpy as np

from ..cache import memoize_arrays, weights_fingerprint
from ..datasets import Dataset
from ..nn import Adam, Dense, Network, ReLU, TrainConfig, fit

__all__ = ["LogitDetector", "build_detector_network", "train_detector", "detector_training_data"]

BENIGN, ADVERSARIAL = 0, 1


def build_detector_network(num_classes: int = 10, hidden: int = 32, seed: int = 23) -> Network:
    """The paper's 2-fully-connected-layer detector architecture."""
    rng = np.random.default_rng(seed)
    layers = [Dense(num_classes, hidden, rng), ReLU(), Dense(hidden, 2, rng)]
    return Network(layers, (num_classes,))


class LogitDetector:
    """Binary adversarial-example detector operating on logits.

    Attributes
    ----------
    network:
        The tiny 2-layer net; input dim = protected model's class count,
        output dim = 2 (index 0 benign, index 1 adversarial).
    sort_features:
        Whether logit vectors are sorted before entering the network (the
        reproduction default; see module docstring).
    train_seed_indices:
        Test-set indices of every benign example used in training — the
        evaluation pools must exclude these (Sec. 5.2).
    """

    def __init__(
        self,
        network: Network,
        train_seed_indices: np.ndarray | None = None,
        sort_features: bool = True,
    ):
        self.network = network
        self.sort_features = sort_features
        self.train_seed_indices = (
            np.array([], dtype=int) if train_seed_indices is None else np.asarray(train_seed_indices)
        )

    def _features(self, logits: np.ndarray) -> np.ndarray:
        logits = np.asarray(logits, dtype=np.float64)
        return np.sort(logits, axis=-1) if self.sort_features else logits

    def scores(self, logits: np.ndarray) -> np.ndarray:
        """Detector logits, shape ``(N, 2)``."""
        return self.network.engine.logits(self._features(logits))

    def is_adversarial(self, logits: np.ndarray) -> np.ndarray:
        """Boolean mask over a batch of *protected-model logits*."""
        scores = self.scores(logits)
        return scores[:, ADVERSARIAL] > scores[:, BENIGN]

    def flag_images(self, model: Network, x: np.ndarray) -> np.ndarray:
        """Convenience: run the protected model, then detect on its logits."""
        return self.is_adversarial(model.engine.logits(x))

    def error_rates(self, benign_logits: np.ndarray, adversarial_logits: np.ndarray) -> dict[str, float]:
        """The paper's Table 2 metrics.

        Note the paper's (unusual) naming, which we keep: *false negative*
        is a benign example flagged adversarial (it needlessly activates
        the corrector); *false positive* is an adversarial example passed
        as benign (it escapes correction).
        """
        flagged_benign = self.is_adversarial(benign_logits)
        flagged_adv = self.is_adversarial(adversarial_logits)
        return {
            "false_negative": float(flagged_benign.mean()) if len(flagged_benign) else 0.0,
            "false_positive": float((~flagged_adv).mean()) if len(flagged_adv) else 0.0,
        }


def detector_training_data(
    model: Network,
    dataset: Dataset,
    num_seeds: int,
    seed: int,
    attack_name: str = "cw-l2",
    extra_benign: int = 400,
    cache: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the (logits, binary-labels) training set of Sec. 5.2.

    Returns ``(features, labels, benign_indices)``: raw (unsorted) logits of
    the benign seeds, the extra benign examples, and the successful
    adversarial examples; ``benign_indices`` covers every benign test-set
    example consumed.
    """
    # Imported lazily: repro.eval imports repro.core for the harness, so a
    # module-level import here would be circular.
    from ..eval.adversarial_sets import build_targeted_pool, select_correct_seeds

    pool = build_targeted_pool(model, dataset, attack_name, num_seeds, seed, cache=cache)
    benign_images = [pool.seeds]
    benign_indices = [pool.seed_indices]
    if extra_benign:
        rng = np.random.default_rng(seed + 7)
        extra_x, _, extra_idx = select_correct_seeds(
            model, dataset, extra_benign, rng, exclude=pool.seed_indices
        )
        benign_images.append(extra_x)
        benign_indices.append(extra_idx)
    benign_logits = model.engine.logits(np.concatenate(benign_images))
    adv_images, _, _ = pool.successful()
    adv_logits = model.engine.logits(adv_images)
    features = np.concatenate([benign_logits, adv_logits])
    labels = np.concatenate(
        [np.full(len(benign_logits), BENIGN), np.full(len(adv_logits), ADVERSARIAL)]
    )
    return features, labels, np.concatenate(benign_indices)


def train_detector(
    model: Network,
    dataset: Dataset,
    num_seeds: int = 60,
    seed: int = 101,
    attack_name: str = "cw-l2",
    hidden: int = 32,
    epochs: int = 300,
    learning_rate: float = 1e-2,
    extra_benign: int = 400,
    sort_features: bool = True,
    cache: bool = True,
    train_dtype: str = "float32",
) -> LogitDetector:
    """Train the DCN detector for ``model`` on ``dataset``.

    ``num_seeds`` benign examples produce ``num_seeds * 9`` CW-L2
    adversarial examples (the paper uses 1000 seeds on MNIST, 500 on
    CIFAR; the default here is sized for the ``-fast`` presets).
    """
    network = build_detector_network(model.num_classes, hidden=hidden)

    def build() -> dict[str, np.ndarray]:
        features, labels, indices = detector_training_data(
            model, dataset, num_seeds, seed, attack_name, extra_benign=extra_benign, cache=cache
        )
        if sort_features:
            features = np.sort(features, axis=-1)
        rng = np.random.default_rng(seed + 1)
        optimizer = Adam(network.parameters(), lr=learning_rate)
        fit(
            network,
            optimizer,
            features,
            labels,
            TrainConfig(epochs=epochs, batch_size=64, dtype=train_dtype),
            rng,
        )
        state = network.state()
        state["train_seed_indices"] = indices
        return state

    if cache:
        key = {
            "kind": "detector",
            "dataset": dataset.name,
            "attack": attack_name,
            "num_seeds": num_seeds,
            "seed": seed,
            "hidden": hidden,
            "epochs": epochs,
            "lr": learning_rate,
            "extra_benign": extra_benign,
            "sorted": sort_features,
            # Detectors are trained against one specific protected model.
            "weights": weights_fingerprint(model),
        }
        if train_dtype != "float64":
            key["train_dtype"] = train_dtype
        state = memoize_arrays(key, build)
    else:
        state = build()
    indices = state.pop("train_seed_indices")
    network.load_state(state)
    return LogitDetector(network, train_seed_indices=indices, sort_features=sort_features)
