"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``info`` — list available datasets, models, attacks and scales.
* ``train`` — train (or load) the standard model for a dataset.
* ``attack`` — run a named attack against a dataset's model.
* ``evaluate`` — the paper's defense comparison on one dataset.
* ``table`` — regenerate a paper table (2, 3, 4, 5 or 6).
* ``figure`` — regenerate a paper figure (1 or 4).
* ``run`` — journaled, resumable experiment run (``--resume`` replays the
  ledger, so a killed run picks up at the first unfinished work unit;
  ``--workers N`` shards the plan across N lease-based worker processes
  coordinating through the same ledger, with byte-identical tables).
* ``bench`` — diff two persisted ``BENCH_*.json`` results and classify
  per-case regressions/improvements against a relative threshold.
* ``verify`` — differential verification of the fused engines vs autograd.
* ``serve`` — start the online service and push a synthetic request
  stream through it (micro-batching, detector gating, fused correction),
  printing latency percentiles and serve counters.  ``--slo-target-ms``
  switches admission from queue depth to estimated wait,
  ``--workers N`` shards requests across N forked serving workers with
  lease-based liveness, and ``--telemetry PATH`` journals streaming
  counter/percentile snapshots as JSONL.
* ``loadgen`` — deterministic offline-vs-coalesced comparison at a given
  adversarial fraction, asserting served labels match ``DCN.classify``.

All heavy artifacts go through the ``.artifacts`` cache, so repeated
invocations are fast.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'DCN: Detector-Corrector Network' (DSN 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list datasets, models, attacks, scales")

    train = sub.add_parser("train", help="train/load the standard model")
    train.add_argument("--dataset", default="mnist-fast")

    attack = sub.add_parser("attack", help="run an attack against a model")
    attack.add_argument("--dataset", default="mnist-fast")
    attack.add_argument("--attack", default="cw-l2", dest="attack_name")
    attack.add_argument("--seeds", type=int, default=5)
    attack.add_argument("--untargeted", action="store_true")
    attack.add_argument("--seed", type=int, default=0)

    evaluate = sub.add_parser("evaluate", help="defense comparison (Tables 3-5 in miniature)")
    evaluate.add_argument("--dataset", default=None, help="defaults to the scale's MNIST substitute")

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("which", type=int, choices=(2, 3, 4, 5, 6))

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("which", type=int, choices=(1, 4))

    run = sub.add_parser("run", help="journaled, resumable experiment run")
    run.add_argument(
        "--only",
        action="append",
        choices=("table2", "table3", "table45", "table6", "fig4"),
        help="restrict to specific experiments (repeatable; default: all)",
    )
    run.add_argument("--dataset", default=None, help="defaults to the scale's MNIST substitute")
    run.add_argument("--ledger", default=None, help="ledger path (default .artifacts/run-<scale>.jsonl)")
    run.add_argument("--resume", action="store_true", help="replay the ledger instead of starting fresh")
    run.add_argument("--chunk", type=int, default=6, help="benign seeds per table 4/5 eval unit")
    run.add_argument("--retry-failed", action="store_true", help="re-execute ledgered failed units")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes leasing units from the shared ledger (1: in-process)",
    )
    run.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds before a dead worker's lease expires and its unit is reclaimed",
    )

    bench = sub.add_parser("bench", help="compare persisted benchmark results")
    bench.add_argument(
        "--compare",
        metavar="BASE",
        required=True,
        help="baseline BENCH_<name>.json to diff against",
    )
    bench.add_argument(
        "current",
        nargs="?",
        default=None,
        help="current BENCH_<name>.json (default: the repo-root file with BASE's name)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative change classified as regression/improvement (default 0.10)",
    )
    bench.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI perf-smoke mode)",
    )

    rep = sub.add_parser("report", help="run all experiments, emit a markdown report")
    rep.add_argument("--output", default=None, help="write to a file instead of stdout")
    rep.add_argument("--light", action="store_true", help="only Table 2 and Fig. 4")

    verify = sub.add_parser(
        "verify", help="differential verification of the fused engines vs autograd"
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--cases", type=int, default=25, help="randomized cases to run")
    verify.add_argument(
        "--dtype",
        choices=("float32", "float64", "both"),
        default="both",
        help="engine compute dtype(s) to cross-check",
    )

    serve = sub.add_parser("serve", help="run the threaded online service on a synthetic stream")
    serve.add_argument("--dataset", default=None, help="defaults to the scale's MNIST substitute")
    serve.add_argument("--requests", type=int, default=256)
    serve.add_argument("--adv-fraction", type=float, default=0.05)
    serve.add_argument("--min-size", type=int, default=1, help="smallest request, in rows")
    serve.add_argument("--max-size", type=int, default=4, help="largest request, in rows")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-batch", type=int, default=64, help="row budget per coalesced dispatch")
    serve.add_argument("--max-queue", type=int, default=128, help="admission bound, in requests")
    serve.add_argument(
        "--max-delay", type=float, default=0.002,
        help="seconds the dispatcher holds a partial batch open",
    )
    serve.add_argument("--overload", choices=("shed", "degrade"), default="shed")
    serve.add_argument("--burst", type=int, default=32, help="requests submitted per arrival burst")
    serve.add_argument(
        "--slo-target-ms",
        type=float,
        default=None,
        help="admit on estimated queued wait vs this budget (default: depth-only admission)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="forked serving workers behind the sharding front end (1: in-process service)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        help="seconds without a heartbeat before a serving worker counts as dead",
    )
    serve.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="journal periodic counter/percentile snapshots to this JSONL file",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve remote clients over the framed TCP transport instead of "
        "a synthetic stream (port 0 picks a free port; Ctrl-C stops)",
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=30_000.0,
        help="server-side budget for requests that carry no deadline (with --listen)",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        help="respawn budget per worker slot within --restart-window (0: no respawn)",
    )
    serve.add_argument(
        "--restart-window",
        type=float,
        default=30.0,
        help="sliding window, in seconds, for the --max-restarts budget",
    )

    loadgen = sub.add_parser(
        "loadgen", help="offline vs coalesced serving comparison on a deterministic stream"
    )
    loadgen.add_argument("--dataset", default=None, help="defaults to the scale's MNIST substitute")
    loadgen.add_argument("--requests", type=int, default=192)
    loadgen.add_argument("--adv-fraction", type=float, default=0.05)
    loadgen.add_argument("--min-size", type=int, default=1, help="smallest request, in rows")
    loadgen.add_argument("--max-size", type=int, default=1, help="largest request, in rows")
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument("--max-batch", type=int, default=64)
    loadgen.add_argument("--window", type=int, default=64, help="simultaneous arrivals per window")
    loadgen.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="replay the stream against a live `serve --listen` server "
        "instead of an in-process service",
    )
    loadgen.add_argument(
        "--clients", type=int, default=4, help="concurrent client connections (with --connect)"
    )
    loadgen.add_argument(
        "--deadline-ms", type=float, default=30_000.0,
        help="per-request deadline propagated to the server (with --connect)",
    )
    loadgen.add_argument(
        "--retries", type=int, default=2,
        help="bounded retries for idempotent-safe failures (with --connect)",
    )

    return parser


def _parse_hostport(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"expected HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"expected HOST:PORT with integer port, got {value!r}") from None


def _cmd_info() -> int:
    from .attacks.factory import ATTACK_FACTORIES
    from .datasets import DATASET_CONFIGS
    from .eval.harness import _SCALES
    from .zoo import MODEL_CONFIGS

    print("datasets: ", ", ".join(sorted(DATASET_CONFIGS)))
    print("models:   ", ", ".join(sorted(MODEL_CONFIGS)))
    print("attacks:  ", ", ".join(sorted(ATTACK_FACTORIES)))
    print("defenses:  standard, distillation, rc, dcn (+ magnet, adv-training, feature-squeezing)")
    print("scales:   ", ", ".join(sorted(_SCALES)), " (select with REPRO_SCALE)")
    return 0


def _cmd_train(dataset_name: str) -> int:
    from .zoo import model_for_dataset

    dataset, model = model_for_dataset(dataset_name)
    accuracy = model.accuracy(dataset.x_test, dataset.y_test)
    print(f"{dataset_name}: test accuracy {accuracy:.2%} ({model.num_parameters()} parameters)")
    return 0


def _cmd_attack(dataset_name: str, attack_name: str, seeds: int, untargeted: bool, seed: int) -> int:
    from .attacks import UntargetedFromTargeted
    from .attacks.factory import TARGETED_ATTACKS, make_attack
    from .eval.adversarial_sets import select_correct_seeds
    from .zoo import model_for_dataset

    dataset, model = model_for_dataset(dataset_name)
    rng = np.random.default_rng(seed)
    x, y, _ = select_correct_seeds(model, dataset, seeds, rng)
    attack = make_attack(attack_name)
    if attack_name in TARGETED_ATTACKS:
        if untargeted:
            result = UntargetedFromTargeted(attack).perturb(model, x, y)
        else:
            targets = (y + 1 + rng.integers(0, 9, len(y))) % 10
            targets = np.where(targets == y, (targets + 1) % 10, targets)
            result = attack.perturb(model, x, y, targets)
    else:
        result = attack.perturb(model, x, y)
    mode = "untargeted" if result.target_labels is None else "targeted"
    print(f"{attack_name} ({mode}) on {dataset_name}: success {result.success_rate:.0%}")
    for metric in ("l0", "l2", "linf"):
        print(f"  mean {metric:<4} distortion: {result.mean_distortion(metric):.4f}")
    return 0


def _cmd_evaluate(dataset_name: str | None) -> int:
    from .eval import (
        attack_success_rate,
        build_context,
        scale_config,
        time_defense,
        untargeted_from_pool,
    )

    scale = scale_config()
    ctx = build_context(dataset_name or scale.mnist, scale)
    pool = ctx.pool("cw-l2")
    untargeted = untargeted_from_pool(pool, metric="l2")
    rng = np.random.default_rng(5)
    benign_x, benign_y, _ = ctx.dataset.sample_test(100, rng)
    print(f"{'defense':>14} {'benign acc':>11} {'CW-L2 success':>14} {'time/100 (s)':>13}")
    for name, defense in ctx.defenses().items():
        labels, seconds = time_defense(defense, benign_x)
        accuracy = (labels == benign_y).mean()
        success = attack_success_rate(defense, untargeted)
        print(f"{name:>14} {accuracy:>10.1%} {success:>13.1%} {seconds:>13.2f}")
    return 0


def _cmd_table(which: int) -> int:
    from .eval import (
        build_context,
        format_table2,
        format_table3,
        format_table45,
        format_table6,
        scale_config,
        table2_detector_rates,
        table3_benign_performance,
        table45_robustness,
        table6_runtime_vs_fraction,
    )

    scale = scale_config()
    if which == 2:
        rates = {
            name: table2_detector_rates(build_context(name, scale))
            for name in (scale.mnist, scale.cifar)
        }
        print(format_table2(rates))
    elif which == 3:
        rows = {
            name: table3_benign_performance(build_context(name, scale))
            for name in (scale.mnist, scale.cifar)
        }
        print(format_table3(rows))
    elif which in (4, 5):
        name = scale.mnist if which == 4 else scale.cifar
        ctx = build_context(name, scale)
        print(format_table45(table45_robustness(ctx), name))
    elif which == 6:
        ctx = build_context(scale.mnist, scale)
        print(format_table6(table6_runtime_vs_fraction(ctx), scale.mnist))
    return 0


def _cmd_figure(which: int) -> int:
    from .core import fig1_rows, format_fig1
    from .eval import build_context, fig4_corrector_sweep, format_fig4, scale_config

    scale = scale_config()
    ctx = build_context(scale.mnist, scale)
    if which == 1:
        pool = ctx.pool("cw-l2")
        per_seed = pool.targets_per_seed
        index = next(
            i for i in range(pool.num_seeds)
            if pool.success[i * per_seed : (i + 1) * per_seed].all()
        )
        block = slice(index * per_seed, (index + 1) * per_seed)
        rows = fig1_rows(
            ctx.model, pool.seeds[index], int(pool.seed_labels[index]), pool.adversarial[block]
        )
        print(format_fig1(rows))
    elif which == 4:
        print(format_fig4(fig4_corrector_sweep(ctx), scale.mnist))
    return 0


def _cmd_run(
    only: list[str] | None,
    dataset_name: str | None,
    ledger: str | None,
    resume: bool,
    chunk: int,
    retry_failed: bool,
    workers: int = 1,
    lease_ttl: float = 30.0,
) -> int:
    from .cache import cache_dir
    from .eval import build_context, format_fig4, format_table2, format_table3, format_table45, format_table6, scale_config
    from .runner import PoolConfig, Runner, WorkerPool
    from .runner import experiments as plans

    scale = scale_config()
    ctx = build_context(dataset_name or scale.mnist, scale)
    ledger_path = ledger or str(cache_dir() / f"run-{scale.name}.jsonl")
    chosen = only or list(plans.EXPERIMENTS)

    units = plans.plan_experiments(ctx, chosen, chunk_seeds=chunk)
    try:
        if workers > 1:
            pool = WorkerPool(
                ledger_path, config=PoolConfig(workers=workers, lease_ttl=lease_ttl)
            )
            result = pool.run(units, resume=resume, retry_failed=retry_failed)
        else:
            runner = Runner(ledger=ledger_path, resume=resume)
            result = runner.run(units, retry_failed=retry_failed)
    except KeyboardInterrupt:
        print(f"\ninterrupted; completed units are journaled in {ledger_path}")
        print("re-run with --resume to continue from the first unfinished unit")
        return 130

    by_exp = {name: [u for u in units if u.experiment == name] for name in chosen}
    if "table2" in by_exp:
        rates = plans.assemble_table2(result, by_exp["table2"])
        print(format_table2({ctx.dataset.name: rates}) + "\n")
    if "table3" in by_exp:
        rows = plans.assemble_table3(result, by_exp["table3"])
        print(format_table3({ctx.dataset.name: rows}) + "\n")
    if "table45" in by_exp:
        rows = plans.assemble_table45(result, by_exp["table45"])
        print(format_table45(rows, ctx.dataset.name, coverage=True) + "\n")
    if "table6" in by_exp:
        rows = plans.assemble_table6(result, by_exp["table6"])
        print(format_table6(rows, ctx.dataset.name) + "\n")
    if "fig4" in by_exp:
        rows = plans.assemble_fig4(result, by_exp["fig4"])
        print(format_fig4(rows, ctx.dataset.name) + "\n")

    pending = len(units) - len(result.records)
    print(
        f"run: {len(result.executed)} executed, {len(result.replayed)} replayed, "
        f"{len(result.failed)} failed"
        + (f", {pending} pending" if pending else "")
        + (f" [{workers} workers]" if workers > 1 else "")
        + f" (ledger: {ledger_path})"
    )
    for key in result.failed:
        failure = (result.records[key].get("failure") or {})
        print(f"  FAILED {key}: {failure.get('error', '?')}: {failure.get('message', '')}")
    if pending:
        print("re-run with --resume to finish the pending units")
    return 0 if result.ok and not pending else 1


def _cmd_bench(compare: str, current: str | None, threshold: float, warn_only: bool) -> int:
    from pathlib import Path

    from .benchcmp import REPO_ROOT_HINT, compare_files, format_comparison

    base_path = Path(compare)
    if current is None:
        # Default counterpart: the committed baseline of the same name at
        # the repo root (diffing a fresh run against what's checked in).
        current_path = REPO_ROOT_HINT / base_path.name
    else:
        current_path = Path(current)
    for path in (base_path, current_path):
        if not path.exists():
            print(f"bench: no such result file: {path}", file=sys.stderr)
            return 2
    comparison = compare_files(base_path, current_path, threshold=threshold)
    print(f"base:    {base_path}\ncurrent: {current_path}")
    print(format_comparison(comparison))
    if not comparison.ok and warn_only:
        print("warn-only: regressions reported but not failing the run")
        return 0
    return 0 if comparison.ok else 1


def _cmd_report(output: str | None, light: bool) -> int:
    from .eval.reportgen import generate_report

    report = generate_report(include_heavy=not light)
    if output:
        with open(output, "w") as handle:
            handle.write(report)
        print(f"report written to {output}")
    else:
        print(report)
    return 0


def _cmd_verify(seed: int, cases: int, dtype: str) -> int:
    from .verify import run_verify

    dtypes = {
        "float32": (np.float32,),
        "float64": (np.float64,),
        "both": (np.float32, np.float64),
    }[dtype]
    report = run_verify(seed=seed, cases=cases, dtypes=dtypes)
    print(report.format())
    return 0 if report.ok else 1


def _serve_stream(dataset_name: str | None, requests: int, adv_fraction: float,
                  min_size: int, max_size: int, seed: int):
    """Build (dcn, stream) for the serve/loadgen commands."""
    from .eval import build_context, scale_config
    from .serve import StreamSpec, build_stream

    scale = scale_config()
    ctx = build_context(dataset_name or scale.mnist, scale)
    adv = None
    if adv_fraction > 0:
        adv, _, _ = ctx.pool("cw-l2").successful()
    spec = StreamSpec(
        requests=requests, adv_fraction=adv_fraction,
        min_size=min_size, max_size=max_size, seed=seed,
    )
    return ctx.dcn, build_stream(ctx.dataset.x_test, adv, spec)


def _build_front(dcn, max_batch: int, max_queue: int, max_delay: float,
                 overload: str, slo_target_s: float | None, workers: int,
                 lease_ttl: float, max_restarts: int = 0,
                 restart_window_s: float = 30.0):
    """The serving backend behind both local streams and --listen."""
    from .serve import DCNService, ServePool

    if workers > 1:
        return ServePool(
            dcn, workers=workers, lease_ttl=lease_ttl, max_batch=max_batch,
            max_queue=max_queue, max_delay=max_delay, overload=overload,
            slo_target_s=slo_target_s, max_restarts=max_restarts,
            restart_window_s=restart_window_s,
        )
    return DCNService(
        dcn, max_batch=max_batch, max_queue=max_queue,
        max_delay=max_delay, overload=overload, slo_target_s=slo_target_s,
    )


def _cmd_serve_listen(dataset_name: str | None, listen: str, max_batch: int,
                      max_queue: int, max_delay: float, overload: str,
                      slo_target_ms: float | None, workers: int,
                      lease_ttl: float, max_restarts: int,
                      restart_window: float, default_deadline_ms: float,
                      telemetry: str | None) -> int:
    import contextlib

    from .eval import build_context, scale_config
    from .serve import DCNServer, TelemetryExporter

    host, port = _parse_hostport(listen)
    scale = scale_config()
    ctx = build_context(dataset_name or scale.mnist, scale)
    slo_target_s = slo_target_ms / 1e3 if slo_target_ms is not None else None
    front = _build_front(
        ctx.dcn, max_batch, max_queue, max_delay, overload, slo_target_s,
        workers, lease_ttl, max_restarts, restart_window,
    )
    with front:
        server = DCNServer(
            front, host=host, port=port,
            default_deadline_s=default_deadline_ms / 1e3,
        )
        with server:
            exporter = (
                TelemetryExporter(server, telemetry) if telemetry is not None
                else contextlib.nullcontext()
            )
            bound_host, bound_port = server.address
            print(f"serving on {bound_host}:{bound_port} "
                  f"({workers} worker{'s' if workers != 1 else ''}; Ctrl-C stops)",
                  flush=True)
            with exporter:
                try:
                    server.serve_forever()
                except KeyboardInterrupt:
                    pass
    return 0


def _cmd_serve(dataset_name: str | None, requests: int, adv_fraction: float,
               min_size: int, max_size: int, seed: int, max_batch: int,
               max_queue: int, max_delay: float, overload: str, burst: int,
               slo_target_ms: float | None, workers: int, lease_ttl: float,
               telemetry: str | None) -> int:
    import contextlib
    import time

    from .serve import ServeCounters, TelemetryExporter

    dcn, stream = _serve_stream(
        dataset_name, requests, adv_fraction, min_size, max_size, seed
    )
    slo_target_s = slo_target_ms / 1e3 if slo_target_ms is not None else None
    front = _build_front(
        dcn, max_batch, max_queue, max_delay, overload, slo_target_s,
        workers, lease_ttl,
    )
    statuses: dict[str, int] = {}
    start = time.perf_counter()
    with front:
        exporter = (
            TelemetryExporter(front, telemetry) if telemetry is not None
            else contextlib.nullcontext()
        )
        with exporter:
            for begin in range(0, len(stream), max(1, burst)):
                tickets = [front.submit(req.x) for req in stream[begin : begin + max(1, burst)]]
                for ticket in tickets:
                    result = ticket.wait(60.0)
                    statuses[result.status] = statuses.get(result.status, 0) + 1
        if workers > 1:
            snapshot = front.fleet_snapshot()
            counters = ServeCounters.merged([snapshot["counters"]])
            latencies = snapshot["latency"]
        else:
            counters = front.counters
            latencies = front.latencies.summary()
    seconds = time.perf_counter() - start

    served = sum(n for status, n in statuses.items() if status != "shed")
    print(f"served {served}/{requests} requests in {seconds:.3f}s "
          f"({served / seconds:.0f} req/s, {counters.examples / seconds:.0f} examples/s)"
          + (f" [{workers} workers]" if workers > 1 else ""))
    print("statuses: " + ", ".join(f"{k}={v}" for k, v in sorted(statuses.items())))
    print(f"latency: p50 {latencies['p50_ms']:.2f} ms, p95 {latencies['p95_ms']:.2f} ms")
    if telemetry is not None:
        print(f"telemetry journal: {telemetry}")
    for key, value in counters.as_dict().items():
        print(f"  {key:>18}: {value}")
    return 0


def _cmd_loadgen_remote(dataset_name: str | None, requests: int,
                        adv_fraction: float, min_size: int, max_size: int,
                        seed: int, connect: str, clients: int,
                        deadline_ms: float, retries: int) -> int:
    from .serve import DCNClient, run_offline, run_remote, summarize_latencies

    address = _parse_hostport(connect)
    dcn, stream = _serve_stream(
        dataset_name, requests, adv_fraction, min_size, max_size, seed
    )
    offline = run_offline(dcn, stream)
    fleet = [
        DCNClient(address, deadline_s=deadline_ms / 1e3, retries=retries,
                  backoff_seed=c)
        for c in range(max(1, clients))
    ]
    try:
        remote = run_remote(fleet, stream)
    finally:
        for client in fleet:
            client.close()
    equal = all(
        a is not None and np.array_equal(a, b)
        for a, b, status in zip(remote.labels, offline.labels, remote.statuses)
        if status != "shed"
    )
    lat = summarize_latencies(remote.latencies_s)
    print(f"offline: {offline.seconds:.3f}s ({offline.requests_per_sec:.0f} req/s)")
    print(f"remote:  {remote.seconds:.3f}s ({remote.requests_per_sec:.0f} req/s, "
          f"{len(fleet)} clients)  p50 {lat['p50_ms']:.2f} ms  p95 {lat['p95_ms']:.2f} ms")
    print(f"statuses: served={remote.served} shed={remote.shed}")
    print(f"served labels bitwise-identical to offline DCN.classify: {equal}")
    return 0 if equal else 1


def _cmd_loadgen(dataset_name: str | None, requests: int, adv_fraction: float,
                 min_size: int, max_size: int, seed: int, max_batch: int,
                 window: int) -> int:
    from .serve import DCNService, run_coalesced, run_offline, summarize_latencies

    dcn, stream = _serve_stream(
        dataset_name, requests, adv_fraction, min_size, max_size, seed
    )
    offline = run_offline(dcn, stream)
    service = DCNService(dcn, max_batch=max_batch, max_queue=4 * len(stream))
    coalesced = run_coalesced(service, stream, window=window)
    equal = all(
        a is not None and b is not None and np.array_equal(a, b)
        for a, b in zip(offline.labels, coalesced.labels)
    )
    lat = summarize_latencies(coalesced.latencies_s)
    print(f"offline:   {offline.seconds:.3f}s ({offline.requests_per_sec:.0f} req/s)")
    print(f"coalesced: {coalesced.seconds:.3f}s ({coalesced.requests_per_sec:.0f} req/s)"
          f"  p50 {lat['p50_ms']:.2f} ms  p95 {lat['p95_ms']:.2f} ms")
    print(f"speedup:   {offline.seconds / coalesced.seconds:.2f}x")
    print(f"labels bitwise-identical to offline DCN.classify: {equal}")
    print(f"flagged {service.counters.flagged} rows across {service.counters.batches} dispatches "
          f"(plan hits/misses {service.counters.plan_hits}/{service.counters.plan_misses})")
    return 0 if equal else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "train":
        return _cmd_train(args.dataset)
    if args.command == "attack":
        return _cmd_attack(args.dataset, args.attack_name, args.seeds, args.untargeted, args.seed)
    if args.command == "evaluate":
        return _cmd_evaluate(args.dataset)
    if args.command == "table":
        return _cmd_table(args.which)
    if args.command == "figure":
        return _cmd_figure(args.which)
    if args.command == "run":
        return _cmd_run(
            args.only,
            args.dataset,
            args.ledger,
            args.resume,
            args.chunk,
            args.retry_failed,
            args.workers,
            args.lease_ttl,
        )
    if args.command == "bench":
        return _cmd_bench(args.compare, args.current, args.threshold, args.warn_only)
    if args.command == "report":
        return _cmd_report(args.output, args.light)
    if args.command == "verify":
        return _cmd_verify(args.seed, args.cases, args.dtype)
    if args.command == "serve":
        if args.listen is not None:
            return _cmd_serve_listen(
                args.dataset, args.listen, args.max_batch, args.max_queue,
                args.max_delay, args.overload, args.slo_target_ms,
                args.workers, args.lease_ttl, args.max_restarts,
                args.restart_window, args.default_deadline_ms, args.telemetry,
            )
        return _cmd_serve(
            args.dataset, args.requests, args.adv_fraction, args.min_size,
            args.max_size, args.seed, args.max_batch, args.max_queue,
            args.max_delay, args.overload, args.burst, args.slo_target_ms,
            args.workers, args.lease_ttl, args.telemetry,
        )
    if args.command == "loadgen":
        if args.connect is not None:
            return _cmd_loadgen_remote(
                args.dataset, args.requests, args.adv_fraction, args.min_size,
                args.max_size, args.seed, args.connect, args.clients,
                args.deadline_ms, args.retries,
            )
        return _cmd_loadgen(
            args.dataset, args.requests, args.adv_fraction, args.min_size,
            args.max_size, args.seed, args.max_batch, args.window,
        )
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
