"""Reproduction of "DCN: Detector-Corrector Network Against Evasion Attacks
on Deep Neural Networks" (Wen, Hui, Yiu, Zhang — DSN 2018).

Public API tour
---------------

* :mod:`repro.nn` — NumPy autograd + CNN substrate (replaces Keras/TF).
* :mod:`repro.datasets` — synthetic MNIST/CIFAR substitutes.
* :mod:`repro.zoo` — trained standard classifiers with on-disk caching.
* :mod:`repro.attacks` — FGSM, IGSM, JSMA, DeepFool, L-BFGS, CW-{L0,L2,L∞}.
* :mod:`repro.defenses` — distillation, region-based classifier, squeezing.
* :mod:`repro.core` — the paper's contribution: Detector, Corrector, DCN.
* :mod:`repro.eval` — metrics, adversarial pools, paper-table harness.

Quickstart::

    from repro.zoo import model_for_dataset
    from repro.core import DCN, train_detector
    from repro.attacks import CarliniWagnerL2

    dataset, model = model_for_dataset("mnist-fast")
    detector = train_detector(model, dataset)
    dcn = DCN(model, detector, radius=0.3, samples=50)
    labels = dcn.classify(dataset.x_test[:16])
"""

__version__ = "1.0.0"
