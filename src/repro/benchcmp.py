"""Benchmark regression gate: classify deltas between ``BENCH_*.json`` files.

The standalone benchmarks persist their numbers (plus a provenance
``context`` block — git SHA, NumPy version, dataset fingerprint, run
parameters) as ``BENCH_<name>.json``.  This module diffs two such
payloads and classifies every comparable metric as a **regression**, an
**improvement** or **unchanged** against a relative threshold — the
delta-rs-benchmarking pattern the ROADMAP names.

Comparability is decided by metric name, not by schema knowledge:

* ``*_per_sec`` and ``*speedup`` are rates — higher is better;
* ``*seconds`` are durations — lower is better;
* every other numeric leaf (error bounds, counters, amounts) is carried
  as informational context and never gates.

Run-parameter drift makes numbers incomparable (a ``--smoke`` run against
a full baseline, a different batch size, a different input pool), so
context keys other than pure provenance (git SHA, timestamps, toolchain
versions) are diffed too and reported as warnings.

CLI: ``python -m repro bench --compare base.json [current.json]``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "REPO_ROOT_HINT",
    "MetricDelta",
    "BenchComparison",
    "compare_payloads",
    "compare_files",
    "format_comparison",
    "metric_direction",
]

#: Repo root — where the committed ``BENCH_*.json`` baselines live.
REPO_ROOT_HINT = Path(__file__).resolve().parents[2]

# Context keys that legitimately differ between runs being compared.
_PROVENANCE_KEYS = frozenset({"git_sha", "timestamp_utc", "python", "numpy", "platform"})


def metric_direction(name: str) -> str:
    """``"higher"``, ``"lower"`` or ``"info"`` for a flattened metric name."""
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith("_per_sec") or leaf.endswith("speedup"):
        return "higher"
    if leaf.endswith("seconds"):
        return "lower"
    # Latency-style names: milliseconds, percentile leaves (p50/p95/p99,
    # bare or with a unit suffix), and anything naming latency outright.
    if leaf.endswith("_ms") or "latency" in leaf:
        return "lower"
    # A percentile leaf ends in pNN, optionally followed by one unit
    # suffix ("serve_p95", "tail_p99_us", bare "p50").  The token must be
    # terminal: "top_p5_accuracy" is an accuracy, not a latency.
    stem = leaf
    for unit in ("_ms", "_us", "_ns", "_sec", "_s"):
        if stem.endswith(unit):
            stem = stem[: -len(unit)]
            break
    tail = stem.rsplit("_", 1)[-1]
    if len(tail) >= 2 and tail[0] == "p" and tail[1:].isdigit():
        return "lower"
    return "info"


def _flatten(node, prefix: str = "") -> dict[str, float]:
    """Numeric scalar leaves of a nested results dict, dot-joined paths."""
    flat: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(_flatten(value, path))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        flat[prefix] = float(node)
    return flat


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric."""

    name: str
    base: float
    current: float
    change: float  # signed relative change in the metric's value
    classification: str  # "regression" | "improvement" | "unchanged" | "info"

    @property
    def gated(self) -> bool:
        return self.classification in ("regression", "improvement", "unchanged")


@dataclass
class BenchComparison:
    """Outcome of one base-vs-current diff."""

    threshold: float
    deltas: list[MetricDelta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  # in base, not in current
    added: list[str] = field(default_factory=list)  # in current, not in base
    context_mismatches: dict[str, tuple] = field(default_factory=dict)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.classification == "regression"]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.classification == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _classify(name: str, base: float, current: float, threshold: float) -> MetricDelta:
    direction = metric_direction(name)
    if base == 0 or not math.isfinite(base) or not math.isfinite(current):
        change = math.nan
    else:
        change = current / base - 1.0
    if direction == "info" or math.isnan(change):
        cls = "info"
    else:
        # "Better" is positive change for rates, negative for durations.
        better = change if direction == "higher" else -change
        if better < -threshold:
            cls = "regression"
        elif better > threshold:
            cls = "improvement"
        else:
            cls = "unchanged"
    return MetricDelta(name=name, base=base, current=current, change=change, classification=cls)


def compare_payloads(base: dict, current: dict, threshold: float = 0.10) -> BenchComparison:
    """Diff two persisted benchmark payloads (see module docstring)."""
    comparison = BenchComparison(threshold=threshold)

    base_metrics = _flatten(base.get("results", {}))
    current_metrics = _flatten(current.get("results", {}))
    for name in sorted(base_metrics):
        if name not in current_metrics:
            comparison.missing.append(name)
            continue
        comparison.deltas.append(
            _classify(name, base_metrics[name], current_metrics[name], threshold)
        )
    comparison.added = sorted(set(current_metrics) - set(base_metrics))

    base_ctx = base.get("context", {}) or {}
    current_ctx = current.get("context", {}) or {}
    for key in sorted(set(base_ctx) | set(current_ctx)):
        if key in _PROVENANCE_KEYS:
            continue
        if base_ctx.get(key) != current_ctx.get(key):
            comparison.context_mismatches[key] = (base_ctx.get(key), current_ctx.get(key))
    return comparison


def compare_files(base_path: str | Path, current_path: str | Path, threshold: float = 0.10) -> BenchComparison:
    base = json.loads(Path(base_path).read_text())
    current = json.loads(Path(current_path).read_text())
    return compare_payloads(base, current, threshold)


def format_comparison(comparison: BenchComparison) -> str:
    """Human-readable classification table, regressions first."""
    lines = []
    order = {"regression": 0, "improvement": 1, "unchanged": 2, "info": 3}
    gated = sorted(
        (d for d in comparison.deltas if d.gated),
        key=lambda d: (order[d.classification], d.name),
    )
    width = max((len(d.name) for d in gated), default=4)
    lines.append(
        f"{'metric':<{width}}  {'base':>12}  {'current':>12}  {'change':>8}  class"
    )
    for delta in gated:
        marker = {"regression": "✗", "improvement": "✓", "unchanged": " "}[delta.classification]
        lines.append(
            f"{delta.name:<{width}}  {delta.base:>12.4g}  {delta.current:>12.4g}  "
            f"{delta.change:>+7.1%}  {marker} {delta.classification}"
        )
    for key, (b, c) in comparison.context_mismatches.items():
        lines.append(f"WARNING: context mismatch {key}: base={b!r} current={c!r} (numbers may be incomparable)")
    for name in comparison.missing:
        lines.append(f"WARNING: metric {name} missing from current")
    for name in comparison.added:
        lines.append(f"note: new metric {name} (no baseline)")
    lines.append(
        f"{len(comparison.regressions)} regression(s), {len(comparison.improvements)} improvement(s), "
        f"threshold ±{comparison.threshold:.0%}"
    )
    return "\n".join(lines)
