"""Deterministic synthetic load for the serving layer.

The paper's Table 6 / Fig. 5 measure defense runtime as a function of the
*adversarial percentage* of a fixed offline batch.  The load generator
generalises that axis into sustained traffic: a seeded stream of small
classify requests whose rows are drawn benign or adversarial with a
configurable probability, so the same runtime-vs-fraction story can be
told in throughput and latency-percentile terms against the live service.

Everything is a pure function of ``(pools, StreamSpec)`` — same seed,
same stream, byte for byte — which is what lets the benchmark assert
bitwise equivalence between served and offline labels.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.dcn import DCN
from .service import DCNService, ServeResult

__all__ = [
    "StreamSpec",
    "GeneratedRequest",
    "RunStats",
    "build_stream",
    "run_offline",
    "run_coalesced",
    "run_pool",
    "run_remote",
    "summarize_latencies",
]


@dataclass(frozen=True)
class StreamSpec:
    """Shape of one synthetic request stream."""

    requests: int = 64
    adv_fraction: float = 0.0  # probability a row is adversarial (table6's axis)
    min_size: int = 1  # smallest request, in rows
    max_size: int = 4  # largest request, in rows
    seed: int = 0

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 0.0 <= self.adv_fraction <= 1.0:
            raise ValueError("adv_fraction must be in [0, 1]")
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError("need 1 <= min_size <= max_size")


@dataclass(frozen=True)
class GeneratedRequest:
    """One request: its rows plus which of them were drawn adversarial."""

    x: np.ndarray
    adv_rows: np.ndarray  # boolean mask over the request's rows


def build_stream(
    benign_x: np.ndarray, adv_x: np.ndarray | None, spec: StreamSpec
) -> list[GeneratedRequest]:
    """Generate the deterministic request stream described by ``spec``.

    Benign rows are drawn *without* replacement while the pool lasts
    (distinct callers send distinct inputs; repeated rows would also let
    the offline baseline's engine memo short-circuit whole requests,
    which is a caching story rather than a dispatch story), then the pool
    reshuffles and wraps.  Adversarial rows — drawn per row with
    probability ``adv_fraction`` — come from ``adv_x`` with replacement:
    attack corpora are small and replayed payloads are the realistic
    case.  ``adv_x`` may be ``None`` only when ``adv_fraction`` is 0.
    """
    if len(benign_x) == 0:
        raise ValueError("benign pool is empty")
    if spec.adv_fraction > 0 and (adv_x is None or len(adv_x) == 0):
        raise ValueError("adv_fraction > 0 needs a non-empty adversarial pool")
    rng = np.random.default_rng(spec.seed)
    benign_order: list[int] = []
    stream = []
    for _ in range(spec.requests):
        size = int(rng.integers(spec.min_size, spec.max_size + 1))
        adv_rows = rng.random(size) < spec.adv_fraction
        x = np.empty((size,) + benign_x.shape[1:], dtype=benign_x.dtype)
        for j in range(size):
            if adv_rows[j]:
                x[j] = adv_x[int(rng.integers(0, len(adv_x)))]
            else:
                if not benign_order:
                    benign_order = list(rng.permutation(len(benign_x)))
                x[j] = benign_x[benign_order.pop()]
        stream.append(GeneratedRequest(x=x, adv_rows=adv_rows))
    return stream


@dataclass
class RunStats:
    """Wall-clock outcome of one stream run.

    ``labels``/``statuses`` keep one entry per *request* (``labels`` is
    ``None`` where the request shed); ``latencies_s`` holds served
    requests only — a shed request has no service latency, and its
    ``NaN`` placeholder used to poison every percentile downstream.
    """

    labels: list[np.ndarray] = field(default_factory=list)
    statuses: list[str] = field(default_factory=list)
    seconds: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def served(self) -> int:
        """Requests that got labels back (``ok`` or ``degraded``)."""
        return sum(1 for status in self.statuses if status != "shed")

    @property
    def shed(self) -> int:
        """Requests refused by admission control."""
        return sum(1 for status in self.statuses if status == "shed")

    @property
    def requests_per_sec(self) -> float:
        # Served requests only: counting sheds would let a service
        # inflate its throughput by refusing traffic.
        return self.served / self.seconds if self.seconds > 0 else float("inf")

    @property
    def examples_per_sec(self) -> float:
        rows = sum(len(l) for l in self.labels if l is not None)
        return rows / self.seconds if self.seconds > 0 else float("inf")


def run_offline(
    dcn: DCN, stream: list[GeneratedRequest], clock=time.perf_counter
) -> RunStats:
    """Per-request baseline: each request dispatched alone via ``DCN.classify``.

    This is the pre-serving status quo — every caller pays its own engine
    dispatch, its own detector forward and its own corrector vote.
    """
    stats = RunStats()
    start = clock()
    for request in stream:
        t0 = clock()
        stats.labels.append(dcn.classify(request.x))
        stats.latencies_s.append(clock() - t0)
        stats.statuses.append("ok")
    stats.seconds = clock() - start
    return stats


def run_coalesced(
    service: DCNService,
    stream: list[GeneratedRequest],
    window: int = 16,
    clock=time.perf_counter,
) -> RunStats:
    """Drive the service in synchronous arrival windows of ``window`` requests.

    Each window models ``window`` callers hitting the service at once; the
    service coalesces them into bucketed dispatches.  Deterministic, so
    the benchmark can assert served labels equal the offline baseline's.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    stats = RunStats()
    start = clock()
    for begin in range(0, len(stream), window):
        arrivals = stream[begin : begin + window]
        results = service.serve_batch([request.x for request in arrivals])
        for result in results:
            stats.labels.append(result.labels)
            stats.statuses.append(result.status)
            if result.ok:
                stats.latencies_s.append(result.latency_s)
    stats.seconds = clock() - start
    return stats


def run_pool(
    pool,
    stream: list[GeneratedRequest],
    window: int = 16,
    clock=time.perf_counter,
    timeout: float | None = 60.0,
) -> RunStats:
    """Drive a :class:`~repro.serve.workers.ServePool` in arrival windows.

    ``window`` requests are submitted concurrently, then all their
    tickets awaited before the next window — the multi-worker analogue of
    :func:`run_coalesced`.  Sharding is deterministic (sequence modulo
    worker count), so per-request labels still match the offline
    baseline's exactly; only the grouping into dispatches differs.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    stats = RunStats()
    start = clock()
    for begin in range(0, len(stream), window):
        arrivals = stream[begin : begin + window]
        tickets = [pool.submit(request.x) for request in arrivals]
        for ticket in tickets:
            result = ticket.wait(timeout)
            stats.labels.append(result.labels)
            stats.statuses.append(result.status)
            if result.ok:
                stats.latencies_s.append(result.latency_s)
    stats.seconds = clock() - start
    return stats


def run_remote(
    clients,
    stream: list[GeneratedRequest],
    clock=time.perf_counter,
) -> RunStats:
    """Replay ``stream`` against a live server through ``clients``.

    Request ``i`` goes to client ``i % len(clients)`` — a deterministic
    assignment, so a rerun with the same stream and client fleet issues
    exactly the same calls in the same per-connection order.  Each client
    drives its subset sequentially on its own thread (a
    :class:`~repro.serve.client.DCNClient` serialises its socket anyway),
    which models ``len(clients)`` concurrent callers: their in-flight
    requests coalesce in the server backend's micro-batching dispatcher.
    Results are reassembled in stream order, so ``labels`` lines up with
    the offline baseline for bitwise comparison.

    Every entry in ``statuses`` resolves — ``ok``/``degraded``/``shed`` —
    because :meth:`DCNClient.classify` converts transport failures into
    sheds or structured errors rather than hanging.
    """
    if not clients:
        raise ValueError("need at least one client")
    results: list[ServeResult | None] = [None] * len(stream)

    def drive(client_index: int) -> None:
        client = clients[client_index]
        for i in range(client_index, len(stream), len(clients)):
            results[i] = client.classify(stream[i].x)

    stats = RunStats()
    start = clock()
    threads = [
        threading.Thread(target=drive, args=(c,), name=f"loadgen-client-{c}")
        for c in range(len(clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats.seconds = clock() - start
    for result in results:
        stats.labels.append(result.labels)
        stats.statuses.append(result.status)
        if result.ok:
            stats.latencies_s.append(result.latency_s)
    return stats


def summarize_latencies(latencies_s: list[float]) -> dict[str, float]:
    """p50/p95/mean in milliseconds (benchcmp lower-is-better naming).

    Non-finite entries (e.g. a shed request's ``NaN`` placeholder from an
    older caller) are dropped rather than allowed to poison every
    percentile; ``count`` reflects the finite entries actually summarised.
    """
    finite = [t for t in latencies_s if np.isfinite(t)]
    if not finite:
        return {"count": 0.0, "p50_ms": float("nan"), "p95_ms": float("nan"),
                "mean_ms": float("nan")}
    arr = np.asarray(finite, dtype=np.float64)
    return {
        "count": float(arr.size),
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p95_ms": float(np.percentile(arr, 95) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }
