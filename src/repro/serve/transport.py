"""Framed TCP transport: the serving layer's network edge.

The sharding and liveness layers (PR 9) are transport-agnostic on
purpose; this module gives them a wire.  Everything rides a single
**length-prefixed framed protocol** over TCP:

Frame format
    ``magic(4) | version(1) | kind(1) | meta_len(4, !I) | body_len(8, !Q)``
    followed by ``meta_len`` bytes of UTF-8 JSON metadata and ``body_len``
    bytes of body.  Arrays travel as concatenated bare-``.npy`` segments
    with a name/length table in ``meta["npy"]`` (:func:`encode_body` /
    :func:`decode_body` — the hot path, no ZipFile machinery), falling
    back to ``.npz`` bytes when the table is absent (:func:`encode_array`
    / :func:`decode_arrays`).  ``allow_pickle`` is never enabled, so a
    malicious peer cannot smuggle objects.  A frame
    whose header fails the magic/version check, or whose declared size
    exceeds ``max_frame_bytes``, is rejected with a **structured**
    :class:`FrameError` (``code`` in :data:`FRAME_ERROR_CODES`) rather
    than a hang or a silent truncation; a connection that dies mid-frame
    surfaces as ``code="torn"``.

Deadline propagation
    A request frame carries ``deadline_s`` — the *remaining* latency
    budget at send time (a duration, not a wall-clock instant, so the two
    machines' clocks never need to agree).  The server sheds a request
    whose budget is already spent, or whose estimated queued wait
    (:meth:`~repro.serve.DCNService.estimated_wait_s`, the PR 9 SLO cost
    model) exceeds the remaining budget — *before* doing any dispatch
    work — and bounds its wait on the backend ticket by the same budget.
    Either way the caller gets a ``shed`` response with
    ``reason="deadline"`` and the ``deadline_shed`` counter increments:
    client and server agree on the outcome.

Server
    :class:`DCNServer` accepts any backend with ``submit(x) -> ticket``
    semantics — a started :class:`~repro.serve.DCNService` or a
    :class:`~repro.serve.ServePool` — one handler thread per connection,
    so concurrent client connections coalesce in the backend's
    micro-batching dispatcher exactly like local threads.  Transport
    chaos (:class:`~repro.runner.faultinject.TransportChaos`) hooks the
    reply path so every network failure mode is deterministically
    injectable.
"""

from __future__ import annotations

import io
import json
import socket
import struct
import threading
import time

import numpy as np

from .service import ServeResult
from .telemetry import ServeCounters

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "FRAME_ERROR_CODES",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_ERROR",
    "KIND_PING",
    "KIND_PONG",
    "FrameError",
    "encode_array",
    "decode_arrays",
    "encode_body",
    "decode_body",
    "read_frame",
    "write_frame",
    "DCNServer",
]

PROTOCOL_MAGIC = b"DCNS"
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's declared payload (metadata + body).  64 MiB
#: is ~256x the largest legal request at the default ``max_batch``; a
#: header claiming more is a corrupt or hostile peer, not a big batch.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("!4sBBIQ")

KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3
KIND_PING = 4
KIND_PONG = 5

_KNOWN_KINDS = (KIND_REQUEST, KIND_RESPONSE, KIND_ERROR, KIND_PING, KIND_PONG)

FRAME_ERROR_CODES = (
    "bad-magic",  # first 4 bytes are not the protocol magic
    "bad-version",  # peer speaks a different protocol version
    "bad-kind",  # unknown frame kind byte
    "oversized",  # declared payload exceeds max_frame_bytes
    "torn",  # connection died mid-frame
    "timeout",  # deadline fired while reading a frame
    "bad-payload",  # metadata/body failed to decode
)


class FrameError(Exception):
    """A structured framing failure; ``code`` is one of FRAME_ERROR_CODES."""

    def __init__(self, code: str, message: str):
        assert code in FRAME_ERROR_CODES, code
        super().__init__(f"{code}: {message}")
        self.code = code


# ---------------------------------------------------------------------------
# Array + frame codecs
# ---------------------------------------------------------------------------


def encode_array(**arrays: np.ndarray | None) -> bytes:
    """``.npz``-encode named arrays (``None`` values are skipped)."""
    buf = io.BytesIO()
    present = {k: np.asarray(v) for k, v in arrays.items() if v is not None}
    np.savez(buf, **present)
    return buf.getvalue()


def decode_arrays(data: bytes) -> dict[str, np.ndarray]:
    """Decode an ``.npz`` body; never unpickles objects."""
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    except Exception as exc:
        raise FrameError("bad-payload", f"undecodable array body: {exc}") from exc


def encode_body(meta: dict, **arrays: np.ndarray | None) -> bytes:
    """Encode named arrays as concatenated bare-``.npy`` segments.

    The hot request/response path: each array is ``np.save``-d directly
    (no ZipFile container, ~3-5x cheaper to encode+decode than ``.npz``)
    and the name/byte-length segment table rides in ``meta["npy"]``.
    ``None`` values are skipped, matching :func:`encode_array`.
    """
    buf = io.BytesIO()
    segments: list[list] = []
    for name, value in arrays.items():
        if value is None:
            continue
        start = buf.tell()
        np.save(buf, np.asarray(value), allow_pickle=False)
        segments.append([name, buf.tell() - start])
    meta["npy"] = segments
    return buf.getvalue()


def decode_body(meta: dict, data: bytes) -> dict[str, np.ndarray]:
    """Decode a frame body — ``.npy`` segments when ``meta["npy"]`` names
    them (the :func:`encode_body` layout), ``.npz`` otherwise."""
    segments = meta.get("npy")
    if segments is None:
        return decode_arrays(data)
    out: dict[str, np.ndarray] = {}
    offset = 0
    try:
        for name, length in segments:
            if (
                not isinstance(name, str)
                or not isinstance(length, int)
                or length < 0
                or offset + length > len(data)
            ):
                raise FrameError("bad-payload", "malformed npy segment table")
            value = np.load(io.BytesIO(data[offset : offset + length]), allow_pickle=False)
            if not isinstance(value, np.ndarray):
                raise FrameError("bad-payload", "npy segment is not a bare array")
            out[name] = value
            offset += length
    except FrameError:
        raise
    except Exception as exc:
        raise FrameError("bad-payload", f"undecodable array body: {exc}") from exc
    return out


def _recv_exact(sock: socket.socket, n: int, deadline: float | None) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame raises ``FrameError("torn")``; the deadline
    firing raises ``FrameError("timeout")``.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FrameError("timeout", f"deadline fired after {got}/{n} bytes")
            sock.settimeout(remaining)
        try:
            chunk = sock.recv(n - got)
        except socket.timeout as exc:
            raise FrameError("timeout", f"socket stalled after {got}/{n} bytes") from exc
        except OSError as exc:
            if got == 0 and not chunks:
                return None
            raise FrameError("torn", f"connection died after {got}/{n} bytes") from exc
        if not chunk:
            if got == 0:
                return None
            raise FrameError("torn", f"EOF after {got}/{n} bytes of a frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    deadline: float | None = None,
) -> tuple[int, dict, bytes] | None:
    """Read one frame: ``(kind, meta, body)``; ``None`` on clean EOF.

    ``deadline`` is a ``time.monotonic()`` instant; raising
    ``FrameError("timeout")`` when it fires is what keeps a stalled peer
    from hanging the reader forever.
    """
    header = _recv_exact(sock, _HEADER.size, deadline)
    if header is None:
        return None
    magic, version, kind, meta_len, body_len = _HEADER.unpack(header)
    if magic != PROTOCOL_MAGIC:
        raise FrameError("bad-magic", f"got {magic!r}, want {PROTOCOL_MAGIC!r}")
    if version != PROTOCOL_VERSION:
        raise FrameError("bad-version", f"peer speaks v{version}, we speak v{PROTOCOL_VERSION}")
    if kind not in _KNOWN_KINDS:
        raise FrameError("bad-kind", f"unknown frame kind {kind}")
    if meta_len + body_len > max_frame_bytes:
        raise FrameError(
            "oversized",
            f"frame declares {meta_len + body_len} bytes > cap {max_frame_bytes}",
        )
    meta_bytes = _recv_exact(sock, meta_len, deadline) if meta_len else b"{}"
    if meta_bytes is None:
        raise FrameError("torn", "EOF before frame metadata")
    body = _recv_exact(sock, body_len, deadline) if body_len else b""
    if body is None:
        raise FrameError("torn", "EOF before frame body")
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError("bad-payload", f"undecodable frame metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise FrameError("bad-payload", "frame metadata is not a JSON object")
    return kind, meta, body


def write_frame(sock: socket.socket, kind: int, meta: dict, body: bytes = b"") -> None:
    """Serialise and send one frame with a single ``sendall``."""
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    header = _HEADER.pack(
        PROTOCOL_MAGIC, PROTOCOL_VERSION, kind, len(meta_bytes), len(body)
    )
    sock.sendall(header + meta_bytes + body)


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class DCNServer:
    """Serve a started :class:`DCNService`/:class:`ServePool` over TCP.

    Parameters
    ----------
    backend:
        Anything with ``submit(x) -> ticket`` (ticket has
        ``wait(timeout) -> ServeResult``).  Must already be started; each
        connection handler submits into it, so concurrent connections
        coalesce in its dispatcher.
    host, port:
        Bind address; ``port=0`` picks a free port (``server.address``
        reports the real one).
    default_deadline_s:
        Ticket-wait bound for requests that carry no deadline — nothing
        server-side ever waits forever.
    max_frame_bytes:
        Reject frames declaring more than this many payload bytes.
    chaos:
        Optional :class:`~repro.runner.faultinject.TransportChaos`; its
        faults fire on the reply path, keyed by server-wide request
        ordinal.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        default_deadline_s: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        chaos=None,
    ):
        if default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0")
        self.backend = backend
        self.host = host
        self.port = port
        self.default_deadline_s = default_deadline_s
        self.max_frame_bytes = max_frame_bytes
        self.chaos = chaos
        #: Transport-level counters, merged into ``telemetry_snapshot``.
        self.counters = ServeCounters()
        self.connections_total = 0
        self.frame_errors = 0
        self._lock = threading.Lock()
        self._ordinal = 0
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._running = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — use after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "DCNServer":
        with self._lock:
            if self._running:
                raise RuntimeError("server already started")
            self._running = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        accept = threading.Thread(
            target=self._accept_loop, name="dcn-server-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        with self._lock:
            if not self._running:
                return
            self._running = False
            conns = list(self._conns)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)

    def serve_forever(self, poll_s: float = 0.5) -> None:
        """Block the calling thread until :meth:`stop` (the CLI's --listen
        loop; accept/handler threads do the actual work)."""
        while True:
            with self._lock:
                if not self._running:
                    return
            time.sleep(poll_s)

    def __enter__(self) -> "DCNServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- telemetry -------------------------------------------------------------

    def telemetry_snapshot(self) -> dict:
        """Backend snapshot with transport counters folded in."""
        snapshot = self.backend.telemetry_snapshot()
        merged = ServeCounters.merged([snapshot.get("counters", {}), self.counters])
        snapshot["counters"] = merged.as_dict()
        snapshot["transport"] = {
            "connections_total": self.connections_total,
            "frame_errors": self.frame_errors,
            "requests": self._ordinal,
        }
        return snapshot

    # -- internals -------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if not self._running:
                    conn.close()
                    return
                self._conns.add(conn)
                self.connections_total += 1
                handler = threading.Thread(
                    target=self._handle,
                    args=(conn,),
                    name="dcn-server-conn",
                    daemon=True,
                )
                self._threads.append(handler)
            handler.start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    frame = read_frame(conn, self.max_frame_bytes)
                except FrameError as exc:
                    with self._lock:
                        self.frame_errors += 1
                    # Best-effort structured rejection before closing; a
                    # torn connection can't receive it, which is fine.
                    self._send_error(conn, exc.code, str(exc))
                    return
                if frame is None:
                    return  # clean EOF
                kind, meta, body = frame
                if kind == KIND_PING:
                    write_frame(conn, KIND_PONG, {"id": meta.get("id")})
                    continue
                if kind != KIND_REQUEST:
                    self._send_error(conn, "bad-kind", f"server cannot handle kind {kind}")
                    return
                if not self._serve_request(conn, meta, body):
                    return
        except (OSError, BrokenPipeError):
            pass  # peer went away mid-write
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _serve_request(self, conn: socket.socket, meta: dict, body: bytes) -> bool:
        """Handle one classify request; False closes the connection."""
        received = time.monotonic()
        request_id = meta.get("id")
        with self._lock:
            ordinal = self._ordinal
            self._ordinal += 1
        try:
            arrays = decode_body(meta, body)
            x = arrays["x"]
        except (FrameError, KeyError) as exc:
            with self._lock:
                self.frame_errors += 1
            self._send_error(conn, "bad-payload", f"request body: {exc}", request_id)
            return False

        deadline_s = meta.get("deadline_s")
        budget = float(deadline_s) if deadline_s is not None else self.default_deadline_s
        # Deadline-aware admission: refuse dead work.  A request whose
        # budget is spent, or whose estimated queued wait (the SLO cost
        # model) already exceeds it, sheds *before* touching the backend.
        if deadline_s is not None:
            est = None
            estimator = getattr(self.backend, "estimated_wait_s", None)
            if estimator is not None:
                est = estimator(len(x))
            if budget <= 0 or (est is not None and est > budget):
                with self._lock:
                    self.counters.shed += 1
                    self.counters.deadline_shed += 1
                return self._send_result(
                    conn, request_id, ordinal,
                    ServeResult(status="shed", reason="deadline"), retryable=False,
                )

        try:
            ticket = self.backend.submit(x)
        except ValueError as exc:
            self._send_error(conn, "bad-payload", f"rejected request: {exc}", request_id)
            return False
        except RuntimeError as exc:  # backend not started / shut down
            return self._send_result(
                conn, request_id, ordinal,
                ServeResult(status="shed", reason=f"unavailable: {exc}"),
                retryable=True,
            )
        wait_budget = max(0.0, budget - (time.monotonic() - received))
        try:
            result = ticket.wait(wait_budget)
        except TimeoutError:
            # The backend may still resolve the ticket later; its labels
            # are discarded — the caller's budget is gone either way.
            with self._lock:
                self.counters.deadline_shed += 1
            result = ServeResult(status="shed", reason="deadline")
            return self._send_result(conn, request_id, ordinal, result, retryable=False)
        if result.status == "shed":
            # Backend shed (overload / dead workers): no work was done,
            # so a retry after backoff is safe and may find capacity.
            result = ServeResult(status="shed", reason=result.reason or "overload")
            return self._send_result(conn, request_id, ordinal, result, retryable=True)
        return self._send_result(conn, request_id, ordinal, result, retryable=False)

    def _send_result(
        self,
        conn: socket.socket,
        request_id,
        ordinal: int,
        result: ServeResult,
        retryable: bool,
    ) -> bool:
        meta = {
            "id": request_id,
            "status": result.status,
            "reason": result.reason,
            "retryable": retryable,
            "latency_s": result.latency_s if np.isfinite(result.latency_s) else None,
        }
        body = b""
        if result.labels is not None:
            body = encode_body(meta, labels=result.labels, flagged=result.flagged)
        fault = self.chaos.reply_fault(ordinal) if self.chaos is not None else None
        try:
            if fault is not None and not self.chaos.fire(fault, conn, meta, body):
                return False
            write_frame(conn, KIND_RESPONSE, meta, body)
            return True
        except OSError:
            return False

    def _send_error(
        self, conn: socket.socket, code: str, message: str, request_id=None
    ) -> None:
        try:
            write_frame(
                conn, KIND_ERROR, {"id": request_id, "code": code, "message": message}
            )
        except OSError:
            pass
