"""Shape buckets: quantise coalesced batch sizes onto powers of two.

The engines' compiled-plan LRUs (PR 6) are keyed by the *exact* batch
shape, with a small default capacity (``DEFAULT_PLAN_ENTRIES = 8``).
Online traffic produces a long tail of distinct batch sizes — a 3-row
request here, a coalesced 17-row dispatch there — and every novel size is
a plan compilation plus an LRU eviction.  Quantising dispatch sizes onto
the power-of-two ladder bounds the number of distinct shapes the serving
path can ever present to ``log2(max_batch) + 1``, so after warm-up every
dispatch is a plan hit.

Padding is pad-and-mask: the buffer is filled with zero rows up to the
bucket size and the padding rows' outputs are discarded.  The engine's
per-row outputs are invariant to trailing padding (each row's kernels
reduce over fixed axes), so bucketing never changes served labels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bucket_sizes", "bucket_for", "pad_to_bucket"]


def bucket_sizes(max_batch: int) -> tuple[int, ...]:
    """The power-of-two ladder ``1, 2, 4, … , max_batch``.

    ``max_batch`` itself is always included (as the cap) even when it is
    not a power of two, so a full coalesced dispatch needs no padding.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    sizes = []
    size = 1
    while size < max_batch:
        sizes.append(size)
        size *= 2
    sizes.append(max_batch)
    return tuple(sizes)


def bucket_for(n: int, buckets: tuple[int, ...]) -> int:
    """Smallest bucket that fits ``n`` rows.

    ``n`` must not exceed the largest bucket — the scheduler never
    coalesces past ``max_batch``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    for size in buckets:
        if n <= size:
            return size
    raise ValueError(f"batch of {n} rows exceeds the largest bucket {buckets[-1]}")


def pad_to_bucket(x: np.ndarray, bucket: int) -> np.ndarray:
    """Zero-pad ``x`` with trailing rows up to ``bucket`` rows.

    Returns ``x`` itself when it already has exactly ``bucket`` rows, so
    the common full-dispatch case allocates nothing.
    """
    n = len(x)
    if n == bucket:
        return x
    if n > bucket:
        raise ValueError(f"batch of {n} rows does not fit bucket {bucket}")
    padded = np.zeros((bucket,) + x.shape[1:], dtype=x.dtype)
    padded[:n] = x
    return padded
