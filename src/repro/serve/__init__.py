"""Online DCN serving: defense-as-a-service over the fused engines.

The offline reproduction runs tables; this package serves live traffic.
:class:`DCNService` coalesces concurrent classify requests into
shape-bucketed engine dispatches, routes benign rows straight out through
the detector gate, and fuses all flagged rows across the batch into one
``(n_flagged × m)`` corrector vote — with admission control, backpressure
and per-request telemetry around the hot path.  See DESIGN.md ("Serving
layer") for the full design and ``python -m repro serve`` for the CLI.
"""

from .bucketing import bucket_for, bucket_sizes, pad_to_bucket
from .client import CircuitBreaker, ClientCounters, DCNClient, RemoteProtocolError
from .loadgen import (
    GeneratedRequest,
    RunStats,
    StreamSpec,
    build_stream,
    run_coalesced,
    run_offline,
    run_pool,
    run_remote,
    summarize_latencies,
)
from .service import OVERLOAD_POLICIES, DCNService, ServeResult, ServeTicket
from .slo import AdmissionDecision, DispatchCostModel, SloAdmission
from .telemetry import (
    LatencySketch,
    LatencyStats,
    ServeCounters,
    TelemetryExporter,
    read_telemetry,
    rotated_segment,
)
from .transport import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_ERROR_CODES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    DCNServer,
    FrameError,
)
from .workers import ServePool, worker_lease_key

__all__ = [
    "DCNService",
    "ServeResult",
    "ServeTicket",
    "ServePool",
    "worker_lease_key",
    "DCNServer",
    "DCNClient",
    "ClientCounters",
    "CircuitBreaker",
    "RemoteProtocolError",
    "FrameError",
    "FRAME_ERROR_CODES",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "OVERLOAD_POLICIES",
    "ServeCounters",
    "LatencyStats",
    "LatencySketch",
    "TelemetryExporter",
    "read_telemetry",
    "rotated_segment",
    "DispatchCostModel",
    "SloAdmission",
    "AdmissionDecision",
    "bucket_sizes",
    "bucket_for",
    "pad_to_bucket",
    "StreamSpec",
    "GeneratedRequest",
    "RunStats",
    "build_stream",
    "run_offline",
    "run_coalesced",
    "run_pool",
    "run_remote",
    "summarize_latencies",
]
