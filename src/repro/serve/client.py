"""Fault-tolerant remote serving client: deadlines, retries, circuit breaking.

:class:`DCNClient` is the caller-side half of the transport contract
(:mod:`repro.serve.transport`).  Its one promise mirrors the pool's:
**every call resolves** — a result, a ``shed``/``degraded``
:class:`~repro.serve.ServeResult`, or a structured
:class:`RemoteProtocolError` — never a hang.  Three mechanisms deliver it:

Deadline propagation
    Every call runs under a latency budget (``deadline_s``).  The
    *remaining* budget at send time travels in the request frame, so the
    server can shed un-meetable work instead of computing labels nobody
    will wait for; client-side, every socket operation and every backoff
    sleep is clamped to the same budget.  A spent budget resolves as
    ``shed`` with ``reason="deadline"`` — the same outcome the server
    reports when the deadline fires on its side.

Bounded retries, deterministic backoff
    Only **idempotent-safe** outcomes retry: connect failure, a
    server-side ``shed`` marked retryable (overload — no work was done),
    and a torn reply.  A complete, well-formed response is an ack — the
    request was executed — and is never retried, and neither is a
    deadline shed (the budget is gone).  Backoff between attempts is
    exponential with **seeded** jitter (``random.Random(backoff_seed)``),
    so a retry schedule is replayable in tests byte for byte.

Circuit breaking
    A per-endpoint closed → open → half-open breaker.  After
    ``breaker_threshold`` consecutive transport failures the endpoint
    opens and calls fast-fail as ``shed``/``reason="breaker"`` without
    touching the network; after ``breaker_reset_s`` one **probe** request
    is allowed through (half-open) and its outcome closes or re-opens the
    circuit.  A flapping server degrades service to fast, caller-visible
    sheds instead of a pile-up of blocked callers.

All counters (:class:`ClientCounters`) are journalable through
:class:`~repro.serve.telemetry.TelemetryExporter` via
``telemetry_snapshot()``.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import asdict, dataclass, replace

import numpy as np

from .service import ServeResult
from .transport import (
    DEFAULT_MAX_FRAME_BYTES,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameError,
    decode_body,
    encode_body,
    read_frame,
    write_frame,
)

__all__ = [
    "DCNClient",
    "ClientCounters",
    "CircuitBreaker",
    "RemoteProtocolError",
    "BREAKER_STATES",
]

BREAKER_STATES = ("closed", "open", "half-open")


class RemoteProtocolError(Exception):
    """The peer violated the protocol (bad magic/version/payload).

    Structured and terminal: ``code`` names the violation and
    ``attempts`` how many tries were spent.  Never raised for transient
    transport failures — those resolve as ``shed`` results.
    """

    def __init__(self, code: str, message: str, attempts: int = 1):
        super().__init__(f"{code}: {message} (after {attempts} attempt(s))")
        self.code = code
        self.attempts = attempts


class _Retryable(Exception):
    """Internal: an idempotent-safe failure worth another attempt."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class ClientCounters:
    """Cumulative outcome counters of one :class:`DCNClient`."""

    requests: int = 0  # classify() calls
    ok: int = 0
    degraded: int = 0
    shed: int = 0  # calls that resolved shed (any reason)
    retries: int = 0  # extra attempts beyond the first
    connect_failures: int = 0
    torn_replies: int = 0
    server_shed: int = 0  # retryable sheds the server reported
    deadline_shed: int = 0  # budget exhausted (either side)
    protocol_errors: int = 0
    breaker_opened: int = 0  # closed/half-open -> open transitions
    breaker_fast_fail: int = 0  # calls short-circuited while open
    breaker_probes: int = 0  # half-open probe requests sent
    breaker_closed: int = 0  # successful probes that re-closed the circuit
    backoff_seconds: float = 0.0  # total time slept between attempts

    def as_dict(self) -> dict[str, float]:
        return asdict(self)

    def snapshot(self) -> "ClientCounters":
        return replace(self)


class CircuitBreaker:
    """Closed/open/half-open breaker for one endpoint.

    ``threshold`` consecutive failures open the circuit; after
    ``reset_s`` the next admitted call is a half-open **probe** whose
    outcome closes (success) or re-opens (failure) it.  Thread-safe; the
    clock is injectable so tests drive the state machine without
    sleeping.
    """

    def __init__(self, threshold: int = 3, reset_s: float = 1.0, clock=time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_s <= 0:
            raise ValueError("reset_s must be > 0")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self.failures = 0
        self.opened_at: float | None = None
        self._probing = False

    def allow(self) -> tuple[bool, bool]:
        """``(admitted, is_probe)`` for a call arriving now."""
        with self._lock:
            if self.state == "closed":
                return True, False
            if self.state == "open":
                assert self.opened_at is not None
                if self._clock() - self.opened_at < self.reset_s:
                    return False, False
                self.state = "half-open"
                self._probing = False
            # half-open: exactly one probe in flight at a time.
            if self._probing:
                return False, False
            self._probing = True
            return True, True

    def record_success(self) -> None:
        with self._lock:
            self.state = "closed"
            self.failures = 0
            self.opened_at = None
            self._probing = False

    def record_failure(self) -> bool:
        """Fold in one transport failure; True if the circuit just opened."""
        with self._lock:
            self.failures += 1
            if self.state == "half-open" or self.failures >= self.threshold:
                just_opened = self.state != "open"
                self.state = "open"
                self.opened_at = self._clock()
                self._probing = False
                return just_opened
            return False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "failures": self.failures,
                "opened_at": self.opened_at,
            }


class DCNClient:
    """Remote classify over the framed transport, with fault tolerance.

    Parameters
    ----------
    address:
        ``(host, port)`` of a running :class:`~repro.serve.transport.DCNServer`.
    deadline_s:
        Default per-call latency budget; individual calls may override.
    retries:
        Extra attempts after the first, spent only on idempotent-safe
        failures (connect failure, retryable server shed, torn reply).
    backoff_base_s / backoff_max_s / backoff_seed:
        Deterministic exponential backoff between attempts:
        ``min(max, base * 2**attempt) * (0.5 + jitter)`` with jitter drawn
        from ``random.Random(backoff_seed)`` — replayable schedules.
    breaker_threshold / breaker_reset_s:
        Circuit-breaker tuning (see :class:`CircuitBreaker`).
    """

    def __init__(
        self,
        address: tuple[str, int],
        deadline_s: float = 30.0,
        retries: int = 2,
        backoff_base_s: float = 0.02,
        backoff_max_s: float = 1.0,
        backoff_seed: int = 0,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 1.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        sleep=time.sleep,
    ):
        if deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_base_s < 0 or backoff_max_s < backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_max_s")
        self.address = (str(address[0]), int(address[1]))
        self.deadline_s = deadline_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.max_frame_bytes = max_frame_bytes
        self.breaker = CircuitBreaker(breaker_threshold, breaker_reset_s)
        self.counters = ClientCounters()
        self._rng = random.Random(backoff_seed)
        self._sleep = sleep
        self._lock = threading.Lock()  # one in-flight roundtrip per client
        self._sock: socket.socket | None = None
        self._next_id = 0

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def __enter__(self) -> "DCNClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    # -- the call --------------------------------------------------------------

    def classify(self, x: np.ndarray, deadline_s: float | None = None) -> ServeResult:
        """One remote classify under a latency budget; always resolves.

        Returns the server's :class:`ServeResult` (``ok``/``degraded``/
        ``shed``); transport failures resolve as ``shed`` with ``reason``
        naming the cause (``"deadline"``, ``"breaker"``,
        ``"unavailable"``); protocol violations raise
        :class:`RemoteProtocolError`.
        """
        budget = self.deadline_s if deadline_s is None else float(deadline_s)
        if budget <= 0:
            raise ValueError("deadline_s must be > 0")
        deadline = time.monotonic() + budget
        self.counters.requests += 1
        x = np.asarray(x)
        last_reason = "unavailable"
        attempt = 0
        while True:
            admitted, probe = self.breaker.allow()
            if not admitted:
                self.counters.breaker_fast_fail += 1
                return self._finish(ServeResult(status="shed", reason="breaker"))
            if probe:
                self.counters.breaker_probes += 1
            try:
                result = self._roundtrip(x, deadline, attempt)
            except _Retryable as exc:
                if self.breaker.record_failure():
                    self.counters.breaker_opened += 1
                last_reason = exc.reason
                remaining = deadline - time.monotonic()
                if attempt >= self.retries or remaining <= 0:
                    reason = "deadline" if remaining <= 0 else last_reason
                    if reason == "deadline":
                        self.counters.deadline_shed += 1
                    return self._finish(ServeResult(status="shed", reason=reason))
                self._backoff(attempt, remaining)
                attempt += 1
                self.counters.retries += 1
                continue
            except RemoteProtocolError as exc:
                self.counters.protocol_errors += 1
                if self.breaker.record_failure():
                    self.counters.breaker_opened += 1
                raise RemoteProtocolError(exc.code, str(exc), attempts=attempt + 1) from exc
            if result.status == "shed" and result.reason == "deadline":
                # Server-side deadline shed: the budget is gone on both
                # ends; retrying would only burn a dead budget further.
                self.counters.deadline_shed += 1
                self.breaker.record_success()  # the endpoint is healthy
                return self._finish(result)
            if probe:
                self.counters.breaker_closed += 1
            self.breaker.record_success()
            return self._finish(result)

    def ping(self, deadline_s: float = 5.0) -> bool:
        """Transport-level health probe; never raises."""
        deadline = time.monotonic() + deadline_s
        with self._lock:
            try:
                sock = self._connect_locked(deadline)
                from .transport import KIND_PING, KIND_PONG

                write_frame(sock, KIND_PING, {"id": -1})
                frame = read_frame(sock, self.max_frame_bytes, deadline)
                return frame is not None and frame[0] == KIND_PONG
            except (OSError, FrameError):
                self._close_locked()
                return False

    def telemetry_snapshot(self) -> dict:
        """Exporter hook: counters plus breaker state, one JSON-able dict."""
        return {
            "counters": self.counters.as_dict(),
            "breaker": self.breaker.snapshot(),
            "endpoint": f"{self.address[0]}:{self.address[1]}",
        }

    # -- internals -------------------------------------------------------------

    def _finish(self, result: ServeResult) -> ServeResult:
        if result.status == "ok":
            self.counters.ok += 1
        elif result.status == "degraded":
            self.counters.degraded += 1
        else:
            self.counters.shed += 1
        return result

    def _backoff(self, attempt: int, remaining: float) -> None:
        delay = min(self.backoff_max_s, self.backoff_base_s * (2.0**attempt))
        delay *= 0.5 + self._rng.random()  # jitter in [0.5, 1.5) x delay
        delay = min(delay, max(0.0, remaining))
        if delay > 0:
            self.counters.backoff_seconds += delay
            self._sleep(delay)

    def _connect_locked(self, deadline: float) -> socket.socket:
        if self._sock is not None:
            return self._sock
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise FrameError("timeout", "deadline fired before connect")
        sock = socket.create_connection(self.address, timeout=remaining)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def _roundtrip(self, x: np.ndarray, deadline: float, attempt: int) -> ServeResult:
        """One send/receive attempt; raises ``_Retryable`` on safe failures."""
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            try:
                sock = self._connect_locked(deadline)
            except FrameError:
                raise _Retryable("deadline")
            except OSError:
                self.counters.connect_failures += 1
                self._close_locked()
                raise _Retryable("unavailable")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _Retryable("deadline")
            meta = {"id": request_id, "deadline_s": remaining, "attempt": attempt}
            body = encode_body(meta, x=x)  # sets meta["npy"] before the send
            try:
                sock.settimeout(remaining)
                write_frame(sock, KIND_REQUEST, meta, body)
                frame = read_frame(sock, self.max_frame_bytes, deadline)
            except FrameError as exc:
                self._close_locked()
                if exc.code == "torn":
                    # The reply died mid-frame.  classify is pure, and the
                    # protocol deems a lost reply safe to re-request.
                    self.counters.torn_replies += 1
                    raise _Retryable("torn")
                if exc.code == "timeout":
                    raise _Retryable("deadline")
                raise RemoteProtocolError(exc.code, str(exc))
            except OSError:
                self.counters.connect_failures += 1
                self._close_locked()
                raise _Retryable("unavailable")
            if frame is None:
                # EOF instead of a reply: the server died before answering
                # (no ack was received, so a retry cannot double-serve).
                self._close_locked()
                self.counters.torn_replies += 1
                raise _Retryable("torn")
            kind, reply, body = frame
        if kind == KIND_ERROR:
            raise RemoteProtocolError(
                str(reply.get("code", "error")), str(reply.get("message", ""))
            )
        if kind != KIND_RESPONSE:
            raise RemoteProtocolError("bad-kind", f"unexpected reply kind {kind}")
        if reply.get("id") != request_id:
            # A stale reply (e.g. to a request whose wait we abandoned)
            # would mislabel this call; treat as protocol violation.
            raise RemoteProtocolError(
                "bad-payload", f"reply id {reply.get('id')} != request id {request_id}"
            )
        status = str(reply.get("status", "shed"))
        reason = reply.get("reason")
        if status == "shed":
            if bool(reply.get("retryable")) and reason != "deadline":
                self.counters.server_shed += 1
                raise _Retryable(reason or "overload")
            return ServeResult(status="shed", reason=reason)
        try:
            arrays = decode_body(reply, body)
            labels = arrays["labels"]
            flagged = arrays.get("flagged")
        except (FrameError, KeyError) as exc:
            raise RemoteProtocolError("bad-payload", f"response body: {exc}")
        latency = reply.get("latency_s")
        return ServeResult(
            status=status,
            labels=labels,
            flagged=flagged,
            latency_s=float(latency) if latency is not None else float("nan"),
            reason=reason,
        )
