"""The online DCN service: micro-batching, detector gating, fused correction.

``DCNService`` turns an offline :class:`~repro.core.dcn.DCN` into a
defense-as-a-service hot path built around three ideas:

Request coalescing
    Concurrent small ``classify`` requests are concatenated into one
    engine-sized dispatch (up to ``max_batch`` rows), so dispatch overhead
    — plan lookup, detector forward, Python glue — is paid once per batch
    instead of once per request.

Shape-bucketed plan reuse
    Dispatch batches are padded onto the power-of-two bucket ladder
    (:mod:`repro.serve.bucketing`), bounding the distinct batch shapes the
    engines' compiled-plan LRUs ever see, and the service raises the
    engines' plan budget (``plan_entries``) so the bucket ladder *and*
    the corrector's bounded set of sample-chunk shapes stay resident
    together.  After warm-up, effectively every dispatch — model forward,
    detector forward and the corrector's sample chunks — is a plan hit.

Cross-request corrector fusion
    The detector gate routes benign rows straight out (one forward plus
    the ~400-parameter detector — the paper's Sec. 5 asymmetry).  All
    flagged rows across the coalesced batch are stacked into one
    ``(n_flagged × m)`` region vote via ``Corrector.correct_fused`` — one
    noise draw, one engine pass, one vectorised vote — instead of one
    vote per originating request.  Because vote noise is a per-input
    stream (:func:`~repro.defenses.region.input_rng`), served labels are
    bitwise-identical to offline ``DCN.classify`` on the same inputs.

Around the hot path sits admission control, in one of two regimes:

* **depth-governed** (default): the queue is bounded at ``max_queue``
  requests.  Past it, the ``overload`` policy either **sheds** (rejects
  the request outright) or **degrades** (admits it detector-only: the
  model's label is served even for flagged rows, skipping the corrector
  fan-out).  Degraded admission is itself bounded at ``2 × max_queue``,
  beyond which requests shed regardless.
* **SLO-governed** (``slo_target_s`` set): admission estimates the
  request's queued wait from the learned per-row dispatch costs
  (:mod:`repro.serve.slo` — benign and flagged rows priced separately,
  since the corrector makes flagged rows ~m× pricier) and sheds/degrades
  when the estimate exceeds the target, with the same ``2 × max_queue``
  depth bound kept as a hard backstop.

Either way queue memory stays bounded under any load.  Every stage
increments :class:`~repro.serve.telemetry.ServeCounters` and per-request
latencies feed :class:`~repro.serve.telemetry.LatencyStats`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.dcn import DCN
from .bucketing import bucket_for, bucket_sizes, pad_to_bucket
from .slo import DispatchCostModel, SloAdmission
from .telemetry import LatencyStats, ServeCounters

__all__ = [
    "DCNService",
    "ServeResult",
    "ServeTicket",
    "OVERLOAD_POLICIES",
    "validate_request",
]

OVERLOAD_POLICIES = ("shed", "degrade")

#: Shed (status only) results carry no labels.
_SHED_STATUS = "shed"


def validate_request(x: np.ndarray, max_batch: int) -> np.ndarray:
    """Request shape contract, shared by the service and the pool front end."""
    x = np.asarray(x)
    if x.ndim < 2 or len(x) == 0:
        raise ValueError("a request is a non-empty batch of inputs, shape (n, ...)")
    if len(x) > max_batch:
        raise ValueError(
            f"request of {len(x)} rows exceeds max_batch={max_batch}; split it"
        )
    return x


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one classify request.

    ``status`` is ``"ok"`` (full DCN), ``"degraded"`` (admitted under
    overload and served detector-only — model labels, no corrector), or
    ``"shed"`` (rejected by admission control; ``labels`` is ``None``).
    ``reason`` names what decided a shed when the decider knows it —
    ``"deadline"``, ``"breaker"``, ``"overload"``, ``"unavailable"`` —
    so remote callers can distinguish budget exhaustion from overload.
    """

    status: str
    labels: np.ndarray | None = None
    flagged: np.ndarray | None = None
    latency_s: float = float("nan")
    reason: str | None = None

    @property
    def ok(self) -> bool:
        return self.status != _SHED_STATUS


class ServeTicket:
    """Caller-facing handle for an in-flight (or already-resolved) request."""

    def __init__(self, result: ServeResult | None = None):
        self._event = threading.Event()
        self._result = result
        if result is not None:
            self._event.set()

    def _resolve(self, result: ServeResult) -> None:
        self._result = result
        self._event.set()

    def wait(self, timeout: float | None = None) -> ServeResult:
        if not self._event.wait(timeout):
            raise TimeoutError("request not served within timeout")
        assert self._result is not None
        return self._result


class _Request:
    """Internal queue entry: one admitted request plus its ticket."""

    __slots__ = ("x", "enqueued_at", "degraded", "ticket")

    def __init__(self, x: np.ndarray, enqueued_at: float, degraded: bool):
        self.x = x
        self.enqueued_at = enqueued_at
        self.degraded = degraded
        self.ticket = ServeTicket()


class DCNService:
    """Online serving front end over one :class:`~repro.core.dcn.DCN`.

    Two drive modes share the same admission/dispatch code:

    * **threaded** — ``start()`` spawns a dispatcher thread; callers
      ``submit()`` (or ``classify()``) concurrently and the dispatcher
      coalesces whatever is queued, waiting at most ``max_delay`` seconds
      past the oldest request before dispatching a partial batch.
    * **synchronous** — ``serve_batch(arrays)`` treats its arguments as
      simultaneous arrivals and serves them deterministically in-process;
      the benchmark and the equivalence tests use this mode.

    Parameters
    ----------
    max_batch:
        Row budget of one coalesced dispatch (also the largest bucket and
        the largest admissible single request).
    max_queue:
        Admission bound, in requests.  Beyond it the ``overload`` policy
        applies; beyond ``2 × max_queue`` requests always shed.
    max_delay:
        Threaded mode only: how long the dispatcher waits for more
        requests before dispatching a partial batch.
    overload:
        ``"shed"`` (reject) or ``"degrade"`` (admit detector-only).
    slo_target_s:
        Switch admission from depth-governed to SLO-governed: shed (or
        degrade) when the request's *estimated queued wait* — rows ahead
        of it times the learned per-row dispatch cost, benign and flagged
        rows priced separately — exceeds this many seconds.  The
        ``2 × max_queue`` depth bound stays as a hard backstop.  ``None``
        (default) keeps the original depth policy.
    plan_entries:
        Floor for the model/detector engines' compiled-plan LRU capacity.
        Serving presents a known working set of shapes — the bucket
        ladder plus the corrector's bounded set of sample-chunk flats —
        and a budget that covers all of them makes every post-warm-up
        dispatch a plan hit.  Never shrinks an engine's existing budget.
    pad_corrector:
        Forwarded to ``Corrector.correct_fused``: quantise corrector
        sample chunks onto power-of-two flat shapes.  Off by default —
        with ``plan_entries`` covering the corrector's shapes, padding
        only wastes engine compute.
    """

    def __init__(
        self,
        dcn: DCN,
        max_batch: int = 64,
        max_queue: int = 128,
        max_delay: float = 0.002,
        overload: str = "shed",
        slo_target_s: float | None = None,
        plan_entries: int = 32,
        pad_corrector: bool = False,
        clock=time.perf_counter,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if overload not in OVERLOAD_POLICIES:
            raise ValueError(f"overload must be one of {OVERLOAD_POLICIES}")
        if plan_entries < 1:
            raise ValueError("plan_entries must be >= 1")
        self.dcn = dcn
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.max_delay = max_delay
        self.overload = overload
        self.pad_corrector = pad_corrector
        self.buckets = bucket_sizes(max_batch)
        for engine in (dcn.network.engine, dcn.detector.network.engine):
            engine.plan_entries = max(engine.plan_entries, plan_entries)
        self.counters = ServeCounters()
        self.latencies = LatencyStats()
        # A flagged row pays its share of the batch forward plus the
        # corrector's m extra forwards — the prior the cost model splits
        # mixed dispatches with until both costs are observed directly.
        self.cost_model = DispatchCostModel(
            flagged_multiplier=1.0 + dcn.corrector.samples
        )
        self.slo_target_s = slo_target_s
        self.slo = (
            SloAdmission(slo_target_s, self.cost_model, max_queue, overload)
            if slo_target_s is not None
            else None
        )
        self.idle_wakeups = 0  # dispatcher wakeups with nothing to do
        self._clock = clock
        self._queue: deque[_Request] = deque()
        self._queued_rows = 0
        self._cond = threading.Condition()
        self._running = False
        self._thread: threading.Thread | None = None

    # -- lifecycle (threaded mode) --------------------------------------------

    def start(self) -> "DCNService":
        with self._cond:
            if self._running:
                raise RuntimeError("service already started")
            self._running = True
        self._thread = threading.Thread(target=self._loop, name="dcn-serve", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting requests, drain the queue, join the dispatcher."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "DCNService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission ------------------------------------------------------------

    def submit(self, x: np.ndarray) -> ServeTicket:
        """Enqueue one request (threaded mode); returns immediately.

        A shed request comes back as an already-resolved ticket with
        ``status == "shed"`` — admission control never blocks the caller.
        """
        x = self._validate(x)
        with self._cond:
            if not self._running:
                raise RuntimeError("service is not started; use serve_batch() or start()")
            request = self._admit(x)
            if request is None:
                return ServeTicket(ServeResult(status=_SHED_STATUS))
            self._queue.append(request)
            self._queued_rows += len(request.x)
            self.counters.queue_depth = len(self._queue)
            self.counters.queued_rows = self._queued_rows
            self.counters.max_queue_depth = max(
                self.counters.max_queue_depth, len(self._queue)
            )
            self._cond.notify_all()
            return request.ticket

    def classify(self, x: np.ndarray, timeout: float | None = 30.0) -> ServeResult:
        """Blocking convenience: ``submit`` + ``wait``."""
        return self.submit(x).wait(timeout)

    def serve_batch(self, arrays: list[np.ndarray]) -> list[ServeResult]:
        """Serve a window of simultaneous arrivals synchronously.

        Applies the same admission control and coalescing as the threaded
        path, but deterministically: requests are admitted in order
        against the window's own pending depth, coalesced into dispatches
        of at most ``max_batch`` rows, and executed inline.
        """
        now = self._clock()
        slots: list[ServeResult | None] = [None] * len(arrays)
        admitted: list[tuple[int, _Request]] = []
        admitted_rows = 0
        with self._cond:
            for i, x in enumerate(arrays):
                request = self._admit(
                    self._validate(x), now=now,
                    depth=len(admitted), rows_ahead=admitted_rows,
                )
                if request is None:
                    slots[i] = ServeResult(status=_SHED_STATUS)
                else:
                    admitted.append((i, request))
                    admitted_rows += len(request.x)
            self.counters.max_queue_depth = max(
                self.counters.max_queue_depth, len(admitted)
            )
            self.counters.queue_depth = len(admitted)
            self.counters.queued_rows = admitted_rows
        pending = deque(admitted)
        while pending:
            batch: list[tuple[int, _Request]] = []
            rows = 0
            while pending and rows + len(pending[0][1].x) <= self.max_batch:
                index, request = pending.popleft()
                batch.append((index, request))
                rows += len(request.x)
            with self._cond:
                self.counters.queue_depth = len(pending)
                self.counters.queued_rows = sum(len(r.x) for _, r in pending)
            self._dispatch([request for _, request in batch])
            for index, request in batch:
                slots[index] = request.ticket.wait(0)
        assert all(result is not None for result in slots)
        return slots  # type: ignore[return-value]

    # -- telemetry -------------------------------------------------------------

    def telemetry_snapshot(self) -> dict:
        """One JSON-able telemetry frame: counters, latency summary, the
        mergeable sketch state and the learned dispatch costs.  This is
        what :class:`~repro.serve.telemetry.TelemetryExporter` journals
        and what pool workers ship to the front end."""
        with self._cond:
            return {
                "counters": self.counters.as_dict(),
                "latency": self.latencies.summary(),
                "sketch": self.latencies.sketch.state(),
                "cost": self.cost_model.state(),
            }

    def estimated_wait_s(self, rows: int = 0) -> float | None:
        """Estimated queued wait a request of ``rows`` rows would see now.

        The transport server uses this for deadline-aware admission: a
        request whose remaining budget is below the estimate sheds before
        any dispatch work happens.  ``None`` while the cost model is cold
        (no dispatch observed yet) — admit on no evidence, like SLO
        admission does.
        """
        with self._cond:
            return self.cost_model.estimate_wait(self._queued_rows + max(0, rows))

    # -- internals -------------------------------------------------------------

    def _validate(self, x: np.ndarray) -> np.ndarray:
        return validate_request(x, self.max_batch)

    def _admit(
        self,
        x: np.ndarray,
        now: float | None = None,
        depth: int | None = None,
        rows_ahead: int | None = None,
    ) -> _Request | None:
        """Admission control (caller holds the lock): request, or None = shed.

        Depth-governed by default; SLO-governed when ``slo_target_s`` is
        set — the decision then keys on the estimated queued wait of the
        ``rows_ahead`` rows already admitted, not on the raw depth.
        """
        depth = len(self._queue) if depth is None else depth
        degraded = False
        if self.slo is not None:
            rows_ahead = self._queued_rows if rows_ahead is None else rows_ahead
            decision = self.slo.decide(depth, rows_ahead)
            if decision.action == "shed":
                self.counters.shed += 1
                if decision.reason == "slo":
                    self.counters.slo_shed += 1
                return None
            if decision.action == "degrade":
                degraded = True
                self.counters.degraded += 1
                self.counters.slo_degraded += 1
        elif depth >= self.max_queue:
            if self.overload == "shed" or depth >= 2 * self.max_queue:
                self.counters.shed += 1
                return None
            degraded = True
            self.counters.degraded += 1
        self.counters.requests += 1
        self.counters.examples += len(x)
        return _Request(x, self._clock() if now is None else now, degraded)

    def _loop(self) -> None:
        """Dispatcher thread: coalesce whatever is queued, dispatch, repeat."""
        while True:
            with self._cond:
                # Idle: block until submit()/stop() notifies — no timeout,
                # so an idle service burns zero CPU between requests.  A
                # wakeup that finds neither work nor shutdown is spurious
                # and counted (the regression test pins it at zero).
                while not self._queue and self._running:
                    self._cond.wait()
                    if not self._queue and self._running:
                        self.idle_wakeups += 1
                if not self._queue:
                    if not self._running:
                        self.counters.queue_depth = 0
                        self.counters.queued_rows = 0
                        return
                    continue
                # Hold a partial batch open until the oldest request has
                # aged max_delay, or the row budget fills — whichever first.
                deadline = self._queue[0].enqueued_at + self.max_delay
                while (
                    self._running
                    and self._queued_rows < self.max_batch
                    and (remaining := deadline - self._clock()) > 0
                ):
                    self._cond.wait(remaining)
                batch: list[_Request] = []
                rows = 0
                while self._queue and rows + len(self._queue[0].x) <= self.max_batch:
                    request = self._queue.popleft()
                    batch.append(request)
                    rows += len(request.x)
                self._queued_rows -= rows
                self.counters.queue_depth = len(self._queue)
                self.counters.queued_rows = self._queued_rows
            if batch:
                self._dispatch(batch)

    def _dispatch(self, requests: list[_Request]) -> None:
        """One coalesced dispatch: pad, forward, gate, fuse, scatter."""
        start = self._clock()
        engine = self.dcn.network.engine
        detector = self.dcn.detector
        engines = (engine, detector.network.engine)
        plans_before = [(e.counters.plan_hits, e.counters.plan_misses) for e in engines]

        if len(requests) == 1:
            rows = requests[0].x
        else:
            rows = np.concatenate([r.x for r in requests])
        n = len(rows)
        bucket = bucket_for(n, self.buckets)
        padded = pad_to_bucket(rows, bucket)

        # Model + detector both run at the bucket shape (padding rows are
        # sliced away afterwards), so their plan LRUs see only bucket keys.
        logits = engine.logits(padded, memo=False)
        flagged = detector.is_adversarial(logits)[:n]
        labels = logits[:n].argmax(axis=-1)

        degraded_rows = np.zeros(n, dtype=bool)
        offset = 0
        for request in requests:
            if request.degraded:
                degraded_rows[offset : offset + len(request.x)] = True
            offset += len(request.x)
        correct_mask = flagged & ~degraded_rows
        corrected = int(correct_mask.sum())
        if corrected:
            labels[correct_mask] = self.dcn.corrector.correct_fused(
                rows[correct_mask], pad_chunks=self.pad_corrector
            )

        end = self._clock()
        offset = 0
        for request in requests:
            size = len(request.x)
            request.ticket._resolve(
                ServeResult(
                    status="degraded" if request.degraded else "ok",
                    labels=labels[offset : offset + size].copy(),
                    flagged=flagged[offset : offset + size].copy(),
                    latency_s=end - request.enqueued_at,
                )
            )
            offset += size

        with self._cond:
            self.counters.batches += 1
            if len(requests) > 1:
                self.counters.coalesced_requests += len(requests)
            self.counters.pad_rows += bucket - n
            self.counters.flagged += int(flagged.sum())
            self.counters.corrected += corrected
            self.counters.seconds += end - start
            # Feed the SLO cost model: rows that paid the corrector vote
            # are "flagged-priced", everything else (including flagged
            # rows served degraded) is benign-priced.
            self.cost_model.observe(end - start, n - corrected, corrected)
            for (hits0, misses0), e in zip(plans_before, engines):
                self.counters.plan_hits += e.counters.plan_hits - hits0
                self.counters.plan_misses += e.counters.plan_misses - misses0
            for request in requests:
                self.latencies.record(end - request.enqueued_at)
