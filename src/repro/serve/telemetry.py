"""Serving telemetry: structured work counters and latency percentiles.

:class:`ServeCounters` follows the engines' counter pattern (PR 1's
``EngineCounters``): a flat dataclass of cumulative counts with
``as_dict``/``snapshot``, diffable with
:func:`repro.nn.engine.counter_delta`.  It is the structured export the
operator reads — queue pressure, dispatch shapes, detector gate split,
plan-cache behaviour and backpressure activity in one snapshot.

:class:`LatencyStats` keeps a bounded window of per-request latencies and
reports the percentiles the SLO story is written in (p50/p95).
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, replace

import numpy as np

__all__ = ["ServeCounters", "LatencyStats"]


@dataclass
class ServeCounters:
    """Cumulative work counters of one :class:`~repro.serve.DCNService`."""

    requests: int = 0  # requests admitted (shed requests excluded)
    examples: int = 0  # rows admitted across those requests
    batches: int = 0  # coalesced dispatches executed
    coalesced_requests: int = 0  # requests that shared a dispatch with another
    pad_rows: int = 0  # bucket-padding rows pushed through the engine
    flagged: int = 0  # rows the detector routed to the corrector
    corrected: int = 0  # flagged rows actually corrected (not degraded)
    shed: int = 0  # requests rejected by admission control
    degraded: int = 0  # requests served detector-only under overload
    queue_depth: int = 0  # gauge: requests waiting right now
    max_queue_depth: int = 0  # high-water mark of the queue
    plan_hits: int = 0  # engine plan-LRU hits attributed to serving
    plan_misses: int = 0  # engine plan compilations attributed to serving
    seconds: float = 0.0  # wall clock inside dispatches

    def as_dict(self) -> dict[str, float]:
        return asdict(self)

    def snapshot(self) -> "ServeCounters":
        return replace(self)

    @property
    def flagged_fraction(self) -> float:
        """Fraction of served rows that activated the corrector."""
        return self.flagged / self.examples if self.examples else 0.0


class LatencyStats:
    """Bounded window of per-request latencies with percentile summaries.

    The window is a ring buffer (``maxlen`` most recent requests), so a
    long-running service reports *current* tail behaviour rather than an
    all-time average that buries regressions.
    """

    def __init__(self, maxlen: int = 65536):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._window: deque[float] = deque(maxlen=maxlen)
        self.count = 0  # lifetime recordings, window evictions included

    def record(self, seconds: float) -> None:
        self._window.append(float(seconds))
        self.count += 1

    def percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0-100) in seconds; NaN when empty."""
        if not self._window:
            return float("nan")
        return float(np.percentile(np.fromiter(self._window, dtype=np.float64), q))

    def summary(self) -> dict[str, float]:
        """Milisecond percentiles in benchcmp-gateable naming (``*_ms``)."""
        if not self._window:
            return {"count": float(self.count), "p50_ms": float("nan"),
                    "p95_ms": float("nan"), "mean_ms": float("nan")}
        window = np.fromiter(self._window, dtype=np.float64)
        return {
            "count": float(self.count),
            "p50_ms": float(np.percentile(window, 50) * 1e3),
            "p95_ms": float(np.percentile(window, 95) * 1e3),
            "mean_ms": float(window.mean() * 1e3),
        }
