"""Serving telemetry: counters, latency percentiles, sketches, streaming export.

:class:`ServeCounters` follows the engines' counter pattern (PR 1's
``EngineCounters``): a flat dataclass of cumulative counts with
``as_dict``/``snapshot``, diffable with
:func:`repro.nn.engine.counter_delta`, and — new for multi-worker serving
— mergeable across workers with :meth:`ServeCounters.merged`.

:class:`LatencyStats` keeps a bounded window of per-request latencies for
the percentiles the SLO story is written in (p50/p95), and feeds every
recording into an embedded :class:`LatencySketch` — a mergeable
log-bucketed quantile sketch (DDSketch-style, bounded relative error) so
a multi-worker front end can report fleet-wide percentiles by summing
bucket counts instead of shipping raw latency windows.

:class:`TelemetryExporter` journals periodic snapshots (counters +
latency summary + sketch state) as append-only JSONL through the
crash-safe :class:`~repro.runner.ledger.Ledger`, so a long-running
service leaves a replayable record of its tail behaviour over time;
:func:`read_telemetry` replays it.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path

import numpy as np

__all__ = [
    "ServeCounters",
    "LatencyStats",
    "LatencySketch",
    "TelemetryExporter",
    "read_telemetry",
    "rotated_segment",
]

#: Snapshot records in the telemetry journal carry this event name.
TELEMETRY_EVENT = "serve-telemetry"


@dataclass
class ServeCounters:
    """Cumulative work counters of one :class:`~repro.serve.DCNService`."""

    requests: int = 0  # requests admitted (shed requests excluded)
    examples: int = 0  # rows admitted across those requests
    batches: int = 0  # coalesced dispatches executed
    coalesced_requests: int = 0  # requests that shared a dispatch with another
    pad_rows: int = 0  # bucket-padding rows pushed through the engine
    flagged: int = 0  # rows the detector routed to the corrector
    corrected: int = 0  # flagged rows actually corrected (not degraded)
    shed: int = 0  # requests rejected by admission control
    degraded: int = 0  # requests served detector-only under overload
    slo_shed: int = 0  # sheds decided by the SLO wait estimate (not the backstop)
    slo_degraded: int = 0  # degrades decided by the SLO wait estimate
    deadline_shed: int = 0  # sheds because the request's deadline was un-meetable
    respawns: int = 0  # dead serving workers respawned by supervision
    crash_loops: int = 0  # workers abandoned after exhausting the restart budget
    queue_depth: int = 0  # gauge: requests waiting right now
    queued_rows: int = 0  # gauge: rows across those waiting requests
    max_queue_depth: int = 0  # high-water mark of the queue
    plan_hits: int = 0  # engine plan-LRU hits attributed to serving
    plan_misses: int = 0  # engine plan compilations attributed to serving
    seconds: float = 0.0  # wall clock inside dispatches

    def as_dict(self) -> dict[str, float]:
        return asdict(self)

    def snapshot(self) -> "ServeCounters":
        return replace(self)

    @property
    def flagged_fraction(self) -> float:
        """Fraction of served rows that activated the corrector."""
        return self.flagged / self.examples if self.examples else 0.0

    @classmethod
    def merged(cls, snapshots: "list[dict | ServeCounters]") -> "ServeCounters":
        """Sum counters across workers (``max_queue_depth`` takes the max).

        Accepts ``as_dict()`` payloads (what workers ship over the wire)
        or live instances; unknown keys are ignored so snapshots from a
        newer worker never crash an older front end.
        """
        known = {f.name for f in fields(cls)}
        total = cls()
        for snap in snapshots:
            data = snap.as_dict() if isinstance(snap, ServeCounters) else snap
            for key, value in data.items():
                if key not in known:
                    continue
                if key == "max_queue_depth":
                    total.max_queue_depth = max(total.max_queue_depth, int(value))
                elif key == "seconds":
                    total.seconds += float(value)
                else:
                    setattr(total, key, getattr(total, key) + int(value))
        return total


class LatencySketch:
    """Mergeable quantile sketch with bounded relative error (DDSketch-style).

    Values land in logarithmic buckets ``gamma**k`` with
    ``gamma = (1 + alpha) / (1 - alpha)``, so any reported quantile is
    within relative error ``alpha`` of the true value.  Two sketches with
    the same ``alpha`` merge by summing bucket counts — the whole point:
    a fleet of workers each ship a small dict of counts and the front end
    reports exact-rank, bounded-error fleet percentiles without ever
    seeing a raw latency.
    """

    #: Latencies below this (seconds) collapse into one underflow bucket.
    MIN_VALUE = 1e-9

    def __init__(self, alpha: float = 0.01):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, seconds: float) -> None:
        """Fold one latency in; non-finite or negative values are dropped."""
        value = float(seconds)
        if not math.isfinite(value) or value < 0.0:
            return
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value < self.MIN_VALUE:
            self._underflow += 1
        else:
            key = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[key] = self._buckets.get(key, 0) + 1

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100); NaN when empty.

        Exact in rank, within ``alpha`` relative error in value; clamped
        to the observed ``[min, max]``.
        """
        if self.count == 0:
            return float("nan")
        rank = (q / 100.0) * (self.count - 1)
        seen = self._underflow
        if rank < seen:
            return self.min
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if rank < seen:
                value = 2.0 * self._gamma**key / (self._gamma + 1.0)
                return min(max(value, self.min), self.max)
        return self.max

    def summary(self) -> dict[str, float]:
        """Millisecond percentiles in benchcmp-gateable naming (``*_ms``)."""
        if self.count == 0:
            return {"count": 0.0, "p50_ms": float("nan"), "p95_ms": float("nan"),
                    "mean_ms": float("nan")}
        return {
            "count": float(self.count),
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "mean_ms": (self.sum / self.count) * 1e3,
        }

    # -- merging / wire format -------------------------------------------------

    def state(self) -> dict:
        """JSON-able snapshot: bucket counts keyed by stringified index."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "underflow": self._underflow,
            "buckets": {str(key): count for key, count in self._buckets.items()},
        }

    def merge_state(self, state: dict) -> "LatencySketch":
        """Fold another sketch's :meth:`state` into this one (same alpha)."""
        if abs(float(state["alpha"]) - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({state['alpha']} != {self.alpha})"
            )
        count = int(state["count"])
        if count == 0:
            return self
        self.count += count
        self.sum += float(state["sum"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))
        self._underflow += int(state.get("underflow", 0))
        for key, bucket_count in state["buckets"].items():
            key = int(key)
            self._buckets[key] = self._buckets.get(key, 0) + int(bucket_count)
        return self

    def merge(self, other: "LatencySketch") -> "LatencySketch":
        return self.merge_state(other.state())

    @classmethod
    def from_state(cls, state: dict) -> "LatencySketch":
        return cls(alpha=float(state["alpha"])).merge_state(state)


class LatencyStats:
    """Bounded window of per-request latencies with percentile summaries.

    The window is a ring buffer (``maxlen`` most recent requests), so a
    long-running service reports *current* tail behaviour rather than an
    all-time average that buries regressions.  Every recording also feeds
    :attr:`sketch`, the mergeable lifetime sketch the multi-worker front
    end aggregates fleet percentiles from.
    """

    def __init__(self, maxlen: int = 65536, sketch_alpha: float = 0.01):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._window: deque[float] = deque(maxlen=maxlen)
        self.count = 0  # lifetime recordings, window evictions included
        self.sketch = LatencySketch(alpha=sketch_alpha)

    def record(self, seconds: float) -> None:
        self._window.append(float(seconds))
        self.count += 1
        self.sketch.record(seconds)

    def percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0-100) in seconds; NaN when empty."""
        if not self._window:
            return float("nan")
        return float(np.percentile(np.fromiter(self._window, dtype=np.float64), q))

    def summary(self) -> dict[str, float]:
        """Millisecond percentiles in benchcmp-gateable naming (``*_ms``)."""
        if not self._window:
            return {"count": float(self.count), "p50_ms": float("nan"),
                    "p95_ms": float("nan"), "mean_ms": float("nan")}
        window = np.fromiter(self._window, dtype=np.float64)
        return {
            "count": float(self.count),
            "p50_ms": float(np.percentile(window, 50) * 1e3),
            "p95_ms": float(np.percentile(window, 95) * 1e3),
            "mean_ms": float(window.mean() * 1e3),
        }


class TelemetryExporter:
    """Journal periodic telemetry snapshots of a service as append-only JSONL.

    ``source`` is anything with a ``telemetry_snapshot() -> dict`` method
    (:class:`~repro.serve.DCNService` and :class:`~repro.serve.ServePool`
    both qualify).  Every ``interval_s`` a snapshot is appended through
    the crash-safe :class:`~repro.runner.ledger.Ledger` — single
    ``O_APPEND`` writes, group-commit fsync — as an event record::

        {"kind": "event", "event": "serve-telemetry", "seq": n,
         "time": <unix>, "final": bool, ...snapshot...}

    so a long overload run leaves a time series of counters and tail
    percentiles that survives the process dying mid-run.  A final
    snapshot is written on :meth:`stop`.

    ``max_bytes`` bounds the live journal: once an append pushes the file
    past it, the journal **rotates** logrotate-style — ``path`` becomes
    ``path.1``, the old ``path.1`` becomes ``path.2``, and so on up to
    ``keep`` rotated segments (the oldest is dropped) — so a long-running
    server's telemetry disk footprint is bounded at roughly
    ``(keep + 1) * max_bytes``.  :func:`read_telemetry` loads across the
    rotated segments transparently, oldest records first.
    """

    def __init__(self, source, path: str | Path, interval_s: float = 1.0,
                 fsync_every: int = 16, max_bytes: int | None = None,
                 keep: int = 5):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        from ..runner.ledger import Ledger  # stdlib-only module; no cycle

        self.source = source
        self.path = Path(path)
        self.interval_s = interval_s
        self.max_bytes = max_bytes
        self.keep = keep
        self.rotations = 0
        self._fsync_every = fsync_every
        self._ledger = Ledger(self.path, fsync_every=fsync_every)
        self._seq = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def snapshot_now(self, final: bool = False) -> dict:
        """Journal one snapshot immediately; returns the record written."""
        record = {
            "event": TELEMETRY_EVENT,
            "seq": self._seq,
            "time": round(time.time(), 3),
            "final": bool(final),
            **self.source.telemetry_snapshot(),
        }
        with self._lock:
            self._seq += 1
            self._ledger.event(**record)
            self._maybe_rotate_locked()
        return record

    def _maybe_rotate_locked(self) -> None:
        if self.max_bytes is None:
            return
        try:
            size = self.path.stat().st_size
        except OSError:  # pragma: no cover - journal vanished underneath us
            return
        if size < self.max_bytes:
            return
        from ..runner.ledger import Ledger

        self._ledger.flush()
        self._ledger.close()
        oldest = rotated_segment(self.path, self.keep)
        oldest.unlink(missing_ok=True)
        for index in range(self.keep - 1, 0, -1):
            segment = rotated_segment(self.path, index)
            if segment.exists():
                os.replace(segment, rotated_segment(self.path, index + 1))
        os.replace(self.path, rotated_segment(self.path, 1))
        self._ledger = Ledger(self.path, fsync_every=self._fsync_every)
        self.rotations += 1

    def start(self) -> "TelemetryExporter":
        if self._thread is not None:
            raise RuntimeError("exporter already started")
        self._stop.clear()

        def loop():
            while not self._stop.wait(self.interval_s):
                self.snapshot_now()

        self._thread = threading.Thread(target=loop, name="serve-telemetry", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the export thread, write a final snapshot, flush to disk."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.snapshot_now(final=True)
        with self._lock:
            self._ledger.flush()
            self._ledger.close()

    def __enter__(self) -> "TelemetryExporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def rotated_segment(path: str | Path, index: int) -> Path:
    """Path of rotated segment ``index`` (1 = most recently rotated)."""
    path = Path(path)
    return path.with_name(f"{path.name}.{index}")


def read_telemetry(path: str | Path) -> list[dict]:
    """Replay a telemetry journal: the snapshot records, oldest first.

    Loads across rotated segments (``path.N`` … ``path.1``, then the live
    file) so a size-rotated journal replays as one time series.  Tolerates
    a torn trailing line (crash mid-append) exactly like the runner's
    ledger replay — everything before it is returned.
    """
    from ..runner.ledger import Ledger

    path = Path(path)
    segments: list[Path] = []
    index = 1
    while rotated_segment(path, index).exists():
        segments.append(rotated_segment(path, index))
        index += 1
    segments.reverse()  # highest index = oldest
    if path.exists():
        segments.append(path)
    records: list[dict] = []
    for segment in segments:
        state = Ledger(segment).replay()
        records.extend(
            rec for rec in state.events if rec.get("event") == TELEMETRY_EVENT
        )
    return records
