"""SLO-aware admission: shed on estimated *latency*, not on queue depth.

PR 8's admission control sheds on queue depth alone, which mistakes cheap
traffic for expensive traffic: the corrector fan-out makes a flagged row
~``m``\\ × the work of a benign row (the paper's Sec. 5 asymmetry — the
same per-input fan-out Cao & Gong's region classifier pays on *every*
input), so ten flagged-heavy queued requests represent vastly more
latency than ten benign ones at the same depth.

:class:`DispatchCostModel` learns the per-row dispatch cost online, split
by gate outcome — one EWMA for benign-gated rows, one for corrected
(flagged) rows — from every dispatch's observed wall clock, plus an EWMA
of the flagged fraction.  :class:`SloAdmission` turns the queue into
*time*::

    est_wait = rows_ahead x ((1 - p_flag) * benign_cost + p_flag * flagged_cost)

and sheds (or degrades) when the estimated wait exceeds ``slo_target_s``.
Degraded admission skips the corrector, so its wait estimate prices every
row at the benign cost — a request that cannot make the SLO with full
service may still make it detector-only.  The original ``2 x max_queue``
depth bound stays as a hard backstop, so a cold or misled cost model can
never grow the queue without bound.

Cold start admits: until the model has observed a dispatch there is no
wait estimate, and refusing traffic on no evidence would be worse than
briefly over-admitting inside the backstop.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DispatchCostModel", "SloAdmission", "AdmissionDecision"]


class DispatchCostModel:
    """Online EWMA of per-row dispatch cost, split by detector gate outcome.

    Parameters
    ----------
    alpha:
        EWMA weight of the newest observation (0 < alpha <= 1).
    flagged_multiplier:
        Prior ratio ``flagged_cost / benign_cost`` used to split a mixed
        dispatch before both costs have been observed in isolation.  The
        service passes ``1 + m`` (the corrector's vote count): a flagged
        row pays its share of the batch forward plus ``m`` corrector
        forwards.
    """

    def __init__(self, alpha: float = 0.25, flagged_multiplier: float = 50.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if flagged_multiplier < 1.0:
            raise ValueError("flagged_multiplier must be >= 1 (flagged rows cost more)")
        self.alpha = alpha
        self.flagged_multiplier = flagged_multiplier
        self.benign_cost_s: float | None = None  # EWMA seconds per benign-gated row
        self.flagged_cost_s: float | None = None  # EWMA seconds per corrected row
        self.flag_rate: float | None = None  # EWMA fraction of rows flagged
        self.observations = 0

    # -- learning --------------------------------------------------------------

    def observe(self, seconds: float, benign_rows: int, flagged_rows: int) -> None:
        """Fold one dispatch's wall clock into the per-row cost EWMAs.

        A pure dispatch (all rows one gate outcome) updates that outcome's
        cost directly.  A mixed dispatch is split proportionally to the
        current estimates (or to ``flagged_multiplier`` before any exist),
        then both EWMAs absorb the rescaled observation — so a miscalibrated
        split self-corrects as pure dispatches arrive.
        """
        rows = benign_rows + flagged_rows
        if rows <= 0 or seconds < 0:
            return
        self.flag_rate = self._ewma(self.flag_rate, flagged_rows / rows)
        if flagged_rows == 0:
            self.benign_cost_s = self._ewma(self.benign_cost_s, seconds / benign_rows)
        elif benign_rows == 0:
            self.flagged_cost_s = self._ewma(self.flagged_cost_s, seconds / flagged_rows)
        else:
            benign = self.benign_cost_s
            flagged = self.flagged_cost_s
            if benign is None and flagged is None:
                per = seconds / (benign_rows + self.flagged_multiplier * flagged_rows)
                benign, flagged = per, self.flagged_multiplier * per
            elif benign is None:
                benign = flagged / self.flagged_multiplier
            elif flagged is None:
                flagged = benign * self.flagged_multiplier
            estimated = benign_rows * benign + flagged_rows * flagged
            scale = seconds / estimated if estimated > 0 else 1.0
            self.benign_cost_s = self._ewma(self.benign_cost_s, benign * scale)
            self.flagged_cost_s = self._ewma(self.flagged_cost_s, flagged * scale)
        self.observations += 1

    def _ewma(self, current: float | None, observation: float) -> float:
        if current is None:
            return observation
        return (1.0 - self.alpha) * current + self.alpha * observation

    # -- estimation ------------------------------------------------------------

    def expected_row_cost(self, degraded: bool = False) -> float | None:
        """Expected seconds one queued row will cost to dispatch.

        ``degraded`` prices every row at the benign cost: detector-only
        service never pays the corrector fan-out.  ``None`` until the
        model has observed at least one dispatch (cold start).
        """
        benign = self.benign_cost_s
        if benign is None:
            if self.flagged_cost_s is None:
                return None
            benign = self.flagged_cost_s / self.flagged_multiplier
        if degraded:
            return benign
        flagged = self.flagged_cost_s
        if flagged is None:
            flagged = benign * self.flagged_multiplier
        rate = self.flag_rate or 0.0
        return (1.0 - rate) * benign + rate * flagged

    def estimate_wait(self, rows_ahead: int, degraded: bool = False) -> float | None:
        """Estimated queueing delay of a request behind ``rows_ahead`` rows."""
        cost = self.expected_row_cost(degraded=degraded)
        if cost is None:
            return None
        return rows_ahead * cost

    def state(self) -> dict[str, float | int | None]:
        """JSON-able snapshot for the telemetry journal."""
        return {
            "benign_cost_s": self.benign_cost_s,
            "flagged_cost_s": self.flagged_cost_s,
            "flag_rate": self.flag_rate,
            "observations": self.observations,
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``action`` is ``"admit"``, ``"degrade"`` or ``"shed"``; ``reason``
    records what decided it — ``"ok"`` (within target), ``"cold"`` (no
    cost estimate yet, admitted), ``"slo"`` (the wait estimate) or
    ``"hard-bound"`` (the ``2 x max_queue`` depth backstop).
    """

    action: str
    reason: str
    est_wait_s: float | None = None


class SloAdmission:
    """Latency-governed admission over a :class:`DispatchCostModel`.

    Parameters
    ----------
    slo_target_s:
        The latency budget: admit while the estimated queued wait stays
        within it.
    cost_model:
        The shared model the service updates after every dispatch.
    max_queue:
        Depth scale of the hard backstop: ``depth >= 2 * max_queue``
        always sheds, estimate or no estimate.
    overload:
        ``"shed"`` rejects a request that cannot make the target;
        ``"degrade"`` first re-prices it detector-only (benign row cost)
        and admits degraded if *that* makes the target.
    """

    def __init__(
        self,
        slo_target_s: float,
        cost_model: DispatchCostModel,
        max_queue: int,
        overload: str = "shed",
    ):
        if slo_target_s <= 0:
            raise ValueError("slo_target_s must be > 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.slo_target_s = slo_target_s
        self.cost_model = cost_model
        self.max_queue = max_queue
        self.overload = overload

    def decide(self, depth: int, rows_ahead: int) -> AdmissionDecision:
        """Admission decision for a request arriving behind ``depth``
        requests / ``rows_ahead`` rows."""
        if depth >= 2 * self.max_queue:
            return AdmissionDecision("shed", "hard-bound")
        wait = self.cost_model.estimate_wait(rows_ahead)
        if wait is None:
            return AdmissionDecision("admit", "cold")
        if wait <= self.slo_target_s:
            return AdmissionDecision("admit", "ok", wait)
        if self.overload == "degrade":
            degraded_wait = self.cost_model.estimate_wait(rows_ahead, degraded=True)
            if degraded_wait is not None and degraded_wait <= self.slo_target_s:
                return AdmissionDecision("degrade", "slo", degraded_wait)
        return AdmissionDecision("shed", "slo", wait)
