"""Multi-worker serving: N forked ``DCNService`` workers behind one front end.

:class:`ServePool` scales the single-process service horizontally:

Sharded front end
    ``submit()`` routes each request to a worker by a **deterministic
    shard-by-request** rule — request sequence number modulo the worker
    count, falling to the next live worker in the ring when the target is
    dead.  Every worker runs its own :class:`~repro.serve.DCNService`
    over the same (fork-inherited) DCN, so served labels stay
    bitwise-identical to offline ``DCN.classify`` no matter which worker
    a request lands on: the per-input corrector noise streams make the
    label a pure function of the row.

Lease-based liveness
    Workers reuse PR 7's lease discipline: each claims a
    ``serve-worker-<id>`` lease in a shared JSONL ledger at startup and
    heartbeats it (append-only, crash-safe
    :class:`~repro.runner.ledger.Ledger` records).  The front end's
    monitor marks a worker dead when its process exits *or* its lease
    expires (alive but wedged), and a dead worker's in-flight requests
    **resolve as shed** — callers blocked in ``ticket.wait()`` unblock
    immediately instead of hanging, and later requests route around the
    corpse.  SIGKILL is additionally caught fast through pipe EOF.

Bounded respawn supervision
    With ``max_restarts > 0`` the monitor **respawns** a dead worker: a
    fresh fork rejoins the shard ring under a new lease *generation*
    (``serve-worker-<id>.g<n>`` — the corpse's still-ticking lease can
    never shadow its replacement), and because labels are a pure function
    of the row, a respawned worker serves bitwise-identically to the one
    it replaced.  The budget is a sliding **restart window**: more than
    ``max_restarts`` respawns of one slot within ``restart_window_s``
    seconds is a crash loop — supervision gives up on the slot, journals
    a ``serve-worker-crash-loop`` event, and the ring absorbs the shard
    permanently.  ``respawns``/``crash_loops`` counters flow into the
    fleet snapshot and the telemetry journal.

Merged telemetry
    Workers ship :class:`~repro.serve.telemetry.ServeCounters` snapshots
    and mergeable :class:`~repro.serve.telemetry.LatencySketch` states on
    demand; :meth:`ServePool.fleet_snapshot` sums counters and merges
    sketches into fleet-wide p50/p95 without ever shipping raw latency
    windows.  The poll is **bounded**: a worker that dies mid-request can
    delay the snapshot by at most the stats timeout, after which the
    partial snapshot lists the non-responders in ``stale_workers``
    (their last-known counters still included).  The pool exposes
    ``telemetry_snapshot()`` so a
    :class:`~repro.serve.telemetry.TelemetryExporter` can journal the
    fleet time series exactly like a single service's.

``fork`` is the only supported start method (the DCN and its engines are
inherited, never pickled); :func:`repro.runner.pool.fork_available`
gates it.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import threading
import time
from pathlib import Path

from ..runner.ledger import Ledger, new_lease_id
from .service import DCNService, ServeResult, ServeTicket, validate_request
from .telemetry import LatencySketch, ServeCounters

__all__ = ["ServePool", "worker_lease_key"]


def worker_lease_key(worker_id: int, generation: int = 0) -> str:
    """Ledger lease key of serving worker ``worker_id``'s ``generation``.

    Generation 0 keeps the historical ``serve-worker-<id>`` format; a
    respawned worker heartbeats ``serve-worker-<id>.g<generation>`` so
    its dead predecessor's unexpired lease cannot get it declared wedged.
    """
    base = f"serve-worker-{worker_id}"
    return base if generation == 0 else f"{base}.g{generation}"


class ServePool:
    """Forked multi-worker serving front end over one DCN.

    Parameters
    ----------
    dcn:
        The defense to serve; inherited by every forked worker.
    workers:
        Worker process count (>= 1).
    ledger_path:
        Liveness ledger path (lease claims/heartbeats/releases).  Default:
        a fresh temporary file — pass a real path to post-mortem a run.
    lease_ttl:
        Seconds without a heartbeat before a worker counts as wedged and
        its in-flight requests shed.
    heartbeat_interval:
        Seconds between worker heartbeats (default ``lease_ttl / 4``).
    max_restarts:
        Respawn budget per worker slot within ``restart_window_s``.
        ``0`` (default) disables supervision: a dead worker stays dead
        and the ring absorbs its shard, exactly the PR 9 behaviour.
    restart_window_s:
        Sliding window of the restart budget; a slot needing more than
        ``max_restarts`` respawns inside it is a crash loop and is
        abandoned with a structured ledger event.
    dispatch_hook:
        Test seam: ``hook(worker_id, n_requests)`` runs in the worker
        before each dispatch — the chaos tests stall a worker with it.
    service_kwargs:
        Forwarded to each worker's :class:`DCNService` (``max_batch``,
        ``slo_target_s``, ``overload``, ...).
    """

    _STATS_TIMEOUT = 5.0

    def __init__(
        self,
        dcn,
        workers: int = 2,
        ledger_path: str | Path | None = None,
        lease_ttl: float = 5.0,
        heartbeat_interval: float | None = None,
        max_restarts: int = 0,
        restart_window_s: float = 30.0,
        dispatch_hook=None,
        **service_kwargs,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if restart_window_s <= 0:
            raise ValueError("restart_window_s must be > 0")
        from ..runner.pool import fork_available

        if not fork_available():  # pragma: no cover - non-POSIX
            raise RuntimeError("ServePool needs the fork start method")
        self.dcn = dcn
        self.workers = workers
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else lease_ttl / 4.0
        )
        self.max_restarts = max_restarts
        self.restart_window_s = restart_window_s
        self.dispatch_hook = dispatch_hook
        self.service_kwargs = dict(service_kwargs)
        self.max_batch = int(self.service_kwargs.get("max_batch", 64))
        if ledger_path is None:
            fd, tmp = tempfile.mkstemp(prefix="serve-pool-", suffix=".jsonl")
            os.close(fd)
            ledger_path = tmp
        self.ledger_path = Path(ledger_path)
        self.front_shed = 0  # sheds decided by the front end (dead workers)
        self.worker_deaths = 0
        self.respawns = 0  # workers brought back by supervision
        self.crash_loops = 0  # slots abandoned after exhausting the budget
        self._lock = threading.Lock()
        self._running = False
        self._seq = 0
        self._next_id = 0
        self._stats_seq = 0
        self._procs: list[multiprocessing.process.BaseProcess | None] = []
        self._conns: list = []
        self._send_locks: list[threading.Lock] = []
        self._generations = [0] * workers
        self._restart_times: list[list[float]] = [[] for _ in range(workers)]
        self._crash_looped: set[int] = set()
        self._dead: set[int] = set()
        self._inflight: list[dict[int, ServeTicket]] = []
        self._stats_waits: dict[int, dict] = {}
        self._last_snapshots: dict[int, dict] = {}
        self._threads: list[threading.Thread] = []
        self._monitor_stop = threading.Event()
        self._event_ledger: Ledger | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ServePool":
        with self._lock:
            if self._running:
                raise RuntimeError("pool already started")
            self._running = True
        self._event_ledger = Ledger(self.ledger_path, fsync=False)
        self._procs = [None] * self.workers
        self._conns = [None] * self.workers
        self._send_locks = [threading.Lock() for _ in range(self.workers)]
        self._inflight = [{} for _ in range(self.workers)]
        for worker_id in range(self.workers):
            self._spawn_worker(worker_id, generation=0)
        monitor = threading.Thread(
            target=self._monitor_loop, name="serve-pool-monitor", daemon=True
        )
        monitor.start()
        self._threads.append(monitor)
        return self

    def _spawn_worker(self, worker_id: int, generation: int) -> None:
        """Fork one worker (initial start and supervision respawns alike).

        Workers are forked sequentially, so a new child inherits exactly
        the parent ends currently held by the front end — it closes all
        of them (its own included) so a SIGKILLed sibling's pipe still
        reaches EOF in the parent.
        """
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        inherited = [conn for conn in self._conns if conn is not None] + [parent_conn]
        proc = ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                generation,
                child_conn,
                inherited,
                self.dcn,
                self.service_kwargs,
                str(self.ledger_path),
                self.lease_ttl,
                self.heartbeat_interval,
                self.dispatch_hook,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        with self._lock:
            self._procs[worker_id] = proc
            self._conns[worker_id] = parent_conn
            self._send_locks[worker_id] = threading.Lock()
            self._inflight[worker_id] = {}
            self._generations[worker_id] = generation
            self._dead.discard(worker_id)
        thread = threading.Thread(
            target=self._receive_loop, args=(worker_id, generation, parent_conn),
            name=f"serve-pool-recv-{worker_id}.g{generation}", daemon=True,
        )
        thread.start()
        self._threads.append(thread)

    def stop(self) -> None:
        """Final fleet snapshot, clean worker shutdown, join everything."""
        with self._lock:
            if not self._running:
                return
        # Snapshot while the workers can still answer, so post-stop
        # counters reflect the full run.
        self.fleet_snapshot()
        with self._lock:
            self._running = False
        self._monitor_stop.set()
        # Bypass _send's dead-worker check: a worker marked dead for a
        # lease lapse may still be alive and must still see the stop.
        for worker_id in range(self.workers):
            conn = self._conns[worker_id]
            if conn is None:
                continue
            try:
                with self._send_locks[worker_id]:
                    conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - wedged worker backstop
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        # Anything still unresolved (worker died with the stop in flight)
        # sheds rather than hangs.
        for worker_id in range(self.workers):
            self._mark_dead(worker_id, shutdown=True)
        if self._event_ledger is not None:
            self._event_ledger.close()
            self._event_ledger = None

    def __enter__(self) -> "ServePool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def processes(self) -> list:
        """The worker processes (the chaos tests SIGKILL these)."""
        return list(self._procs)

    def live_workers(self) -> list[int]:
        with self._lock:
            return [w for w in range(self.workers) if w not in self._dead]

    def estimated_wait_s(self, rows: int = 0) -> float | None:
        """The sharded front end keeps no cost model; admit on no evidence."""
        return None

    # -- submission ------------------------------------------------------------

    def submit(self, x) -> ServeTicket:
        """Route one request to its shard; returns immediately.

        If every worker is dead the ticket resolves as shed — the pool
        never blocks a caller on a corpse.
        """
        x = validate_request(x, self.max_batch)
        with self._lock:
            if not self._running:
                raise RuntimeError("pool is not started; use start() or a with block")
            base = self._seq
            self._seq += 1
            worker_id = None
            for offset in range(self.workers):
                candidate = (base + offset) % self.workers
                if candidate not in self._dead:
                    worker_id = candidate
                    break
            if worker_id is None:
                self.front_shed += 1
                return ServeTicket(ServeResult(status="shed", reason="unavailable"))
            request_id = self._next_id
            self._next_id += 1
            ticket = ServeTicket()
            self._inflight[worker_id][request_id] = ticket
        if not self._send(worker_id, ("req", request_id, x)):
            # Send raced the worker dying; _mark_dead resolved the ticket.
            pass
        return ticket

    def classify(self, x, timeout: float | None = 30.0) -> ServeResult:
        """Blocking convenience: ``submit`` + ``wait``."""
        return self.submit(x).wait(timeout)

    # -- telemetry -------------------------------------------------------------

    def fleet_snapshot(self, timeout: float | None = None) -> dict:
        """Merged counters + fleet-wide latency percentiles, one dict.

        Live workers are polled for fresh snapshots; dead workers
        contribute their last one (work since then died with them).  The
        poll is bounded: workers that fail to answer within ``timeout``
        (default ``_STATS_TIMEOUT``) are listed in
        ``workers.stale_workers`` and their *last-known* snapshot is
        merged instead — a worker dying mid-request can delay a snapshot,
        never hang it.  Front-end sheds — requests lost to dead workers —
        are folded into the merged ``shed`` count, and supervision's
        ``respawns``/``crash_loops`` ride the merged counters.
        """
        timeout = self._STATS_TIMEOUT if timeout is None else timeout
        stale: list[int] = []
        with self._lock:
            running = self._running
            live = [w for w in range(self.workers) if w not in self._dead]
        if running and live:
            with self._lock:
                seq = self._stats_seq
                self._stats_seq += 1
                slot = {"event": threading.Event(), "got": {}, "want": set(live)}
                self._stats_waits[seq] = slot
            for worker_id in live:
                if not self._send(worker_id, ("stats", seq)):
                    with self._lock:
                        slot["want"].discard(worker_id)
                        if slot["want"] <= set(slot["got"]):
                            slot["event"].set()
            slot["event"].wait(timeout)
            with self._lock:
                self._stats_waits.pop(seq, None)
                stale = sorted(w for w in live if w not in slot["got"])
        with self._lock:
            snapshots = dict(self._last_snapshots)
            front_shed = self.front_shed
            dead = sorted(self._dead)
            respawns = self.respawns
            crash_loops = self.crash_loops
            generations = list(self._generations)
        counters = ServeCounters.merged(
            [snap["counters"] for snap in snapshots.values()]
        )
        counters.shed += front_shed
        counters.respawns += respawns
        counters.crash_loops += crash_loops
        sketch = LatencySketch()
        for snap in snapshots.values():
            sketch.merge_state(snap["sketch"])
        return {
            "counters": counters.as_dict(),
            "latency": sketch.summary(),
            "sketch": sketch.state(),
            "workers": {
                "total": self.workers,
                "dead": dead,
                "reporting": sorted(snapshots),
                "stale_workers": stale,
                "front_shed": front_shed,
                "respawns": respawns,
                "crash_loops": crash_loops,
                "generations": generations,
            },
        }

    def telemetry_snapshot(self) -> dict:
        """Exporter hook: same shape as ``DCNService.telemetry_snapshot``."""
        return self.fleet_snapshot()

    def counters(self) -> ServeCounters:
        """Merged fleet :class:`ServeCounters` (front-end sheds included)."""
        snapshot = self.fleet_snapshot()
        merged = ServeCounters.merged([snapshot["counters"]])
        return merged

    def latency_summary(self) -> dict:
        """Fleet-wide p50/p95/mean from the merged sketches."""
        return self.fleet_snapshot()["latency"]

    # -- internals -------------------------------------------------------------

    def _send(self, worker_id: int, message) -> bool:
        with self._lock:
            if worker_id in self._dead:
                return False
            conn = self._conns[worker_id]
            send_lock = self._send_locks[worker_id]
            generation = self._generations[worker_id]
        if conn is None:
            return False
        try:
            with send_lock:
                conn.send(message)
            return True
        except (OSError, ValueError, BrokenPipeError):
            self._mark_dead(worker_id, generation=generation)
            return False

    def _mark_dead(
        self, worker_id: int, generation: int | None = None, shutdown: bool = False
    ) -> None:
        """Dead/wedged worker: shed its in-flight requests, stop routing.

        ``generation`` guards against a previous incarnation's receive
        thread (or a stale monitor pass) declaring its *replacement* dead:
        a death report for generation ``g`` is ignored once the slot has
        respawned past ``g``.
        """
        with self._lock:
            if generation is not None and generation != self._generations[worker_id]:
                return
            already = worker_id in self._dead
            if not already:
                self._dead.add(worker_id)
                if not shutdown:
                    self.worker_deaths += 1
            orphans = list(self._inflight[worker_id].values())
            self._inflight[worker_id] = {}
            self.front_shed += len(orphans)
            for slot in self._stats_waits.values():
                slot["want"].discard(worker_id)
                if slot["want"] <= set(slot["got"]):
                    slot["event"].set()
        for ticket in orphans:
            ticket._resolve(ServeResult(status="shed"))

    def _receive_loop(self, worker_id: int, generation: int, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "result":
                _, request_id, status, labels, flagged, latency_s = message
                with self._lock:
                    ticket = self._inflight[worker_id].pop(request_id, None)
                if ticket is not None:
                    ticket._resolve(
                        ServeResult(
                            status=status, labels=labels, flagged=flagged,
                            latency_s=latency_s,
                        )
                    )
            elif kind == "stats":
                _, seq, snapshot = message
                with self._lock:
                    self._last_snapshots[worker_id] = snapshot
                    slot = self._stats_waits.get(seq)
                    if slot is not None:
                        slot["got"][worker_id] = snapshot
                        if slot["want"] <= set(slot["got"]):
                            slot["event"].set()
        with self._lock:
            shutting_down = not self._running
        self._mark_dead(worker_id, generation=generation, shutdown=shutting_down)

    def _monitor_loop(self) -> None:
        """Liveness watchdog and respawn supervisor.

        Process death is caught fast by pipe EOF; this thread catches the
        uglier case — a worker that is alive but stopped heartbeating
        (stuck in a dispatch, paged out, livelocked) — via its lease
        expiring in the shared ledger, exactly as in the runner's worker
        pool.  With ``max_restarts > 0`` it is also the supervisor: each
        tick it respawns dead slots that still have restart budget.
        """
        reader = Ledger(self.ledger_path)
        interval = max(0.05, min(self.lease_ttl / 4.0, 0.5))
        while not self._monitor_stop.wait(interval):
            with self._lock:
                live = [w for w in range(self.workers) if w not in self._dead]
            if live:
                state = reader.replay()
                now = time.time()
                for worker_id in live:
                    with self._lock:
                        proc = self._procs[worker_id]
                        generation = self._generations[worker_id]
                    if proc is None or not proc.is_alive():
                        self._mark_dead(worker_id, generation=generation)
                        continue
                    lease = state.leases.get(worker_lease_key(worker_id, generation))
                    if lease is not None and now > lease["deadline"]:
                        self._mark_dead(worker_id, generation=generation)
            if self.max_restarts > 0:
                self._respawn_dead_workers()

    def _respawn_dead_workers(self) -> None:
        """One supervision pass: respawn dead slots within budget."""
        with self._lock:
            if not self._running:
                return
            candidates = sorted(self._dead - self._crash_looped)
        for worker_id in candidates:
            now = time.monotonic()
            with self._lock:
                if not self._running or worker_id not in self._dead:
                    continue
                window = [
                    t for t in self._restart_times[worker_id]
                    if now - t < self.restart_window_s
                ]
                self._restart_times[worker_id] = window
                if len(window) >= self.max_restarts:
                    # Crash loop: the slot keeps dying faster than the
                    # budget allows.  Give up with a structured record
                    # rather than fork forever.
                    self._crash_looped.add(worker_id)
                    self.crash_loops += 1
                    generation = self._generations[worker_id]
                    ledger = self._event_ledger
                    if ledger is not None:
                        ledger.event(
                            "serve-worker-crash-loop", worker=worker_id,
                            generation=generation,
                            restarts=len(window),
                            window_s=self.restart_window_s,
                        )
                    continue
                self._restart_times[worker_id].append(now)
                # Counted before the slot goes live so observers never see
                # a respawned worker with a stale counter.
                self.respawns += 1
                generation = self._generations[worker_id] + 1
                old_conn = self._conns[worker_id]
                self._conns[worker_id] = None
                ledger = self._event_ledger
            if old_conn is not None:
                try:
                    old_conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._spawn_worker(worker_id, generation=generation)
            if ledger is not None:
                ledger.event(
                    "serve-worker-respawn", worker=worker_id, generation=generation
                )


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(
    worker_id: int,
    generation: int,
    conn,
    inherited_conns,
    dcn,
    service_kwargs,
    ledger_path: str,
    lease_ttl: float,
    heartbeat_interval: float,
    dispatch_hook,
) -> None:
    """One forked serving worker: recv, coalesce, serve, reply, heartbeat."""
    for other in inherited_conns:
        other.close()
    service = DCNService(dcn, **service_kwargs)
    ledger = Ledger(ledger_path, fsync=False)
    lease_id = new_lease_id()
    key = worker_lease_key(worker_id, generation)
    now = time.time()
    ledger.lease("claim", key, lease_id, worker_id, now, now + lease_ttl)

    stop_beating = threading.Event()

    def beat():
        while not stop_beating.wait(heartbeat_interval):
            t = time.time()
            ledger.lease("heartbeat", key, lease_id, worker_id, t, t + lease_ttl)

    heartbeat = threading.Thread(target=beat, daemon=True)
    heartbeat.start()
    try:
        while True:
            try:
                messages = [conn.recv()]
            except (EOFError, OSError, KeyboardInterrupt):
                break
            try:
                while conn.poll():
                    messages.append(conn.recv())
            except (EOFError, OSError):
                pass
            stopping = False
            requests: list[tuple[int, object]] = []
            stats_seqs: list[int] = []
            for message in messages:
                kind = message[0]
                if kind == "req":
                    requests.append((message[1], message[2]))
                elif kind == "stats":
                    stats_seqs.append(message[1])
                elif kind == "stop":
                    stopping = True
            try:
                if requests:
                    if dispatch_hook is not None:
                        dispatch_hook(worker_id, len(requests))
                    try:
                        results = service.serve_batch([x for _, x in requests])
                    except Exception as exc:  # tickets must always resolve
                        ledger.event(
                            "serve-worker-error", worker=worker_id,
                            error=type(exc).__name__, message=str(exc),
                        )
                        results = [ServeResult(status="shed")] * len(requests)
                    for (request_id, _), result in zip(requests, results):
                        conn.send((
                            "result", request_id, result.status,
                            result.labels, result.flagged, result.latency_s,
                        ))
                for seq in stats_seqs:
                    conn.send(("stats", seq, service.telemetry_snapshot()))
            except (OSError, BrokenPipeError):  # front end went away
                break
            if stopping:
                break
    finally:
        stop_beating.set()
        heartbeat.join(timeout=2.0)
        t = time.time()
        ledger.lease("release", key, lease_id, worker_id, t, t)
        ledger.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
