"""The Carlini & Wagner attacks under the L2, L0 and L∞ metrics.

Faithful reimplementations of the three attacks of "Towards Evaluating the
Robustness of Neural Networks" (S&P 2017), which the paper uses for its
entire evaluation (Sec. 5.1):

* **L2** — change of variable ``x' = tanh(w)/2`` (box-safe for the paper's
  ``[-0.5, 0.5]`` data), objective ``‖x'-x‖² + c·f(x')`` with
  ``f(x') = max(max_{i≠t} Z(x')_i − Z(x')_t, −κ)``, Adam optimisation and
  binary search over ``c``.
* **L0** — iterative: run the L2 attack restricted to an allowed pixel set,
  then use ``∇f`` to freeze the least important pixels until the L2 attack
  can no longer succeed.
* **L∞** — penalty formulation ``c·f(x+δ) + Σᵢ max(|δᵢ|−τ, 0)`` with τ
  shrinking geometrically while the attack keeps succeeding.

All three are batched: one forward/backward pass drives every example (and
every target) simultaneously, which is what makes the paper's 100-seed ×
9-target evaluation feasible on this NumPy substrate.

The inner loops run on the network's :class:`~repro.nn.grad_engine.GradientEngine`
(float32 fused kernels by default): the engine supplies ``∂f/∂x'``, the
logits and the raw margin in one pass, while the change-of-variable algebra
(tanh transform, distance terms, Adam state) stays in float64 NumPy here so
box arithmetic — e.g. frozen L0 pixels — remains exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import ops
from ..nn.grad_engine import margin_seed
from ..nn.network import Network
from ..nn.tensor import Tensor
from .base import AttackResult

__all__ = ["CarliniWagnerL2", "CarliniWagnerL0", "CarliniWagnerLinf", "AdamState"]

# Offset used to exclude the target class when computing max_{i != t} Z_i.
_EXCLUDE = 1e6
# Keep arctanh finite at the box boundary.
_ATANH_SCALE = 1.0 - 1e-6


class AdamState:
    """Standalone Adam optimiser over a raw array (the attack variable)."""

    def __init__(self, shape: tuple[int, ...], lr: float, beta1: float = 0.9, beta2: float = 0.999):
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.shape = tuple(shape)
        # m/v are allocated lazily in the dtype of the first gradient so a
        # float32 attack keeps float32 optimiser state end-to-end.
        self.m: np.ndarray | None = None
        self.v: np.ndarray | None = None
        self.t = 0

    def update(self, values: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return ``values`` after one Adam step against ``grad``."""
        grad = np.asarray(grad)
        if self.m is None:
            self.m = np.zeros(self.shape, dtype=grad.dtype)
            self.v = np.zeros(self.shape, dtype=grad.dtype)
        self.t += 1
        self.m = self.beta1 * self.m + (1 - self.beta1) * grad
        self.v = self.beta2 * self.v + (1 - self.beta2) * grad**2
        m_hat = self.m / (1 - self.beta1**self.t)
        v_hat = self.v / (1 - self.beta2**self.t)
        return values - self.lr * m_hat / (np.sqrt(v_hat) + 1e-8)


def _feature_axes(x: np.ndarray) -> tuple[int, ...]:
    return tuple(range(1, x.ndim))


def _margin_loss(logits: Tensor, target_onehot: np.ndarray, confidence: float) -> Tensor:
    """Per-example ``f(x') = max(max_{i≠t} Z_i − Z_t + κ, 0)``."""
    z_target = ops.sum_(ops.mul(logits, target_onehot), axis=-1)
    z_other = ops.max_(logits - Tensor(target_onehot * _EXCLUDE), axis=-1)
    return ops.maximum(z_other - z_target + confidence, Tensor(np.zeros(len(target_onehot))))


def _to_w(x: np.ndarray) -> np.ndarray:
    """Inverse of the tanh box transform: ``w = arctanh(2x)``."""
    return np.arctanh(np.clip(2.0 * x, -_ATANH_SCALE, _ATANH_SCALE))


@dataclass
class _L2State:
    """Best-so-far tracker for the L2 inner loop."""

    best_adv: np.ndarray
    best_l2: np.ndarray
    found: np.ndarray


class CarliniWagnerL2:
    """CW attack under the L2 metric (targeted).

    Parameters
    ----------
    confidence:
        κ — required margin of the target logit over the runner-up.
    binary_search_steps / initial_c:
        Search schedule for the fidelity/attack trade-off constant ``c``.
    max_iterations / learning_rate:
        Adam schedule of the inner optimisation.
    abort_early:
        Stop an inner loop that has plateaued (Carlini's 0.9999 rule).
    """

    norm = "l2"

    def __init__(
        self,
        confidence: float = 0.0,
        binary_search_steps: int = 5,
        max_iterations: int = 200,
        learning_rate: float = 0.1,
        initial_c: float = 0.1,
        abort_early: bool = True,
    ):
        self.confidence = confidence
        self.binary_search_steps = binary_search_steps
        self.max_iterations = max_iterations
        self.learning_rate = learning_rate
        self.initial_c = initial_c
        self.abort_early = abort_early

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray,
        mask: np.ndarray | None = None,
        initial_guess: np.ndarray | None = None,
    ) -> AttackResult:
        """Craft targeted L2 adversarial examples.

        Parameters
        ----------
        mask:
            Optional per-example 0/1 array; zero entries are frozen at their
            original values (used by the L0 attack).
        initial_guess:
            Optional warm-start images (used by the L0 attack's rounds).
        """
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        target_labels = np.asarray(target_labels)
        n = len(x)

        c = np.full(n, self.initial_c)
        c_low = np.zeros(n)
        c_high = np.full(n, 1e10)
        state = _L2State(best_adv=x.copy(), best_l2=np.full(n, np.inf), found=np.zeros(n, dtype=bool))
        w_start = _to_w(x if initial_guess is None else np.asarray(initial_guess))

        for _ in range(self.binary_search_steps):
            w = w_start.copy()
            adam = AdamState(w.shape, self.learning_rate)
            previous_loss = np.inf
            check_every = max(1, self.max_iterations // 10)
            for iteration in range(self.max_iterations):
                loss_total, adv, l2, margin, grad = self._objective(network, w, x, target_labels, c, mask)
                self._record_best(state, adv, l2, margin, target_labels)
                w = adam.update(w, grad)
                if self.abort_early and (iteration + 1) % check_every == 0:
                    if loss_total > previous_loss * 0.9999:
                        break
                    previous_loss = loss_total
            # Evaluate the final iterate too.
            _, adv, l2, margin, _ = self._objective(
                network, w, x, target_labels, c, mask, compute_grad=False
            )
            self._record_best(state, adv, l2, margin, target_labels)
            succeeded_now = margin <= 0.0
            c_high = np.where(succeeded_now, np.minimum(c_high, c), c_high)
            c_low = np.where(succeeded_now, c_low, np.maximum(c_low, c))
            unbounded = c_high >= 1e9
            c = np.where(unbounded, c * 10.0, (c_low + c_high) / 2.0)

        return AttackResult(x, state.best_adv, state.found.copy(), source_labels, target_labels)

    def _objective(
        self,
        network: Network,
        w: np.ndarray,
        x: np.ndarray,
        target_labels: np.ndarray,
        c: np.ndarray,
        mask: np.ndarray | None,
        compute_grad: bool = True,
    ) -> tuple[float, np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """One forward (and optionally backward) pass of the CW-L2 objective.

        The network pass runs on the gradient engine (float32 kernels by
        default); the tanh transform, distance terms and chain rule back to
        ``w`` stay in float64 here.  Returns ``(total_loss, adversarial,
        l2_sq, margin, grad_w)``.
        """
        tanh_w = np.tanh(w)
        candidate = tanh_w * 0.5
        if mask is not None:
            candidate = x * (1.0 - mask) + candidate * mask
        delta = candidate - x
        axes = _feature_axes(x)
        c_cols = c.reshape((-1,) + (1,) * len(axes))
        l2_sq = (delta * delta).sum(axis=axes)
        grad = None
        if compute_grad:
            grad_f, _, margin = network.grad_engine.margin_input_grad(
                candidate, target_labels, self.confidence
            )
            grad_candidate = 2.0 * delta + c_cols * grad_f
            if mask is not None:
                grad_candidate = grad_candidate * mask
            grad = grad_candidate * (0.5 * (1.0 - tanh_w * tanh_w))
        else:
            logits = network.engine.logits(candidate, memo=False)
            _, margin = margin_seed(logits, target_labels, self.confidence)
        # Raw margin (without the hinge) tells us about actual success.
        loss_total = float((l2_sq + c * np.maximum(margin, 0.0)).sum())
        return loss_total, candidate, l2_sq, margin, grad

    @staticmethod
    def _record_best(
        state: _L2State, adv: np.ndarray, l2_sq: np.ndarray, margin: np.ndarray, targets: np.ndarray
    ) -> None:
        success = margin <= 0.0
        better = success & (l2_sq < state.best_l2)
        if better.any():
            state.best_adv[better] = adv[better]
            state.best_l2[better] = l2_sq[better]
            state.found[better] = True


class CarliniWagnerL0:
    """CW attack under the L0 metric (targeted).

    Repeatedly runs the (masked) L2 attack and freezes the pixels whose
    product of ``∇f`` and achieved change is smallest — those contribute the
    least to reaching the target class — until the L2 attack fails.  The
    last successful iterate gives the minimal pixel set.

    Parameters
    ----------
    freeze_fraction:
        Fraction of the still-free pixels frozen after each successful
        round (at least one pixel is always frozen).
    max_rounds:
        Upper bound on shrink rounds.
    """

    norm = "l0"

    def __init__(
        self,
        confidence: float = 0.0,
        max_rounds: int = 12,
        freeze_fraction: float = 0.3,
        inner: CarliniWagnerL2 | None = None,
    ):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if not 0.0 < freeze_fraction < 1.0:
            raise ValueError("freeze_fraction must be in (0, 1)")
        self.confidence = confidence
        self.max_rounds = max_rounds
        self.freeze_fraction = freeze_fraction
        self.inner = inner or CarliniWagnerL2(
            confidence=confidence, binary_search_steps=3, max_iterations=120, initial_c=1.0
        )

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        target_labels = np.asarray(target_labels)
        n = len(x)

        mask = np.ones_like(x)
        best_adv = x.copy()
        found = np.zeros(n, dtype=bool)
        active = np.ones(n, dtype=bool)
        guess: np.ndarray | None = None

        for _ in range(self.max_rounds):
            if not active.any():
                break
            idx = np.flatnonzero(active)
            result = self.inner.perturb(
                network,
                x[idx],
                source_labels[idx],
                target_labels[idx],
                mask=mask[idx],
                initial_guess=None if guess is None else guess[idx],
            )
            succeeded = result.success
            # Examples whose restricted attack failed are finished.
            active[idx[~succeeded]] = False
            if not succeeded.any():
                break
            ok = idx[succeeded]
            best_adv[ok] = result.adversarial[succeeded]
            found[ok] = True
            if guess is None:
                guess = x.copy()
            guess[ok] = result.adversarial[succeeded]
            self._shrink_masks(network, x, best_adv, mask, target_labels, ok, active)

        return AttackResult(x, best_adv, found, source_labels, target_labels)

    def _shrink_masks(
        self,
        network: Network,
        x: np.ndarray,
        adv: np.ndarray,
        mask: np.ndarray,
        target_labels: np.ndarray,
        indices: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Freeze the least-important free pixels of each example in ``indices``."""
        # ∇f = ∇(Z_other − Z_target); the dominant term near success is the
        # target-logit gradient, which Carlini's code also uses.
        grad_target = network.grad_engine.logit_input_grad(adv[indices], target_labels[indices])
        importance = np.abs(grad_target) * np.abs(adv[indices] - x[indices])
        for row, example in enumerate(indices):
            free = mask[example] > 0.5
            free_count = int(free.sum())
            if free_count <= 1:
                active[example] = False
                continue
            scores = np.where(free, importance[row], np.inf)
            freeze_count = max(1, int(free_count * self.freeze_fraction))
            freeze_count = min(freeze_count, free_count - 1)
            flat = scores.reshape(-1)
            to_freeze = np.argpartition(flat, freeze_count - 1)[:freeze_count]
            mask[example].reshape(-1)[to_freeze] = 0.0


class CarliniWagnerLinf:
    """CW attack under the L∞ metric (targeted).

    Minimises ``c·f(x') + Σᵢ max(|x'_i − x_i| − τ, 0)`` with the tanh box
    transform; whenever the attack succeeds with ``max|δ| < τ`` the
    threshold shrinks (τ ← 0.9·max|δ|), and when it fails ``c`` doubles.
    """

    norm = "linf"

    def __init__(
        self,
        confidence: float = 0.0,
        max_rounds: int = 10,
        max_iterations: int = 150,
        learning_rate: float = 0.01,
        initial_c: float = 1.0,
        max_c: float = 200.0,
        tau_decay: float = 0.9,
    ):
        if max_rounds < 1 or max_iterations < 1:
            raise ValueError("max_rounds and max_iterations must be >= 1")
        if not 0.0 < tau_decay < 1.0:
            raise ValueError("tau_decay must be in (0, 1)")
        self.confidence = confidence
        self.max_rounds = max_rounds
        self.max_iterations = max_iterations
        self.learning_rate = learning_rate
        self.initial_c = initial_c
        self.max_c = max_c
        self.tau_decay = tau_decay

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        target_labels = np.asarray(target_labels)
        n = len(x)
        axes = _feature_axes(x)

        tau = np.full(n, 1.0)
        c = np.full(n, self.initial_c)
        best_adv = x.copy()
        best_linf = np.full(n, np.inf)
        found = np.zeros(n, dtype=bool)
        active = np.ones(n, dtype=bool)
        w = _to_w(x)

        for _ in range(self.max_rounds):
            if not active.any():
                break
            adam = AdamState(w.shape, self.learning_rate)
            tau_cols = tau.reshape((-1,) + (1,) * len(axes))
            c_cols = c.reshape((-1,) + (1,) * len(axes))
            for _ in range(self.max_iterations):
                tanh_w = np.tanh(w)
                candidate = tanh_w * 0.5
                delta = candidate - x
                grad_f, _, _ = network.grad_engine.margin_input_grad(
                    candidate, target_labels, self.confidence
                )
                # ∂ Σ max(|δ|−τ, 0) / ∂ candidate: sign(δ) where the excess
                # hinge is active (boundary follows the autograd convention).
                penalty_grad = np.sign(delta) * (np.abs(delta) - tau_cols >= 0.0)
                grad_candidate = c_cols * grad_f + penalty_grad
                w = adam.update(w, grad_candidate * (0.5 * (1.0 - tanh_w * tanh_w)))

            candidate = np.tanh(w) * 0.5
            logits = network.engine.logits(candidate, memo=False)
            _, margin = margin_seed(logits, target_labels, self.confidence)
            linf = np.abs(candidate - x).reshape(n, -1).max(axis=1)
            succeeded = (margin <= 0.0) & active
            improved = succeeded & (linf < best_linf)
            best_adv[improved] = candidate[improved]
            best_linf[improved] = linf[improved]
            found |= succeeded
            # Success: tighten tau below what was achieved.  Failure: raise c.
            tau = np.where(succeeded, np.minimum(tau, linf) * self.tau_decay, tau)
            c = np.where(succeeded, c, c * 2.0)
            active &= (c <= self.max_c) & (tau > 1.0 / 256.0)

        return AttackResult(x, best_adv, found, source_labels, target_labels)
