"""DeepFool (Moosavi-Dezfooli et al., CVPR 2016).

Untargeted L2 attack that repeatedly linearises the classifier around the
current iterate and takes the minimal step crossing the nearest linearised
decision boundary.
"""

from __future__ import annotations

import numpy as np

from ..nn.network import Network
from .base import AttackResult, clip_to_box

__all__ = ["DeepFool"]


class DeepFool:
    """Untargeted minimal-L2 attack by iterative linearisation.

    Parameters
    ----------
    max_steps:
        Iteration budget per example.
    overshoot:
        Multiplicative overshoot pushing the iterate just past the boundary.
    """

    norm = "l2"

    def __init__(self, max_steps: int = 30, overshoot: float = 0.02):
        self.max_steps = max_steps
        self.overshoot = overshoot

    def perturb(self, network: Network, x: np.ndarray, source_labels: np.ndarray) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        n = len(x)
        current = x.copy()
        engine = network.engine
        active = engine.predict(current, memo=False) == source_labels

        for _ in range(self.max_steps):
            if not active.any():
                break
            idx = np.flatnonzero(active)
            batch = current[idx]
            # One engine pass gives the Jacobian and the logits it was
            # linearised around (shared stashed activations).
            grads, logits = network.grad_engine.jacobian(batch, with_logits=True)
            b = len(idx)
            flat_grads = grads.reshape(b, grads.shape[1], -1)
            origin = source_labels[idx]

            step = np.zeros_like(batch).reshape(b, -1)
            for row in range(b):
                o = origin[row]
                w = flat_grads[row] - flat_grads[row, o]
                f = logits[row] - logits[row, o]
                norms = np.linalg.norm(w, axis=1)
                ratios = np.abs(f) / (norms + 1e-12)
                ratios[o] = np.inf
                best = int(np.argmin(ratios))
                step[row] = (np.abs(f[best]) + 1e-6) / (norms[best] ** 2 + 1e-12) * w[best]

            current[idx] = clip_to_box(batch + (1.0 + self.overshoot) * step.reshape(batch.shape))
            active[idx] = engine.predict(current[idx], memo=False) == origin

        predictions = engine.predict(current, memo=False)
        success = predictions != source_labels
        return AttackResult(x, current, success, source_labels, None)
