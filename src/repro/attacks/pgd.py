"""Projected Gradient Descent (Madry et al., 2018).

The successor of IGSM that became the standard first-order attack after
the paper was published: IGSM plus a random start inside the epsilon ball
and optional restarts.  Included as an extension so DCN can be evaluated
against the attack that superseded the paper's Table 1.
"""

from __future__ import annotations

import numpy as np

from ..nn.network import Network
from .base import AttackResult, clip_to_box

__all__ = ["PGD"]


class PGD:
    """Randomised iterative sign-gradient attack under the L∞ metric.

    Parameters
    ----------
    epsilon / alpha / steps:
        Ball radius, step size and iteration count (as IGSM).
    restarts:
        Number of random starts; the best (first successful) result per
        example is kept.
    """

    norm = "linf"

    def __init__(
        self,
        epsilon: float = 0.15,
        alpha: float = 0.02,
        steps: int = 20,
        restarts: int = 2,
        seed: int = 0,
    ):
        if min(epsilon, alpha) <= 0 or steps < 1 or restarts < 1:
            raise ValueError("epsilon/alpha must be positive; steps/restarts >= 1")
        self.epsilon = epsilon
        self.alpha = alpha
        self.steps = steps
        self.restarts = restarts
        self._rng = np.random.default_rng(seed)

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray | None = None,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        targeted = target_labels is not None
        if targeted:
            target_labels = np.asarray(target_labels)

        best = x.copy()
        solved = np.zeros(len(x), dtype=bool)
        for _ in range(self.restarts):
            remaining = ~solved
            if not remaining.any():
                break
            candidate = self._single_run(
                network, x[remaining], source_labels[remaining],
                None if target_labels is None else target_labels[remaining],
            )
            predictions = network.engine.predict(candidate, memo=False)
            if targeted:
                ok = predictions == target_labels[remaining]
            else:
                ok = predictions != source_labels[remaining]
            indices = np.flatnonzero(remaining)
            best[indices[ok]] = candidate[ok]
            solved[indices[ok]] = True

        predictions = network.engine.predict(best, memo=False)
        success = predictions == target_labels if targeted else predictions != source_labels
        return AttackResult(x, best, success, source_labels, target_labels if targeted else None)

    def _single_run(
        self, network: Network, x: np.ndarray, sources: np.ndarray, targets: np.ndarray | None
    ) -> np.ndarray:
        start_noise = self._rng.uniform(-self.epsilon, self.epsilon, size=x.shape)
        current = clip_to_box(x + start_noise)
        for _ in range(self.steps):
            if targets is not None:
                gradient = network.grad_engine.cross_entropy_input_grad(current, targets)
                current = current - self.alpha * np.sign(gradient, dtype=np.float64)
            else:
                gradient = network.grad_engine.cross_entropy_input_grad(current, sources)
                current = current + self.alpha * np.sign(gradient, dtype=np.float64)
            current = clip_to_box(np.clip(current, x - self.epsilon, x + self.epsilon))
        return current
