"""Practical black-box attack via substitute models (Papernot et al., 2017).

Extension beyond the paper's white-box threat model: the attacker only
queries the victim for labels, trains a local *substitute* network on the
query results (augmenting the seed set with Jacobian-based perturbations),
crafts white-box adversarial examples against the substitute, and relies
on transferability to fool the victim.
"""

from __future__ import annotations

import numpy as np

from ..nn import Adam, Dense, Flatten, Network, ReLU, TrainConfig, fit
from ..nn.network import Network as _Net
from .base import AttackResult, clip_to_box
from .fgsm import FGSM
from .gradients import logit_gradient

__all__ = ["SubstituteBlackBox"]


def _default_substitute(input_shape: tuple[int, int, int], num_classes: int, seed: int) -> Network:
    rng = np.random.default_rng(seed)
    features = int(np.prod(input_shape))
    layers = [Flatten(), Dense(features, 128, rng), ReLU(), Dense(128, 64, rng), ReLU(), Dense(64, num_classes, rng)]
    return Network(layers, input_shape)


class SubstituteBlackBox:
    """Label-only black-box attack through a locally trained substitute.

    Parameters
    ----------
    seed_inputs:
        Initial query set (unlabeled images the attacker owns).
    augmentation_rounds / lambda_step:
        Jacobian-based dataset augmentation: each round adds, per known
        point, a new point stepped by ``lambda_step`` along the sign of
        the substitute's gradient for the victim's label.
    inner_attack:
        White-box attack run against the substitute (FGSM by default, as
        in the original).
    """

    norm = "linf"

    def __init__(
        self,
        seed_inputs: np.ndarray,
        augmentation_rounds: int = 2,
        lambda_step: float = 0.1,
        epochs: int = 25,
        inner_attack=None,
        seed: int = 0,
        train_dtype: str = "float32",
    ):
        if augmentation_rounds < 0:
            raise ValueError("augmentation_rounds must be >= 0")
        self.seed_inputs = np.asarray(seed_inputs, dtype=np.float64)
        self.augmentation_rounds = augmentation_rounds
        self.lambda_step = lambda_step
        self.epochs = epochs
        self.train_dtype = train_dtype
        self.inner_attack = inner_attack or FGSM(epsilon=0.25)
        self.seed = seed
        self.queries_used = 0
        self.substitute: Network | None = None

    # -- substitute training -------------------------------------------------

    def fit_substitute(self, victim: _Net) -> Network:
        """Train the substitute with Jacobian-based data augmentation.

        Only ``victim.predict`` (label queries) is used — never its
        gradients or logits.
        """
        data = self.seed_inputs.copy()
        labels = self._query(victim, data)
        substitute = _default_substitute(victim.input_shape, victim.num_classes, self.seed + 13)
        for round_index in range(self.augmentation_rounds + 1):
            rng = np.random.default_rng(self.seed + round_index)
            optimizer = Adam(substitute.parameters(), lr=2e-3)
            fit(
                substitute, optimizer, data, labels,
                TrainConfig(epochs=self.epochs, batch_size=64, dtype=self.train_dtype), rng,
            )
            if round_index == self.augmentation_rounds:
                break
            # Jacobian augmentation: step along the substitute's gradient of
            # the victim-assigned class, then query the victim for labels.
            gradient = logit_gradient(substitute, data, labels)
            new_points = clip_to_box(data + self.lambda_step * np.sign(gradient))
            new_labels = self._query(victim, new_points)
            data = np.concatenate([data, new_points])
            labels = np.concatenate([labels, new_labels])
        self.substitute = substitute
        return substitute

    def _query(self, victim: _Net, x: np.ndarray) -> np.ndarray:
        # Label-only oracle access; memo bypassed so ``queries_used``
        # reflects what the victim would actually have served.
        self.queries_used += len(x)
        return victim.engine.predict(x, memo=False)

    def agreement(self, victim: _Net, x: np.ndarray) -> float:
        """Label agreement between substitute and victim on ``x``."""
        if self.substitute is None:
            raise RuntimeError("call fit_substitute first")
        return float((self.substitute.engine.predict(x) == victim.engine.predict(x)).mean())

    # -- the attack itself ---------------------------------------------------

    def perturb(self, victim: _Net, x: np.ndarray, source_labels: np.ndarray) -> AttackResult:
        """Craft on the substitute, evaluate transfer against the victim."""
        if self.substitute is None:
            self.fit_substitute(victim)
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        local = self.inner_attack.perturb(self.substitute, x, source_labels)
        predictions = victim.engine.predict(local.adversarial, memo=False)
        success = predictions != source_labels
        return AttackResult(x, local.adversarial, success, source_labels, None)
