"""Shared attack interfaces and result containers.

Every attack takes a trained :class:`~repro.nn.network.Network`, a batch of
benign inputs in the paper's ``[-0.5, 0.5]`` box, and produces an
:class:`AttackResult` recording the crafted inputs, per-example success, and
distortions under the three distance metrics the paper uses (Sec. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..datasets.dataset import PIXEL_MAX, PIXEL_MIN
from ..nn.network import Network

__all__ = ["AttackResult", "TargetedAttack", "UntargetedAttack", "distortion", "clip_to_box"]


def clip_to_box(x: np.ndarray) -> np.ndarray:
    """Clip images into the valid pixel box ``[-0.5, 0.5]``."""
    return np.clip(x, PIXEL_MIN, PIXEL_MAX)


def distortion(original: np.ndarray, adversarial: np.ndarray, metric: str) -> np.ndarray:
    """Per-example distance between image batches under ``metric``.

    Metrics follow the paper's Sec. 2.2:

    * ``"l0"`` — number of changed pixels (a pixel is a spatial location;
      for colour images a location counts once even if all channels change),
    * ``"l2"`` — Euclidean distance,
    * ``"linf"`` — maximum absolute change.
    """
    if len(original) == 0:
        return np.zeros(0)
    delta = (adversarial - original).reshape(len(original), *original.shape[1:])
    if metric == "l0":
        changed = np.abs(delta) > 1e-7
        # Collapse channels: CW's L0 counts pixel positions.
        per_position = changed.any(axis=1) if delta.ndim == 4 else changed
        return per_position.reshape(len(delta), -1).sum(axis=1).astype(float)
    flat = delta.reshape(len(delta), -1)
    if metric == "l2":
        return np.sqrt((flat**2).sum(axis=1))
    if metric == "linf":
        return np.abs(flat).max(axis=1)
    raise ValueError(f"unknown metric {metric!r}; expected l0, l2 or linf")


@dataclass
class AttackResult:
    """Outcome of running an attack on a batch.

    Attributes
    ----------
    original:
        The benign inputs the attack started from.
    adversarial:
        Crafted inputs.  Where the attack failed, this holds the attack's
        best (unsuccessful) attempt; use :attr:`success` to filter.
    success:
        Boolean mask — True where the crafted input satisfies the attack
        goal (predicted == target for targeted, != source for untargeted).
    source_labels:
        True labels of the originals.
    target_labels:
        Requested labels for targeted attacks; ``None`` for untargeted.
    """

    original: np.ndarray
    adversarial: np.ndarray
    success: np.ndarray
    source_labels: np.ndarray
    target_labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.original)
        if not (len(self.adversarial) == len(self.success) == len(self.source_labels) == n):
            raise ValueError("AttackResult fields have inconsistent lengths")

    @property
    def success_rate(self) -> float:
        return float(np.mean(self.success)) if len(self.success) else 0.0

    def distortions(self, metric: str) -> np.ndarray:
        """Distortion of the *successful* examples under ``metric``."""
        return distortion(self.original[self.success], self.adversarial[self.success], metric)

    def mean_distortion(self, metric: str) -> float:
        values = self.distortions(metric)
        return float(values.mean()) if len(values) else float("nan")


class TargetedAttack(Protocol):
    """Protocol for targeted attacks (Eq. 1 of the paper)."""

    def perturb(
        self, network: Network, x: np.ndarray, source_labels: np.ndarray, target_labels: np.ndarray
    ) -> AttackResult: ...


class UntargetedAttack(Protocol):
    """Protocol for untargeted attacks."""

    def perturb(self, network: Network, x: np.ndarray, source_labels: np.ndarray) -> AttackResult: ...
