"""Box-constrained L-BFGS attack (Szegedy et al., 2014).

The original formulation of Eq. 1: minimise
``c · CE(H(x'), t) + ‖x' − x‖²`` subject to the pixel box, solved with
scipy's L-BFGS-B, with a doubling line search over ``c`` until the first
adversarial solution appears.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..datasets.dataset import PIXEL_MAX, PIXEL_MIN
from ..nn.network import Network
from .base import AttackResult

__all__ = ["LBFGSAttack"]


class LBFGSAttack:
    """Targeted L2 attack using box-constrained L-BFGS.

    Parameters
    ----------
    initial_c / c_search_steps:
        Doubling schedule for the loss constant.
    max_iterations:
        L-BFGS-B iteration cap per solve.
    """

    norm = "l2"

    def __init__(self, initial_c: float = 0.1, c_search_steps: int = 6, max_iterations: int = 60):
        self.initial_c = initial_c
        self.c_search_steps = c_search_steps
        self.max_iterations = max_iterations

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        target_labels = np.asarray(target_labels)
        adversarial = np.stack(
            [self._attack_one(network, x[i], int(target_labels[i])) for i in range(len(x))]
        )
        success = network.engine.predict(adversarial, memo=False) == target_labels
        return AttackResult(x, adversarial, success, source_labels, target_labels)

    def _attack_one(self, network: Network, image: np.ndarray, target: int) -> np.ndarray:
        shape = image.shape
        bounds = [(PIXEL_MIN, PIXEL_MAX)] * image.size
        c = self.initial_c
        best = image

        engine = network.grad_engine

        for _ in range(self.c_search_steps):
            def objective(flat: np.ndarray, c=c) -> tuple[float, np.ndarray]:
                candidate = flat.reshape(shape)
                logits, ctx = engine.forward(candidate[None])
                # CE and its softmax seed in float64 (scipy wants float64
                # gradients anyway); the network pass ran in engine dtype.
                z = logits[0].astype(np.float64)
                shifted = z - z.max()
                log_norm = np.log(np.exp(shifted).sum())
                ce = log_norm - shifted[target]
                seed = np.exp(shifted - log_norm)[None, :]
                seed[0, target] -= 1.0
                grad_ce = engine.backward(ctx, c * seed)[0].astype(np.float64)
                diff = candidate - image
                loss = c * ce + (diff * diff).sum()
                return float(loss), (grad_ce + 2.0 * diff).reshape(-1)

            result = optimize.minimize(
                objective,
                image.reshape(-1),
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": self.max_iterations},
            )
            candidate = result.x.reshape(shape)
            if network.engine.predict(candidate[None], memo=False)[0] == target:
                return candidate
            c *= 2.0
        return best
