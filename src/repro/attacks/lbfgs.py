"""Box-constrained L-BFGS attack (Szegedy et al., 2014).

The original formulation of Eq. 1: minimise
``c · CE(H(x'), t) + ‖x' − x‖²`` subject to the pixel box, solved with
scipy's L-BFGS-B, with a doubling line search over ``c`` until the first
adversarial solution appears.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..datasets.dataset import PIXEL_MAX, PIXEL_MIN
from ..nn import losses, ops
from ..nn.network import Network
from ..nn.tensor import Tensor
from .base import AttackResult

__all__ = ["LBFGSAttack"]


class LBFGSAttack:
    """Targeted L2 attack using box-constrained L-BFGS.

    Parameters
    ----------
    initial_c / c_search_steps:
        Doubling schedule for the loss constant.
    max_iterations:
        L-BFGS-B iteration cap per solve.
    """

    norm = "l2"

    def __init__(self, initial_c: float = 0.1, c_search_steps: int = 6, max_iterations: int = 60):
        self.initial_c = initial_c
        self.c_search_steps = c_search_steps
        self.max_iterations = max_iterations

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        target_labels = np.asarray(target_labels)
        adversarial = np.stack(
            [self._attack_one(network, x[i], int(target_labels[i])) for i in range(len(x))]
        )
        success = network.engine.predict(adversarial, memo=False) == target_labels
        return AttackResult(x, adversarial, success, source_labels, target_labels)

    def _attack_one(self, network: Network, image: np.ndarray, target: int) -> np.ndarray:
        shape = image.shape
        bounds = [(PIXEL_MIN, PIXEL_MAX)] * image.size
        c = self.initial_c
        best = image

        for _ in range(self.c_search_steps):
            def objective(flat: np.ndarray, c=c) -> tuple[float, np.ndarray]:
                candidate = flat.reshape(shape)
                inp = Tensor(candidate[None], requires_grad=True)
                logits = network.forward(inp)
                ce = losses.cross_entropy(logits, np.array([target]))
                diff = inp - Tensor(image[None])
                dist = ops.sum_(ops.mul(diff, diff))
                loss = ops.mul(ce, c) + dist
                loss.backward()
                return float(loss.data), inp.grad.reshape(-1)

            result = optimize.minimize(
                objective,
                image.reshape(-1),
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": self.max_iterations},
            )
            candidate = result.x.reshape(shape)
            if network.engine.predict(candidate[None], memo=False)[0] == target:
                return candidate
            c *= 2.0
        return best
