"""Iterative Gradient Sign Method / Basic Iterative Method (Kurakin et al.).

FGSM applied in small steps with per-step clipping to both the epsilon ball
around the original image and the valid pixel box.  Examples that already
satisfy the attack goal are frozen, so the attack returns the first
adversarial point found along each trajectory.
"""

from __future__ import annotations

import numpy as np

from ..nn.network import Network
from .base import AttackResult, clip_to_box

__all__ = ["IGSM"]


class IGSM:
    """Iterative FGSM under the L∞ metric.

    Parameters
    ----------
    epsilon:
        Radius of the L∞ ball the iterates stay inside.
    alpha:
        Per-iteration step size.
    steps:
        Maximum number of iterations.
    """

    norm = "linf"

    def __init__(self, epsilon: float = 0.15, alpha: float = 0.015, steps: int = 20):
        if min(epsilon, alpha) <= 0 or steps < 1:
            raise ValueError("epsilon/alpha must be positive and steps >= 1")
        self.epsilon = epsilon
        self.alpha = alpha
        self.steps = steps

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray | None = None,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        targeted = target_labels is not None
        if targeted:
            target_labels = np.asarray(target_labels)

        current = x.copy()
        done = np.zeros(len(x), dtype=bool)
        for _ in range(self.steps):
            active = ~done
            if not active.any():
                break
            batch = current[active]
            if targeted:
                gradient = network.grad_engine.cross_entropy_input_grad(batch, target_labels[active])
                stepped = batch - self.alpha * np.sign(gradient, dtype=np.float64)
            else:
                gradient = network.grad_engine.cross_entropy_input_grad(batch, source_labels[active])
                stepped = batch + self.alpha * np.sign(gradient, dtype=np.float64)
            stepped = np.clip(stepped, x[active] - self.epsilon, x[active] + self.epsilon)
            current[active] = clip_to_box(stepped)
            predictions = network.engine.predict(current[active], memo=False)
            if targeted:
                done[active] |= predictions == target_labels[active]
            else:
                done[active] |= predictions != source_labels[active]

        predictions = network.engine.predict(current, memo=False)
        success = predictions == target_labels if targeted else predictions != source_labels
        return AttackResult(x, current, success, source_labels, target_labels if targeted else None)
