"""Random-noise baselines — the control every attack table needs.

Adversarial perturbations are *directed*: random noise of the same
magnitude almost never changes a good model's prediction (this is exactly
the asymmetry region-based classification exploits — a hypercube around a
benign point stays in-class, while one around an adversarial point leaks
back).  These "attacks" quantify that control.
"""

from __future__ import annotations

import numpy as np

from ..nn.network import Network
from .base import AttackResult, clip_to_box

__all__ = ["UniformNoise", "GaussianNoise"]


class UniformNoise:
    """Uniform noise in an L∞ ball of radius epsilon (untargeted)."""

    norm = "linf"

    def __init__(self, epsilon: float = 0.15, seed: int = 0):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self._rng = np.random.default_rng(seed)

    def perturb(self, network: Network, x: np.ndarray, source_labels: np.ndarray) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        noise = self._rng.uniform(-self.epsilon, self.epsilon, size=x.shape)
        perturbed = clip_to_box(x + noise)
        success = network.engine.predict(perturbed, memo=False) != source_labels
        return AttackResult(x, perturbed, success, source_labels, None)


class GaussianNoise:
    """Gaussian noise scaled to a target L2 norm (untargeted)."""

    norm = "l2"

    def __init__(self, l2_norm: float = 1.0, seed: int = 0):
        if l2_norm <= 0:
            raise ValueError("l2_norm must be positive")
        self.l2_norm = l2_norm
        self._rng = np.random.default_rng(seed)

    def perturb(self, network: Network, x: np.ndarray, source_labels: np.ndarray) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        noise = self._rng.normal(size=x.shape)
        flat = noise.reshape(len(x), -1)
        norms = np.linalg.norm(flat, axis=1, keepdims=True)
        flat *= self.l2_norm / np.maximum(norms, 1e-12)
        perturbed = clip_to_box(x + flat.reshape(x.shape))
        success = network.engine.predict(perturbed, memo=False) != source_labels
        return AttackResult(x, perturbed, success, source_labels, None)
