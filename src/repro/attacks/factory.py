"""Named attack configurations used across the evaluation harness.

Centralising these keeps pool caching coherent: a pool's cache key embeds
the factory name plus overrides, so any parameter change regenerates it.
"""

from __future__ import annotations

from typing import Any, Callable

from .cw import CarliniWagnerL0, CarliniWagnerL2, CarliniWagnerLinf
from .deepfool import DeepFool
from .fgsm import FGSM
from .igsm import IGSM
from .jsma import JSMA
from .lbfgs import LBFGSAttack
from .pgd import PGD

__all__ = ["make_attack", "ATTACK_FACTORIES", "TARGETED_ATTACKS", "UNTARGETED_ATTACKS"]

# Defaults tuned for the CPU substrate: enough budget for ~100% success on
# the standard models while keeping the 9-targets-per-seed sweeps feasible.
ATTACK_FACTORIES: dict[str, Callable[..., Any]] = {
    "cw-l2": lambda **kw: CarliniWagnerL2(**{"binary_search_steps": 4, "max_iterations": 150, **kw}),
    "cw-l0": lambda **kw: CarliniWagnerL0(**kw),
    "cw-linf": lambda **kw: CarliniWagnerLinf(**kw),
    "fgsm": lambda **kw: FGSM(**kw),
    "igsm": lambda **kw: IGSM(**kw),
    "jsma": lambda **kw: JSMA(**kw),
    "deepfool": lambda **kw: DeepFool(**kw),
    "lbfgs": lambda **kw: LBFGSAttack(**kw),
    "pgd": lambda **kw: PGD(**kw),
}

# Which named attacks accept target labels.
TARGETED_ATTACKS = ("cw-l2", "cw-l0", "cw-linf", "fgsm", "igsm", "jsma", "lbfgs", "pgd")
UNTARGETED_ATTACKS = ("deepfool",)


def make_attack(name: str, **overrides):
    """Instantiate a named attack with optional parameter overrides."""
    if name not in ATTACK_FACTORIES:
        raise KeyError(f"unknown attack {name!r}; available: {sorted(ATTACK_FACTORIES)}")
    return ATTACK_FACTORIES[name](**overrides)
