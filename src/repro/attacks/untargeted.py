"""Targeted-to-untargeted transformation (paper Sec. 2.2 / 5.1).

Carlini & Wagner's strategy, adopted by the paper: run the targeted attack
toward every other class and keep, per example, the successful adversarial
example with the smallest distortion.  The replication over targets is
folded into a single batched call so the underlying attack's vectorisation
is preserved.
"""

from __future__ import annotations

import numpy as np

from ..nn.network import Network
from .base import AttackResult, TargetedAttack, distortion

__all__ = ["UntargetedFromTargeted"]


class UntargetedFromTargeted:
    """Wrap a targeted attack into the paper's untargeted strategy.

    Parameters
    ----------
    attack:
        Any targeted attack exposing ``perturb(network, x, sources, targets)``.
    metric:
        Distance metric used to pick the closest success; defaults to the
        attack's native norm.
    """

    def __init__(self, attack: TargetedAttack, metric: str | None = None):
        self.attack = attack
        self.metric = metric or getattr(attack, "norm", "l2")

    @property
    def norm(self) -> str:
        return self.metric

    def perturb(self, network: Network, x: np.ndarray, source_labels: np.ndarray) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        n = len(x)
        num_classes = network.num_classes
        targets_per_example = num_classes - 1

        # Tile each example across all non-source target classes.
        tiled_x = np.repeat(x, targets_per_example, axis=0)
        tiled_sources = np.repeat(source_labels, targets_per_example)
        all_targets = np.concatenate(
            [[c for c in range(num_classes) if c != label] for label in source_labels]
        )

        result = self.attack.perturb(network, tiled_x, tiled_sources, all_targets)

        adversarial = x.copy()
        success = np.zeros(n, dtype=bool)
        distances = distortion(tiled_x, result.adversarial, self.metric)
        for i in range(n):
            block = slice(i * targets_per_example, (i + 1) * targets_per_example)
            ok = result.success[block]
            if not ok.any():
                continue
            block_dist = np.where(ok, distances[block], np.inf)
            best = int(np.argmin(block_dist))
            adversarial[i] = result.adversarial[block][best]
            success[i] = True
        return AttackResult(x, adversarial, success, source_labels, None)
