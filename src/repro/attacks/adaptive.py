"""Adaptive CW attacks against DCN (paper Sec. 6, "Adaptive CW attack").

The paper sketches two adaptive strategies an attacker aware of DCN could
try; both are implemented here so the defense can be stress-tested:

1. **High-confidence attack** — raise the CW confidence κ so the crafted
   example's logits look benign (large margin).  The cost is visibly more
   noise, which the κ-sweep benchmark quantifies.
2. **Detector-aware attack** — extend the CW-L2 objective with a second
   margin term computed *through the detector*: the combined loss is
   ``‖δ‖² + c·f(x') + c_d·g(x')`` where ``g`` is the hinge margin of the
   detector's adversarial score over its benign score.  The gradient flows
   through the composition detector(protected-model(x')).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..nn import ops
from ..nn.network import Network
from ..nn.tensor import Tensor
from .base import AttackResult
from .cw import AdamState, _margin_loss, _to_w

if TYPE_CHECKING:  # pragma: no cover - import avoided at runtime (cycle)
    from ..core.detector import LogitDetector

__all__ = ["DetectorAwareCWL2"]

# Detector output indices (mirrors repro.core.detector).
BENIGN, ADVERSARIAL = 0, 1


class DetectorAwareCWL2:
    """CW-L2 with an additional bypass-the-detector loss term.

    Success for this attack means: the protected model outputs the target
    label **and** the detector classifies the logits as benign.

    Parameters
    ----------
    detector_weight:
        ``c_d`` — weight of the detector-bypass hinge.
    detector_confidence:
        Required margin of the detector's benign score (higher = safer
        bypass, more distortion).
    """

    norm = "l2"

    def __init__(
        self,
        detector: "LogitDetector",
        confidence: float = 0.0,
        detector_weight: float = 5.0,
        detector_confidence: float = 0.0,
        binary_search_steps: int = 4,
        max_iterations: int = 200,
        learning_rate: float = 0.1,
        initial_c: float = 0.5,
    ):
        if detector.sort_features:
            # Sorting is piecewise-linear so it *is* differentiable almost
            # everywhere, but our autograd sort is not implemented; the
            # adaptive attack therefore drives the raw-feature detector.
            raise ValueError(
                "DetectorAwareCWL2 requires a detector trained with sort_features=False; "
                "train one via train_detector(..., sort_features=False)"
            )
        self.detector = detector
        self.confidence = confidence
        self.detector_weight = detector_weight
        self.detector_confidence = detector_confidence
        self.binary_search_steps = binary_search_steps
        self.max_iterations = max_iterations
        self.learning_rate = learning_rate
        self.initial_c = initial_c

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        target_labels = np.asarray(target_labels)
        n = len(x)
        onehot = np.zeros((n, network.num_classes))
        onehot[np.arange(n), target_labels] = 1.0
        axes = tuple(range(1, x.ndim))
        # Detector's benign/adversarial selector rows.
        benign_sel = np.zeros((n, 2))
        benign_sel[:, BENIGN] = 1.0
        adv_sel = np.zeros((n, 2))
        adv_sel[:, ADVERSARIAL] = 1.0

        c = np.full(n, self.initial_c)
        c_low = np.zeros(n)
        c_high = np.full(n, 1e10)
        best_adv = x.copy()
        best_l2 = np.full(n, np.inf)
        found = np.zeros(n, dtype=bool)

        for _ in range(self.binary_search_steps):
            w = _to_w(x)
            adam = AdamState(w.shape, self.learning_rate)
            for _ in range(self.max_iterations):
                w_tensor = Tensor(w, requires_grad=True)
                candidate = ops.mul(ops.tanh(w_tensor), 0.5)
                delta = candidate - Tensor(x)
                l2_sq = ops.sum_(ops.mul(delta, delta), axis=axes)
                logits = network.forward(candidate)
                f = _margin_loss(logits, onehot, self.confidence)
                det_scores = self.detector.network.forward(logits)
                det_adv = ops.sum_(ops.mul(det_scores, adv_sel), axis=-1)
                det_benign = ops.sum_(ops.mul(det_scores, benign_sel), axis=-1)
                g = ops.maximum(
                    det_adv - det_benign + self.detector_confidence, Tensor(np.zeros(n))
                )
                loss = ops.sum_(l2_sq + ops.mul(f, Tensor(c)) + ops.mul(g, self.detector_weight * c))
                loss.backward()

                # Track successes: target hit AND detector bypassed.
                z = logits.data
                hit = z.argmax(axis=-1) == target_labels
                bypassed = ~self.detector.is_adversarial(z)
                better = hit & bypassed & (l2_sq.data < best_l2)
                best_adv[better] = candidate.data[better]
                best_l2[better] = l2_sq.data[better]
                found |= hit & bypassed

                w = adam.update(w, w_tensor.grad)

            succeeded_now = found & (best_l2 < np.inf)
            c_high = np.where(succeeded_now, np.minimum(c_high, c), c_high)
            c_low = np.where(succeeded_now, c_low, np.maximum(c_low, c))
            unbounded = c_high >= 1e9
            c = np.where(unbounded, c * 10.0, (c_low + c_high) / 2.0)

        return AttackResult(x, best_adv, found.copy(), source_labels, target_labels)
