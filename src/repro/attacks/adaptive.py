"""Adaptive CW attacks against DCN (paper Sec. 6, "Adaptive CW attack").

The paper sketches two adaptive strategies an attacker aware of DCN could
try; both are implemented here so the defense can be stress-tested:

1. **High-confidence attack** — raise the CW confidence κ so the crafted
   example's logits look benign (large margin).  The cost is visibly more
   noise, which the κ-sweep benchmark quantifies.
2. **Detector-aware attack** — extend the CW-L2 objective with a second
   margin term computed *through the detector*: the combined loss is
   ``‖δ‖² + c·f(x') + c_d·g(x')`` where ``g`` is the hinge margin of the
   detector's adversarial score over its benign score.  The gradient flows
   through the composition detector(protected-model(x')) — implemented by
   chaining the two networks' gradient engines: the detector's input
   cotangent is added to the model's logit cotangent before the model's
   single backward pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..nn.grad_engine import margin_seed
from ..nn.network import Network
from .base import AttackResult
from .cw import AdamState, _to_w

if TYPE_CHECKING:  # pragma: no cover - import avoided at runtime (cycle)
    from ..core.detector import LogitDetector

__all__ = ["DetectorAwareCWL2"]

# Detector output indices (mirrors repro.core.detector).
BENIGN, ADVERSARIAL = 0, 1


class DetectorAwareCWL2:
    """CW-L2 with an additional bypass-the-detector loss term.

    Success for this attack means: the protected model outputs the target
    label **and** the detector classifies the logits as benign.

    Parameters
    ----------
    detector_weight:
        ``c_d`` — weight of the detector-bypass hinge.
    detector_confidence:
        Required margin of the detector's benign score (higher = safer
        bypass, more distortion).
    """

    norm = "l2"

    def __init__(
        self,
        detector: "LogitDetector",
        confidence: float = 0.0,
        detector_weight: float = 5.0,
        detector_confidence: float = 0.0,
        binary_search_steps: int = 4,
        max_iterations: int = 200,
        learning_rate: float = 0.1,
        initial_c: float = 0.5,
    ):
        if detector.sort_features:
            # Sorting is piecewise-linear so it *is* differentiable almost
            # everywhere, but our autograd sort is not implemented; the
            # adaptive attack therefore drives the raw-feature detector.
            raise ValueError(
                "DetectorAwareCWL2 requires a detector trained with sort_features=False; "
                "train one via train_detector(..., sort_features=False)"
            )
        self.detector = detector
        self.confidence = confidence
        self.detector_weight = detector_weight
        self.detector_confidence = detector_confidence
        self.binary_search_steps = binary_search_steps
        self.max_iterations = max_iterations
        self.learning_rate = learning_rate
        self.initial_c = initial_c

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        target_labels = np.asarray(target_labels)
        n = len(x)
        axes = tuple(range(1, x.ndim))
        model_engine = network.grad_engine
        detector_engine = self.detector.network.grad_engine

        c = np.full(n, self.initial_c)
        c_low = np.zeros(n)
        c_high = np.full(n, 1e10)
        best_adv = x.copy()
        best_l2 = np.full(n, np.inf)
        found = np.zeros(n, dtype=bool)

        for _ in range(self.binary_search_steps):
            w = _to_w(x)
            adam = AdamState(w.shape, self.learning_rate)
            for _ in range(self.max_iterations):
                tanh_w = np.tanh(w)
                candidate = tanh_w * 0.5
                delta = candidate - x
                l2_sq = (delta * delta).sum(axis=axes)
                logits, model_ctx = model_engine.forward(candidate)
                f_seed, _ = margin_seed(logits, target_labels, self.confidence)

                # Detector hinge g = max(s_adv − s_benign + κ_d, 0); its
                # cotangent flows back to the model's logits first.
                det_scores, det_ctx = detector_engine.forward(logits)
                scores = det_scores.astype(np.float64)
                g_active = (
                    scores[:, ADVERSARIAL] - scores[:, BENIGN] + self.detector_confidence >= 0.0
                )
                det_seed = np.zeros((n, 2))
                det_seed[:, ADVERSARIAL] = self.detector_weight * c * g_active
                det_seed[:, BENIGN] = -self.detector_weight * c * g_active
                logit_seed = c[:, None] * f_seed + detector_engine.backward(det_ctx, det_seed)
                grad_candidate = model_engine.backward(model_ctx, logit_seed)

                # Track successes: target hit AND detector bypassed.
                hit = logits.argmax(axis=-1) == target_labels
                bypassed = ~self.detector.is_adversarial(logits)
                better = hit & bypassed & (l2_sq < best_l2)
                best_adv[better] = candidate[better]
                best_l2[better] = l2_sq[better]
                found |= hit & bypassed

                grad_w = (2.0 * delta + grad_candidate) * (0.5 * (1.0 - tanh_w * tanh_w))
                w = adam.update(w, grad_w)

            succeeded_now = found & (best_l2 < np.inf)
            c_high = np.where(succeeded_now, np.minimum(c_high, c), c_high)
            c_low = np.where(succeeded_now, c_low, np.maximum(c_low, c))
            unbounded = c_high >= 1e9
            c = np.where(unbounded, c * 10.0, (c_low + c_high) / 2.0)

        return AttackResult(x, best_adv, found.copy(), source_labels, target_labels)
