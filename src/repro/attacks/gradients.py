"""Input-gradient helpers shared by the gradient-based attacks."""

from __future__ import annotations

import numpy as np

from ..nn import losses, ops
from ..nn.network import Network
from ..nn.tensor import Tensor

__all__ = ["cross_entropy_gradient", "logit_gradient", "jacobian"]


def cross_entropy_gradient(network: Network, x: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """``∂ CE(H(x), labels) / ∂x`` summed over the batch (per-example rows)."""
    labels = np.asarray(labels)
    inp = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    logits = network.forward(inp)
    # Sum (not mean) so each example's gradient is independent of batch size.
    targets = losses.one_hot(labels, logits.shape[-1])
    log_probs = ops.log_softmax(logits)
    loss = ops.mul(ops.sum_(ops.mul(log_probs, targets)), -1.0)
    loss.backward()
    assert inp.grad is not None
    return inp.grad


def logit_gradient(network: Network, x: np.ndarray, class_index: np.ndarray) -> np.ndarray:
    """``∂ H(x)_{class_index} / ∂x`` for a per-example class index."""
    class_index = np.asarray(class_index)
    inp = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    logits = network.forward(inp)
    selector = np.zeros(logits.shape)
    selector[np.arange(len(class_index)), class_index] = 1.0
    ops.sum_(ops.mul(logits, selector)).backward()
    assert inp.grad is not None
    return inp.grad


def jacobian(network: Network, x: np.ndarray) -> np.ndarray:
    """Full Jacobian ``∂H(x)_c / ∂x`` of the logits for a batch.

    Returns shape ``(N, num_classes, *input_shape)``.  Computed with one
    backward pass per class (the standard trick when outputs ≪ inputs);
    used by JSMA and DeepFool.
    """
    x = np.asarray(x, dtype=np.float64)
    num_classes = network.num_classes
    rows = np.empty((len(x), num_classes) + x.shape[1:])
    for c in range(num_classes):
        rows[:, c] = logit_gradient(network, x, np.full(len(x), c))
    return rows
