"""Input-gradient helpers shared by the gradient-based attacks.

Since PR 2 these are thin wrappers over the network's lazily attached
:class:`~repro.nn.grad_engine.GradientEngine`: fused raw-NumPy
forward+backward kernels (float32 by default) with an automatic float64
autograd fallback for unknown layer types.  All three helpers return
arrays in the engine's compute dtype — ``float32`` unless a custom engine
was attached via ``Network.attach_grad_engine``.  Callers doing float64
accumulation (optimiser state, distance bookkeeping) get the usual NumPy
promotion when they combine these with float64 operands.
"""

from __future__ import annotations

import numpy as np

from ..nn.network import Network

__all__ = ["cross_entropy_gradient", "logit_gradient", "jacobian"]


def cross_entropy_gradient(network: Network, x: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """``∂ CE(H(x), labels) / ∂x`` summed over the batch (per-example rows).

    Sum (not mean) reduction, so each example's gradient is independent of
    the batch it rides in.  Returned in the gradient engine's dtype.
    """
    return network.grad_engine.cross_entropy_input_grad(x, labels)


def logit_gradient(network: Network, x: np.ndarray, class_index: np.ndarray) -> np.ndarray:
    """``∂ H(x)_{class_index} / ∂x`` for a per-example class index.

    Returned in the gradient engine's dtype.
    """
    return network.grad_engine.logit_input_grad(x, class_index)


def jacobian(network: Network, x: np.ndarray) -> np.ndarray:
    """Full Jacobian ``∂H(x)_c / ∂x`` of the logits for a batch.

    Returns shape ``(N, num_classes, *input_shape)`` in the gradient
    engine's dtype (float32 by default — callers needing float64 should
    cast or attach a float64 engine).  On the engine's native path this is
    one forward pass plus ``num_classes`` seeded backwards sharing the
    stashed activations; used by JSMA and DeepFool.
    """
    return network.grad_engine.jacobian(x)
