"""Jacobian-based Saliency Map Attack (Papernot et al., EuroS&P 2016).

Greedy L0 attack: at each step the saliency map scores pairs of pixels by
how much increasing them raises the target logit while lowering the others,
and the best pair is pushed to the box boundary.  Following the original,
both the logit and softmax formulations are available (the paper's Table 1
cites both configurations).
"""

from __future__ import annotations

import numpy as np

from ..datasets.dataset import PIXEL_MAX, PIXEL_MIN
from ..nn.network import Network
from .base import AttackResult

__all__ = ["JSMA"]


class JSMA:
    """Targeted saliency-map attack under the L0 metric.

    Parameters
    ----------
    gamma:
        Maximum fraction of features the attack may modify.
    theta:
        Direction of modification: positive pushes chosen pixels to the box
        maximum, negative to the minimum.
    use_logits:
        Score with logit gradients (True) or softmax gradients (False).
    """

    norm = "l0"

    def __init__(self, gamma: float = 0.12, theta: float = 1.0, use_logits: bool = True):
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        if theta == 0:
            raise ValueError("theta must be nonzero")
        self.gamma = gamma
        self.theta = theta
        self.use_logits = use_logits

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray,
    ) -> AttackResult:
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        target_labels = np.asarray(target_labels)
        adversarial = np.stack(
            [
                self._attack_one(network, x[i], int(target_labels[i]))
                for i in range(len(x))
            ]
        )
        predictions = network.engine.predict(adversarial, memo=False)
        success = predictions == target_labels
        return AttackResult(x, adversarial, success, source_labels, target_labels)

    def _attack_one(self, network: Network, image: np.ndarray, target: int) -> np.ndarray:
        current = image.copy()
        features = current.size
        max_steps = int(np.floor(features * self.gamma / 2.0))
        bound = PIXEL_MAX if self.theta > 0 else PIXEL_MIN
        # A feature leaves the search space once it is saturated.
        available = np.ones(features, dtype=bool)

        for _ in range(max_steps):
            if network.engine.predict(current[None], memo=False)[0] == target:
                break
            alpha, beta = self._gradient_components(network, current, target)
            pair = self._best_pair(alpha, beta, available)
            if pair is None:
                break
            flat = current.reshape(-1)
            flat[list(pair)] = bound
            for p in pair:
                available[p] = False
        return current

    def _gradient_components(
        self, network: Network, image: np.ndarray, target: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return flattened (target-gradient, sum-of-other-gradients)."""
        rows = network.grad_engine.jacobian(image[None])[0]  # (classes, *input_shape)
        if not self.use_logits:
            probs = network.engine.softmax(image[None], memo=False)[0]
            # d softmax_c / dx = softmax_c * (grad_c - sum_k softmax_k grad_k)
            weighted = np.tensordot(probs, rows, axes=(0, 0))
            rows = probs[(slice(None),) + (None,) * (rows.ndim - 1)] * (rows - weighted)
        alpha = rows[target].reshape(-1)
        beta = rows.sum(axis=0).reshape(-1) - alpha
        return alpha, beta

    def _best_pair(
        self, alpha: np.ndarray, beta: np.ndarray, available: np.ndarray
    ) -> tuple[int, int] | None:
        """Highest-saliency feature pair satisfying Papernot's conditions.

        For ``theta > 0`` the pair must jointly increase the target logit
        (``α_p + α_q > 0``) and decrease the others (``β_p + β_q < 0``);
        signs flip for negative theta.
        """
        candidates = np.flatnonzero(available)
        if len(candidates) < 2:
            return None
        # Keep the search tractable: restrict to the most promising features.
        order = np.argsort(-self.theta * alpha[candidates])
        shortlist = candidates[order[: min(len(order), 64)]]
        a = alpha[shortlist]
        b = beta[shortlist]
        pair_alpha = a[:, None] + a[None, :]
        pair_beta = b[:, None] + b[None, :]
        if self.theta > 0:
            valid = (pair_alpha > 0) & (pair_beta < 0)
        else:
            valid = (pair_alpha < 0) & (pair_beta > 0)
        np.fill_diagonal(valid, False)
        if not valid.any():
            return None
        scores = np.where(valid, -pair_alpha * pair_beta, -np.inf)
        p, q = np.unravel_index(np.argmax(scores), scores.shape)
        return int(shortlist[p]), int(shortlist[q])
