"""Evasion attacks (paper Table 1 plus the CW suite used in Sec. 5)."""

from .adaptive import DetectorAwareCWL2
from .base import AttackResult, clip_to_box, distortion
from .blackbox import SubstituteBlackBox
from .cw import AdamState, CarliniWagnerL0, CarliniWagnerL2, CarliniWagnerLinf
from .deepfool import DeepFool
from .fgsm import FGSM
from .igsm import IGSM
from .jsma import JSMA
from .lbfgs import LBFGSAttack
from .noise import GaussianNoise, UniformNoise
from .pgd import PGD
from .factory import ATTACK_FACTORIES, make_attack
from .untargeted import UntargetedFromTargeted

__all__ = [
    "AttackResult",
    "distortion",
    "clip_to_box",
    "FGSM",
    "IGSM",
    "JSMA",
    "DeepFool",
    "LBFGSAttack",
    "CarliniWagnerL2",
    "CarliniWagnerL0",
    "CarliniWagnerLinf",
    "AdamState",
    "UntargetedFromTargeted",
    "DetectorAwareCWL2",
    "PGD",
    "SubstituteBlackBox",
    "UniformNoise",
    "GaussianNoise",
    "make_attack",
    "ATTACK_FACTORIES",
]
