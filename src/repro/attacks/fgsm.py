"""Fast Gradient Sign Method (Goodfellow et al., 2015).

Single-step L∞ attack: move every pixel by ``epsilon`` in the direction
that increases the loss (untargeted) or decreases the loss toward a chosen
target label (targeted).
"""

from __future__ import annotations

import numpy as np

from ..nn.network import Network
from .base import AttackResult, clip_to_box

__all__ = ["FGSM"]


class FGSM:
    """One-step sign-gradient attack under the L∞ metric.

    Parameters
    ----------
    epsilon:
        Step size in pixel units (the data box spans 1.0).
    """

    norm = "linf"

    def __init__(self, epsilon: float = 0.2):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon

    def perturb(
        self,
        network: Network,
        x: np.ndarray,
        source_labels: np.ndarray,
        target_labels: np.ndarray | None = None,
    ) -> AttackResult:
        """Craft adversarial examples; targeted when ``target_labels`` given."""
        x = np.asarray(x, dtype=np.float64)
        source_labels = np.asarray(source_labels)
        if target_labels is not None:
            target_labels = np.asarray(target_labels)
            gradient = network.grad_engine.cross_entropy_input_grad(x, target_labels)
            adversarial = clip_to_box(x - self.epsilon * np.sign(gradient, dtype=np.float64))
            predictions = network.engine.predict(adversarial, memo=False)
            success = predictions == target_labels
        else:
            gradient = network.grad_engine.cross_entropy_input_grad(x, source_labels)
            adversarial = clip_to_box(x + self.epsilon * np.sign(gradient, dtype=np.float64))
            predictions = network.engine.predict(adversarial, memo=False)
            success = predictions != source_labels
        return AttackResult(x, adversarial, success, source_labels, target_labels)
