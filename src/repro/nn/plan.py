"""Compiled execution plans: the layer stack lowered once, executed many times.

The serving-shaped hot path of this reproduction is *repeated same-shape*
work: the detector-gated fast path pays one forward per request, the
corrector fans a flagged input into a fused ``(n_flagged × m)`` batch, and
every attack inner loop pushes identically-shaped batches through the same
network thousands of times.  Before this module, each of the three engines
re-decided shapes, re-derived im2col geometry and re-allocated every
activation on every call.

:func:`compile_plan` walks a network once for a fixed ``(batch shape,
dtype, mode)`` and emits a :class:`CompiledPlan`:

Explicit op list with arena-preallocated buffers
    Each layer lowers to one op (or fused stage, below) whose output,
    scratch and gradient buffers are allocated at compile time and reused
    on every call — steady state allocates nothing but the per-call BLAS
    work.  Results are handed back as plan-owned buffers; the engines copy
    at their public boundaries, preserving the fresh-array semantics
    callers have always had.

Fused elementwise chains
    ReLU / tanh / sigmoid / eval-mode batch norm / training dropout fold
    in place onto their producer's buffer (conv→bn→relu is one step, one
    buffer), except where the backward pass needs the producer's values
    intact: in ``grad``/``train`` mode a tanh/sigmoid output is *protected*
    — it is needed to form its own gradient, so nothing may fuse over it
    and the chain restarts on a fresh buffer.  ReLU stays fusable in every
    mode by stashing its sign mask in a preallocated boolean buffer.

Geometry bound once
    im2col gather indices (shared bounded LRU in :mod:`repro.nn.kernels`),
    pool argmax buffers, padded-input frames and flatten shapes are
    resolved at compile time, keyed by the concrete batch shape.

Live parameters, no stale views
    Ops read parameters through the owning engine's staleness-checked cast
    cache (identity + ``Tensor.version``), so ``load_state``, in-place
    optimiser steps and ``parameters_bound`` dtype rebinding are picked up
    with no plan invalidation — a plan depends only on shapes.

Generation-checked gradient contexts
    ``grad``/``train`` forwards stamp a generation; a backward presented
    with a context from an older forward would read overwritten buffers,
    so it raises :class:`~repro.verify.guards.GuardViolation`
    (``kind="stale-context"``) instead of silently returning garbage.
    Contexts from *different* plans (different batch shapes, or different
    engines) do not invalidate each other.

Numerical parity is load-bearing: every op reproduces the exact float
operation sequence of the pre-plan engine kernels (``matmul(out=)`` +
in-place bias add is bitwise ``x @ w + b``; fill-then-divide avg-pool
backward; ``cols @ w_mat.T`` in the transposed-view form), so the float64
plan stays bit-exact with the legacy autograd forward and the differential
verifier's budgets carry over unchanged.
"""

from __future__ import annotations

import numpy as np

from ..verify import guards
from .kernels import bn_eval_scale_shift, col2im, conv_output_size, im2col_indices
from .layers import AvgPool2D, Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Sigmoid, Tanh
from .norm import _BatchNormBase
from .ops import stable_sigmoid

__all__ = ["CompiledPlan", "compile_plan", "supports", "MODES", "DEFAULT_PLAN_ENTRIES"]

MODES = ("infer", "grad", "train")

# Default capacity of the per-engine compiled-plan LRU (keyed by exact batch
# shape).  An experiment run touches a handful of shapes per engine: the full
# batch, the trailing remainder batch, single-example probes, and the
# corrector's fused ``(n_flagged × m)`` fan-out.
DEFAULT_PLAN_ENTRIES = 8

_PLANNABLE = (
    Dense,
    Conv2D,
    MaxPool2D,
    AvgPool2D,
    Flatten,
    ReLU,
    Tanh,
    Sigmoid,
    Dropout,
    _BatchNormBase,
)


def supports(network) -> bool:
    """Whether every layer of ``network`` lowers to a compiled-plan op."""
    return all(isinstance(layer, _PLANNABLE) for layer in network.layers)


# -- fused elementwise stages ---------------------------------------------------
#
# A stage is an elementwise transform with ``apply(src, dst)`` (``dst`` may be
# ``src`` for in-place fusion onto the producer's buffer) and an in-place
# ``backward(grad)``.  Stages either ride as ``posts`` on a base op or get
# wrapped in an _EltOp with a buffer of their own when fusion is unsafe.


class _ReluStage:
    def __init__(self, layer_index: int, shape: tuple[int, ...], track_grad: bool):
        self.layer_index = layer_index
        # The sign mask is bound once; computing it from the *input* keeps
        # ReLU fusable even under a later in-place overwrite of the output.
        self.mask = np.empty(shape, dtype=bool) if track_grad else None

    def apply(self, src: np.ndarray, dst: np.ndarray) -> None:
        if self.mask is not None:
            np.greater(src, 0, out=self.mask)
        np.maximum(src, 0.0, out=dst)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad *= self.mask
        return grad


class _TanhStage:
    protects_output = True  # backward reads the output values

    def __init__(self, layer_index: int, track_grad: bool):
        self.layer_index = layer_index
        self.track_grad = track_grad
        self._out = None

    def apply(self, src: np.ndarray, dst: np.ndarray) -> None:
        np.tanh(src, out=dst)
        if self.track_grad:
            self._out = dst

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._out
        grad *= 1.0 - out * out
        return grad


class _SigmoidStage:
    protects_output = True

    def __init__(self, layer_index: int, track_grad: bool):
        self.layer_index = layer_index
        self.track_grad = track_grad
        self._out = None

    def apply(self, src: np.ndarray, dst: np.ndarray) -> None:
        np.copyto(dst, stable_sigmoid(src))
        if self.track_grad:
            self._out = dst

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._out
        grad *= out
        grad *= 1.0 - out
        return grad


class _BnEvalStage:
    """Eval-mode batch norm as an in-place affine; gradients flow through
    the scale only (running statistics are constants, as in autograd)."""

    def __init__(self, layer_index: int, layer: _BatchNormBase, dtype, track_grad: bool):
        self.layer_index = layer_index
        self.layer = layer
        self.dtype = dtype
        self.track_grad = track_grad
        self._scale = None

    def apply(self, src: np.ndarray, dst: np.ndarray) -> None:
        # Recomputed per call from the live running statistics (the vectors
        # are tiny); a fit that updates them is picked up immediately.
        scale64, shift64 = bn_eval_scale_shift(self.layer)
        shape = self.layer._shape
        scale = scale64.reshape(shape).astype(self.dtype)
        np.multiply(src, scale, out=dst)
        dst += shift64.reshape(shape).astype(self.dtype)
        if self.track_grad:
            self._scale = scale

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad *= self._scale
        return grad


class _DropoutTrainStage:
    def __init__(self, layer_index: int, layer: Dropout):
        self.layer_index = layer_index
        self.layer = layer
        self.keep = 1.0 - layer.rate
        self._mask = None

    def apply(self, src: np.ndarray, dst: np.ndarray) -> None:
        # Drawn in float64 from the layer's own generator so the plan
        # consumes the exact Bernoulli sequence of the autograd path.
        mask = ((self.layer._rng.random(src.shape) < self.keep) / self.keep).astype(src.dtype)
        np.multiply(src, mask, out=dst)
        self._mask = mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad *= self._mask
        return grad


# -- base ops -------------------------------------------------------------------


class _Op:
    """One plan step: a base computation plus in-place fused post stages."""

    def __init__(self, layer_index: int):
        self.layer_index = layer_index
        self.posts: list = []


class _PassOp(_Op):
    """Identity (inference/gradient-mode dropout): zero cost, no buffer."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad


class _ReshapeOp(_Op):
    """Flatten as a zero-copy view; shapes fixed at compile (n=0 safe)."""

    def __init__(self, layer_index: int, in_shape: tuple[int, ...], out_shape: tuple[int, ...]):
        super().__init__(layer_index)
        self.in_shape = in_shape
        self.out_shape = out_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(self.out_shape)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self.in_shape)


class _EltOp(_Op):
    """An elementwise stage running into its own buffer (unfusable spot)."""

    def __init__(self, layer_index: int, stage, shape: tuple[int, ...], dtype):
        super().__init__(layer_index)
        self.stage = stage
        self.out = np.empty(shape, dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.stage.apply(x, self.out)
        return self.out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.stage.backward(grad)


class _DenseOp(_Op):
    def __init__(self, layer_index, layer, n, in_features, dtype, mode, cast, accumulate, first):
        super().__init__(layer_index)
        self.weight, self.bias = layer.params["weight"], layer.params["bias"]
        self.cast = cast
        self.accumulate = accumulate
        self.mode = mode
        self.first = first
        self.out = np.empty((n, layer.out_features), dtype=dtype)
        skip_input_grad = mode == "train" and first
        self.gin = None
        if mode != "infer" and not skip_input_grad:
            self.gin = np.empty((n, in_features), dtype=dtype)
        self._x = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        np.matmul(x, self.cast(self.weight), out=self.out)
        self.out += self.cast(self.bias)
        if self.mode == "train":
            self._x = x
        return self.out

    def backward(self, grad: np.ndarray):
        if self.mode == "train":
            # Fresh arrays, never persistent scratch: adversarial training
            # accumulates two train_batch calls into the same .grad, which
            # a reused buffer would alias and double-count.
            self.accumulate(self.weight, self._x.T @ grad)
            self.accumulate(self.bias, grad.sum(axis=0))
            if self.first:
                return None
        np.matmul(grad, self.cast(self.weight).T, out=self.gin)
        return self.gin


class _ConvOp(_Op):
    def __init__(self, layer_index, layer, n, in_shape, dtype, mode, cast, accumulate, first):
        super().__init__(layer_index)
        c, h, w = in_shape
        self.weight, self.bias = layer.params["weight"], layer.params["bias"]
        self.cast = cast
        self.accumulate = accumulate
        self.mode = mode
        self.first = first
        self.kernel, self.stride, self.padding = layer.kernel_size, layer.stride, layer.padding
        self.c_out = layer.out_channels
        p = self.padding
        hp, wp = h + 2 * p, w + 2 * p
        self.idx, self.oh, self.ow = im2col_indices(c, hp, wp, self.kernel, self.stride)
        self.n = n
        self.in_flat = c * hp * wp
        self.pad_shape = (n, c, hp, wp)
        ckk = c * self.kernel * self.kernel
        rows = n * self.oh * self.ow
        # The zeroed border of the padded frame is written once, here; only
        # the interior is refreshed per call.
        self.padded = np.zeros(self.pad_shape, dtype=dtype) if p else None
        self.cols_rows = np.empty((n, self.oh * self.ow * ckk), dtype=dtype)
        self.cols = self.cols_rows.reshape(rows, ckk)
        self.mm = np.empty((rows, self.c_out), dtype=dtype)
        self.mm4 = self.mm.reshape(n, self.oh, self.ow, self.c_out)
        self.out = np.empty((n, self.c_out, self.oh, self.ow), dtype=dtype)
        self.gmat4 = self.gmat = self.gcols = self.gx_pad = self.gin = None
        if mode != "infer":
            self.gmat4 = np.empty((n, self.oh, self.ow, self.c_out), dtype=dtype)
            self.gmat = self.gmat4.reshape(rows, self.c_out)
            if not (mode == "train" and first):
                self.gcols = np.empty((rows, ckk), dtype=dtype)
                self.gx_pad = np.empty(self.pad_shape, dtype=dtype)
                if p:
                    self.gin = np.empty((n, c, h, w), dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        p = self.padding
        if p:
            self.padded[:, :, p:-p, p:-p] = x
            xp = self.padded
        else:
            xp = x
        # mode="clip" is an identity for these compile-time in-range indices;
        # it matters because take's default "raise" mode with an ``out``
        # buffer goes through a ~2x slower buffered path.
        np.take(
            xp.reshape(self.n, self.in_flat), self.idx, axis=1, out=self.cols_rows, mode="clip"
        )
        w_mat = self.cast(self.weight).reshape(self.c_out, -1)
        # The transposed-view matmul form is load-bearing: it is the exact
        # BLAS call of the legacy kernels, keeping float64 plans bit-exact.
        np.matmul(self.cols, w_mat.T, out=self.mm)
        self.mm += self.cast(self.bias)
        np.copyto(self.out, self.mm4.transpose(0, 3, 1, 2))
        return self.out

    def backward(self, grad: np.ndarray):
        np.copyto(self.gmat4, grad.transpose(0, 2, 3, 1))
        if self.mode == "train":
            self.accumulate(self.weight, (self.gmat.T @ self.cols).reshape(self.weight.shape))
            self.accumulate(self.bias, self.gmat.sum(axis=0))
            if self.first:
                return None
        w_mat = self.cast(self.weight).reshape(self.c_out, -1)
        np.matmul(self.gmat, w_mat, out=self.gcols)
        col2im(self.gcols, self.pad_shape, self.kernel, self.stride, self.oh, self.ow, out=self.gx_pad)
        p = self.padding
        if p:
            np.copyto(self.gin, self.gx_pad[:, :, p:-p, p:-p])
            return self.gin
        return self.gx_pad


class _MaxPoolOp(_Op):
    def __init__(self, layer_index, layer, n, in_shape, dtype, mode):
        super().__init__(layer_index)
        c, h, w = in_shape
        size, stride = layer.size, layer.stride
        self.size, self.stride = size, stride
        self.fast = stride == size and h % size == 0 and w % size == 0
        self.track_grad = mode != "infer"
        if self.fast:
            oh, ow = h // size, w // size
        else:
            oh = conv_output_size(h, size, stride)
            ow = conv_output_size(w, size, stride)
        self.oh, self.ow = oh, ow
        self.in_full = (n, c, h, w)
        self.blocks_shape = (n, c, oh, size, ow, size)  # fast path only
        self.out = np.empty((n, c, oh, ow), dtype=dtype)
        self.flat = self.arg = self.gflat = self.gin = None
        self.cols_rows = self.cols = self.rows = self.gcols = self.gx_nc = None
        if self.fast:
            if self.track_grad:
                self.flat = np.empty((n, c, oh, ow, size * size), dtype=dtype)
                self.arg = np.empty((n, c, oh, ow), dtype=np.intp)
                self.gflat = np.empty((n, c, oh, ow, size * size), dtype=dtype)
                self.gin = np.empty((n, c, h, w), dtype=dtype)
        else:
            self.idx, _, _ = im2col_indices(1, h, w, size, stride)
            cells = n * c * oh * ow
            self.cols_rows = np.empty((n * c, oh * ow * size * size), dtype=dtype)
            self.cols = self.cols_rows.reshape(cells, size * size)
            self.out_flat = self.out.reshape(cells)
            if self.track_grad:
                self.arg = np.empty(cells, dtype=np.intp)
                self.rows = np.arange(cells)
                self.gcols = np.empty((cells, size * size), dtype=dtype)
                self.gx_nc = np.empty((n * c, 1, h, w), dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = self.in_full
        if self.fast:
            size = self.size
            if not self.track_grad:
                # Unrolled strided maximum: each (i, j) slice is one window
                # position across the whole batch.  Max is an exact selection,
                # so this is bitwise identical to the axis reduction — and an
                # order of magnitude faster than np.max over split axes.
                slices = [
                    x[:, :, i::size, j::size] for i in range(size) for j in range(size)
                ]
                if len(slices) == 1:
                    np.copyto(self.out, slices[0])
                else:
                    np.maximum(slices[0], slices[1], out=self.out)
                    for block in slices[2:]:
                        np.maximum(self.out, block, out=self.out)
                return self.out
            blocks = x.reshape(self.blocks_shape)
            flat6 = self.flat.reshape(self.blocks_shape[:3] + (self.ow, self.size, self.size))
            np.copyto(flat6, blocks.transpose(0, 1, 2, 4, 3, 5))
            np.argmax(self.flat, axis=-1, out=self.arg)
            np.max(self.flat, axis=-1, out=self.out)
            return self.out
        # mode="clip": identity for in-range indices, skips the slow
        # buffered path take's default "raise" mode takes with ``out``.
        np.take(x.reshape(n * c, h * w), self.idx, axis=1, out=self.cols_rows, mode="clip")
        if self.track_grad:
            np.argmax(self.cols, axis=1, out=self.arg)
        np.max(self.cols, axis=1, out=self.out_flat)
        return self.out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self.in_full
        size = self.size
        if self.fast:
            self.gflat.fill(0.0)
            np.put_along_axis(self.gflat, self.arg[..., None], grad[..., None], axis=-1)
            gin6 = self.gin.reshape(self.blocks_shape)
            gsrc = self.gflat.reshape(n, c, self.oh, self.ow, size, size)
            np.copyto(gin6, gsrc.transpose(0, 1, 2, 4, 3, 5))
            return self.gin
        self.gcols.fill(0.0)
        self.gcols[self.rows, self.arg] = grad.reshape(len(self.rows))
        col2im(self.gcols, (n * c, 1, h, w), size, self.stride, self.oh, self.ow, out=self.gx_nc)
        return self.gx_nc.reshape(self.in_full)


class _AvgPoolOp(_Op):
    def __init__(self, layer_index, layer, n, in_shape, dtype, mode):
        super().__init__(layer_index)
        c, h, w = in_shape
        size = layer.size
        self.blocks_shape = (n, c, h // size, size, w // size, size)
        self.out = np.empty((n, c, h // size, w // size), dtype=dtype)
        self.divisor = np.dtype(dtype).type(size * size)
        self.gin = np.empty((n, c, h, w), dtype=dtype) if mode != "infer" else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        blocks = x.reshape(self.blocks_shape)
        np.mean(blocks, axis=(3, 5), dtype=self.out.dtype, out=self.out)
        return self.out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        gin6 = self.gin.reshape(self.blocks_shape)
        # Fill then divide (not a reciprocal multiply): the per-element op
        # sequence of the legacy kernel, preserved for bitwise parity.
        gin6[:] = grad[:, :, :, None, :, None]
        self.gin /= self.divisor
        return self.gin


class _BnTrainOp(_Op):
    """Training-mode batch norm: batch statistics, float64 running updates."""

    def __init__(self, layer_index, layer, n, in_shape, dtype, cast, accumulate):
        super().__init__(layer_index)
        self.layer = layer
        self.gamma, self.beta = layer.params["gamma"], layer.params["beta"]
        self.cast = cast
        self.accumulate = accumulate
        full = (n,) + tuple(in_shape)
        self.xhat = np.empty(full, dtype=dtype)
        self.out = np.empty(full, dtype=dtype)
        self._inv_std = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        layer = self.layer
        axes, shape = layer._axes, layer._shape
        mean = x.mean(axis=axes)
        var = x.var(axis=axes)
        momentum = layer.momentum
        layer.running_mean = momentum * layer.running_mean + (1 - momentum) * mean.astype(
            np.float64
        )
        layer.running_var = momentum * layer.running_var + (1 - momentum) * var.astype(np.float64)
        inv_std = (1.0 / np.sqrt(var + layer.eps)).reshape(shape).astype(x.dtype)
        np.subtract(x, mean.reshape(shape), out=self.xhat)
        self.xhat *= inv_std
        np.multiply(self.xhat, self.cast(self.gamma).reshape(shape), out=self.out)
        self.out += self.cast(self.beta).reshape(shape)
        self._inv_std = inv_std
        return self.out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        layer = self.layer
        axes, shape = layer._axes, layer._shape
        self.accumulate(self.gamma, (grad * self.xhat).sum(axis=axes))
        self.accumulate(self.beta, grad.sum(axis=axes))
        grad *= self.cast(self.gamma).reshape(shape) * self._inv_std
        return grad


# -- the plan -------------------------------------------------------------------


class CompiledPlan:
    """A network lowered for one exact ``(batch shape, dtype, mode)``.

    Instances are built by :func:`compile_plan` and cached per engine.  All
    returned arrays are plan-owned buffers overwritten by the next call in
    the same mode — callers (the engines) copy at their public boundaries.
    """

    def __init__(self, network, batch_shape, dtype, mode, cast, accumulate=None):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if mode == "train" and accumulate is None:
            raise ValueError("train-mode plans need an accumulate(param, grad) hook")
        self.network = network
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.dtype = np.dtype(dtype)
        self.mode = mode
        self.generation = 0
        self.steps = _build(network, self.batch_shape, self.dtype, mode, cast, accumulate)
        self._seed = None
        if mode != "infer":
            out_full = (self.batch_shape[0],) + tuple(network.output_shape)
            self._seed = np.empty(out_full, dtype=self.dtype)

    @property
    def arena_bytes(self) -> int:
        """Total bytes of preallocated activation/scratch/gradient buffers."""
        total = 0
        for op in self.steps:
            for value in vars(op).values():
                if isinstance(value, np.ndarray) and value.base is None:
                    total += value.nbytes
            for post in op.posts:
                for value in vars(post).values():
                    if isinstance(value, np.ndarray) and value.base is None:
                        total += value.nbytes
        return total

    def _execute(self, x: np.ndarray) -> np.ndarray:
        buf = x
        for op in self.steps:
            buf = op.forward(buf)
            for post in op.posts:
                post.apply(buf, buf)
        return buf

    def run(self, x: np.ndarray) -> np.ndarray:
        """Inference forward.  Returns a plan-owned buffer."""
        return self._execute(x)

    def run_forward(self, x: np.ndarray) -> tuple[np.ndarray, int]:
        """Gradient/training forward; returns ``(logits buffer, generation)``.

        The generation stamps the stashed activations: pass it back to
        :meth:`run_backward`, which refuses to consume a stale context.
        """
        self.generation += 1
        return self._execute(x), self.generation

    def run_backward(self, seed: np.ndarray, generation: int):
        """Replay the stack in reverse for a logits cotangent ``seed``.

        ``grad`` mode returns the input gradient (plan-owned buffer);
        ``train`` mode accumulates into parameter ``.grad`` slots and
        returns ``None``.  The caller's seed is copied before any in-place
        transform, so reused seed arrays (the Jacobian loop) stay intact.
        """
        if generation != self.generation:
            guards.stale_context(
                f"CompiledPlan[{self.mode}].run_backward",
                f"context generation {generation} != plan generation {self.generation}; "
                "a later forward overwrote the stashed activations",
            )
        np.copyto(self._seed, seed)
        grad = self._seed
        for op in reversed(self.steps):
            for post in reversed(op.posts):
                grad = post.backward(grad)
            grad = op.backward(grad)
            if grad is None:
                return None
        return grad

    def layer_outputs(self, x: np.ndarray) -> list[np.ndarray]:
        """Per-layer activations as fresh copies, aligned with ``network.layers``.

        Fused stages are applied one at a time with a snapshot between, so
        the differential verifier can compare every layer — including ones
        whose intermediate buffer the fused execution overwrites in place.
        """
        outs: list[np.ndarray] = []
        buf = x
        for op in self.steps:
            if self.mode != "infer":
                self.generation += 1  # stashes are being overwritten
            buf = op.forward(buf)
            outs.append(buf.copy())
            for post in op.posts:
                post.apply(buf, buf)
                outs.append(buf.copy())
        return outs


def compile_plan(network, batch_shape, dtype, mode, cast, accumulate=None) -> CompiledPlan:
    """Compile ``network`` for one exact batch shape, dtype and mode.

    ``cast`` maps a parameter :class:`~repro.nn.tensor.Tensor` to its
    engine-dtype array (pass the engine's staleness-checked cast cache);
    ``accumulate(param, grad)`` is required in ``train`` mode.  Raises
    :class:`ValueError` for networks :func:`supports` rejects.
    """
    return CompiledPlan(network, batch_shape, dtype, mode, cast, accumulate)


# -- the compiler ---------------------------------------------------------------


def _build(network, batch_shape, dtype, mode, cast, accumulate):
    n = batch_shape[0]
    shape = tuple(batch_shape[1:])
    steps: list[_Op] = []
    # Whether the current buffer is plan-owned and safe for in-place fusion.
    # False at the head (the caller's input must never be mutated) and after
    # a protected tanh/sigmoid output in grad/train mode.
    owned = False
    track_grad = mode != "infer"

    def attach(stage) -> None:
        """Fuse onto the current step, or give the stage its own buffer."""
        nonlocal owned
        if owned and steps:
            steps[-1].posts.append(stage)
        else:
            steps.append(_EltOp(stage.layer_index, stage, (n,) + shape, dtype))
            owned = True

    for index, layer in enumerate(network.layers):
        first = index == 0
        if isinstance(layer, Dense):
            (in_features,) = shape
            steps.append(
                _DenseOp(index, layer, n, in_features, dtype, mode, cast, accumulate, first)
            )
            shape = (layer.out_features,)
            owned = True
        elif isinstance(layer, Conv2D):
            steps.append(_ConvOp(index, layer, n, shape, dtype, mode, cast, accumulate, first))
            shape = layer.output_shape(shape)
            owned = True
        elif isinstance(layer, MaxPool2D):
            steps.append(_MaxPoolOp(index, layer, n, shape, dtype, mode))
            shape = layer.output_shape(shape)
            owned = True
        elif isinstance(layer, AvgPool2D):
            steps.append(_AvgPoolOp(index, layer, n, shape, dtype, mode))
            shape = layer.output_shape(shape)
            owned = True
        elif isinstance(layer, Flatten):
            features = 1
            for dim in shape:
                features *= int(dim)
            steps.append(_ReshapeOp(index, (n,) + shape, (n, features)))
            shape = (features,)
            # A view: ownership (and protection) of the underlying buffer
            # carries through unchanged.
        elif isinstance(layer, ReLU):
            attach(_ReluStage(index, (n,) + shape, track_grad))
        elif isinstance(layer, (Tanh, Sigmoid)):
            stage_cls = _TanhStage if isinstance(layer, Tanh) else _SigmoidStage
            stage = stage_cls(index, track_grad)
            if mode == "infer":
                attach(stage)
            else:
                # Protected: the backward reads these output values, so the
                # stage gets a buffer of its own (never fused onto the
                # producer) and nothing may fuse over it afterwards.
                steps.append(_EltOp(index, stage, (n,) + shape, dtype))
                owned = False
        elif isinstance(layer, Dropout):
            if mode == "train" and layer.rate > 0.0:
                attach(_DropoutTrainStage(index, layer))
            else:
                steps.append(_PassOp(index))
        elif isinstance(layer, _BatchNormBase):
            if mode == "train":
                steps.append(_BnTrainOp(index, layer, n, shape, dtype, cast, accumulate))
                owned = True
            else:
                attach(_BnEvalStage(index, layer, dtype, track_grad))
        else:
            raise ValueError(
                f"cannot compile a plan for layer type {type(layer).__name__}; "
                "check plan.supports(network) first"
            )

    return steps
