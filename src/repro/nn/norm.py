"""Normalisation layers."""

from __future__ import annotations

import numpy as np

from . import ops
from .layers import Layer
from .tensor import Tensor

__all__ = ["BatchNorm2D", "BatchNorm1D"]


class _BatchNormBase(Layer):
    """Shared batch-norm logic; subclasses define the reduction axes."""

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params = {
            "gamma": Tensor(np.ones(num_features), requires_grad=True),
            "beta": Tensor(np.zeros(num_features), requires_grad=True),
        }
        # Running statistics are state, not parameters (no gradients).
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    # Axes over which statistics are computed, and the broadcast shape of
    # the per-feature vectors.
    _axes: tuple[int, ...]
    _shape: tuple[int, ...]

    def forward(self, x: Tensor, training: bool) -> Tensor:
        if training:
            mean = x.data.mean(axis=self._axes)
            var = x.data.var(axis=self._axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        mean_b = mean.reshape(self._shape)
        std_b = np.sqrt(var + self.eps).reshape(self._shape)
        # Statistics are treated as constants (a standard, stable
        # simplification: gradients flow through the affine normalisation
        # but not through the batch statistics themselves).
        normalised = ops.mul(x - Tensor(mean_b), 1.0 / std_b)
        gamma = ops.reshape(self.params["gamma"], self._shape)
        beta = ops.reshape(self.params["beta"], self._shape)
        return ops.add(ops.mul(normalised, gamma), beta)

    def state(self) -> dict[str, np.ndarray]:
        state = super().state()
        state["running_mean"] = self.running_mean.copy()
        state["running_var"] = self.running_var.copy()
        return state

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        self.running_mean = np.asarray(state.pop("running_mean")).copy()
        self.running_var = np.asarray(state.pop("running_var")).copy()
        super().load_state(state)


class BatchNorm2D(_BatchNormBase):
    """Batch normalisation over NCHW feature maps."""

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__(num_features, momentum, eps)
        self._axes = (0, 2, 3)
        self._shape = (1, num_features, 1, 1)


class BatchNorm1D(_BatchNormBase):
    """Batch normalisation over (N, features) activations."""

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__(num_features, momentum, eps)
        self._axes = (0,)
        self._shape = (1, num_features)
