"""Mini-batch training loop with history tracking."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .losses import cross_entropy
from .network import Network
from .optim import Optimizer
from .tensor import Tensor

__all__ = ["TrainConfig", "History", "fit"]


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`fit`."""

    epochs: int = 10
    batch_size: int = 128
    shuffle: bool = True
    verbose: bool = False
    # Optional per-epoch multiplicative LR decay (1.0 = constant).
    lr_decay: float = 1.0


@dataclass
class History:
    """Per-epoch training metrics."""

    loss: list[float] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    seconds: float = 0.0


def fit(
    network: Network,
    optimizer: Optimizer,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    rng: np.random.Generator,
    loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
) -> History:
    """Train ``network`` on ``(x, y)``.

    ``y`` may be integer labels (default cross-entropy) or, with a custom
    ``loss_fn``, per-example soft-target rows (distillation).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    history = History()
    start = time.perf_counter()
    indices = np.arange(len(x))
    for epoch in range(config.epochs):
        if config.shuffle:
            rng.shuffle(indices)
        epoch_loss = 0.0
        correct = 0
        for begin in range(0, len(x), config.batch_size):
            batch_idx = indices[begin : begin + config.batch_size]
            xb, yb = x[batch_idx], y[batch_idx]
            optimizer.zero_grad()
            logits = network.forward(Tensor(xb), training=True)
            loss = loss_fn(logits, yb)
            loss.backward()
            optimizer.step()
            epoch_loss += float(loss.data) * len(xb)
            predicted = logits.data.argmax(axis=-1)
            hard = yb if yb.ndim == 1 else yb.argmax(axis=-1)
            correct += int((predicted == hard).sum())
        history.loss.append(epoch_loss / len(x))
        history.accuracy.append(correct / len(x))
        if x_val is not None and y_val is not None:
            history.val_accuracy.append(network.accuracy(x_val, y_val))
        if config.lr_decay != 1.0 and hasattr(optimizer, "lr"):
            optimizer.lr *= config.lr_decay
        if config.verbose:
            val = f" val_acc={history.val_accuracy[-1]:.4f}" if history.val_accuracy else ""
            print(
                f"epoch {epoch + 1}/{config.epochs}: "
                f"loss={history.loss[-1]:.4f} acc={history.accuracy[-1]:.4f}{val}"
            )
    history.seconds = time.perf_counter() - start
    return history
