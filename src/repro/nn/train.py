"""Mini-batch training loop with history tracking.

Since PR 3 the loop is served by the fused
:class:`~repro.nn.train_engine.TrainingEngine` whenever the loss is one
the engine can seed natively (a :class:`~repro.nn.train_engine.TrainLoss`
— the default cross-entropy, distillation's soft targets, the
autoencoder MSE).  A custom autograd ``loss_fn`` callable keeps the
legacy float64 Tensor-graph path, as does ``TrainConfig(engine=False)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .losses import cross_entropy
from .network import Network
from .optim import Optimizer
from .schedules import Schedule
from .tensor import Tensor
from .train_engine import CROSS_ENTROPY, TrainingEngine, TrainLoss

__all__ = ["TrainConfig", "History", "fit"]


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`fit`."""

    epochs: int = 10
    batch_size: int = 128
    shuffle: bool = True
    verbose: bool = False
    # Optional per-epoch multiplicative LR decay (1.0 = constant); a thin
    # shim over `schedule` — ignored when a schedule is given.
    lr_decay: float = 1.0
    # Optional LR schedule: a `Schedule` or any `epoch -> lr` callable,
    # applied before each epoch (and once more with `epochs` at the end,
    # matching the legacy post-epoch decay semantics).
    schedule: Schedule | Callable[[int], float] | None = None
    # Compute dtype of the fused training kernels ("float32"/"float64").
    dtype: str = "float32"
    # Route batches through the TrainingEngine; False = legacy autograd.
    engine: bool = True


@dataclass
class History:
    """Per-epoch training metrics.

    ``interrupted`` marks a history cut short by ``KeyboardInterrupt``:
    :func:`fit` flushes the completed-epoch metrics, attaches the partial
    history to the exception (``exc.partial_history``) and re-raises, so
    an interrupted run exits cleanly without losing what it measured.
    """

    loss: list[float] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    seconds: float = 0.0
    interrupted: bool = False


def _resolve_schedule(config: TrainConfig, base_lr: float) -> Callable[[int], float] | None:
    """The effective epoch->lr callable, or None for a constant rate."""
    if config.schedule is not None:
        sched = config.schedule
        return sched.rate if isinstance(sched, Schedule) else sched
    if config.lr_decay != 1.0:
        return lambda epoch: base_lr * config.lr_decay**epoch
    return None


def _resolve_engine(network: Network, config: TrainConfig) -> TrainingEngine:
    """The network's training engine, re-attached if the dtype differs.

    An engine deliberately forced onto the autograd fallback (the
    degradation ladder's reference rung) is kept as-is: replacing it would
    silently revert the downgrade mid-recovery.
    """
    engine = network.train_engine
    if getattr(engine, "forced_fallback", False):
        return engine
    if engine.dtype != np.dtype(config.dtype):
        engine = TrainingEngine(network, dtype=config.dtype)
        network.attach_train_engine(engine)
    return engine


def fit(
    network: Network,
    optimizer: Optimizer,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    rng: np.random.Generator,
    loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    loss: TrainLoss | None = None,
) -> History:
    """Train ``network`` on ``(x, y)``.

    ``y`` may be integer labels (default cross-entropy) or per-example
    target rows (distillation soft labels, autoencoder images).  Pass a
    :class:`~repro.nn.train_engine.TrainLoss` via ``loss`` for the fused
    engine path with a non-default objective; a plain ``loss_fn``
    callable (autograd Tensor loss) forces the legacy float64 loop.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    if loss is None and loss_fn is cross_entropy:
        loss = CROSS_ENTROPY
    use_engine = config.engine and loss is not None
    if use_engine:
        engine = _resolve_engine(network, config)
        bound = engine.parameters_bound()
    else:
        x = np.asarray(x, dtype=np.float64)
        engine, bound = None, None
        if loss is not None:
            loss_fn = loss.tensor_fn

    history = History()
    schedule = _resolve_schedule(config, getattr(optimizer, "lr", 0.0))
    start = time.perf_counter()
    indices = np.arange(len(x))
    if bound is not None:
        bound.__enter__()
    try:
        for epoch in range(config.epochs):
            if schedule is not None and hasattr(optimizer, "lr"):
                optimizer.lr = schedule(epoch)
            epoch_start = time.perf_counter()
            if config.shuffle:
                rng.shuffle(indices)
            epoch_loss = 0.0
            correct = 0
            for begin in range(0, len(x), config.batch_size):
                batch_idx = indices[begin : begin + config.batch_size]
                xb, yb = x[batch_idx], y[batch_idx]
                optimizer.zero_grad()
                if engine is not None:
                    loss_value, logits_data = engine.train_batch(xb, yb, loss=loss)
                else:
                    logits = network.forward(Tensor(xb), training=True)
                    loss_t = loss_fn(logits, yb)
                    loss_t.backward()
                    loss_value, logits_data = float(loss_t.data), logits.data
                optimizer.step()
                epoch_loss += loss_value * len(xb)
                predicted = logits_data.argmax(axis=-1)
                hard = yb if yb.ndim == 1 else yb.argmax(axis=-1)
                correct += int((predicted == hard).sum())
            history.loss.append(epoch_loss / len(x))
            history.accuracy.append(correct / len(x))
            history.epoch_seconds.append(time.perf_counter() - epoch_start)
            if x_val is not None and y_val is not None:
                history.val_accuracy.append(network.accuracy(x_val, y_val))
            if config.verbose:
                val = f" val_acc={history.val_accuracy[-1]:.4f}" if history.val_accuracy else ""
                print(
                    f"epoch {epoch + 1}/{config.epochs}: "
                    f"loss={history.loss[-1]:.4f} acc={history.accuracy[-1]:.4f}{val}"
                )
        # Leave the optimiser at the post-training rate, exactly as the
        # legacy per-epoch multiplicative decay did.
        if schedule is not None and hasattr(optimizer, "lr"):
            optimizer.lr = schedule(config.epochs)
    except KeyboardInterrupt as exc:
        # Exit cleanly: flush what the completed epochs measured, hand the
        # partial history to the caller via the exception, and re-raise so
        # the interrupt still unwinds (the runner journals it).
        history.seconds = time.perf_counter() - start
        history.interrupted = True
        exc.partial_history = history
        raise
    finally:
        if bound is not None:
            bound.__exit__(None, None, None)
    history.seconds = time.perf_counter() - start
    return history
