"""NumPy deep-learning substrate: autograd, layers, losses, optimisers.

This package replaces the Keras/TensorFlow stack the paper used; see
DESIGN.md §2 for the substitution rationale.
"""

from . import gradcheck, init, losses, metrics, ops, optim, schedules
from .engine import EngineCounters, InferenceEngine, counter_delta
from .grad_engine import GradientCounters, GradientEngine
from .layers import AvgPool2D, Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Sigmoid, Tanh
from .norm import BatchNorm1D, BatchNorm2D
from .network import Network
from .optim import SGD, Adam
from .plan import DEFAULT_PLAN_ENTRIES, CompiledPlan, compile_plan
from .tensor import Tensor, as_tensor, no_grad
from .train import History, TrainConfig, fit
from .train_engine import (
    CROSS_ENTROPY,
    MSE,
    TrainingCounters,
    TrainingEngine,
    TrainLoss,
    soft_cross_entropy_loss,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "Network",
    "InferenceEngine",
    "EngineCounters",
    "counter_delta",
    "GradientEngine",
    "GradientCounters",
    "TrainingEngine",
    "TrainingCounters",
    "TrainLoss",
    "CROSS_ENTROPY",
    "MSE",
    "soft_cross_entropy_loss",
    "CompiledPlan",
    "compile_plan",
    "DEFAULT_PLAN_ENTRIES",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "SGD",
    "Adam",
    "TrainConfig",
    "History",
    "fit",
    "ops",
    "losses",
    "optim",
    "init",
    "metrics",
    "schedules",
    "gradcheck",
]
