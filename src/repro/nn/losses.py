"""Loss functions.

All losses map a logits tensor (and targets) to a scalar tensor.  The
distillation loss implements the temperature-scaled soft-label objective of
Papernot et al. used as one of the paper's comparison defenses.
"""

from __future__ import annotations

import numpy as np

from . import ops
from .tensor import Tensor

__all__ = [
    "cross_entropy",
    "soft_cross_entropy",
    "mse",
    "one_hot",
]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer labels to one-hot rows."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError(f"labels outside [0, {num_classes})")
    encoded = np.zeros((len(labels), num_classes))
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits and integer labels."""
    targets = one_hot(labels, logits.shape[-1])
    log_probs = ops.log_softmax(logits)
    per_example = ops.sum_(ops.mul(log_probs, targets), axis=-1)
    return ops.mul(ops.mean(per_example), -1.0)


def soft_cross_entropy(logits: Tensor, soft_targets: np.ndarray, temperature: float = 1.0) -> Tensor:
    """Mean cross-entropy against soft target distributions.

    Used by defensive distillation: the student is trained at temperature
    ``T`` against the teacher's temperature-``T`` softmax outputs.
    """
    soft_targets = np.asarray(soft_targets)
    log_probs = ops.log_softmax(logits, temperature=temperature)
    per_example = ops.sum_(ops.mul(log_probs, soft_targets), axis=-1)
    return ops.mul(ops.mean(per_example), -1.0)


def mse(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error (used by autoencoder-style extensions)."""
    diff = predictions - Tensor(np.asarray(targets))
    return ops.mean(ops.mul(diff, diff))
