"""Numerical gradient checking for custom ops and layers.

The test suite uses this extensively; it is exported as a public utility
so downstream users adding ops to :mod:`repro.nn.ops` (or layers) can
verify their backward passes the same way.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, no_grad

__all__ = [
    "numerical_gradient",
    "check_gradients",
    "check_network_input_gradients",
    "GradientCheckError",
]


class GradientCheckError(AssertionError):
    """Raised when analytic and numerical gradients disagree."""


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function at ``x``.

    ``fn`` must treat ``x`` as read-only between calls; this routine
    mutates entries in place and restores them.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(
    op: Callable[..., Tensor],
    shapes: Sequence[tuple[int, ...]],
    rtol: float = 1e-5,
    atol: float = 1e-5,
    positive: bool = False,
    seed: int = 0,
) -> None:
    """Verify ``op``'s backward pass against finite differences.

    The objective checked is ``sum(op(*inputs))``; each input gets its turn
    as the differentiated argument.  Raises :class:`GradientCheckError` on
    mismatch.
    """
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=shape) for shape in shapes]
    if positive:
        arrays = [np.abs(a) + 0.5 for a in arrays]

    for target in range(len(arrays)):
        tensors = [Tensor(a.copy(), requires_grad=(i == target)) for i, a in enumerate(arrays)]
        out = op(*tensors)
        out.sum().backward()
        analytic = tensors[target].grad
        if analytic is None:
            raise GradientCheckError(f"op produced no gradient for input {target}")

        def scalar(value: np.ndarray, target=target) -> float:
            inputs = [value if i == target else arrays[i] for i in range(len(arrays))]
            with no_grad():
                return float(op(*[Tensor(v) for v in inputs]).sum().data)

        numeric = numerical_gradient(scalar, arrays[target].copy())
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = float(np.abs(analytic - numeric).max())
            raise GradientCheckError(
                f"gradient mismatch on input {target}: max abs error {worst:.3e}"
            )


def check_network_input_gradients(
    network,
    x: np.ndarray,
    seed: np.ndarray | None = None,
    rtol: float = 1e-4,
    atol: float = 1e-5,
    eps: float = 1e-6,
) -> None:
    """Verify a whole network's autograd *input* gradient by finite differences.

    Checks ``∂ Σ(seed · H(x)) / ∂x`` — the cotangent-seeded input gradient
    every attack consumes — against central differences through the full
    inference-mode forward pass.  This pins down the float64 autograd
    reference the differential verifier (:mod:`repro.verify.differ`)
    measures the fused engines against: the engines agree with autograd,
    and autograd agrees with the mathematical derivative.

    ``seed`` defaults to all-ones (the sum of logits).  Intended for tiny
    networks/inputs — finite differencing is O(x.size) forward passes.
    Raises :class:`GradientCheckError` on mismatch.
    """
    x = np.asarray(x, dtype=np.float64)
    inp = Tensor(x.copy(), requires_grad=True)
    logits = network.forward(inp)
    cotangent = np.ones_like(logits.data) if seed is None else np.asarray(seed, dtype=np.float64)
    logits.backward(cotangent)
    analytic = inp.grad
    if analytic is None:
        raise GradientCheckError("network produced no input gradient")

    def scalar(value: np.ndarray) -> float:
        with no_grad():
            return float((network.forward(Tensor(value)).data * cotangent).sum())

    numeric = numerical_gradient(scalar, x.copy(), eps=eps)
    if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
        worst = float(np.abs(analytic - numeric).max())
        raise GradientCheckError(
            f"network input-gradient mismatch: max abs error {worst:.3e}"
        )
