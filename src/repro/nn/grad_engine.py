"""The gradient engine: fused forward+backward kernels for the attack hot path.

Where :class:`~repro.nn.engine.InferenceEngine` (PR 1) gave every
*prediction* a raw-NumPy fast path, this module does the same for the
evaluation's true cost centre: the input gradients ``∂loss/∂x`` that every
gradient-based attack (FGSM/IGSM/PGD, L-BFGS, DeepFool, JSMA, the CW suite
and the adaptive detector-aware CW) recomputes thousands of times.  The
legacy path builds a full float64 autograd graph per iteration — one Python
closure per op, one float64 temporary per edge.  The engine instead runs
hand-written, dtype-configurable (float32 by default) forward and backward
kernels with no :class:`~repro.nn.tensor.Tensor` wrappers at all:

Fused forward/backward with stashed activations
    :meth:`forward` runs the network once and returns ``(logits, ctx)``
    where ``ctx`` captures exactly what each layer's backward needs (ReLU
    masks, pool argmaxes, conv geometries).  :meth:`backward` seeds the
    logits with an arbitrary cotangent and replays the stack in reverse.
    Because the context is reusable, :meth:`jacobian` does **one** forward
    followed by ``C`` seeded backwards instead of the legacy ``C`` full
    forward+backward passes.

Cached im2col index sets
    Convolution (and the strided max-pool path) gather their patch matrices
    through integer index sets cached per input geometry
    ``(channels, height, width, kernel, stride)``, so steady-state attack
    iterations spend their time inside BLAS matmuls, not index arithmetic.

Counters and an autograd fallback
    ``engine.counters`` (:class:`GradientCounters`) tracks backward batches,
    examples, wall-clock seconds and fallback passes in the same style as
    the PR-1 inference counters.  Networks containing unknown layer types
    transparently fall back to the float64 autograd path (recorded in
    ``counters.fallbacks``), so the public API never changes behaviour —
    only speed.

Dtype policy: attacks default to float32 through this engine; training
(:mod:`repro.nn.train`) stays on the float64 autograd path.  See DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..verify import guards
from .layers import AvgPool2D, Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Sigmoid, Tanh
from .norm import _BatchNormBase
from .ops import stable_sigmoid
from .tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - circular import avoided at runtime
    from .network import Network

__all__ = ["GradientEngine", "GradientCounters", "margin_seed", "im2col_indices"]

DEFAULT_BATCH_SIZE = 256

# Offset excluding the target class from max_{i != t} Z_i (matches attacks.cw).
_EXCLUDE = 1e6

# (channels, h, w, kernel, stride) -> (gather indices, out_h, out_w).
# Module-level so the gradient and training engines (and several engines per
# network) share one set of integer index arrays per geometry.
_IM2COL_CACHE: dict[tuple[int, int, int, int, int], tuple[np.ndarray, int, int]] = {}


def im2col_indices(c: int, h: int, w: int, kernel: int, stride: int):
    """Gather indices turning a flat image into im2col patch rows.

    Cached per input geometry; the returned flat index array has
    ``out_h * out_w * c * kernel²`` entries addressing the flattened
    ``(c, h, w)`` image in the same ``(row: oh, ow; col: c, kh, kw)``
    order as :func:`repro.nn.ops.im2col`, ready for ``np.take``.
    """
    key = (c, h, w, kernel, stride)
    cached = _IM2COL_CACHE.get(key)
    if cached is None:
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        ks = np.arange(kernel)
        rows = np.arange(out_h) * stride
        cols = np.arange(out_w) * stride
        idx = (
            np.arange(c)[None, None, :, None, None] * (h * w)
            + (rows[:, None] + ks[None, :])[:, None, None, :, None] * w
            + (cols[:, None] + ks[None, :])[None, :, None, None, :]
        )
        cached = (np.ascontiguousarray(idx.reshape(-1)), out_h, out_w)
        _IM2COL_CACHE[key] = cached
    return cached


@dataclass
class GradientCounters:
    """Cumulative backward-pass work counters of one gradient engine."""

    requests: int = 0  # public gradient calls answered
    backward_batches: int = 0  # seeded backward executions
    examples: int = 0  # rows pushed through a backward pass
    seconds: float = 0.0  # wall clock inside forward/backward kernels
    fallbacks: int = 0  # backward passes served by float64 autograd

    def as_dict(self) -> dict[str, float]:
        return asdict(self)

    def snapshot(self) -> "GradientCounters":
        return replace(self)


def margin_seed(
    logits: np.ndarray, target_labels: np.ndarray, confidence: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Cotangent of the CW objective ``f = max(max_{i≠t} Z_i − Z_t + κ, 0)``.

    Returns ``(seed, margin)`` where ``seed`` is the float64 ``∂Σf/∂Z``
    matrix (rows zero once the hinge is inactive) and ``margin`` is the raw
    per-example margin (without the hinge).  Shared by
    :meth:`GradientEngine.margin_input_grad` and the detector-aware
    adaptive attack, which needs the seed alone to compose losses across
    two networks before a single backward pass.
    """
    target_labels = np.asarray(target_labels)
    z = np.asarray(logits, dtype=np.float64)
    n = len(z)
    rows = np.arange(n)
    z_target = z[rows, target_labels]
    masked = z.copy()
    masked[rows, target_labels] -= _EXCLUDE
    other = masked.argmax(axis=-1)
    margin = masked[rows, other] - z_target + confidence
    active = (margin >= 0.0).astype(np.float64)
    seed = np.zeros_like(z)
    seed[rows, other] += active
    seed[rows, target_labels] -= active
    return seed, margin


class _NativeContext:
    """Per-layer activations stashed by a native forward pass (reusable)."""

    __slots__ = ("layer_ctxs", "batch_len")

    def __init__(self, layer_ctxs: list, batch_len: int):
        self.layer_ctxs = layer_ctxs
        self.batch_len = batch_len


class _FallbackContext:
    """Autograd-backed context for networks with unknown layers.

    The first backward consumes the graph recorded during
    :meth:`GradientEngine.forward`; later backwards (the Jacobian's
    per-class seeds) re-run the float64 forward, reproducing the legacy
    cost exactly.
    """

    __slots__ = ("network", "x", "inp", "logits", "batch_len")

    def __init__(self, network: "Network", x: np.ndarray):
        self.network = network
        self.x = np.asarray(x, dtype=np.float64)
        self.inp = Tensor(self.x, requires_grad=True)
        self.logits = network.forward(self.inp)
        self.batch_len = len(self.x)

    def run(self, seed: np.ndarray) -> np.ndarray:
        if self.inp is None:  # graph already consumed: re-forward
            inp = Tensor(self.x, requires_grad=True)
            logits = self.network.forward(inp)
        else:
            inp, logits = self.inp, self.logits
            self.inp = self.logits = None
        logits.backward(np.asarray(seed, dtype=np.float64))
        assert inp.grad is not None
        return inp.grad


class GradientEngine:
    """Batched, instrumented, dtype-configurable input gradients for one network.

    Parameters
    ----------
    network:
        The :class:`~repro.nn.network.Network` to differentiate through.
        Parameters are read live: rebinding them (optimiser step,
        ``load_state``) invalidates the cast cache automatically.
    dtype:
        Compute dtype of the fused kernels.  ``float32`` (default) roughly
        doubles BLAS throughput; ``float64`` tracks the autograd reference
        to ~1e-10.
    batch_size:
        Default batch plan of the public gradient methods; per-call
        ``batch_size`` overrides it.
    native:
        ``False`` skips kernel compilation, forcing every pass onto the
        float64 autograd fallback — the degradation ladder's reference
        rung (see :mod:`repro.runner.policy`).
    """

    def __init__(
        self,
        network: "Network",
        dtype: np.dtype | type = np.float32,
        batch_size: int = DEFAULT_BATCH_SIZE,
        native: bool = True,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.network = network
        self.dtype = np.dtype(dtype)
        self.batch_size = batch_size
        self.counters = GradientCounters()
        # param-id -> (source array ref, version, cast copy); checked by
        # identity (rebinding) and version (in-place optimiser updates).
        self._casts: dict[int, tuple[np.ndarray, int, np.ndarray]] = {}
        self._kernels = self._compile() if native else None

    # -- public API -----------------------------------------------------------

    @property
    def supports_native(self) -> bool:
        """Whether every layer runs on the fused raw-NumPy kernels."""
        return self._kernels is not None

    def reset_counters(self) -> None:
        self.counters = GradientCounters()

    def invalidate(self) -> None:
        """Drop every cached parameter cast (index caches are geometry-keyed)."""
        self._casts.clear()

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        """One unbatched forward pass returning ``(logits, context)``.

        The context stashes every activation the backward needs and — on
        the native path — may be seeded repeatedly (:meth:`jacobian` runs
        ``C`` backwards against one context).  This is the advanced API;
        most callers want the loss-specific helpers below, which batch.
        """
        x = np.ascontiguousarray(np.asarray(x), dtype=self.dtype)
        start = time.perf_counter()
        if self._kernels is None:
            ctx: object = _FallbackContext(self.network, x)
            out = ctx.logits.data.astype(self.dtype)
        else:
            layer_ctxs = []
            out = x
            for forward_kernel, _ in self._kernels:
                out, layer_ctx = forward_kernel(out)
                layer_ctxs.append(layer_ctx)
            ctx = _NativeContext(layer_ctxs, len(x))
        self.counters.seconds += time.perf_counter() - start
        guards.check_output("GradientEngine.forward", out, self.dtype)
        return out, ctx

    def backward(self, ctx: object, seed: np.ndarray) -> np.ndarray:
        """Input gradient for the cotangent ``seed`` (``∂Σ(seed·Z)/∂x``).

        ``seed`` has the logits' shape; the result is in the engine dtype.
        """
        start = time.perf_counter()
        self.counters.backward_batches += 1
        if isinstance(ctx, _FallbackContext):
            self.counters.fallbacks += 1
            self.counters.examples += ctx.batch_len
            grad = ctx.run(seed).astype(self.dtype)
        else:
            assert isinstance(ctx, _NativeContext)
            self.counters.examples += ctx.batch_len
            grad = np.ascontiguousarray(np.asarray(seed), dtype=self.dtype)
            for (_, backward_kernel), layer_ctx in zip(
                reversed(self._kernels), reversed(ctx.layer_ctxs)
            ):
                grad = backward_kernel(grad, layer_ctx)
        self.counters.seconds += time.perf_counter() - start
        guards.check_output("GradientEngine.backward", grad, self.dtype)
        return grad

    def cross_entropy_input_grad(
        self, x: np.ndarray, labels: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """``∂ CE(H(x), labels) / ∂x`` summed over the batch (per-example rows).

        The softmax seed is computed in float64 for stability, the network
        passes in the engine dtype; the result is in the engine dtype.
        """
        self.counters.requests += 1
        x, labels = np.asarray(x), np.asarray(labels)
        out = np.empty(x.shape, dtype=self.dtype)
        for begin, end in self._plan(len(x), batch_size):
            logits, ctx = self.forward(x[begin:end])
            z = logits.astype(np.float64)
            shifted = z - z.max(axis=-1, keepdims=True)
            exps = np.exp(shifted)
            seed = exps / exps.sum(axis=-1, keepdims=True)
            seed[np.arange(end - begin), labels[begin:end]] -= 1.0
            out[begin:end] = self.backward(ctx, seed)
        return out

    def logit_input_grad(
        self, x: np.ndarray, class_index: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """``∂ H(x)_{class_index} / ∂x`` for a per-example class index."""
        self.counters.requests += 1
        x, class_index = np.asarray(x), np.asarray(class_index)
        num_classes = self.network.num_classes
        out = np.empty(x.shape, dtype=self.dtype)
        for begin, end in self._plan(len(x), batch_size):
            logits, ctx = self.forward(x[begin:end])
            seed = np.zeros((end - begin, num_classes), dtype=self.dtype)
            seed[np.arange(end - begin), class_index[begin:end]] = 1.0
            out[begin:end] = self.backward(ctx, seed)
        return out

    def margin_input_grad(
        self,
        x: np.ndarray,
        target_labels: np.ndarray,
        confidence: float = 0.0,
        batch_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gradient of the CW objective ``f(x) = max(max_{i≠t} Z_i − Z_t + κ, 0)``.

        Returns ``(grad, logits, margin)``: the per-example ``∂f/∂x`` rows
        (engine dtype), the logits (engine dtype) and the raw, un-hinged
        margin (float64) — everything the CW L2/L0/L∞ inner loops need from
        one fused pass.
        """
        self.counters.requests += 1
        x, target_labels = np.asarray(x), np.asarray(target_labels)
        num_classes = self.network.num_classes
        grad = np.empty(x.shape, dtype=self.dtype)
        logits_out = np.empty((len(x), num_classes), dtype=self.dtype)
        margin_out = np.empty(len(x), dtype=np.float64)
        for begin, end in self._plan(len(x), batch_size):
            logits, ctx = self.forward(x[begin:end])
            seed, margin = margin_seed(logits, target_labels[begin:end], confidence)
            grad[begin:end] = self.backward(ctx, seed)
            logits_out[begin:end] = logits
            margin_out[begin:end] = margin
        return grad, logits_out, margin_out

    def jacobian(
        self, x: np.ndarray, batch_size: int | None = None, with_logits: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Full logits Jacobian ``∂H(x)_c / ∂x``, shape ``(N, C, *input_shape)``.

        On the native path this is one forward followed by ``C`` seeded
        backwards against the *same* stashed activations — the legacy path
        re-ran the whole forward once per class.  The result (and, with
        ``with_logits=True``, the accompanying logits) is in the engine
        dtype.
        """
        self.counters.requests += 1
        x = np.asarray(x)
        num_classes = self.network.num_classes
        rows = np.empty((len(x), num_classes) + x.shape[1:], dtype=self.dtype)
        logits_out = np.empty((len(x), num_classes), dtype=self.dtype)
        for begin, end in self._plan(len(x), batch_size):
            logits, ctx = self.forward(x[begin:end])
            logits_out[begin:end] = logits
            seed = np.zeros((end - begin, num_classes), dtype=self.dtype)
            for c in range(num_classes):
                seed[:, c] = 1.0
                rows[begin:end, c] = self.backward(ctx, seed)
                seed[:, c] = 0.0
        return (rows, logits_out) if with_logits else rows

    # -- batching -------------------------------------------------------------

    def _plan(self, n: int, batch_size: int | None):
        step = batch_size or self.batch_size
        return ((begin, min(begin + step, n)) for begin in range(0, n, step))

    # -- kernel compilation ----------------------------------------------------

    def _compile(self):
        kernels = []
        for layer in self.network.layers:
            pair = self._kernel_for(layer)
            if pair is None:
                return None
            kernels.append(pair)
        return kernels

    def _kernel_for(self, layer):
        if isinstance(layer, Dense):
            return self._dense_kernel(layer)
        if isinstance(layer, Conv2D):
            return self._conv_kernel(layer)
        if isinstance(layer, MaxPool2D):
            return self._max_pool_kernel(layer)
        if isinstance(layer, AvgPool2D):
            return self._avg_pool_kernel(layer)
        if isinstance(layer, Flatten):
            return (
                lambda x: (x.reshape(len(x), int(np.prod(x.shape[1:]))), x.shape),
                lambda grad, shape: grad.reshape(shape),
            )
        if isinstance(layer, ReLU):
            return (
                lambda x: (np.maximum(x, 0.0, dtype=x.dtype), x > 0),
                lambda grad, mask: grad * mask,
            )
        if isinstance(layer, Tanh):
            return (
                lambda x: ((out := np.tanh(x)), out),
                lambda grad, out: grad * (1.0 - out * out),
            )
        if isinstance(layer, Sigmoid):
            return (
                lambda x: ((out := stable_sigmoid(x)), out),
                lambda grad, out: grad * out * (1.0 - out),
            )
        if isinstance(layer, Dropout):
            # Inference-time identity (attacks never run the training path).
            return (lambda x: (x, None), lambda grad, _: grad)
        if isinstance(layer, _BatchNormBase):
            return self._batchnorm_kernel(layer)
        return None

    def _dense_kernel(self, layer: Dense):
        weight, bias = layer.params["weight"], layer.params["bias"]

        def forward(x):
            return x @ self._cast(weight) + self._cast(bias), None

        def backward(grad, _):
            return grad @ self._cast(weight).T

        return forward, backward

    def _conv_kernel(self, layer: Conv2D):
        weight, bias = layer.params["weight"], layer.params["bias"]
        stride, padding, kernel = layer.stride, layer.padding, layer.kernel_size
        c_out = layer.out_channels

        def forward(x):
            if padding:
                x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
            n, c, h, w = x.shape
            idx, out_h, out_w = self._im2col_indices(c, h, w, kernel, stride)
            # np.take (not fancy indexing) so the patch matrix comes out
            # C-contiguous and the reshape below stays a view.
            cols = np.take(x.reshape(n, c * h * w), idx, axis=1).reshape(
                n * out_h * out_w, c * kernel * kernel
            )
            w_mat = self._cast(weight).reshape(c_out, -1)
            out = cols @ w_mat.T + self._cast(bias)
            out = np.ascontiguousarray(out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2))
            return out, (n, c, h, w)

        def backward(grad, ctx):
            n, c, h, w = ctx
            _, out_h, out_w = self._im2col_indices(c, h, w, kernel, stride)
            grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)
            grad_cols = grad_mat @ self._cast(weight).reshape(c_out, -1)
            gx = _col2im(grad_cols, (n, c, h, w), kernel, stride, out_h, out_w)
            if padding:
                gx = gx[:, :, padding:-padding, padding:-padding]
            return np.ascontiguousarray(gx)

        return forward, backward

    def _max_pool_kernel(self, layer: MaxPool2D):
        size, stride = layer.size, layer.stride

        def forward(x):
            n, c, h, w = x.shape
            if stride == size and h % size == 0 and w % size == 0:
                out_h, out_w = h // size, w // size
                flat = x.reshape(n, c, out_h, size, out_w, size).transpose(0, 1, 2, 4, 3, 5)
                flat = flat.reshape(n, c, out_h, out_w, size * size)
                arg = flat.argmax(axis=-1)
                out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
                return np.ascontiguousarray(out), ("fast", arg, x.shape)
            # General (overlapping / ragged) path via per-channel im2col.
            idx, out_h, out_w = self._im2col_indices(1, h, w, size, stride)
            cols = np.take(x.reshape(n * c, h * w), idx, axis=1).reshape(-1, size * size)
            arg = cols.argmax(axis=1)
            out = cols[np.arange(cols.shape[0]), arg].reshape(n, c, out_h, out_w)
            return out, ("general", arg, x.shape)

        def backward(grad, ctx):
            kind, arg, x_shape = ctx
            n, c, h, w = x_shape
            if kind == "fast":
                out_h, out_w = h // size, w // size
                gflat = np.zeros((n, c, out_h, out_w, size * size), dtype=grad.dtype)
                np.put_along_axis(gflat, arg[..., None], grad[..., None], axis=-1)
                gx = gflat.reshape(n, c, out_h, out_w, size, size).transpose(0, 1, 2, 4, 3, 5)
                return np.ascontiguousarray(gx.reshape(x_shape))
            _, out_h, out_w = self._im2col_indices(1, h, w, size, stride)
            gcols = np.zeros((n * c * out_h * out_w, size * size), dtype=grad.dtype)
            gcols[np.arange(gcols.shape[0]), arg] = grad.reshape(-1)
            gx = _col2im(gcols, (n * c, 1, h, w), size, stride, out_h, out_w)
            return gx.reshape(x_shape)

        return forward, backward

    def _avg_pool_kernel(self, layer: AvgPool2D):
        size = layer.size

        def forward(x):
            n, c, h, w = x.shape
            blocks = x.reshape(n, c, h // size, size, w // size, size)
            return blocks.mean(axis=(3, 5), dtype=x.dtype), x.shape

        def backward(grad, x_shape):
            spread = np.repeat(np.repeat(grad, size, axis=2), size, axis=3)
            return spread / grad.dtype.type(size * size)

        return forward, backward

    def _batchnorm_kernel(self, layer: _BatchNormBase):
        # Eval-mode batch norm is affine in x; gradients flow through the
        # scale only (the running statistics are constants — the same
        # simplification the autograd layer makes).
        def forward(x):
            scale = layer.params["gamma"].data / np.sqrt(layer.running_var + layer.eps)
            shift = layer.params["beta"].data - layer.running_mean * scale
            shape = layer._shape
            scale = scale.reshape(shape).astype(x.dtype)
            return x * scale + shift.reshape(shape).astype(x.dtype), scale

        def backward(grad, scale):
            return grad * scale

        return forward, backward

    # -- cached index sets and parameter casts ---------------------------------

    _im2col_indices = staticmethod(im2col_indices)

    def _cast(self, param: Tensor) -> np.ndarray:
        """Cached dtype cast of a parameter, identity+version-checked for staleness."""
        source = param.data
        entry = self._casts.get(id(param))
        if entry is None or entry[0] is not source or entry[1] != param.version:
            entry = (source, param.version, np.ascontiguousarray(source, dtype=self.dtype))
            self._casts[id(param)] = entry
        return entry[2]


def _col2im(
    cols: np.ndarray, x_shape: tuple[int, ...], kernel: int, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    """Scatter-add im2col patch gradients back into an image batch."""
    n, c, h, w = x_shape
    cols6 = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kernel):
        for j in range(kernel):
            x[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += cols6[
                :, :, :, :, i, j
            ]
    return x
