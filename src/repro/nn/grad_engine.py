"""The gradient engine: fused forward+backward kernels for the attack hot path.

Where :class:`~repro.nn.engine.InferenceEngine` (PR 1) gave every
*prediction* a raw-NumPy fast path, this module does the same for the
evaluation's true cost centre: the input gradients ``∂loss/∂x`` that every
gradient-based attack (FGSM/IGSM/PGD, L-BFGS, DeepFool, JSMA, the CW suite
and the adaptive detector-aware CW) recomputes thousands of times.  The
legacy path builds a full float64 autograd graph per iteration — one Python
closure per op, one float64 temporary per edge.  The engine instead runs
hand-written, dtype-configurable (float32 by default) forward and backward
kernels with no :class:`~repro.nn.tensor.Tensor` wrappers at all:

Compiled plans with stashed activations
    :meth:`forward` executes a :class:`~repro.nn.plan.CompiledPlan` in
    ``grad`` mode — the layer stack lowered once per batch shape into
    buffer-bound ops that stash exactly what each backward needs (ReLU
    masks, pool argmaxes, conv geometries) — and returns ``(logits, ctx)``.
    :meth:`backward` seeds the logits with an arbitrary cotangent and
    replays the stack in reverse.  Because the context is reusable,
    :meth:`jacobian` does **one** forward followed by ``C`` seeded
    backwards instead of the legacy ``C`` full forward+backward passes.
    Contexts are generation-stamped: a backward against a context that a
    later same-shape forward has overwritten raises
    :class:`~repro.verify.guards.GuardViolation` (``kind="stale-context"``)
    instead of silently reading the newer activations.

Cached im2col index sets
    Convolution (and the strided max-pool path) gather their patch matrices
    through integer index sets cached per input geometry
    ``(channels, height, width, kernel, stride)`` in the bounded LRU of
    :mod:`repro.nn.kernels`, so steady-state attack iterations spend their
    time inside BLAS matmuls, not index arithmetic.

Counters and an autograd fallback
    ``engine.counters`` (:class:`GradientCounters`) tracks backward batches,
    examples, wall-clock seconds and fallback passes in the same style as
    the PR-1 inference counters.  Networks containing unknown layer types
    transparently fall back to the float64 autograd path (recorded in
    ``counters.fallbacks``), so the public API never changes behaviour —
    only speed.

Dtype policy: attacks default to float32 through this engine; training
(:mod:`repro.nn.train`) stays on the float64 autograd path.  See DESIGN.md.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..verify import guards
from .kernels import IM2COL_CACHE as _IM2COL_CACHE  # noqa: F401 - back-compat alias
from .kernels import col2im as _col2im  # noqa: F401 - back-compat alias
from .kernels import im2col_indices
from .plan import DEFAULT_PLAN_ENTRIES, CompiledPlan
from .plan import supports as plan_supports
from .tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - circular import avoided at runtime
    from .network import Network

__all__ = ["GradientEngine", "GradientCounters", "margin_seed", "im2col_indices"]

DEFAULT_BATCH_SIZE = 256

# Offset excluding the target class from max_{i != t} Z_i (matches attacks.cw).
_EXCLUDE = 1e6

@dataclass
class GradientCounters:
    """Cumulative backward-pass work counters of one gradient engine."""

    requests: int = 0  # public gradient calls answered
    backward_batches: int = 0  # seeded backward executions
    examples: int = 0  # rows pushed through a backward pass
    seconds: float = 0.0  # wall clock inside forward/backward kernels
    fallbacks: int = 0  # backward passes served by float64 autograd
    plan_hits: int = 0  # forwards served by a cached compiled plan
    plan_misses: int = 0  # plan compilations (new batch shape, or cache off)

    def as_dict(self) -> dict[str, float]:
        return asdict(self)

    def snapshot(self) -> "GradientCounters":
        return replace(self)


def margin_seed(
    logits: np.ndarray, target_labels: np.ndarray, confidence: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Cotangent of the CW objective ``f = max(max_{i≠t} Z_i − Z_t + κ, 0)``.

    Returns ``(seed, margin)`` where ``seed`` is the float64 ``∂Σf/∂Z``
    matrix (rows zero once the hinge is inactive) and ``margin`` is the raw
    per-example margin (without the hinge).  Shared by
    :meth:`GradientEngine.margin_input_grad` and the detector-aware
    adaptive attack, which needs the seed alone to compose losses across
    two networks before a single backward pass.
    """
    target_labels = np.asarray(target_labels)
    z = np.asarray(logits, dtype=np.float64)
    n = len(z)
    rows = np.arange(n)
    z_target = z[rows, target_labels]
    masked = z.copy()
    masked[rows, target_labels] -= _EXCLUDE
    other = masked.argmax(axis=-1)
    margin = masked[rows, other] - z_target + confidence
    active = (margin >= 0.0).astype(np.float64)
    seed = np.zeros_like(z)
    seed[rows, other] += active
    seed[rows, target_labels] -= active
    return seed, margin


class _NativeContext:
    """Handle onto a compiled plan's stashed activations (reusable).

    Generation-stamped: :meth:`GradientEngine.backward` may seed it any
    number of times (the Jacobian loop), but once a *newer* same-shape
    forward has run on the same plan, using it raises a stale-context
    :class:`~repro.verify.guards.GuardViolation`.
    """

    __slots__ = ("plan", "generation", "batch_len")

    def __init__(self, plan: CompiledPlan, generation: int, batch_len: int):
        self.plan = plan
        self.generation = generation
        self.batch_len = batch_len


class _FallbackContext:
    """Autograd-backed context for networks with unknown layers.

    The first backward consumes the graph recorded during
    :meth:`GradientEngine.forward`; later backwards (the Jacobian's
    per-class seeds) re-run the float64 forward, reproducing the legacy
    cost exactly.
    """

    __slots__ = ("network", "x", "inp", "logits", "batch_len")

    def __init__(self, network: "Network", x: np.ndarray):
        self.network = network
        self.x = np.asarray(x, dtype=np.float64)
        self.inp = Tensor(self.x, requires_grad=True)
        self.logits = network.forward(self.inp)
        self.batch_len = len(self.x)

    def run(self, seed: np.ndarray) -> np.ndarray:
        if self.inp is None:  # graph already consumed: re-forward
            inp = Tensor(self.x, requires_grad=True)
            logits = self.network.forward(inp)
        else:
            inp, logits = self.inp, self.logits
            self.inp = self.logits = None
        logits.backward(np.asarray(seed, dtype=np.float64))
        assert inp.grad is not None
        return inp.grad


class GradientEngine:
    """Batched, instrumented, dtype-configurable input gradients for one network.

    Parameters
    ----------
    network:
        The :class:`~repro.nn.network.Network` to differentiate through.
        Parameters are read live: rebinding them (optimiser step,
        ``load_state``) invalidates the cast cache automatically.
    dtype:
        Compute dtype of the fused kernels.  ``float32`` (default) roughly
        doubles BLAS throughput; ``float64`` tracks the autograd reference
        to ~1e-10.
    batch_size:
        Default batch plan of the public gradient methods; per-call
        ``batch_size`` overrides it.
    native:
        ``False`` skips plan compilation, forcing every pass onto the
        float64 autograd fallback — the degradation ladder's reference
        rung (see :mod:`repro.runner.policy`).
    plan_entries:
        Capacity of the compiled-plan LRU (keyed by exact batch shape).
        ``0`` keeps the plan layer but recompiles per call.
    """

    def __init__(
        self,
        network: "Network",
        dtype: np.dtype | type = np.float32,
        batch_size: int = DEFAULT_BATCH_SIZE,
        native: bool = True,
        plan_entries: int = DEFAULT_PLAN_ENTRIES,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if plan_entries < 0:
            raise ValueError("plan_entries must be >= 0")
        self.network = network
        self.dtype = np.dtype(dtype)
        self.batch_size = batch_size
        self.plan_entries = plan_entries
        self.counters = GradientCounters()
        # param-id -> (source array ref, version, cast copy); checked by
        # identity (rebinding) and version (in-place optimiser updates).
        self._casts: dict[int, tuple[np.ndarray, int, np.ndarray]] = {}
        # batch shape -> CompiledPlan (grad mode, LRU); plans depend only
        # on shapes — parameter changes flow through the cast cache.
        self._plans: "OrderedDict[tuple[int, ...], CompiledPlan]" = OrderedDict()
        self._native = bool(native) and plan_supports(network)

    # -- public API -----------------------------------------------------------

    @property
    def supports_native(self) -> bool:
        """Whether every layer runs on the compiled raw-NumPy plans."""
        return self._native

    def reset_counters(self) -> None:
        self.counters = GradientCounters()

    def invalidate(self) -> None:
        """Drop every cached parameter cast and compiled plan."""
        self._casts.clear()
        self._plans.clear()

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        """One unbatched forward pass returning ``(logits, context)``.

        The context stashes every activation the backward needs and — on
        the native path — may be seeded repeatedly (:meth:`jacobian` runs
        ``C`` backwards against one context).  This is the advanced API;
        most callers want the loss-specific helpers below, which batch.
        """
        x = np.ascontiguousarray(np.asarray(x), dtype=self.dtype)
        start = time.perf_counter()
        if not self._native:
            ctx: object = _FallbackContext(self.network, x)
            out = ctx.logits.data.astype(self.dtype)
        else:
            plan = self._plan_for(x.shape)
            buffer, generation = plan.run_forward(x)
            # Boundary copy: the plan reuses the logits buffer on the next
            # same-shape forward; callers own what they are handed.
            out = buffer.copy()
            ctx = _NativeContext(plan, generation, len(x))
        self.counters.seconds += time.perf_counter() - start
        guards.check_output("GradientEngine.forward", out, self.dtype)
        return out, ctx

    def backward(self, ctx: object, seed: np.ndarray) -> np.ndarray:
        """Input gradient for the cotangent ``seed`` (``∂Σ(seed·Z)/∂x``).

        ``seed`` has the logits' shape; the result is in the engine dtype.
        """
        start = time.perf_counter()
        self.counters.backward_batches += 1
        if isinstance(ctx, _FallbackContext):
            self.counters.fallbacks += 1
            self.counters.examples += ctx.batch_len
            grad = ctx.run(seed).astype(self.dtype)
        else:
            assert isinstance(ctx, _NativeContext)
            self.counters.examples += ctx.batch_len
            # The plan copies the seed before any in-place transform and
            # hands back its own gradient buffer; copy at the boundary.
            grad = ctx.plan.run_backward(seed, ctx.generation).copy()
        self.counters.seconds += time.perf_counter() - start
        guards.check_output("GradientEngine.backward", grad, self.dtype)
        return grad

    def cross_entropy_input_grad(
        self, x: np.ndarray, labels: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """``∂ CE(H(x), labels) / ∂x`` summed over the batch (per-example rows).

        The softmax seed is computed in float64 for stability, the network
        passes in the engine dtype; the result is in the engine dtype.
        """
        self.counters.requests += 1
        x, labels = np.asarray(x), np.asarray(labels)
        out = np.empty(x.shape, dtype=self.dtype)
        for begin, end in self._plan(len(x), batch_size):
            logits, ctx = self.forward(x[begin:end])
            z = logits.astype(np.float64)
            shifted = z - z.max(axis=-1, keepdims=True)
            exps = np.exp(shifted)
            seed = exps / exps.sum(axis=-1, keepdims=True)
            seed[np.arange(end - begin), labels[begin:end]] -= 1.0
            out[begin:end] = self.backward(ctx, seed)
        return out

    def logit_input_grad(
        self, x: np.ndarray, class_index: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """``∂ H(x)_{class_index} / ∂x`` for a per-example class index."""
        self.counters.requests += 1
        x, class_index = np.asarray(x), np.asarray(class_index)
        num_classes = self.network.num_classes
        out = np.empty(x.shape, dtype=self.dtype)
        for begin, end in self._plan(len(x), batch_size):
            logits, ctx = self.forward(x[begin:end])
            seed = np.zeros((end - begin, num_classes), dtype=self.dtype)
            seed[np.arange(end - begin), class_index[begin:end]] = 1.0
            out[begin:end] = self.backward(ctx, seed)
        return out

    def margin_input_grad(
        self,
        x: np.ndarray,
        target_labels: np.ndarray,
        confidence: float = 0.0,
        batch_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gradient of the CW objective ``f(x) = max(max_{i≠t} Z_i − Z_t + κ, 0)``.

        Returns ``(grad, logits, margin)``: the per-example ``∂f/∂x`` rows
        (engine dtype), the logits (engine dtype) and the raw, un-hinged
        margin (float64) — everything the CW L2/L0/L∞ inner loops need from
        one fused pass.
        """
        self.counters.requests += 1
        x, target_labels = np.asarray(x), np.asarray(target_labels)
        num_classes = self.network.num_classes
        grad = np.empty(x.shape, dtype=self.dtype)
        logits_out = np.empty((len(x), num_classes), dtype=self.dtype)
        margin_out = np.empty(len(x), dtype=np.float64)
        for begin, end in self._plan(len(x), batch_size):
            logits, ctx = self.forward(x[begin:end])
            seed, margin = margin_seed(logits, target_labels[begin:end], confidence)
            grad[begin:end] = self.backward(ctx, seed)
            logits_out[begin:end] = logits
            margin_out[begin:end] = margin
        return grad, logits_out, margin_out

    def jacobian(
        self, x: np.ndarray, batch_size: int | None = None, with_logits: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Full logits Jacobian ``∂H(x)_c / ∂x``, shape ``(N, C, *input_shape)``.

        On the native path this is one forward followed by ``C`` seeded
        backwards against the *same* stashed activations — the legacy path
        re-ran the whole forward once per class.  The result (and, with
        ``with_logits=True``, the accompanying logits) is in the engine
        dtype.
        """
        self.counters.requests += 1
        x = np.asarray(x)
        num_classes = self.network.num_classes
        rows = np.empty((len(x), num_classes) + x.shape[1:], dtype=self.dtype)
        logits_out = np.empty((len(x), num_classes), dtype=self.dtype)
        for begin, end in self._plan(len(x), batch_size):
            logits, ctx = self.forward(x[begin:end])
            logits_out[begin:end] = logits
            seed = np.zeros((end - begin, num_classes), dtype=self.dtype)
            for c in range(num_classes):
                seed[:, c] = 1.0
                rows[begin:end, c] = self.backward(ctx, seed)
                seed[:, c] = 0.0
        return (rows, logits_out) if with_logits else rows

    # -- batching -------------------------------------------------------------

    def _plan(self, n: int, batch_size: int | None):
        step = batch_size or self.batch_size
        return ((begin, min(begin + step, n)) for begin in range(0, n, step))

    # -- plan cache ------------------------------------------------------------

    def _plan_for(self, shape: tuple[int, ...]) -> CompiledPlan:
        key = tuple(shape)
        plan = self._plans.get(key)
        if plan is not None:
            self.counters.plan_hits += 1
            self._plans.move_to_end(key)
            return plan
        self.counters.plan_misses += 1
        plan = CompiledPlan(self.network, key, self.dtype, "grad", self._cast)
        if self.plan_entries > 0:
            self._plans[key] = plan
            while len(self._plans) > self.plan_entries:
                self._plans.popitem(last=False)
        return plan

    # -- parameter casts -------------------------------------------------------

    def _cast(self, param: Tensor) -> np.ndarray:
        """Cached dtype cast of a parameter, identity+version-checked for staleness."""
        source = param.data
        entry = self._casts.get(id(param))
        if entry is None or entry[0] is not source or entry[1] != param.version:
            entry = (source, param.version, np.ascontiguousarray(source, dtype=self.dtype))
            self._casts[id(param)] = entry
        return entry[2]
