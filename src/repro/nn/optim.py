"""Gradient-descent optimisers for network parameters.

These operate on the list of parameter tensors returned by
:meth:`repro.nn.network.Network.parameters`.  The CW attacks carry their own
standalone Adam implementation over raw arrays (see
:class:`repro.attacks.cw.AdamState`) because they optimise attack variables,
not network parameters.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser: tracks parameters and applies updates from ``.grad``."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, velocity in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                velocity *= self.momentum
                velocity -= self.lr * grad
                p.data = p.data + velocity
            else:
                p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
