"""Gradient-descent optimisers for network parameters.

These operate on the list of parameter tensors returned by
:meth:`repro.nn.network.Network.parameters`.  The CW attacks carry their own
standalone Adam implementation over raw arrays (see
:class:`repro.attacks.cw.AdamState`) because they optimise attack variables,
not network parameters.

Updates are fully in place: ``p.data`` keeps its identity across steps (so
the training engine's bound float32 arrays are updated directly, with zero
reallocation per step) and every temporary lives in a preallocated scratch
buffer.  Optimiser state (momentum/moment buffers, scratch) is allocated
lazily in the dtype of the first gradient seen — float32 under the fused
:class:`~repro.nn.train_engine.TrainingEngine`, float64 under autograd —
and reallocated transparently if the gradient dtype changes.  After every
update the parameter's version is bumped
(:meth:`repro.nn.tensor.Tensor.bump_version`) so the identity+version
checked engine caches recast instead of serving stale values.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..verify import guards
from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser: tracks parameters and applies updates from ``.grad``."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        # Per-parameter lazily-allocated buffers, keyed by buffer name.
        self._state: list[dict[str, np.ndarray]] = [{} for _ in self.parameters]

    def _buffer(self, index: int, name: str, grad: np.ndarray, zero: bool) -> np.ndarray:
        """Lazy per-parameter buffer matching the gradient's shape/dtype."""
        state = self._state[index]
        buf = state.get(name)
        if buf is None or buf.dtype != grad.dtype or buf.shape != grad.shape:
            buf = np.zeros_like(grad) if zero else np.empty_like(grad)
            state[name] = buf
        return buf

    def step(self) -> None:
        raise NotImplementedError

    def _check_guards(self, where: str) -> None:
        """Opt-in pre-step guards: finite gradients, no data/grad aliasing."""
        if not guards.active():
            return
        for p in self.parameters:
            if p.grad is None:
                continue
            guards.check_finite(where, p.grad)
            guards.check_update_safe(where, p)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay

    def step(self) -> None:
        self._check_guards("SGD.step")
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            scratch = self._buffer(i, "scratch", grad, zero=False)
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=scratch, casting="unsafe")
                scratch += grad
                grad = scratch
            if self.momentum:
                velocity = self._buffer(i, "velocity", grad, zero=True)
                velocity *= self.momentum
                if grad is scratch:
                    scratch *= self.lr
                else:
                    np.multiply(grad, self.lr, out=scratch)
                velocity -= scratch
                np.add(p.data, velocity, out=p.data, casting="unsafe")
            else:
                if grad is scratch:
                    scratch *= self.lr
                else:
                    np.multiply(grad, self.lr, out=scratch)
                np.subtract(p.data, scratch, out=p.data, casting="unsafe")
            p.bump_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction.

    The bias-corrected update ``lr · m̂ / (√v̂ + ε)`` is computed without
    the ``m̂``/``v̂`` temporaries via the algebraically identical
    ``(lr / bias1) · m / (√v / √bias2 + ε)``.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._t = 0

    def step(self) -> None:
        self._check_guards("Adam.step")
        self._t += 1
        step_size = self.lr / (1.0 - self.beta1**self._t)
        denom_scale = 1.0 / np.sqrt(1.0 - self.beta2**self._t)
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                decayed = self._buffer(i, "decayed", grad, zero=False)
                np.multiply(p.data, self.weight_decay, out=decayed, casting="unsafe")
                decayed += grad
                grad = decayed
            m = self._buffer(i, "m", grad, zero=True)
            v = self._buffer(i, "v", grad, zero=True)
            scratch = self._buffer(i, "scratch", grad, zero=False)
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m += scratch
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.beta2
            v += scratch
            np.sqrt(v, out=scratch)
            scratch *= denom_scale
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= step_size
            np.subtract(p.data, scratch, out=p.data, casting="unsafe")
            p.bump_version()
